// Budget maintenance: the paper's first alternative optimization goal
// ("maintaining a certain monthly budget by relaxing some constraints,
// such as lock-in or availability", §I), plus catalog loading from JSON.
//
// A data owner sets a monthly budget for a 10 GB archive.  As the budget
// tightens, the BudgetGuard walks the relaxation ladder — lock-in first,
// then availability, then durability — and reports which constraint level
// each budget forces.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/budget_cap
#include <cstdio>

#include "config/loaders.h"
#include "core/budget.h"
#include "core/placement.h"

using namespace scalia;

namespace {

// The market, authored as a JSON catalog document (config/loaders.h) the
// way a deployment would ship it.
constexpr const char* kCatalogJson = R"json({
  "providers": [
    {"id": "S3(h)", "description": "Amazon S3 (High)",
     "durability": 0.99999999999, "availability": 0.999,
     "zones": ["EU", "US", "APAC"],
     "storage_gb_month": 0.14, "bw_in_gb": 0.1, "bw_out_gb": 0.15,
     "ops_per_1000": 0.01},
    {"id": "S3(l)", "description": "Amazon S3 (Low)",
     "durability": 0.9999, "availability": 0.999,
     "zones": ["EU", "US", "APAC"],
     "storage_gb_month": 0.093, "bw_in_gb": 0.1, "bw_out_gb": 0.15,
     "ops_per_1000": 0.01},
    {"id": "RS", "description": "Rackspace CloudFiles",
     "durability": 0.999999, "availability": 0.999, "zones": ["US"],
     "storage_gb_month": 0.15, "bw_in_gb": 0.08, "bw_out_gb": 0.18,
     "ops_per_1000": 0.0},
    {"id": "Azu", "description": "Microsoft Azure",
     "durability": 0.999999, "availability": 0.999, "zones": ["US"],
     "storage_gb_month": 0.15, "bw_in_gb": 0.1, "bw_out_gb": 0.15,
     "ops_per_1000": 0.01},
    {"id": "Ggl", "description": "Google Storage",
     "durability": 0.999999, "availability": 0.999, "zones": ["US"],
     "storage_gb_month": 0.17, "bw_in_gb": 0.1, "bw_out_gb": 0.15,
     "ops_per_1000": 0.01}
  ]
})json";

}  // namespace

int main() {
  auto catalog = config::LoadCatalogFromText(kCatalogJson);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog error: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu providers from the JSON catalog\n\n",
              catalog->size());

  // A 10 GB archive, written once, read rarely; a demanding rule: four
  // distinct providers, four nines of availability, six nines durability.
  core::PlacementRequest request;
  request.rule = core::StorageRule{.name = "archive",
                                   .durability = 0.999999,
                                   .availability = 0.999,
                                   .allowed_zones = provider::ZoneSet::All(),
                                   .lockin = 0.25,
                                   .ttl_hint = std::nullopt};
  // Cold archive: read roughly once every six weeks.
  request.object_size = 10 * common::kGB;
  request.per_period.storage_gb = 10.0;
  request.per_period.reads = 0.001;
  request.per_period.bw_out_gb = 10.0 * 0.001;
  request.per_period.ops = 0.001;
  request.decision_periods = 24;

  const core::PlacementSearch search{
      core::PriceModel{core::PriceModelConfig{
          .sampling_period = common::kHour,
          .billing = provider::StorageBillingMode::kProrated}}};

  std::printf("%-10s %-10s %-42s %12s %9s\n", "budget($)", "level",
              "placement", "monthly($)", "in_budget");
  for (double budget : {5.0, 2.5, 1.7, 1.5, 1.0}) {
    const core::BudgetGuard guard(common::Money(budget), common::kHour);
    const core::BudgetedPlacement placed =
        guard.PlaceWithinBudget(search, *catalog, request);
    if (!placed.decision.feasible) {
      std::printf("%-10.2f (no feasible placement at any relaxation)\n",
                  budget);
      continue;
    }
    static constexpr const char* kLevels[] = {
        "rule", "-lockin", "-avail", "-durab"};
    std::printf("%-10.2f %-10s %-42s %12.4f %9s\n", budget,
                kLevels[placed.relaxation_level],
                placed.decision.Label().c_str(),
                guard.ProjectMonthly(placed.decision, request.decision_periods)
                    .usd(),
                placed.within_budget ? "yes" : "OVER");
  }

  std::printf(
      "\nReading the table: tighter budgets shed constraints in order — "
      "lock-in (fewer providers), then a nine of availability, then a nine "
      "of durability; a budget below the loosest feasible spend is flagged "
      "OVER so the owner can react (§I, goal a).\n");
  return 0;
}
