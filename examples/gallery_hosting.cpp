// Gallery hosting: the §IV-C workload end to end.
//
// Simulates hosting a picture gallery behind Scalia: 200 pictures with
// Pareto-distributed popularity, accessed following a real website's
// diurnal pattern.  Shows how Scalia's adaptive placement tiers the
// pictures (hot ones on read-optimal sets, cold ones on storage-optimal
// stripes) and compares the bill with the best and worst fixed provider
// choices.
#include <cstdio>
#include <map>

#include "simx/overcost.h"
#include "workload/gallery.h"

using namespace scalia;

int main() {
  workload::GalleryParams params;
  params.total_hours = 24 * 5;  // a 5-day view
  const simx::ScenarioSpec scenario = workload::GalleryScenario(params);

  simx::SimPolicyConfig config;
  config.price.billing = provider::StorageBillingMode::kPerPeriod;
  const simx::CostSimulator simulator(config, simx::SimEnvironment::Paper());

  std::printf("hosting %zu pictures (%s each), %.0f visits/day, %zu hours\n",
              scenario.objects.size(),
              common::FormatBytes(params.picture_size).c_str(),
              params.visits_per_day, params.total_hours);

  const auto table = simx::ComputeOverCost(
      simulator, scenario, simx::Fig13Order(provider::PaperCatalog()),
      &common::ThreadPool::Shared());

  std::printf("\nweekly bill by strategy:\n");
  std::printf("  ideal oracle              : %s\n",
              table.ideal_total.ToString(4).c_str());
  std::printf("  Scalia (adaptive)         : %s  (+%.2f%%)\n",
              table.ScaliaRow().total.ToString(4).c_str(),
              table.ScaliaRow().over_pct);
  std::printf("  best fixed set  [%s] : %s  (+%.2f%%)\n",
              table.BestStatic().label.c_str(),
              table.BestStatic().total.ToString(4).c_str(),
              table.BestStatic().over_pct);
  std::printf("  worst fixed set [%s] : %s  (+%.2f%%)\n",
              table.WorstStatic().label.c_str(),
              table.WorstStatic().total.ToString(4).c_str(),
              table.WorstStatic().over_pct);

  // Where did the pictures end up?
  std::map<std::string, int> tiers;
  std::map<std::string, std::string> last;
  for (const auto& e : table.scalia.events) last[e.object] = e.label;
  for (const auto& [obj, label] : last) tiers[label]++;
  std::printf("\nfinal placement tiers:\n");
  for (const auto& [label, count] : tiers) {
    std::printf("  %-40s %3d pictures\n", label.c_str(), count);
  }
  std::printf("\nadaptivity: %zu trend changes detected, %zu migrations "
              "executed (cost-benefit gated)\n",
              table.scalia.trend_changes, table.scalia.migrations);
  return 0;
}
