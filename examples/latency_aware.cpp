// Latency-aware placement: the paper's second optimization goal
// ("minimizing query latency by promoting the most high-performing
// providers", §I), end to end.
//
// Compares three placements for the same object and rule:
//   1. cheapest       — Algorithm 1's default cost objective;
//   2. fastest        — latency objective, any price;
//   3. fastest@1.25x  — latency objective capped at 1.25x the cheapest
//                       feasible cost (the broker's "pay a little for a lot
//                       of speed" knob);
// then projects each placement's read latency per client region through
// the WAN model.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/latency_aware
#include <cstdio>

#include "core/placement.h"
#include "net/latency.h"
#include "provider/spec.h"

using namespace scalia;

int main() {
  // A market with visible latency spread: the paper's five plus an on-prem
  // NAS (fast at home, capacity-bound) per §III-E.
  auto market = provider::PaperCatalog();
  {
    provider::ProviderSpec nas;
    nas.id = "NAS";
    nas.description = "on-premise NAS";
    nas.sla = {.durability = 0.9999, .availability = 0.995};
    nas.zones = {provider::Zone::kOnPrem};
    nas.pricing = {.storage_gb_month = 0.02,
                   .bw_in_gb = 0.0,
                   .bw_out_gb = 0.0,
                   .ops_per_1000 = 0.0};
    // The NAS sits behind the office uplink: free to read but slow.
    nas.read_latency_ms = 90.0;
    nas.capacity = 500 * common::kGB;
    market.push_back(std::move(nas));
  }
  // Spread the public providers' time-to-first-byte (the catalog defaults
  // are uniform).
  for (auto& spec : market) {
    if (spec.id == "S3(h)") spec.read_latency_ms = 35.0;
    if (spec.id == "S3(l)") spec.read_latency_ms = 70.0;
    if (spec.id == "RS") spec.read_latency_ms = 45.0;
    if (spec.id == "Azu") spec.read_latency_ms = 40.0;
    if (spec.id == "Ggl") spec.read_latency_ms = 30.0;
  }

  core::PlacementRequest request;
  request.rule = core::StorageRule{.name = "site-assets",
                                   .durability = 0.99999,
                                   .availability = 0.999,
                                   .allowed_zones = provider::ZoneSet::All(),
                                   .lockin = 0.5,
                                   .ttl_hint = std::nullopt};
  request.object_size = common::kMB;
  request.per_period.storage_gb = 0.001;
  request.per_period.reads = 50.0;
  request.per_period.bw_out_gb = 0.05;
  request.per_period.ops = 50.0;
  request.decision_periods = 24;

  const core::PlacementSearch search{core::PriceModel{}};

  const core::PlacementDecision cheapest = search.FindBest(market, request);

  request.objective = core::PlacementObjective::kMinimizeLatency;
  const core::PlacementDecision fastest = search.FindBest(market, request);

  request.cost_cap_factor = 1.25;
  const core::PlacementDecision capped = search.FindBest(market, request);

  net::LatencyModel wan;
  wan.set_home_region(net::Region::kEurope);

  std::printf("%-14s %-38s %10s %12s\n", "objective", "placement",
              "cost($)", "read_ms(best)");
  for (const auto& [name, decision] :
       {std::pair<const char*, const core::PlacementDecision&>{"cheapest",
                                                               cheapest},
        {"fastest", fastest},
        {"fastest@1.25x", capped}}) {
    if (!decision.feasible) {
      std::printf("%-14s (infeasible)\n", name);
      continue;
    }
    std::printf("%-14s %-38s %10.4f %12.1f\n", name,
                decision.Label().c_str(), decision.expected_cost.usd(),
                decision.expected_read_latency_ms);
  }

  std::printf("\nProjected object-read latency by client region (WAN model):\n");
  std::printf("%-14s %10s %10s %10s\n", "objective", "EU", "NA", "Asia");
  for (const auto& [name, decision] :
       {std::pair<const char*, const core::PlacementDecision&>{"cheapest",
                                                               cheapest},
        {"fastest", fastest},
        {"fastest@1.25x", capped}}) {
    if (!decision.feasible) continue;
    std::printf("%-14s", name);
    for (net::Region region : net::kAllRegions) {
      std::printf(" %9.1fms",
                  wan.ObjectReadMs(region, decision.providers, decision.m,
                                   request.object_size));
    }
    std::printf("\n");
  }
  return 0;
}
