// Backup archival with failover: §IV-D/§IV-E as a live-engine walkthrough.
//
// Periodic 40 MB backups flow into the cluster; mid-run a provider fails
// and Scalia actively repairs the affected stripes; later a cheaper
// provider (CheapStor) registers and the optimizer migrates the archive.
#include <cstdio>

#include "core/cluster.h"
#include "provider/spec.h"
#include "workload/backup.h"

using namespace scalia;

int main() {
  core::ClusterConfig config;
  config.num_datacenters = 1;
  config.engines_per_dc = 2;
  config.engine.default_rule =
      core::StorageRule{.name = "backup",
                        .durability = 0.999999,
                        .availability = 0.9999,
                        .allowed_zones = provider::ZoneSet::All(),
                        .lockin = 0.5,
                        .ttl_hint = std::nullopt};
  core::ScaliaCluster cluster(config);
  for (auto& spec : provider::PaperCatalog()) {
    (void)cluster.registry().Register(std::move(spec));
  }

  const std::string backup_blob(4 * common::kMB, 'B');  // scaled-down 40 MB
  common::SimTime now = 0;
  int stored = 0;

  auto store_backup = [&](int index) {
    const std::string key = "backup-" + std::to_string(index);
    auto status = cluster.RouteRequest().Put(now, "archive", key, backup_blob,
                                             "application/x-tar");
    if (status.ok()) ++stored;
    return status;
  };

  std::printf("== phase 1: steady backups ==\n");
  for (int h = 0; h < 20; ++h, now += common::kHour) {
    if (h % 5 == 0) (void)store_backup(h / 5);
    cluster.EndSamplingPeriod(now + common::kHour);
  }
  auto meta = cluster.EngineAt(0, 0).LoadMetadata(
      now, core::MakeRowKey("archive", "backup-0"));
  std::printf("backup-0 placement: %s, m=%d of n=%zu\n",
              meta.ok() ? "loaded" : "missing", meta.ok() ? meta->m : 0,
              meta.ok() ? meta->n() : 0);

  std::printf("\n== phase 2: S3(l) fails; active repair ==\n");
  cluster.registry().Find("S3(l)")->failures().AddOutage(
      now, now + 48 * common::kHour);
  // Repair every stored backup whose stripe touches the faulty provider.
  int repaired = 0;
  for (int i = 0; i <= stored; ++i) {
    const std::string row_key =
        core::MakeRowKey("archive", "backup-" + std::to_string(i));
    auto m = cluster.EngineAt(0, 0).LoadMetadata(now, row_key);
    if (!m.ok()) continue;
    bool touches = false;
    for (const auto& s : m->stripes) touches |= (s.provider == "S3(l)");
    if (!touches) continue;
    if (cluster.EngineAt(0, 0).RepairObject(now, row_key).ok()) ++repaired;
  }
  std::printf("repaired %d stripes away from S3(l)\n", repaired);
  // New backups avoid the faulty provider automatically (§III-D.3).
  (void)store_backup(100);
  auto during = cluster.EngineAt(0, 0).LoadMetadata(
      now, core::MakeRowKey("archive", "backup-100"));
  if (during.ok()) {
    std::printf("backup-100 written during outage avoids S3(l):");
    for (const auto& s : during->stripes) std::printf(" %s", s.provider.c_str());
    std::printf("\n");
  }

  std::printf("\n== phase 3: CheapStor registers; optimizer migrates ==\n");
  (void)cluster.registry().Register(provider::CheapStorSpec());
  std::size_t migrations = 0;
  for (int h = 0; h < 10; ++h, now += common::kHour) {
    // Touch the archive so the optimizer reconsiders it.
    (void)cluster.RouteRequest().Get(now, "archive", "backup-0");
    cluster.EndSamplingPeriod(now + common::kHour);
    migrations += cluster.RunOptimizationProcedure(now + common::kHour).migrations;
  }
  std::printf("optimizer migrations after CheapStor arrival: %zu\n",
              migrations);

  // Every backup is still intact.
  int intact = 0, total = 0;
  for (int i = 0; i <= 100; ++i) {
    const std::string key = "backup-" + std::to_string(i);
    auto got = cluster.RouteRequest().Get(now, "archive", key);
    if (got.ok()) {
      ++total;
      if (*got == backup_blob) ++intact;
    }
  }
  std::printf("\nintegrity check: %d/%d backups intact\n", intact, total);
  return intact == total ? 0 : 1;
}
