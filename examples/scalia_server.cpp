// scalia_server: the reproduction as a runnable network service.
//
// The successor of the in-process s3_gateway_demo: a sharded Scalia engine
// behind the real TCP serving loop (net::HttpServer), speaking the §III-A
// "Amazon S3-like interface" over HTTP/1.1 to any client.  Anonymous
// requests are accepted by default (the public-bucket mode) so plain curl
// works; signed multi-tenant access uses the demo keys printed at startup.
//
// The engine layer is a core::ShardedEngine: --shards N key-hash partitions
// of the metadata table, statistics pipeline and (with --data-dir) WAL
// stream, so the serving path scales with cores instead of serializing on
// one metadata mutex.  Requests route to their shard by key hash — no
// global lock.  With --data-dir every shard journals its mutations to its
// own WAL segment stream and the server recovers warm (per-shard journals
// replayed in parallel) after a crash or restart.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/scalia_server --port 8080 --shards 4
//
// Then, from another shell:
//   curl -X PUT  --data-binary @photo.gif http://127.0.0.1:8080/pictures/photo.gif
//   curl         http://127.0.0.1:8080/pictures/photo.gif -o copy.gif
//   curl         http://127.0.0.1:8080/pictures            # list keys
//   curl -X DELETE http://127.0.0.1:8080/pictures/photo.gif
//
// SIGINT / SIGTERM shut down gracefully: in-flight requests finish, the
// serving statistics are printed, and the per-provider invoice is cut.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>

#include "api/auth.h"
#include "api/gateway.h"
#include "billing/invoice.h"
#include "capacity/admission.h"
#include "capacity/predictor.h"
#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "common/log.h"
#include "common/money.h"
#include "common/thread_pool.h"
#include "core/sharded_engine.h"
#include "durability/sharded_manager.h"
#include "durability/wal.h"
#include "filter/pipeline.h"
#include "net/server/server.h"
#include "provider/spec.h"

using namespace scalia;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

struct Flags {
  std::uint16_t port = 8080;
  std::string bind = "127.0.0.1";
  // Serving event loops (SO_REUSEPORT acceptors).  0 = match --shards, so
  // each engine shard gets roughly one shard-local serving thread.
  std::size_t loops = 0;
  std::size_t threads = std::thread::hardware_concurrency();
  // Engine shards: key-hash partitions of metadata + stats + WAL.  Default
  // matches the handler threads so the serving path scales with cores —
  // unless an existing --data-dir manifest pins a count, which wins over
  // the machine-dependent default (explicit --shards still must match it).
  std::size_t shards = std::thread::hardware_concurrency();
  bool shards_explicit = false;
  std::size_t max_body_mb = 64;
  std::size_t max_connections = 1024;
  long idle_timeout_s = 60;     // 0 disables the read/idle deadline
  long sampling_period_s = 60;  // 0 disables the maintenance loop
  // Periods per optimization run.  On by default: migrations commit via
  // CAS-on-version, so a migration racing a concurrent PUT of the same key
  // aborts and the acked write always survives (0 turns adaptation off).
  long optimize_every_periods = 1;
  // Durability root; empty disables journaling (in-memory operation).
  std::string data_dir;
  // Seconds between checkpoint opportunities (rides the sampling-period
  // loop, so it needs --sampling-period-s > 0 to fire).
  long checkpoint_every_s = 600;
  bool anonymous = true;
  // Fault-plan file (see bench/chaos_default.plan); empty = no chaos.
  // Window times in the file are relative to daemon start.
  std::string chaos_plan;
  // Per-shard p99 latency target (milliseconds) for SLO-aware admission
  // control: when any shard's p99 estimate breaches it, the gateway
  // 429-sheds tenants in ascending budget order.  0 disables (default).
  double slo_p99_ms = 0.0;
  // Filter-pipeline stage prefix applied to every storage rule:
  // none|chunk|dedup|compress|encrypt (each stage implies the earlier
  // ones).  "none" (default) stores bodies verbatim.
  std::string filters = "none";
};

/// Parses a --filters value; nullopt on an unknown stage name.
std::optional<filter::FilterStage> ParseFilterStage(const std::string& name) {
  if (name == "none") return filter::FilterStage::kNone;
  if (name == "chunk") return filter::FilterStage::kChunk;
  if (name == "dedup") return filter::FilterStage::kDedup;
  if (name == "compress") return filter::FilterStage::kCompress;
  if (name == "encrypt") return filter::FilterStage::kEncrypt;
  return std::nullopt;
}

void Usage(const char* argv0) {
  std::printf(
      "usage: %s [flags]\n"
      "  --port N               TCP port (default 8080; 0 = ephemeral)\n"
      "  --bind ADDR            bind address (default 127.0.0.1;\n"
      "                         0.0.0.0 to serve beyond loopback)\n"
      "  --loops N              serving event loops, each an SO_REUSEPORT\n"
      "                         acceptor running handlers shard-locally\n"
      "                         (default: match --shards)\n"
      "  --threads N            maintenance thread-pool size for recovery,\n"
      "                         checkpoints and the optimizer (default:\n"
      "                         cores)\n"
      "  --shards N             engine shards: key-hash partitions of the\n"
      "                         metadata table, statistics and WAL stream\n"
      "                         (default: cores). A durability dir pins the\n"
      "                         count; reopen with the same N\n"
      "  --data-dir DIR         journal every mutation to per-shard WAL\n"
      "                         streams under DIR and recover warm on start\n"
      "                         (default: off, in-memory only). An existing\n"
      "                         DIR's manifest supplies the shard count when\n"
      "                         --shards is not given\n"
      "  --checkpoint-every-s N checkpoint cadence in seconds (default 600;\n"
      "                         checkpoints ride the sampling-period loop,\n"
      "                         so --sampling-period-s 0 also disables them)\n"
      "  --max-body-mb N        reject larger uploads with 413 (default 64)\n"
      "  --max-connections N    concurrent connection cap (default 1024)\n"
      "  --idle-timeout-s N     read/idle deadline: connections silent for\n"
      "                         N seconds answer 408 and close (default 60;\n"
      "                         0 disables)\n"
      "  --sampling-period-s N  seconds between sampling-period closes;\n"
      "                         0 disables (default 60)\n"
      "  --optimize-every N     run the placement optimizer every N periods\n"
      "                         (default 1; 0 = off). Migrations commit via\n"
      "                         CAS-on-version, so a concurrent PUT always\n"
      "                         survives a racing migration\n"
      "  --chaos FILE           inject faults from a fault-plan file\n"
      "                         (outages, brownouts, partitions, price\n"
      "                         shocks; window times relative to daemon\n"
      "                         start — see OPERATIONS.md for the format)\n"
      "  --slo-p99-ms N         SLO-aware admission control: when any\n"
      "                         shard's p99 latency estimate breaches N ms,\n"
      "                         shed (429 + Retry-After) tenants in\n"
      "                         ascending budget order until it recovers\n"
      "                         (default 0 = off)\n"
      "  --filters STAGE        data-reduction pipeline stage prefix for\n"
      "                         every object: none|chunk|dedup|compress|\n"
      "                         encrypt (each implies the earlier stages;\n"
      "                         encrypt wraps per-object keys with tenant\n"
      "                         keys derived from the auth secrets).\n"
      "                         Default none — bodies stored verbatim\n"
      "  --no-anonymous         require signed requests (demo keys below)\n"
      "  --help                 this text\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](long* out) {
      if (i + 1 >= argc) return false;
      *out = std::atol(argv[++i]);
      return true;
    };
    long value = 0;
    if (arg == "--port" && next_value(&value)) {
      if (value < 0 || value > 65535) {
        std::fprintf(stderr, "--port out of range (0..65535): %ld\n", value);
        return false;
      }
      flags->port = static_cast<std::uint16_t>(value);
    } else if (arg == "--bind" && i + 1 < argc) {
      flags->bind = argv[++i];
    } else if (arg == "--loops" && next_value(&value) && value > 0) {
      flags->loops = static_cast<std::size_t>(value);
    } else if (arg == "--threads" && next_value(&value) && value > 0) {
      flags->threads = static_cast<std::size_t>(value);
    } else if (arg == "--shards" && next_value(&value) && value > 0) {
      flags->shards = static_cast<std::size_t>(value);
      flags->shards_explicit = true;
    } else if (arg == "--data-dir" && i + 1 < argc) {
      flags->data_dir = argv[++i];
    } else if (arg == "--checkpoint-every-s" && next_value(&value) &&
               value > 0) {
      flags->checkpoint_every_s = value;
    } else if (arg == "--max-body-mb" && next_value(&value) && value > 0) {
      flags->max_body_mb = static_cast<std::size_t>(value);
    } else if (arg == "--max-connections" && next_value(&value) && value > 0) {
      flags->max_connections = static_cast<std::size_t>(value);
    } else if (arg == "--idle-timeout-s" && next_value(&value) && value >= 0) {
      flags->idle_timeout_s = value;
    } else if (arg == "--sampling-period-s" && next_value(&value)) {
      flags->sampling_period_s = value;
    } else if (arg == "--optimize-every" && next_value(&value) && value >= 0) {
      flags->optimize_every_periods = value;
    } else if (arg == "--chaos" && i + 1 < argc) {
      flags->chaos_plan = argv[++i];
    } else if (arg == "--slo-p99-ms" && i + 1 < argc) {
      flags->slo_p99_ms = std::atof(argv[++i]);
    } else if (arg == "--filters" && i + 1 < argc) {
      flags->filters = argv[++i];
      if (!ParseFilterStage(flags->filters)) {
        std::fprintf(stderr, "--filters: unknown stage '%s'\n",
                     flags->filters.c_str());
        return false;
      }
    } else if (arg == "--no-anonymous") {
      flags->anonymous = false;
    } else if (arg == "--help") {
      Usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return false;
    }
  }
  if (flags->threads == 0) flags->threads = 4;
  if (flags->shards == 0) flags->shards = 1;
  return true;
}

common::SimTime WallClock() {
  return static_cast<common::SimTime>(::time(nullptr));
}

/// Ties the serving loop's tick flush to WAL group commit: while the
/// barrier lives on a loop thread, every journal append a handler makes
/// there defers its fsync into the cohort, and Commit() makes the whole
/// tick durable — K pipelined PUTs, one fsync per touched shard WAL.
class DurabilityBarrier : public net::FlushBarrier {
 public:
  [[nodiscard]] common::Status Commit() override { return cohort_.Commit(); }

 private:
  durability::AckCohort cohort_;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  // The library defaults to kWarning to keep test output clean; a daemon
  // wants its operational lines (per-period serving counters, optimizer
  // rounds) visible.
  common::SetLogLevel(common::LogLevel::kInfo);

  // A persisted topology beats a machine-dependent default: when the data
  // dir already pins a shard count and --shards was not given, adopt it
  // (an explicit mismatch is still refused at Open, with the full story).
  if (!flags.data_dir.empty() && !flags.shards_explicit) {
    if (const std::size_t pinned =
            durability::ShardedDurabilityManager::PinnedShards(flags.data_dir);
        pinned > 0 && pinned != flags.shards) {
      std::printf("adopting %zu shard(s) pinned by %s (pass --shards to "
                  "override)\n", pinned, flags.data_dir.c_str());
      flags.shards = pinned;
    }
  }

  // 1. The engine layer: N key-hash shards, each owning its slice of the
  //    metadata table, statistics pipeline and cache (Fig. 4 collapsed to
  //    one datacenter; multi-DC replication lives in ScaliaCluster and the
  //    simulator).  The provider registry — the outside world — is shared.
  provider::ProviderRegistry registry;
  common::ThreadPool pool(flags.threads);

  // Chaos (opt-in): the fault plan is parsed before the engine exists so
  // the optimizer's health feed can be wired into its config.  Plan windows
  // are written relative to t=0; shifting by the start-time wall clock puts
  // them on the same clock every request uses.
  std::unique_ptr<chaos::FaultInjector> injector;
  if (!flags.chaos_plan.empty()) {
    auto plan = chaos::FaultPlan::Load(flags.chaos_plan);
    if (!plan.ok()) {
      std::fprintf(stderr, "--chaos %s: %s\n", flags.chaos_plan.c_str(),
                   plan.status().ToString().c_str());
      return 2;
    }
    injector = std::make_unique<chaos::FaultInjector>(
        plan->Shifted(WallClock()), chaos::InjectorOptions{});
  }

  core::ShardedEngineConfig engine_config;
  engine_config.num_shards = flags.shards;
  engine_config.engine.default_rule =
      core::StorageRule{.name = "default",
                        .durability = 0.999999,
                        .availability = 0.9999,
                        .allowed_zones = provider::ZoneSet::All(),
                        .lockin = 0.5,
                        .ttl_hint = std::nullopt};
  if (injector) {
    engine_config.optimizer.provider_health =
        [&injector](common::SimTime now) {
          return injector->UnhealthyProviders(now);
        };
  }
  const filter::FilterStage filter_stage = *ParseFilterStage(flags.filters);
  if (filter_stage != filter::FilterStage::kNone) {
    filter::PipelineConfig filter_config;
    filter_config.policy.default_stage = filter_stage;
    engine_config.filters = filter_config;
  }
  core::ShardedEngine engine(engine_config, &registry, &pool);
  if (filter_stage != filter::FilterStage::kNone) {
    std::printf("filter pipeline: stage prefix '%s' on every rule\n",
                flags.filters.c_str());
  }
  const auto catalog = provider::PaperCatalog();
  for (auto spec : catalog) {
    if (auto s = registry.Register(std::move(spec)); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (injector) {
    registry.SetFaultHook(injector.get());
    std::printf("chaos: %zu fault event(s) loaded from %s\n",
                injector->plan().events().size(), flags.chaos_plan.c_str());
  }

  // 2. Durability (opt-in): per-shard WAL streams + checkpoints under
  //    --data-dir, recovered warm (journals replayed in parallel) before
  //    the server starts accepting traffic.
  std::unique_ptr<durability::ShardedDurabilityManager> durability;
  if (!flags.data_dir.empty()) {
    durability::ShardedDurabilityConfig durability_config;
    durability_config.dir = flags.data_dir;
    durability_config.num_shards = flags.shards;
    durability_config.checkpoint_every = flags.checkpoint_every_s;
    std::vector<durability::EngineStateRefs> state(flags.shards);
    for (std::size_t s = 0; s < flags.shards; ++s) {
      state[s].db = &engine.shard_store(s);
      state[s].dc = 0;
      state[s].stats = &engine.shard_stats(s);
      // Billing meters are global; restoring them into every shard would
      // multiply the counters, so only shard 0 snapshots the registry.
      state[s].registry = s == 0 ? &registry : nullptr;
      // Aborted-migration sweeps (kMigrateAbort replay) target globally
      // unique chunk keys — every shard needs them.
      state[s].sweep_registry = &registry;
      // Each shard's dedup index checkpoints and recovers with the shard
      // (null when --filters is off: section 4 then restores nothing).
      state[s].filter_index = engine.shard_dedup_index(s);
    }
    auto opened = durability::ShardedDurabilityManager::Open(
        std::move(durability_config), std::move(state));
    if (!opened.ok()) {
      std::fprintf(stderr, "durability open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    durability = std::move(*opened);
    auto recovered = durability->Recover(WallClock(), &pool);
    if (!recovered.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    std::printf("recovered %llu shard journal(s): %llu checkpoint(s), "
                "%llu record(s) replayed, %llu torn byte(s) discarded\n",
                static_cast<unsigned long long>(recovered->shards),
                static_cast<unsigned long long>(recovered->checkpoints_loaded),
                static_cast<unsigned long long>(recovered->records_replayed),
                static_cast<unsigned long long>(
                    recovered->wal_bytes_discarded));
    engine.AttachJournals(durability->journals());
  }

  // 3. The gateway: anonymous public-bucket access for curl, plus demo
  //    tenants with HMAC-signed requests (§III-E applied to the client API).
  api::Authenticator auth;
  const api::Credentials acme{.access_key_id = "ACME-KEY-1",
                              .secret = "acme-secret",
                              .tenant = "acme"};
  const api::Credentials globex{.access_key_id = "GLOBEX-KEY-1",
                                .secret = "globex-secret",
                                .tenant = "globex"};
  auth.AddCredentials(acme);
  auth.AddCredentials(globex);
  if (flags.anonymous) auth.AllowAnonymous("anonymous");
  // Tenant keys for the pipeline's envelope encryption derive from the same
  // secrets the gateway authenticates with; tenants without a registered
  // secret (e.g. anonymous) fall back to keys derived from the keyring's
  // master secret (see filter/crypto.h and OPERATIONS.md).
  if (auto* keyring = engine.tenant_keyring()) {
    keyring->SetTenantSecret(acme.tenant, acme.secret);
    keyring->SetTenantSecret(globex.tenant, globex.secret);
  }
  api::S3Gateway gateway(&auth,
                         [&]() -> core::EngineApi& { return engine; });
  for (auto& rule : core::PaperRules()) gateway.RegisterRule(rule);

  // SLO-aware admission control (opt-in via --slo-p99-ms): tenant value =
  // monthly budget in USD, the same number core/budget.h caps spending
  // with and the billing ledger invoices against, so "shed the cheapest
  // first" means exactly what the bill says.  Anonymous traffic carries no
  // budget and ranks below every paying tenant.
  capacity::AdmissionConfig admission_config;
  admission_config.slo_p99_ms = flags.slo_p99_ms;
  admission_config.num_shards = flags.shards;
  capacity::AdmissionController admission(admission_config);
  if (admission.enabled()) {
    admission.SetTenantBudget(acme.tenant, common::Money(100.0));
    admission.SetTenantBudget(globex.tenant, common::Money(500.0));
    if (flags.anonymous) {
      admission.SetTenantBudget("anonymous", common::Money(0.0));
    }
    gateway.SetAdmissionController(&admission);
    std::printf("admission control: p99 SLO %.1f ms, shedding in ascending "
                "budget order\n", flags.slo_p99_ms);
  }

  // Predictive capacity scaling rides the sampling-period loop: forecast
  // next period's request rate from the closed periods, resize the
  // chunk-I/O pool and cache budget ahead of it, back the optimizer off
  // under predicted peak load.
  capacity::CapacityConfig capacity_config;
  capacity_config.max_threads =
      std::max<std::size_t>(flags.threads, 1);
  capacity_config.max_cache_bytes = engine_config.cache_capacity;
  capacity::CapacityController capacity_controller(capacity_config);

  // 4. The serving path: per-shard event loops.  Each loop owns an
  //    SO_REUSEPORT acceptor and runs handlers inline on its own thread;
  //    the gateway hands every request to the sharded engine, which routes
  //    it to its shard by key hash — no global lock, no thread-pool hop on
  //    the request path.  With durability on, each loop batches its tick's
  //    WAL fsyncs through an AckCohort barrier before acking.
  if (flags.loops == 0) flags.loops = flags.shards;
  net::ServerConfig server_config;
  server_config.bind_address = flags.bind;
  server_config.port = flags.port;
  server_config.num_loops = flags.loops;
  server_config.max_connections = flags.max_connections;
  server_config.idle_timeout_ms = flags.idle_timeout_s * 1000;
  server_config.limits.max_body_bytes = flags.max_body_mb * 1024 * 1024;
  server_config.clock = WallClock;
  if (durability) {
    server_config.barrier_factory = [] {
      return std::make_unique<DurabilityBarrier>();
    };
  }
  net::HttpServer server(
      std::move(server_config),
      [&gateway](common::SimTime now, const api::HttpRequest& request) {
        return gateway.Handle(now, request);
      });
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::printf("scalia_server listening on %s:%u "
              "(%zu serving loop(s), %zu engine shards%s)\n",
              flags.bind.c_str(), server.port(), server.num_loops(),
              engine.num_shards(),
              durability ? ", durable with batched acks" : "");
  std::printf("try:\n");
  std::printf("  curl -X PUT --data-binary 'hello scalia' "
              "http://127.0.0.1:%u/demo/hello.txt\n", server.port());
  std::printf("  curl http://127.0.0.1:%u/demo/hello.txt\n", server.port());
  std::printf("  curl http://127.0.0.1:%u/demo\n", server.port());
  std::printf("  curl -X DELETE http://127.0.0.1:%u/demo/hello.txt\n",
              server.port());
  if (!flags.anonymous) {
    std::printf("signed access only; demo keys: %s/%s and %s/%s\n",
                acme.access_key_id.c_str(), acme.secret.c_str(),
                globex.access_key_id.c_str(), globex.secret.c_str());
  }
  std::printf("Ctrl-C for graceful shutdown\n");

  // 5. The sampling-period loop of §III-A, driven by the wall clock: close
  //    a period (drain log agents into per-object histories) every
  //    --sampling-period-s seconds, and run the periodic optimization
  //    procedure (Fig. 7) every --optimize-every periods.  Each shard
  //    closes and optimizes independently (in parallel on the pool);
  //    migrations commit via CAS-on-version, so one racing a concurrent
  //    PUT/DELETE of the same key aborts (counted in the per-round conflict
  //    counter) and the acked write always survives.
  common::SimTime last_period = WallClock();
  std::uint64_t periods = 0;
  std::uint64_t last_period_requests = 0;
  // The optimizer cadence starts at the flag and yields to the capacity
  // plan: under predicted peak load the optimizer backs off, in the trough
  // it runs every period.
  std::uint64_t optimize_cadence =
      flags.optimize_every_periods > 0
          ? static_cast<std::uint64_t>(flags.optimize_every_periods)
          : 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const common::SimTime now = WallClock();
    if (flags.sampling_period_s > 0 &&
        now - last_period >= flags.sampling_period_s) {
      last_period = now;
      engine.EndSamplingPeriod(now);
      ++periods;
      // Per-loop serving counters: how evenly SO_REUSEPORT spread the
      // connections, and each loop's write amplification (bytes/writev).
      const net::ServerStats serving = server.stats();
      {
        std::string per_loop;
        for (std::size_t i = 0; i < serving.loops.size(); ++i) {
          const net::LoopStats& loop = serving.loops[i];
          per_loop += " loop" + std::to_string(i) + "[accepted=" +
                      std::to_string(loop.connections_accepted) +
                      " bytes_written=" + std::to_string(loop.bytes_written) +
                      " writev_calls=" + std::to_string(loop.writev_calls) +
                      "]";
        }
        SCALIA_LOG(common::LogLevel::kInfo, "scalia_server")
            << "serving: requests=" << serving.requests_served
            << " writev_calls=" << serving.writev_calls << per_loop;
      }
      // Predictive scaling: feed the period's observed request rate, and
      // when the forecast moves the plan past its hysteresis band resize
      // the chunk-I/O pool + cache budget and retune the optimizer cadence
      // before the load arrives.
      {
        const double observed_rate =
            static_cast<double>(serving.requests_served -
                                last_period_requests) /
            static_cast<double>(flags.sampling_period_s);
        last_period_requests = serving.requests_served;
        if (capacity_controller.OnPeriodClose(observed_rate)) {
          const capacity::CapacityPlan& plan = capacity_controller.plan();
          pool.Resize(plan.pool_threads);
          engine.SetCacheCapacity(plan.cache_bytes);
          if (flags.optimize_every_periods > 0) {
            optimize_cadence = plan.optimize_every;
          }
          SCALIA_LOG(common::LogLevel::kInfo, "scalia_server")
              << "capacity: rate=" << observed_rate << " req/s forecast="
              << capacity_controller.predictor().forecast()
              << " -> pool_threads=" << plan.pool_threads
              << " cache_mib=" << plan.cache_bytes / common::kMiB
              << " optimize_every=" << plan.optimize_every
              << " (scale event " << capacity_controller.scale_events()
              << ")";
        }
      }
      // Admission-control visibility: what was shed this period and from
      // whom (only meaningful — and only logged — with --slo-p99-ms).
      if (admission.enabled()) {
        const capacity::AdmissionStats shed_stats = admission.Stats();
        std::string by_tenant;
        for (const auto& [tenant, count] : admission.ShedByTenant()) {
          by_tenant += " " + tenant + "=" + std::to_string(count);
        }
        SCALIA_LOG(common::LogLevel::kInfo, "scalia_server")
            << "admission: shed_level=" << shed_stats.shed_level
            << " shed=" << shed_stats.shed
            << " throttled_429=" << serving.requests_throttled
            << " probes=" << shed_stats.probes
            << " max_p99_us=" << shed_stats.max_p99_us
            << " by_tenant=[" << by_tenant << " ]";
      }
      // Degraded-read counters + injected-world health: how often reads
      // had to fan out past a dark provider, and who is dark/quarantined
      // right now (only meaningful — and only logged — under --chaos).
      if (injector) {
        const auto counters = engine.ReadCounters();
        std::string dark;
        for (const auto& id : injector->UnhealthyProviders(now)) {
          dark += dark.empty() ? id : ", " + id;
        }
        std::string quarantined;
        for (const auto& health : injector->Health()) {
          if (health.quarantined) {
            quarantined += quarantined.empty() ? health.id : ", " + health.id;
          }
        }
        SCALIA_LOG(common::LogLevel::kInfo, "scalia_server")
            << "chaos: degraded_reads=" << counters.degraded_reads
            << " reconstructions=" << counters.reconstructions
            << " faults_injected=" << injector->FaultsInjected()
            << " dark=[" << dark << "] quarantined=[" << quarantined << "]";
      }
      if (optimize_cadence > 0 && periods % optimize_cadence == 0) {
        const auto report = engine.RunOptimizationProcedure(now);
        SCALIA_LOG(common::LogLevel::kInfo, "scalia_server")
            << "optimization round: " << report.candidates << " candidates, "
            << report.recomputations << " recomputations, "
            << report.migrations << " migrations, "
            << report.conflicts << " CAS conflicts, "
            << report.errors << " errors";
      }
      // Checkpoint on the period boundary (the quiesce-ish point), on its
      // own cadence — the WAL must not grow unboundedly just because the
      // optimizer is off.
      if (durability) {
        auto written = durability->MaybeCheckpoint(now);
        if (!written.ok()) {
          SCALIA_LOG(common::LogLevel::kWarning, "scalia_server")
              << "checkpoint failed: " << written.status().ToString();
        }
      }
    }
  }

  std::printf("\nshutting down...\n");
  server.Stop();
  const net::ServerStats stats = server.stats();
  std::printf("served %llu requests on %llu connections "
              "(%llu protocol errors, %llu idle timeouts, "
              "%.1f MiB in, %.1f MiB out)\n",
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.protocol_errors),
              static_cast<unsigned long long>(stats.connections_timed_out),
              static_cast<double>(stats.bytes_in) / (1024.0 * 1024.0),
              static_cast<double>(stats.bytes_out) / (1024.0 * 1024.0));

  // 6. The monthly statement: what each provider would have charged.  The
  //    specs come from the registry *at `now`* rather than the static
  //    catalog, so a price shock active under --chaos reaches the invoice —
  //    billing observes the same degraded world the engine served in.
  const common::SimTime now = WallClock();
  billing::Ledger ledger;
  for (const auto& spec : catalog) {
    auto* store = registry.Find(spec.id);
    if (store == nullptr) continue;
    ledger.Accrue(spec.id, store->meter().Totals(now));
  }
  const billing::Statement statement = ledger.Cut(now, registry.Specs(now));
  std::printf("%s", statement.ToString().c_str());
  return 0;
}
