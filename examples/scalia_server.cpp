// scalia_server: the reproduction as a runnable network service.
//
// The successor of the in-process s3_gateway_demo: a Scalia cluster behind
// the real TCP serving loop (net::HttpServer), speaking the §III-A
// "Amazon S3-like interface" over HTTP/1.1 to any client.  Anonymous
// requests are accepted by default (the public-bucket mode) so plain curl
// works; signed multi-tenant access uses the demo keys printed at startup.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/scalia_server --port 8080
//
// Then, from another shell:
//   curl -X PUT  --data-binary @photo.gif http://127.0.0.1:8080/pictures/photo.gif
//   curl         http://127.0.0.1:8080/pictures/photo.gif -o copy.gif
//   curl         http://127.0.0.1:8080/pictures            # list keys
//   curl -X DELETE http://127.0.0.1:8080/pictures/photo.gif
//
// SIGINT / SIGTERM shut down gracefully: in-flight requests finish, the
// serving statistics are printed, and the per-provider invoice is cut.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>

#include "api/auth.h"
#include "api/gateway.h"
#include "billing/invoice.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "core/cluster.h"
#include "net/server/server.h"
#include "provider/spec.h"

using namespace scalia;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

struct Flags {
  std::uint16_t port = 8080;
  std::string bind = "127.0.0.1";
  std::size_t threads = std::thread::hardware_concurrency();
  std::size_t max_body_mb = 64;
  std::size_t max_connections = 1024;
  long idle_timeout_s = 60;     // 0 disables the read/idle deadline
  long sampling_period_s = 60;  // 0 disables the maintenance loop
  // Periods per optimization run.  On by default: migrations commit via
  // CAS-on-version, so a migration racing a concurrent PUT of the same key
  // aborts and the acked write always survives (0 turns adaptation off).
  long optimize_every_periods = 1;
  bool anonymous = true;
};

void Usage(const char* argv0) {
  std::printf(
      "usage: %s [flags]\n"
      "  --port N               TCP port (default 8080; 0 = ephemeral)\n"
      "  --bind ADDR            bind address (default 127.0.0.1;\n"
      "                         0.0.0.0 to serve beyond loopback)\n"
      "  --threads N            handler thread-pool size (default: cores)\n"
      "  --max-body-mb N        reject larger uploads with 413 (default 64)\n"
      "  --max-connections N    concurrent connection cap (default 1024)\n"
      "  --idle-timeout-s N     read/idle deadline: connections silent for\n"
      "                         N seconds answer 408 and close (default 60;\n"
      "                         0 disables)\n"
      "  --sampling-period-s N  seconds between sampling-period closes;\n"
      "                         0 disables (default 60)\n"
      "  --optimize-every N     run the placement optimizer every N periods\n"
      "                         (default 1; 0 = off). Migrations commit via\n"
      "                         CAS-on-version, so a concurrent PUT always\n"
      "                         survives a racing migration\n"
      "  --no-anonymous         require signed requests (demo keys below)\n"
      "  --help                 this text\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](long* out) {
      if (i + 1 >= argc) return false;
      *out = std::atol(argv[++i]);
      return true;
    };
    long value = 0;
    if (arg == "--port" && next_value(&value)) {
      if (value < 0 || value > 65535) {
        std::fprintf(stderr, "--port out of range (0..65535): %ld\n", value);
        return false;
      }
      flags->port = static_cast<std::uint16_t>(value);
    } else if (arg == "--bind" && i + 1 < argc) {
      flags->bind = argv[++i];
    } else if (arg == "--threads" && next_value(&value) && value > 0) {
      flags->threads = static_cast<std::size_t>(value);
    } else if (arg == "--max-body-mb" && next_value(&value) && value > 0) {
      flags->max_body_mb = static_cast<std::size_t>(value);
    } else if (arg == "--max-connections" && next_value(&value) && value > 0) {
      flags->max_connections = static_cast<std::size_t>(value);
    } else if (arg == "--idle-timeout-s" && next_value(&value) && value >= 0) {
      flags->idle_timeout_s = value;
    } else if (arg == "--sampling-period-s" && next_value(&value)) {
      flags->sampling_period_s = value;
    } else if (arg == "--optimize-every" && next_value(&value) && value >= 0) {
      flags->optimize_every_periods = value;
    } else if (arg == "--no-anonymous") {
      flags->anonymous = false;
    } else if (arg == "--help") {
      Usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

common::SimTime WallClock() {
  return static_cast<common::SimTime>(::time(nullptr));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  // 1. The cluster: engines + cache + metadata store + optimizer (Fig. 4).
  //    One datacenter: all engines share one metadata replica, so every
  //    request sees each write immediately.  (Multi-DC deployments
  //    replicate lazily — per sampling period — which would make a HEAD
  //    routed to another DC miss a just-PUT object; that mode lives in the
  //    cluster tests and the simulator.)
  core::ClusterConfig cluster_config;
  cluster_config.num_datacenters = 1;
  cluster_config.engines_per_dc = 4;
  cluster_config.engine.default_rule =
      core::StorageRule{.name = "default",
                        .durability = 0.999999,
                        .availability = 0.9999,
                        .allowed_zones = provider::ZoneSet::All(),
                        .lockin = 0.5,
                        .ttl_hint = std::nullopt};
  core::ScaliaCluster cluster(cluster_config);
  const auto catalog = provider::PaperCatalog();
  for (auto spec : catalog) {
    if (auto s = cluster.registry().Register(std::move(spec)); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 2. The gateway: anonymous public-bucket access for curl, plus demo
  //    tenants with HMAC-signed requests (§III-E applied to the client API).
  api::Authenticator auth;
  const api::Credentials acme{.access_key_id = "ACME-KEY-1",
                              .secret = "acme-secret",
                              .tenant = "acme"};
  const api::Credentials globex{.access_key_id = "GLOBEX-KEY-1",
                                .secret = "globex-secret",
                                .tenant = "globex"};
  auth.AddCredentials(acme);
  auth.AddCredentials(globex);
  if (flags.anonymous) auth.AllowAnonymous("anonymous");
  api::S3Gateway gateway(
      &auth, [&]() -> core::Engine& { return cluster.RouteRequest(); });
  for (auto& rule : core::PaperRules()) gateway.RegisterRule(rule);

  // 3. The serving loop: epoll front door on a shared thread pool.
  common::ThreadPool pool(flags.threads);
  net::ServerConfig server_config;
  server_config.bind_address = flags.bind;
  server_config.port = flags.port;
  server_config.max_connections = flags.max_connections;
  server_config.idle_timeout_ms = flags.idle_timeout_s * 1000;
  server_config.limits.max_body_bytes = flags.max_body_mb * 1024 * 1024;
  server_config.pool = &pool;
  server_config.clock = WallClock;
  net::HttpServer server(
      std::move(server_config),
      [&gateway](common::SimTime now, const api::HttpRequest& request) {
        return gateway.Handle(now, request);
      });
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::printf("scalia_server listening on %s:%u (%zu handler threads)\n",
              flags.bind.c_str(), server.port(), pool.num_threads());
  std::printf("try:\n");
  std::printf("  curl -X PUT --data-binary 'hello scalia' "
              "http://127.0.0.1:%u/demo/hello.txt\n", server.port());
  std::printf("  curl http://127.0.0.1:%u/demo/hello.txt\n", server.port());
  std::printf("  curl http://127.0.0.1:%u/demo\n", server.port());
  std::printf("  curl -X DELETE http://127.0.0.1:%u/demo/hello.txt\n",
              server.port());
  if (!flags.anonymous) {
    std::printf("signed access only; demo keys: %s/%s and %s/%s\n",
                acme.access_key_id.c_str(), acme.secret.c_str(),
                globex.access_key_id.c_str(), globex.secret.c_str());
  }
  std::printf("Ctrl-C for graceful shutdown\n");

  // 4. The sampling-period loop of §III-A, driven by the wall clock: close
  //    a period (drain log agents into per-object histories) every
  //    --sampling-period-s seconds, and run the periodic optimization
  //    procedure (Fig. 7) every --optimize-every periods.  Migrations
  //    commit via CAS-on-version: one racing a concurrent PUT/DELETE of
  //    the same key aborts (counted in the per-round conflict counter) and
  //    the acked write always survives, so adaptation is on by default.
  common::SimTime last_period = WallClock();
  std::uint64_t periods = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const common::SimTime now = WallClock();
    if (flags.sampling_period_s > 0 &&
        now - last_period >= flags.sampling_period_s) {
      last_period = now;
      cluster.EndSamplingPeriod(now);
      ++periods;
      if (flags.optimize_every_periods > 0 &&
          periods % static_cast<std::uint64_t>(
                        flags.optimize_every_periods) == 0) {
        const auto report = cluster.RunOptimizationProcedure(now);
        SCALIA_LOG(common::LogLevel::kInfo, "scalia_server")
            << "optimization round: " << report.candidates << " candidates, "
            << report.recomputations << " recomputations, "
            << report.migrations << " migrations, "
            << report.conflicts << " CAS conflicts, "
            << report.errors << " errors";
      }
    }
  }

  std::printf("\nshutting down...\n");
  server.Stop();
  const net::ServerStats stats = server.stats();
  std::printf("served %llu requests on %llu connections "
              "(%llu protocol errors, %llu idle timeouts, "
              "%.1f MiB in, %.1f MiB out)\n",
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.protocol_errors),
              static_cast<unsigned long long>(stats.connections_timed_out),
              static_cast<double>(stats.bytes_in) / (1024.0 * 1024.0),
              static_cast<double>(stats.bytes_out) / (1024.0 * 1024.0));

  // 5. The monthly statement: what each provider would have charged.
  const common::SimTime now = WallClock();
  billing::Ledger ledger;
  for (const auto& spec : catalog) {
    auto* store = cluster.registry().Find(spec.id);
    if (store == nullptr) continue;
    ledger.Accrue(spec.id, store->meter().Totals(now));
  }
  const billing::Statement statement = ledger.Cut(now, catalog);
  std::printf("%s", statement.ToString().c_str());
  return 0;
}
