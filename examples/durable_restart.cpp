// Durable restart: kill the engine, keep the adaptive state.
//
// Demonstrates the durability subsystem end-to-end: an engine journals its
// metadata mutations to a write-ahead log, checkpoints at a decision-period
// boundary, keeps serving, and then "dies".  A second incarnation recovers
// latest-checkpoint-plus-WAL-replay and carries on warm — same objects,
// same access histories, same class statistics — instead of resetting the
// scheme to cold as an in-memory deployment would.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/durable_restart [state-dir]    (default: a temp dir)
#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/engine.h"
#include "durability/manager.h"
#include "provider/spec.h"

using namespace scalia;
using common::kHour;

namespace {

/// One engine incarnation over a shared provider registry + durability dir.
struct Incarnation {
  Incarnation(provider::ProviderRegistry* registry, const std::string& dir)
      : db(1), stats(&db, 0) {
    durability::DurabilityConfig config;
    config.dir = dir;
    config.checkpoint_every = 4 * kHour;
    auto opened = durability::DurabilityManager::Open(
        config, {.db = &db, .dc = 0, .stats = &stats, .registry = nullptr});
    if (!opened.ok()) {
      std::fprintf(stderr, "durability: %s\n",
                   opened.status().ToString().c_str());
      std::exit(1);
    }
    manager = std::move(*opened);
    engine = std::make_unique<core::Engine>(
        "e0", registry, &db, 0, nullptr, &stats, nullptr, nullptr,
        core::EngineConfig{}, /*seed=*/42);
    engine->AttachJournal(manager->journal());
  }

  store::ReplicatedStore db;
  stats::StatsDb stats;
  std::unique_ptr<durability::DurabilityManager> manager;
  std::unique_ptr<core::Engine> engine;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "scalia-durable")
                     .string();
  std::filesystem::remove_all(dir);

  provider::ProviderRegistry registry;
  for (auto& spec : provider::PaperCatalog()) {
    (void)registry.Register(std::move(spec));
  }

  // ---- First incarnation: write, checkpoint, keep writing, die. --------
  {
    Incarnation first(&registry, dir);
    auto report = first.manager->Recover(0);
    std::printf("incarnation 1: %s\n",
                report.ok() && !report->checkpoint_loaded
                    ? "cold start (empty directory)"
                    : "unexpected state");

    (void)first.engine->Put(0, "photos", "cat.png", std::string(40960, 'c'),
                            "image/png");
    (void)first.engine->Put(kHour, "photos", "dog.png",
                            std::string(20480, 'd'), "image/png");
    (void)first.manager->Checkpoint(4 * kHour);  // decision-period boundary
    (void)first.engine->Put(5 * kHour, "docs", "notes.txt",
                            std::string(8192, 'n'), "text/plain");
    (void)first.engine->Delete(6 * kHour, "photos", "dog.png");
    std::printf("incarnation 1: 3 puts + 1 delete journaled, "
                "checkpoint at hour 4, dying now\n");
    // Scope exit = process death. (A real crash can also tear the final
    // WAL record; replay detects and discards the torn tail.)
  }

  // ---- Second incarnation: recover and verify. -------------------------
  Incarnation second(&registry, dir);
  auto report = second.manager->Recover(7 * kHour);
  if (!report.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "incarnation 2: recovered from %s\n"
      "  checkpoint age: %s, WAL records replayed: %llu, torn bytes: %llu\n",
      report->checkpoint_path.c_str(),
      common::FormatSimTime(report->checkpoint_age).c_str(),
      static_cast<unsigned long long>(report->records_replayed),
      static_cast<unsigned long long>(report->wal_bytes_discarded));

  const auto cat = second.engine->Get(7 * kHour, "photos", "cat.png");
  const auto notes = second.engine->Get(7 * kHour, "docs", "notes.txt");
  const auto dog = second.engine->Get(7 * kHour, "photos", "dog.png");
  std::printf("  cat.png: %s (%zu bytes)\n",
              cat.ok() ? "restored" : cat.status().ToString().c_str(),
              cat.ok() ? cat->size() : 0);
  std::printf("  notes.txt: %s (journal-only, was after the checkpoint)\n",
              notes.ok() ? "restored" : notes.status().ToString().c_str());
  std::printf("  dog.png: %s (tombstone replayed)\n",
              dog.ok() ? "UNEXPECTEDLY ALIVE" : dog.status().ToString().c_str());
  std::printf("  objects tracked by statistics db: %zu\n",
              second.stats.ObjectCount());

  const bool ok = cat.ok() && notes.ok() && !dog.ok() &&
                  second.stats.ObjectCount() == 2;
  std::printf("%s\n", ok ? "durable restart OK" : "durable restart FAILED");
  return ok ? 0 : 1;
}
