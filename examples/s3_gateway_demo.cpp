// S3-compatible gateway demo: two tenants drive a Scalia cluster through
// the signed HTTP interface (§III-A's "Amazon S3-like interface"), with a
// per-provider invoice at the end (§II-B "paying a fair price").
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/s3_gateway_demo
#include <cstdio>

#include "api/gateway.h"
#include "billing/invoice.h"
#include "core/cluster.h"
#include "provider/spec.h"

using namespace scalia;

namespace {

/// Signs and serves one request; prints the outcome line.
api::HttpResponse Call(api::S3Gateway& gateway, const api::RequestSigner& who,
                       common::SimTime now, api::HttpMethod method,
                       const std::string& target, std::string body = {},
                       const std::string& mime = {}) {
  api::HttpRequest request;
  request.method = method;
  request.path = target;
  request.body = std::move(body);
  if (!mime.empty()) request.headers.Set("content-type", mime);
  who.Sign(&request, now);
  api::HttpResponse response = gateway.Handle(now, request);
  std::printf("  %-6s %-28s -> %d %s\n",
              std::string(api::MethodName(method)).c_str(), target.c_str(),
              response.status,
              std::string(api::StatusText(response.status)).c_str());
  return response;
}

}  // namespace

int main() {
  // 1. The cluster: engines + cache + metadata store + optimizer (Fig. 4).
  core::ClusterConfig config;
  config.engine.default_rule =
      core::StorageRule{.name = "default",
                        .durability = 0.999999,
                        .availability = 0.9999,
                        .allowed_zones = provider::ZoneSet::All(),
                        .lockin = 0.5,
                        .ttl_hint = std::nullopt};
  core::ScaliaCluster cluster(config);
  const auto catalog = provider::PaperCatalog();
  for (auto spec : catalog) {
    if (auto s = cluster.registry().Register(std::move(spec)); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 2. The gateway: access keys per tenant, HMAC-signed requests with a
  //    replay window (the §III-E scheme applied to the client API).
  api::Authenticator auth;
  const api::Credentials acme{.access_key_id = "ACME-KEY-1",
                              .secret = "acme-secret",
                              .tenant = "acme"};
  const api::Credentials globex{.access_key_id = "GLOBEX-KEY-1",
                                .secret = "globex-secret",
                                .tenant = "globex"};
  auth.AddCredentials(acme);
  auth.AddCredentials(globex);
  api::S3Gateway gateway(
      &auth, [&]() -> core::Engine& { return cluster.RouteRequest(); });
  // Named rules clients can select per object (Fig. 2).
  for (auto& rule : core::PaperRules()) gateway.RegisterRule(rule);

  const api::RequestSigner as_acme(acme);
  const api::RequestSigner as_globex(globex);
  common::SimTime now = 0;

  std::printf("== acme uploads a gallery ==\n");
  Call(gateway, as_acme, now, api::HttpMethod::kPut, "/pictures/holiday.gif",
       std::string(250 * common::kKB, 'g'), "image/gif");
  Call(gateway, as_acme, now, api::HttpMethod::kPut, "/pictures/logo.png",
       std::string(40 * common::kKB, 'p'), "image/png");

  std::printf("\n== globex stores a backup under rule2 (EU-only) ==\n");
  {
    api::HttpRequest request;
    request.method = api::HttpMethod::kPut;
    request.path = "/vault/db-dump.tar";
    request.body = std::string(800 * common::kKB, 'b');
    request.headers.Set("content-type", "application/x-tar");
    request.headers.Set("x-scalia-rule", "rule2");
    as_globex.Sign(&request, now);
    const auto response = gateway.Handle(now, request);
    std::printf("  PUT    /vault/db-dump.tar (rule2)  -> %d\n",
                response.status);
  }

  now += common::kHour;
  std::printf("\n== reads, listing, tenant isolation ==\n");
  Call(gateway, as_acme, now, api::HttpMethod::kGet, "/pictures/holiday.gif");
  Call(gateway, as_acme, now, api::HttpMethod::kHead, "/pictures/logo.png");
  Call(gateway, as_acme, now, api::HttpMethod::kGet, "/pictures");
  // globex cannot see acme's container: same path, distinct namespace.
  Call(gateway, as_globex, now, api::HttpMethod::kGet,
       "/pictures/holiday.gif");

  std::printf("\n== a tampered signature is rejected ==\n");
  {
    api::HttpRequest forged;
    forged.method = api::HttpMethod::kGet;
    forged.path = "/vault/db-dump.tar";
    as_globex.Sign(&forged, now);
    forged.path = "/vault/other.tar";  // body of the theft
    const auto response = gateway.Handle(now, forged);
    std::printf("  GET    /vault/other.tar (forged)   -> %d %s\n",
                response.status, response.body.c_str());
  }

  // 3. The monthly statement: what each provider actually charged.
  std::printf("\n== provider invoices ==\n");
  billing::Ledger ledger;
  for (const auto& spec : catalog) {
    auto* store = cluster.registry().Find(spec.id);
    if (store == nullptr) continue;
    ledger.Accrue(spec.id, store->meter().Totals(now));
  }
  const billing::Statement statement = ledger.Cut(now, catalog);
  std::printf("%s", statement.ToString().c_str());
  return 0;
}
