// Trace replay: drive the cost simulator with your own access log.
//
// Reads a CSV trace (object,size_bytes,mime,created_period,period,reads),
// replays it under Scalia, the 26 static sets and the ideal oracle, and
// prints the over-cost table — the same pipeline behind Figs. 14/16, on
// your data.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trace_replay [trace.csv]
// With no argument, a small built-in demo trace is used.
#include <cstdio>
#include <sstream>

#include "common/thread_pool.h"
#include "simx/overcost.h"
#include "workload/trace.h"

using namespace scalia;

namespace {

// A three-object demo: a hot logo, a warm photo, a cold archive.
constexpr const char* kDemoTrace = R"(# object,size_bytes,mime,created_period,period,reads
logo.png,40000,image/png,0,0,120
logo.png,40000,image/png,0,1,140
logo.png,40000,image/png,0,2,180
logo.png,40000,image/png,0,3,90
logo.png,40000,image/png,0,4,60
photo.jpg,250000,image/jpeg,1,1,8
photo.jpg,250000,image/jpeg,1,2,12
photo.jpg,250000,image/jpeg,1,4,6
archive.tar,40000000,application/x-tar,0,0,0
archive.tar,40000000,application/x-tar,0,5,1
)";

}  // namespace

int main(int argc, char** argv) {
  const core::StorageRule rule{.name = "trace",
                               .durability = 0.99999,
                               .availability = 0.9999,
                               .allowed_zones = provider::ZoneSet::All(),
                               .lockin = 1.0,
                               .ttl_hint = std::nullopt};

  common::Result<simx::ScenarioSpec> scenario = [&] {
    if (argc > 1) return workload::LoadTraceFile(argv[1], rule);
    std::istringstream demo(kDemoTrace);
    return workload::LoadTrace(demo, rule);
  }();
  if (!scenario.ok()) {
    std::fprintf(stderr, "trace error: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  scenario->name = argc > 1 ? argv[1] : "demo-trace";
  std::printf("trace: %s — %zu objects over %zu sampling periods\n",
              scenario->name.c_str(), scenario->objects.size(),
              scenario->num_periods);

  const simx::SimEnvironment env = simx::SimEnvironment::Paper();
  simx::SimPolicyConfig config;
  const simx::CostSimulator simulator(config, env);

  const auto table = simx::ComputeOverCost(
      simulator, *scenario, simx::Fig13Order(provider::PaperCatalog()),
      &common::ThreadPool::Shared());
  std::printf("%s", simx::FormatOverCostTable(table).c_str());

  std::printf("\nScalia placement events:\n");
  for (const auto& e : table.scalia.events) {
    std::printf("  period %-4zu %-16s %-40s (%s)\n", e.period,
                e.object.c_str(), e.label.c_str(), e.reason.c_str());
  }
  return 0;
}
