// Private storage resources (§III-E): mixing a corporate NAS with public
// clouds.
//
// A capacity-limited on-premises resource is registered alongside the
// public catalog.  Requests to the private resource travel through its
// authenticated S3-compatible web service (HMAC-signed, replay-protected);
// the placement engine fills local capacity first because it is cheap, and
// overflows to public providers when the NAS is full.
#include <cstdio>

#include "core/placement.h"
#include "provider/private_resource.h"
#include "provider/registry.h"
#include "provider/spec.h"

using namespace scalia;

int main() {
  // The corporate NAS: 100 MB capacity, negligible prices (electricity),
  // registered with a description of its properties (§III-E).
  provider::ProviderSpec nas;
  nas.id = "corp-nas";
  nas.description = "on-prem NAS behind the private web service";
  nas.sla = {.durability = 0.99999, .availability = 0.995};
  nas.zones = {provider::Zone::kOnPrem};
  nas.pricing = {.storage_gb_month = 0.005,
                 .bw_in_gb = 0.0,
                 .bw_out_gb = 0.0,
                 .ops_per_1000 = 0.0};
  nas.capacity = 100 * common::kMB;

  // The standalone web service guarding the NAS, and a client signer
  // holding the private token.
  provider::PrivateResourceService service(nas, "corp-private-token");
  provider::RequestSigner signer("corp-private-token");

  std::printf("== authenticated access to the private resource ==\n");
  auto put = signer.Sign("PUT", "ledger/2026-06.db",
                         std::string(2 * common::kMB, 'L'), 100);
  std::printf("signed PUT        : %s\n",
              service.Handle(put, 100, nullptr).ToString().c_str());
  auto replay = put;  // an attacker replays the captured request
  std::printf("replayed PUT      : %s\n",
              service.Handle(replay, 120, nullptr).ToString().c_str());
  provider::RequestSigner forger("wrong-token");
  auto forged = forger.Sign("GET", "ledger/2026-06.db", "", 130);
  std::printf("forged GET        : %s\n",
              service.Handle(forged, 130, nullptr).ToString().c_str());
  std::string body;
  auto get = signer.Sign("GET", "ledger/2026-06.db", "", 140);
  auto got = service.Handle(get, 140, &body);
  std::printf("legitimate GET    : %s (%zu bytes)\n", got.ToString().c_str(),
              body.size());

  // == placement across the mixed market ==
  provider::ProviderRegistry registry;
  (void)registry.Register(nas);
  for (auto& spec : provider::PaperCatalog()) {
    (void)registry.Register(std::move(spec));
  }

  core::PlacementSearch search(core::PriceModel{});
  core::PlacementRequest request;
  request.rule = core::StorageRule{.name = "dept-archive",
                                   .durability = 0.99999,
                                   .availability = 0.999,
                                   .allowed_zones = provider::ZoneSet::All(),
                                   .lockin = 0.5,
                                   .ttl_hint = std::nullopt};
  request.object_size = 30 * common::kMB;
  request.per_period.storage_gb = common::ToGB(request.object_size);

  std::printf("\n== placement with local capacity available ==\n");
  auto specs = registry.Specs();
  std::vector<common::Bytes> free_capacity;
  for (const auto& spec : specs) {
    const auto* store = registry.Find(spec.id);
    free_capacity.push_back(
        spec.capacity ? *spec.capacity - store->StoredBytes()
                      : std::numeric_limits<common::Bytes>::max());
  }
  request.free_capacity = free_capacity;
  auto with_nas = search.FindBest(specs, request);
  std::printf("chosen set: %s (cost %s / decision period)\n",
              with_nas.Label().c_str(),
              with_nas.expected_cost.ToString(6).c_str());

  std::printf("\n== placement when the NAS is full ==\n");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].id == "corp-nas") free_capacity[i] = 0;
  }
  request.free_capacity = free_capacity;
  auto overflow = search.FindBest(specs, request);
  std::printf("chosen set: %s (cost %s / decision period)\n",
              overflow.Label().c_str(),
              overflow.expected_cost.ToString(6).c_str());
  std::printf("\nthe NAS %s part of the overflow placement\n",
              overflow.Label().find("corp-nas") == std::string::npos
                  ? "is no longer"
                  : "is still");
  return 0;
}
