// Quickstart: stand up a Scalia cluster, store an object across clouds,
// read it back, survive a provider outage, and watch the optimizer work.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/cluster.h"
#include "provider/spec.h"

using namespace scalia;

int main() {
  // 1. A two-datacenter Scalia deployment (Fig. 4): stateless engines, a
  //    cache layer per datacenter, a replicated metadata store, and the
  //    periodic optimizer.
  core::ClusterConfig config;
  config.num_datacenters = 2;
  config.engines_per_dc = 2;
  config.engine.default_rule =
      core::StorageRule{.name = "default",
                        .durability = 0.999999,   // six nines
                        .availability = 0.9999,   // four nines
                        .allowed_zones = provider::ZoneSet::All(),
                        .lockin = 0.5,            // at least 2 providers
                        .ttl_hint = std::nullopt};
  core::ScaliaCluster cluster(config);

  // 2. Register the five public providers of the paper (Fig. 3).
  for (auto& spec : provider::PaperCatalog()) {
    if (auto s = cluster.registry().Register(std::move(spec)); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 3. Store an object through any engine — Scalia picks the cheapest
  //    provider set that satisfies the rule, erasure-codes the object and
  //    spreads the chunks.
  const std::string payload(512 * common::kKB, 'S');
  common::SimTime now = 0;
  auto status = cluster.RouteRequest().Put(now, "photos", "vacation.jpg",
                                           payload, "image/jpeg");
  std::printf("put photos/vacation.jpg: %s\n", status.ToString().c_str());
  cluster.metadata_store().SyncAll();

  auto meta = cluster.EngineAt(0, 0).LoadMetadata(
      now, core::MakeRowKey("photos", "vacation.jpg"));
  if (meta.ok()) {
    std::printf("placement: m=%d of n=%zu chunks —", meta->m, meta->n());
    for (const auto& stripe : meta->stripes) {
      std::printf(" %s", stripe.provider.c_str());
    }
    std::printf("\n");
  }

  // 4. Read it back through a *different* datacenter: engines are
  //    stateless and the metadata is replicated.
  now += common::kHour;
  auto data = cluster.EngineAt(1, 1).Get(now, "photos", "vacation.jpg");
  std::printf("get from dc1: %s (%zu bytes, %s)\n",
              data.ok() ? "OK" : data.status().ToString().c_str(),
              data.ok() ? data->size() : 0,
              data.ok() && *data == payload ? "intact" : "CORRUPT");

  // 5. Knock a stripe provider out; reads keep working from any m of the
  //    n chunks (§III-D.3).
  const auto faulty = meta->stripes[0].provider;
  cluster.registry().Find(faulty)->failures().AddOutage(
      now, now + 24 * common::kHour);
  now += common::kHour;
  auto during_outage =
      cluster.EngineAt(0, 1).Get(now, "photos", "vacation.jpg");
  std::printf("get while %s is down: %s\n", faulty.c_str(),
              during_outage.ok() ? "OK" : during_outage.status().ToString().c_str());

  // 6. Generate read traffic and close sampling periods; the periodic
  //    optimizer (leader + shard fan-out, Fig. 7) recomputes placements
  //    only for objects whose access pattern changed.
  for (int period = 0; period < 6; ++period) {
    now += common::kHour;
    for (int r = 0; r < 30 * (period + 1); ++r) {
      (void)cluster.RouteRequest().Get(now, "photos", "vacation.jpg");
    }
    cluster.EndSamplingPeriod(now);
    const auto report = cluster.RunOptimizationProcedure(now);
    std::printf(
        "optimization @h%d: leader=%s candidates=%zu trend_changes=%zu "
        "migrations=%zu\n",
        period + 2, report.leader.c_str(), report.candidates,
        report.trend_changes, report.migrations);
  }

  const auto cache_stats = cluster.CacheStats();
  std::printf("cache: %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              cache_stats.HitRate() * 100.0);
  std::printf("done.\n");
  return 0;
}
