#include "store/replicated_store.h"

namespace scalia::store {

ReplicatedStore::ReplicatedStore(std::size_t num_datacenters)
    : replicas_(num_datacenters) {}

void ReplicatedStore::SetDatacenterUp(ReplicaId dc, bool up) {
  common::MutexLock lock(mu_);
  replicas_.at(dc).up = up;
}

bool ReplicatedStore::IsDatacenterUp(ReplicaId dc) const {
  common::MutexLock lock(mu_);
  return replicas_.at(dc).up;
}

KvTable& ReplicatedStore::TableRef(Replica& r, const std::string& table) {
  auto it = r.tables.find(table);
  if (it == r.tables.end()) {
    it = r.tables.emplace(table, std::make_unique<KvTable>()).first;
  }
  return *it->second;
}

void ReplicatedStore::EnqueueReplication(ReplicaId source,
                                         const std::string& table,
                                         const std::string& key,
                                         const Version& v) {
  for (ReplicaId dc = 0; dc < replicas_.size(); ++dc) {
    if (dc == source) continue;
    queue_.push_back(ReplicationRecord{dc, table, key, v});
  }
}

common::Result<WriteOutcome> ReplicatedStore::Put(ReplicaId dc,
                                                  const std::string& table,
                                                  const std::string& key,
                                                  std::string value,
                                                  common::SimTime timestamp) {
  KvTable* t = nullptr;
  {
    common::MutexLock lock(mu_);
    Replica& r = replicas_.at(dc);
    if (!r.up) {
      return common::Status::Unavailable("datacenter " + std::to_string(dc) +
                                         " is down");
    }
    t = &TableRef(r, table);
  }
  WriteOutcome outcome = t->PutVersioned(key, std::move(value), dc, timestamp);
  // Replicate the version we just created (the committed copy is taken
  // under the shard lock, so a concurrent superseding write cannot hide it).
  common::MutexLock lock(mu_);
  EnqueueReplication(dc, table, key, outcome.committed);
  return outcome;
}

common::Result<WriteOutcome> ReplicatedStore::Delete(ReplicaId dc,
                                                     const std::string& table,
                                                     const std::string& key,
                                                     common::SimTime timestamp) {
  KvTable* t = nullptr;
  {
    common::MutexLock lock(mu_);
    Replica& r = replicas_.at(dc);
    if (!r.up) {
      return common::Status::Unavailable("datacenter " + std::to_string(dc) +
                                         " is down");
    }
    t = &TableRef(r, table);
  }
  WriteOutcome outcome = t->DeleteVersioned(key, dc, timestamp);
  common::MutexLock lock(mu_);
  EnqueueReplication(dc, table, key, outcome.committed);
  return outcome;
}

common::Status ReplicatedStore::ApplyVersion(ReplicaId dc,
                                             const std::string& table,
                                             const std::string& key,
                                             Version v) {
  KvTable* t = nullptr;
  {
    common::MutexLock lock(mu_);
    Replica& r = replicas_.at(dc);
    if (!r.up) {
      return common::Status::Unavailable("datacenter " + std::to_string(dc) +
                                         " is down");
    }
    t = &TableRef(r, table);
  }
  Version replicated = v;
  t->Apply(key, std::move(v));
  common::MutexLock lock(mu_);
  EnqueueReplication(dc, table, key, replicated);
  return common::Status::Ok();
}

common::Result<CasOutcome> ReplicatedStore::PutIfLatest(
    ReplicaId dc, const std::string& table, const std::string& key,
    std::string value, common::SimTime timestamp,
    const VectorClock& expected) {
  KvTable* t = nullptr;
  {
    common::MutexLock lock(mu_);
    Replica& r = replicas_.at(dc);
    if (!r.up) {
      return common::Status::Unavailable("datacenter " + std::to_string(dc) +
                                         " is down");
    }
    t = &TableRef(r, table);
  }
  CasOutcome outcome =
      t->PutIfLatest(key, std::move(value), dc, timestamp, expected);
  if (outcome.applied && outcome.committed) {
    common::MutexLock lock(mu_);
    EnqueueReplication(dc, table, key, *outcome.committed);
  }
  return outcome;
}

common::Result<ReadResult> ReplicatedStore::Get(ReplicaId dc,
                                                const std::string& table,
                                                const std::string& key) const {
  const KvTable* t = nullptr;
  {
    common::MutexLock lock(mu_);
    const Replica& r = replicas_.at(dc);
    if (!r.up) {
      return common::Status::Unavailable("datacenter " + std::to_string(dc) +
                                         " is down");
    }
    auto it = r.tables.find(table);
    if (it == r.tables.end()) {
      return common::Status::NotFound("table " + table + " empty at dc");
    }
    t = it->second.get();
  }
  auto result = t->Get(key);
  if (!result) return common::Status::NotFound("key " + key);
  return *result;
}

common::Result<std::vector<Version>> ReplicatedStore::Resolve(
    ReplicaId dc, const std::string& table, const std::string& key) {
  KvTable* t = nullptr;
  {
    common::MutexLock lock(mu_);
    Replica& r = replicas_.at(dc);
    if (!r.up) {
      return common::Status::Unavailable("datacenter down");
    }
    t = &TableRef(r, table);
  }
  std::vector<Version> losers = t->ResolveConflict(key);
  if (!losers.empty()) {
    // Replicate the resolution so every replica converges on the winner.
    auto winner = t->LiveVersions(key);
    common::MutexLock lock(mu_);
    for (const auto& v : winner) EnqueueReplication(dc, table, key, v);
  }
  return losers;
}

std::size_t ReplicatedStore::Pump(std::size_t max_records) {
  std::size_t applied = 0;
  while (applied < max_records) {
    ReplicationRecord rec;
    KvTable* t = nullptr;
    {
      common::MutexLock lock(mu_);
      // Find the first record whose target DC is up; leave records for down
      // DCs queued (they deliver after recovery — eventual consistency).
      auto it = queue_.begin();
      while (it != queue_.end() && !replicas_.at(it->target).up) ++it;
      if (it == queue_.end()) break;
      rec = std::move(*it);
      queue_.erase(it);
      t = &TableRef(replicas_.at(rec.target), rec.table);
    }
    t->Apply(rec.key, std::move(rec.version));
    ++applied;
  }
  return applied;
}

void ReplicatedStore::SyncAll() {
  while (true) {
    {
      common::MutexLock lock(mu_);
      bool any_deliverable = false;
      for (const auto& rec : queue_) {
        if (replicas_.at(rec.target).up) {
          any_deliverable = true;
          break;
        }
      }
      if (!any_deliverable) return;
    }
    Pump(1024);
  }
}

std::size_t ReplicatedStore::PendingReplication() const {
  common::MutexLock lock(mu_);
  return queue_.size();
}

const KvTable* ReplicatedStore::Table(ReplicaId dc,
                                      const std::string& table) const {
  common::MutexLock lock(mu_);
  const Replica& r = replicas_.at(dc);
  auto it = r.tables.find(table);
  return it == r.tables.end() ? nullptr : it->second.get();
}

KvTable* ReplicatedStore::MutableTable(ReplicaId dc, const std::string& table) {
  common::MutexLock lock(mu_);
  return &TableRef(replicas_.at(dc), table);
}

}  // namespace scalia::store
