// Vector clocks for MVCC conflict detection.
//
// §III-C.1: concurrent updates of the same metadata row in different
// datacenters must be *detected* (not silently lost); the database keeps
// both versions until conflict resolution picks the freshest (Fig. 10).
// Vector clocks provide the happens-before partial order: a version is
// replaced only by causally later writes, concurrent writes coexist.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace scalia::store {

/// Replicas (one per datacenter) are identified by small integers.
using ReplicaId = std::uint32_t;

enum class ClockOrder { kBefore, kAfter, kEqual, kConcurrent };

class VectorClock {
 public:
  VectorClock() = default;

  void Increment(ReplicaId r) { ++entries_[r]; }

  [[nodiscard]] std::uint64_t Get(ReplicaId r) const {
    auto it = entries_.find(r);
    return it == entries_.end() ? 0 : it->second;
  }

  /// Raw entries, for serialization (WAL records, checkpoints).
  [[nodiscard]] const std::map<ReplicaId, std::uint64_t>& entries()
      const noexcept {
    return entries_;
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Deserialization counterpart of entries(); zero values are dropped so
  /// decoded clocks compare equal to their originals.
  void Set(ReplicaId r, std::uint64_t v) {
    if (v > 0) entries_[r] = v;
  }

  /// Pointwise maximum, used after merging replicated state.
  void Merge(const VectorClock& o) {
    for (const auto& [r, v] : o.entries_) {
      auto& mine = entries_[r];
      if (v > mine) mine = v;
    }
  }

  /// Happens-before comparison.
  [[nodiscard]] ClockOrder Compare(const VectorClock& o) const {
    bool less = false, greater = false;
    auto a = entries_.begin();
    auto b = o.entries_.begin();
    while (a != entries_.end() || b != o.entries_.end()) {
      std::uint64_t va = 0, vb = 0;
      if (b == o.entries_.end() || (a != entries_.end() && a->first < b->first)) {
        va = a->second;
        ++a;
      } else if (a == entries_.end() || b->first < a->first) {
        vb = b->second;
        ++b;
      } else {
        va = a->second;
        vb = b->second;
        ++a;
        ++b;
      }
      if (va < vb) less = true;
      if (va > vb) greater = true;
    }
    if (less && greater) return ClockOrder::kConcurrent;
    if (less) return ClockOrder::kBefore;
    if (greater) return ClockOrder::kAfter;
    return ClockOrder::kEqual;
  }

  /// True when this clock causally dominates `o` or equals it — i.e. `o`
  /// carries no event this clock has not seen.  This is the CAS freshness
  /// predicate: an expected snapshot that DominatesOrEquals() every live
  /// version's clock proves no fresher write landed since the snapshot.
  [[nodiscard]] bool DominatesOrEquals(const VectorClock& o) const {
    const ClockOrder order = Compare(o);
    return order == ClockOrder::kAfter || order == ClockOrder::kEqual;
  }

  /// Entry-by-entry equality (the "same version" check of a CAS commit).
  [[nodiscard]] bool EqualTo(const VectorClock& o) const { return *this == o; }

  [[nodiscard]] std::string ToString() const {
    std::string s = "{";
    for (const auto& [r, v] : entries_) {
      if (s.size() > 1) s += ",";
      s += std::to_string(r) + ":" + std::to_string(v);
    }
    return s + "}";
  }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::map<ReplicaId, std::uint64_t> entries_;
};

}  // namespace scalia::store
