// Multi-version rows.
//
// An update never overwrites in place: it appends a new version; obsolete
// versions are marked and garbage-collected after conflict resolution, and
// the discarded versions are reported so the engine can delete the
// corresponding chunks from the storage providers (Fig. 10).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "store/vector_clock.h"

namespace scalia::store {

struct Version {
  std::string value;
  common::SimTime timestamp = 0;  // NTP-synchronized wall time (§III-D)
  ReplicaId origin = 0;           // tie-break for equal timestamps
  VectorClock clock;
  bool tombstone = false;  // deletion marker

  /// "Freshest wins": later timestamp, then higher origin id.
  [[nodiscard]] bool FresherThan(const Version& o) const noexcept {
    if (timestamp != o.timestamp) return timestamp > o.timestamp;
    return origin > o.origin;
  }
};

/// Outcome of a conditional (CAS-on-version) apply.  `applied == false` is
/// the typed conflict result: a causally-fresher or concurrent version
/// landed after the caller snapshotted its expected clock, and `conflicting`
/// names the freshest such version so the caller can see what won the race.
struct CasOutcome {
  bool applied = false;
  std::vector<Version> superseded;     // replaced versions (chunk GC), applied
  std::optional<Version> committed;    // the version written, when applied
  std::optional<Version> conflicting;  // freshest blocking version, otherwise
};

class MvccRow {
 public:
  /// Applies a version: drops live versions that are causally dominated,
  /// keeps concurrent ones (the conflict Fig. 10 illustrates).  Returns the
  /// values of versions this write superseded, for provider-side chunk GC.
  std::vector<Version> Apply(Version v);

  /// Conditional apply: commits `v` only when every live version is causally
  /// dominated by (or equal to) `expected` — i.e. nothing fresher landed
  /// since the caller read the row and snapshotted `expected`.  On success
  /// `v`'s clock absorbs the live clocks and advances at `v.origin`
  /// (register semantics), so the commit supersedes the whole row.  On
  /// conflict the row is left untouched.
  CasOutcome ApplyIfLatest(const VectorClock& expected, Version v);

  /// All currently live (non-superseded) versions.  Size > 1 <=> conflict.
  [[nodiscard]] const std::vector<Version>& live() const noexcept {
    return live_;
  }

  [[nodiscard]] bool HasConflict() const noexcept { return live_.size() > 1; }

  /// Resolves a conflict by keeping only the freshest version; returns the
  /// losers (Scalia removes their chunks from the providers, §III-D.1).
  std::vector<Version> ResolveLastWriterWins();

  /// Freshest live version, tombstones included; nullopt for an empty row.
  [[nodiscard]] std::optional<Version> Latest() const;

 private:
  std::vector<Version> live_;
};

}  // namespace scalia::store
