// Multi-version rows.
//
// An update never overwrites in place: it appends a new version; obsolete
// versions are marked and garbage-collected after conflict resolution, and
// the discarded versions are reported so the engine can delete the
// corresponding chunks from the storage providers (Fig. 10).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "store/vector_clock.h"

namespace scalia::store {

struct Version {
  std::string value;
  common::SimTime timestamp = 0;  // NTP-synchronized wall time (§III-D)
  ReplicaId origin = 0;           // tie-break for equal timestamps
  VectorClock clock;
  bool tombstone = false;  // deletion marker

  /// "Freshest wins": later timestamp, then higher origin id.
  [[nodiscard]] bool FresherThan(const Version& o) const noexcept {
    if (timestamp != o.timestamp) return timestamp > o.timestamp;
    return origin > o.origin;
  }
};

class MvccRow {
 public:
  /// Applies a version: drops live versions that are causally dominated,
  /// keeps concurrent ones (the conflict Fig. 10 illustrates).  Returns the
  /// values of versions this write superseded, for provider-side chunk GC.
  std::vector<Version> Apply(Version v);

  /// All currently live (non-superseded) versions.  Size > 1 <=> conflict.
  [[nodiscard]] const std::vector<Version>& live() const noexcept {
    return live_;
  }

  [[nodiscard]] bool HasConflict() const noexcept { return live_.size() > 1; }

  /// Resolves a conflict by keeping only the freshest version; returns the
  /// losers (Scalia removes their chunks from the providers, §III-D.1).
  std::vector<Version> ResolveLastWriterWins();

  /// Freshest live version, tombstones included; nullopt for an empty row.
  [[nodiscard]] std::optional<Version> Latest() const;

 private:
  std::vector<Version> live_;
};

}  // namespace scalia::store
