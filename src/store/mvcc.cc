#include "store/mvcc.h"

#include <algorithm>

namespace scalia::store {

std::vector<Version> MvccRow::Apply(Version v) {
  std::vector<Version> superseded;
  std::vector<Version> kept;
  bool dominated = false;
  for (auto& existing : live_) {
    switch (v.clock.Compare(existing.clock)) {
      case ClockOrder::kAfter:
        // The incoming write causally supersedes this version.
        superseded.push_back(std::move(existing));
        break;
      case ClockOrder::kBefore:
      case ClockOrder::kEqual:
        // Incoming write is stale (or a replay); keep existing.
        dominated = true;
        kept.push_back(std::move(existing));
        break;
      case ClockOrder::kConcurrent:
        kept.push_back(std::move(existing));
        break;
    }
  }
  live_ = std::move(kept);
  if (!dominated) live_.push_back(std::move(v));
  return superseded;
}

CasOutcome MvccRow::ApplyIfLatest(const VectorClock& expected, Version v) {
  CasOutcome outcome;
  for (const auto& existing : live_) {
    if (expected.DominatesOrEquals(existing.clock)) continue;
    // A version the snapshot has not seen: the CAS loses.  Report the
    // freshest such version so the caller knows what won.
    if (!outcome.conflicting || existing.FresherThan(*outcome.conflicting)) {
      outcome.conflicting = existing;
    }
  }
  if (outcome.conflicting) return outcome;
  for (const auto& existing : live_) v.clock.Merge(existing.clock);
  v.clock.Increment(v.origin);
  outcome.committed = v;
  outcome.superseded = Apply(std::move(v));
  outcome.applied = true;
  return outcome;
}

std::vector<Version> MvccRow::ResolveLastWriterWins() {
  if (live_.size() <= 1) return {};
  auto freshest = std::max_element(
      live_.begin(), live_.end(),
      [](const Version& a, const Version& b) { return b.FresherThan(a); });
  Version winner = std::move(*freshest);
  std::vector<Version> losers;
  for (auto& v : live_) {
    if (&v != &*freshest) losers.push_back(std::move(v));
  }
  // The winner's clock absorbs the losers' so later writes supersede all.
  for (const auto& l : losers) winner.clock.Merge(l.clock);
  live_.clear();
  live_.push_back(std::move(winner));
  return losers;
}

std::optional<Version> MvccRow::Latest() const {
  if (live_.empty()) return std::nullopt;
  const Version* best = &live_[0];
  for (const auto& v : live_) {
    if (v.FresherThan(*best)) best = &v;
  }
  return *best;
}

}  // namespace scalia::store
