// Map-reduce over KvTable shards.
//
// §III-C.2: "statistics are obtained using map-reduce jobs on the database,
// so as to aggregate the statistics of each individual object" — e.g. the
// per-class lifetime distributions and mean resource usage of Fig. 5/6.
// The map phase runs one task per table shard on a thread pool; emitted
// (key, value) pairs are grouped and reduced.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "store/kv_table.h"

namespace scalia::store {

template <typename K2, typename V2>
class MapReduceJob {
 public:
  /// Emits intermediate pairs from one (row key, latest version).
  using MapFn = std::function<void(
      const std::string& key, const Version& version,
      const std::function<void(K2, V2)>& emit)>;
  /// Folds all values of one intermediate key into the result value.
  using ReduceFn = std::function<V2(const K2& key, std::vector<V2>& values)>;

  MapReduceJob(MapFn map_fn, ReduceFn reduce_fn)
      : map_fn_(std::move(map_fn)), reduce_fn_(std::move(reduce_fn)) {}

  /// Runs the job over `table` using `pool`; returns reduced results.
  std::map<K2, V2> Run(const KvTable& table, common::ThreadPool& pool) const {
    common::Mutex merge_mu;
    std::map<K2, std::vector<V2>> groups;

    pool.ParallelFor(KvTable::kShards, [&](std::size_t shard) {
      std::map<K2, std::vector<V2>> local;
      table.VisitShard(shard, [&](const std::string& key, const Version& v) {
        map_fn_(key, v,
                [&local](K2 k, V2 val) {
                  local[std::move(k)].push_back(std::move(val));
                });
      });
      common::MutexLock lock(merge_mu);
      for (auto& [k, vals] : local) {
        auto& dst = groups[k];
        dst.insert(dst.end(), std::make_move_iterator(vals.begin()),
                   std::make_move_iterator(vals.end()));
      }
    });

    std::map<K2, V2> result;
    for (auto& [k, vals] : groups) {
      result.emplace(k, reduce_fn_(k, vals));
    }
    return result;
  }

 private:
  MapFn map_fn_;
  ReduceFn reduce_fn_;
};

}  // namespace scalia::store
