// A sharded, thread-safe MVCC key-value table (one Cassandra column family).
//
// Keys are strings (MD5 row keys in Scalia); values are opaque serialized
// rows.  The table exposes versioned writes, conflict inspection and prefix
// scans; replication across datacenters sits one level up (ReplicatedStore).
#pragma once

#include <array>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "store/mvcc.h"

namespace scalia::store {

struct ReadResult {
  std::string value;
  common::SimTime timestamp = 0;
  bool tombstone = false;
  bool conflict = false;  // more than one live version existed at read time
  /// The read version's vector clock: the snapshot a later CAS commit
  /// (PutIfLatest) compares against.
  VectorClock clock;
};

/// What an unconditional write did: the version it created (clock built
/// under the shard lock — the value a journal record must carry) and the
/// versions it replaced (whose chunks the caller must GC).
struct WriteOutcome {
  Version committed;
  std::vector<Version> superseded;
};

class KvTable {
 public:
  static constexpr std::size_t kShards = 16;

  KvTable() = default;

  /// Applies a versioned write.  Returns the superseded versions (for chunk
  /// GC at the providers).
  std::vector<Version> Apply(const std::string& key, Version v);

  /// Convenience: writes `value` originating at `replica`, advancing the
  /// row's merged clock (read-modify-write register semantics).
  std::vector<Version> Put(const std::string& key, std::string value,
                           ReplicaId replica, common::SimTime timestamp);

  /// Put, also returning the committed version (for replication fan-out
  /// and causal journaling) — all derived atomically under the shard lock.
  WriteOutcome PutVersioned(const std::string& key, std::string value,
                            ReplicaId replica, common::SimTime timestamp);

  /// Tombstone write.
  std::vector<Version> Delete(const std::string& key, ReplicaId replica,
                              common::SimTime timestamp);

  /// Delete, also returning the committed tombstone version.
  WriteOutcome DeleteVersioned(const std::string& key, ReplicaId replica,
                               common::SimTime timestamp);

  /// CAS-on-version write: commits `value` only when no version fresher
  /// than (or concurrent with) `expected` landed since the caller read the
  /// row — check and commit run atomically under the shard lock.  The typed
  /// conflict result (`applied == false`) reports the version that won.
  CasOutcome PutIfLatest(const std::string& key, std::string value,
                         ReplicaId replica, common::SimTime timestamp,
                         const VectorClock& expected);

  /// CAS form of Put for a caller-assembled Version.  NOT for replication:
  /// like PutIfLatest, the commit re-merges the live clocks and advances
  /// `v.origin`, minting a *new* version identity — replicated versions
  /// must keep their original clock and go through Apply instead.
  CasOutcome ApplyIfLatest(const std::string& key, const VectorClock& expected,
                           Version v);

  /// Freshest version for `key`; nullopt when absent or deleted (unless
  /// `include_tombstones`).
  [[nodiscard]] std::optional<ReadResult> Get(
      const std::string& key, bool include_tombstones = false) const;

  /// Resolves any conflict on `key` last-writer-wins; returns loser values.
  std::vector<Version> ResolveConflict(const std::string& key);

  /// All live versions for `key` (conflict inspection, Fig. 10).
  [[nodiscard]] std::vector<Version> LiveVersions(const std::string& key) const;

  /// Keys beginning with `prefix`, across all shards, sorted.
  [[nodiscard]] std::vector<std::string> ScanKeys(
      const std::string& prefix) const;

  /// Visits every (key, latest-version) pair; the backbone of the map phase
  /// of statistics jobs.  `shard_index` lets callers process shards in
  /// parallel; visit order inside a shard is key order.
  void VisitShard(std::size_t shard_index,
                  const std::function<void(const std::string&, const Version&)>&
                      visitor) const;

  [[nodiscard]] std::size_t KeyCount() const;

 private:
  struct Shard {
    mutable common::Mutex mu;
    std::map<std::string, MvccRow> rows GUARDED_BY(mu);
  };

  [[nodiscard]] std::size_t ShardIndex(const std::string& key) const;

  std::array<Shard, kShards> shards_;
};

}  // namespace scalia::store
