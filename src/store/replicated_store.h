// Multi-datacenter, multi-master replicated store.
//
// §III-C: clients' requests are routed to all datacenters indifferently, so
// the metadata/statistics database must accept writes at every replica
// (multi-master), keep working when a datacenter is down, and converge to a
// consistent state when it recovers ("eventually consistent").  This class
// implements that contract over one KvTable per (table, datacenter):
//
//   * a write at DC i applies locally and enqueues async replication to all
//     other DCs; while a DC is down its queue simply grows;
//   * Pump() delivers queued replication records (tests call SyncAll());
//   * concurrent writes in different DCs surface as MVCC conflicts, resolved
//     last-writer-wins with the losers reported for chunk GC (Fig. 10).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "store/kv_table.h"

namespace scalia::store {

class ReplicatedStore {
 public:
  /// Creates a store spanning `num_datacenters` replicas of each table.
  explicit ReplicatedStore(std::size_t num_datacenters);

  [[nodiscard]] std::size_t num_datacenters() const noexcept {
    return replicas_.size();
  }

  /// Marks a datacenter down/up.  Writes and reads at a down DC fail with
  /// Unavailable; replication to it queues until recovery.
  void SetDatacenterUp(ReplicaId dc, bool up);
  [[nodiscard]] bool IsDatacenterUp(ReplicaId dc) const;

  /// Writes `value` under `key` in `table` at datacenter `dc`.  The
  /// outcome carries (a) the committed version, whose clock the caller
  /// journals so WAL replay stays causal, and (b) the versions this write
  /// superseded at `dc`: chunk GC must work off exactly that set — a
  /// concurrent migration may have committed a placement the caller never
  /// read, and sweeping a stale pre-read instead would orphan it.
  common::Result<WriteOutcome> Put(ReplicaId dc, const std::string& table,
                                   const std::string& key, std::string value,
                                   common::SimTime timestamp);

  /// Tombstones `key`; outcome semantics as for Put.
  common::Result<WriteOutcome> Delete(ReplicaId dc, const std::string& table,
                                      const std::string& key,
                                      common::SimTime timestamp);

  /// Applies a pre-built version (with its clock) at `dc` and replicates
  /// it — the causal-replay primitive crash recovery uses.
  common::Status ApplyVersion(ReplicaId dc, const std::string& table,
                              const std::string& key, Version v);

  /// CAS-on-version write: commits only when no version fresher than (or
  /// concurrent with) `expected` landed at `dc` since the caller's read —
  /// the migration/repair commit primitive.  The error Status covers
  /// datacenter-down; a lost race comes back ok() with `applied == false`
  /// and the winning version in `conflicting`.  An applied commit is
  /// replicated to the other datacenters like any Put.
  common::Result<CasOutcome> PutIfLatest(ReplicaId dc, const std::string& table,
                                         const std::string& key,
                                         std::string value,
                                         common::SimTime timestamp,
                                         const VectorClock& expected);

  /// Reads the freshest version visible at datacenter `dc`.
  common::Result<ReadResult> Get(ReplicaId dc, const std::string& table,
                                 const std::string& key) const;

  /// Resolves a conflict at `dc` last-writer-wins and replicates the winner;
  /// returns the losing values (their chunks must be GC'ed by the caller).
  common::Result<std::vector<Version>> Resolve(ReplicaId dc,
                                               const std::string& table,
                                               const std::string& key);

  /// Delivers up to `max_records` queued replication records to live DCs;
  /// returns how many were applied.
  std::size_t Pump(std::size_t max_records = SIZE_MAX);

  /// Pumps until every queue to a live DC is drained.
  void SyncAll();

  [[nodiscard]] std::size_t PendingReplication() const;

  /// Direct access to a replica table (read-mostly: scans, map-reduce).
  [[nodiscard]] const KvTable* Table(ReplicaId dc,
                                     const std::string& table) const;
  [[nodiscard]] KvTable* MutableTable(ReplicaId dc, const std::string& table);

 private:
  struct ReplicationRecord {
    ReplicaId target;
    std::string table;
    std::string key;
    Version version;
  };

  struct Replica {
    bool up = true;
    // table name -> table
    std::unordered_map<std::string, std::unique_ptr<KvTable>> tables;
  };

  KvTable& TableRef(Replica& r, const std::string& table) REQUIRES(mu_);
  void EnqueueReplication(ReplicaId source, const std::string& table,
                          const std::string& key, const Version& v)
      REQUIRES(mu_);

  mutable common::Mutex mu_;  // guards replicas_ map shape + queue + up flags
  std::vector<Replica> replicas_ GUARDED_BY(mu_);
  std::deque<ReplicationRecord> queue_ GUARDED_BY(mu_);
};

}  // namespace scalia::store
