#include "store/kv_table.h"

#include <algorithm>

#include "common/rng.h"

namespace scalia::store {

std::size_t KvTable::ShardIndex(const std::string& key) const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h % kShards);
}

std::vector<Version> KvTable::Apply(const std::string& key, Version v) {
  Shard& shard = shards_[ShardIndex(key)];
  common::MutexLock lock(shard.mu);
  return shard.rows[key].Apply(std::move(v));
}

std::vector<Version> KvTable::Put(const std::string& key, std::string value,
                                  ReplicaId replica,
                                  common::SimTime timestamp) {
  return PutVersioned(key, std::move(value), replica, timestamp).superseded;
}

WriteOutcome KvTable::PutVersioned(const std::string& key, std::string value,
                                   ReplicaId replica,
                                   common::SimTime timestamp) {
  Shard& shard = shards_[ShardIndex(key)];
  common::MutexLock lock(shard.mu);
  MvccRow& row = shard.rows[key];
  Version v;
  v.value = std::move(value);
  v.timestamp = timestamp;
  v.origin = replica;
  // Register semantics: the new version causally follows everything this
  // replica has seen for the row.
  for (const auto& live : row.live()) v.clock.Merge(live.clock);
  v.clock.Increment(replica);
  WriteOutcome outcome;
  outcome.committed = v;
  outcome.superseded = row.Apply(std::move(v));
  return outcome;
}

std::vector<Version> KvTable::Delete(const std::string& key, ReplicaId replica,
                                     common::SimTime timestamp) {
  return DeleteVersioned(key, replica, timestamp).superseded;
}

WriteOutcome KvTable::DeleteVersioned(const std::string& key,
                                      ReplicaId replica,
                                      common::SimTime timestamp) {
  Shard& shard = shards_[ShardIndex(key)];
  common::MutexLock lock(shard.mu);
  MvccRow& row = shard.rows[key];
  Version v;
  v.timestamp = timestamp;
  v.origin = replica;
  v.tombstone = true;
  for (const auto& live : row.live()) v.clock.Merge(live.clock);
  v.clock.Increment(replica);
  WriteOutcome outcome;
  outcome.committed = v;
  outcome.superseded = row.Apply(std::move(v));
  return outcome;
}

CasOutcome KvTable::PutIfLatest(const std::string& key, std::string value,
                                ReplicaId replica, common::SimTime timestamp,
                                const VectorClock& expected) {
  Shard& shard = shards_[ShardIndex(key)];
  common::MutexLock lock(shard.mu);
  Version v;
  v.value = std::move(value);
  v.timestamp = timestamp;
  v.origin = replica;
  // ApplyIfLatest merges the live clocks and increments `replica` itself,
  // atomically with the freshness check.
  return shard.rows[key].ApplyIfLatest(expected, std::move(v));
}

CasOutcome KvTable::ApplyIfLatest(const std::string& key,
                                  const VectorClock& expected, Version v) {
  Shard& shard = shards_[ShardIndex(key)];
  common::MutexLock lock(shard.mu);
  return shard.rows[key].ApplyIfLatest(expected, std::move(v));
}

std::optional<ReadResult> KvTable::Get(const std::string& key,
                                       bool include_tombstones) const {
  const Shard& shard = shards_[ShardIndex(key)];
  common::MutexLock lock(shard.mu);
  auto it = shard.rows.find(key);
  if (it == shard.rows.end()) return std::nullopt;
  auto latest = it->second.Latest();
  if (!latest) return std::nullopt;
  if (latest->tombstone && !include_tombstones) return std::nullopt;
  ReadResult r;
  r.value = latest->value;
  r.timestamp = latest->timestamp;
  r.tombstone = latest->tombstone;
  r.conflict = it->second.HasConflict();
  r.clock = latest->clock;
  return r;
}

std::vector<Version> KvTable::ResolveConflict(const std::string& key) {
  Shard& shard = shards_[ShardIndex(key)];
  common::MutexLock lock(shard.mu);
  auto it = shard.rows.find(key);
  if (it == shard.rows.end()) return {};
  return it->second.ResolveLastWriterWins();
}

std::vector<Version> KvTable::LiveVersions(const std::string& key) const {
  const Shard& shard = shards_[ShardIndex(key)];
  common::MutexLock lock(shard.mu);
  auto it = shard.rows.find(key);
  if (it == shard.rows.end()) return {};
  return it->second.live();
}

std::vector<std::string> KvTable::ScanKeys(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard.mu);
    for (auto it = shard.rows.lower_bound(prefix); it != shard.rows.end();
         ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      auto latest = it->second.Latest();
      if (latest && !latest->tombstone) out.push_back(it->first);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void KvTable::VisitShard(
    std::size_t shard_index,
    const std::function<void(const std::string&, const Version&)>& visitor)
    const {
  const Shard& shard = shards_[shard_index % kShards];
  common::MutexLock lock(shard.mu);
  for (const auto& [key, row] : shard.rows) {
    auto latest = row.Latest();
    if (latest && !latest->tombstone) visitor(key, *latest);
  }
}

std::size_t KvTable::KeyCount() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard.mu);
    for (const auto& [key, row] : shard.rows) {
      auto latest = row.Latest();
      if (latest && !latest->tombstone) ++n;
    }
  }
  return n;
}

}  // namespace scalia::store
