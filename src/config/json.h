// A small, strict JSON value model and parser (RFC 8259 subset).
//
// Scalia deployments are configured with provider catalogs, storage rules
// and scenario files; this module gives them a dependency-free JSON
// substrate.  The parser is strict (no comments, no trailing commas), has a
// nesting-depth guard, decodes \uXXXX escapes (including surrogate pairs)
// to UTF-8, and reports the byte offset of the first error.  Serialization
// is deterministic: object keys keep their insertion order, so a parse →
// dump round trip is stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace scalia::config {

class JsonValue;

/// An ordered JSON object: preserves insertion order for deterministic
/// round trips while still giving O(log n) key lookup.
class JsonObject {
 public:
  JsonObject() = default;
  // Deep-copying: entries are held by unique_ptr only because JsonValue is
  // incomplete here; semantically the object owns plain values.
  JsonObject(const JsonObject& other);
  JsonObject& operator=(const JsonObject& other);
  JsonObject(JsonObject&&) noexcept = default;
  JsonObject& operator=(JsonObject&&) noexcept = default;
  ~JsonObject() = default;

  /// Inserts or overwrites `key`; overwrite keeps the original position.
  void Set(std::string key, JsonValue value);

  /// nullptr when the key is absent.
  [[nodiscard]] const JsonValue* Find(std::string_view key) const;

  [[nodiscard]] bool Contains(std::string_view key) const {
    return Find(key) != nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, std::unique_ptr<JsonValue>>> entries_;
};

using JsonArray = std::vector<JsonValue>;

enum class JsonType { kNull, kBool, kNumber, kString, kArray, kObject };

[[nodiscard]] constexpr std::string_view JsonTypeName(JsonType t) {
  switch (t) {
    case JsonType::kNull: return "null";
    case JsonType::kBool: return "bool";
    case JsonType::kNumber: return "number";
    case JsonType::kString: return "string";
    case JsonType::kArray: return "array";
    case JsonType::kObject: return "object";
  }
  return "?";
}

/// A JSON document node.  Numbers are stored as double (adequate for the
/// catalog prices, SLA fractions and byte counts Scalia configures; byte
/// counts stay exact below 2^53).
class JsonValue {
 public:
  JsonValue() : data_(nullptr) {}
  JsonValue(std::nullptr_t) : data_(nullptr) {}        // NOLINT
  JsonValue(bool b) : data_(b) {}                      // NOLINT
  JsonValue(double d) : data_(d) {}                    // NOLINT
  JsonValue(int i) : data_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(std::int64_t i) : data_(static_cast<double>(i)) {}    // NOLINT
  JsonValue(std::uint64_t u) : data_(static_cast<double>(u)) {}   // NOLINT
  JsonValue(const char* s) : data_(std::string(s)) {}  // NOLINT
  JsonValue(std::string s) : data_(std::move(s)) {}    // NOLINT
  JsonValue(JsonArray a) : data_(std::move(a)) {}      // NOLINT
  JsonValue(JsonObject o) : data_(std::move(o)) {}     // NOLINT

  [[nodiscard]] JsonType type() const noexcept {
    return static_cast<JsonType>(data_.index());
  }
  [[nodiscard]] bool is_null() const noexcept {
    return type() == JsonType::kNull;
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return type() == JsonType::kBool;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return type() == JsonType::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type() == JsonType::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type() == JsonType::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type() == JsonType::kObject;
  }

  // Checked accessors: the caller asserts the type (UB via std::get
  // otherwise, as with std::variant).  Use the Get* helpers for fallible
  // extraction.
  [[nodiscard]] bool AsBool() const { return std::get<bool>(data_); }
  [[nodiscard]] double AsNumber() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& AsString() const {
    return std::get<std::string>(data_);
  }
  [[nodiscard]] const JsonArray& AsArray() const {
    return std::get<JsonArray>(data_);
  }
  [[nodiscard]] const JsonObject& AsObject() const {
    return std::get<JsonObject>(data_);
  }
  [[nodiscard]] JsonArray& AsArray() { return std::get<JsonArray>(data_); }
  [[nodiscard]] JsonObject& AsObject() { return std::get<JsonObject>(data_); }

  // ---- Fallible typed extraction (for loaders) --------------------------

  [[nodiscard]] common::Result<bool> GetBool() const;
  [[nodiscard]] common::Result<double> GetNumber() const;
  [[nodiscard]] common::Result<std::string> GetString() const;

  /// Object member lookup: error when this is not an object or the key is
  /// missing.
  [[nodiscard]] common::Result<const JsonValue*> GetMember(
      std::string_view key) const;

  /// Serializes this value.  `indent < 0` renders compact one-line JSON;
  /// `indent >= 0` pretty-prints with that many spaces per level.
  [[nodiscard]] std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      data_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
/// Errors carry a byte offset ("offset 17: expected ':'").
[[nodiscard]] common::Result<JsonValue> ParseJson(std::string_view text);

/// Reads and parses a JSON file.
[[nodiscard]] common::Result<JsonValue> ParseJsonFile(const std::string& path);

/// Escapes a string per JSON rules (quotes, control characters).
[[nodiscard]] std::string JsonEscape(std::string_view s);

}  // namespace scalia::config
