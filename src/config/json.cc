#include "config/json.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

namespace scalia::config {
namespace {

constexpr int kMaxDepth = 128;

}  // namespace

// ---------------------------------------------------------------------------
// JsonObject
// ---------------------------------------------------------------------------

JsonObject::JsonObject(const JsonObject& other) {
  entries_.reserve(other.entries_.size());
  for (const auto& [k, v] : other.entries_) {
    entries_.emplace_back(k, std::make_unique<JsonValue>(*v));
  }
}

JsonObject& JsonObject::operator=(const JsonObject& other) {
  if (this != &other) *this = JsonObject(other);
  return *this;
}

void JsonObject::Set(std::string key, JsonValue value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      *v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(key),
                        std::make_unique<JsonValue>(std::move(value)));
}

const JsonValue* JsonObject::Find(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Typed extraction
// ---------------------------------------------------------------------------

common::Result<bool> JsonValue::GetBool() const {
  if (!is_bool()) {
    return common::Status::InvalidArgument(
        std::string("expected bool, got ") +
        std::string(JsonTypeName(type())));
  }
  return AsBool();
}

common::Result<double> JsonValue::GetNumber() const {
  if (!is_number()) {
    return common::Status::InvalidArgument(
        std::string("expected number, got ") +
        std::string(JsonTypeName(type())));
  }
  return AsNumber();
}

common::Result<std::string> JsonValue::GetString() const {
  if (!is_string()) {
    return common::Status::InvalidArgument(
        std::string("expected string, got ") +
        std::string(JsonTypeName(type())));
  }
  return AsString();
}

common::Result<const JsonValue*> JsonValue::GetMember(
    std::string_view key) const {
  if (!is_object()) {
    return common::Status::InvalidArgument(
        std::string("expected object, got ") +
        std::string(JsonTypeName(type())));
  }
  const JsonValue* v = AsObject().Find(key);
  if (v == nullptr) {
    return common::Status::NotFound(std::string("missing member \"") +
                                    std::string(key) + "\"");
  }
  return v;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string* out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    *out += "null";  // JSON has no NaN/Inf; null is the conventional fallback
    return;
  }
  // Integers inside the exactly-representable range print without a decimal
  // point, so byte counts and request counts round-trip as written.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    std::array<char, 32> buf{};
    auto [p, ec] = std::to_chars(buf.data(), buf.data() + buf.size(),
                                 static_cast<long long>(d));
    (void)ec;
    out->append(buf.data(), static_cast<std::size_t>(p - buf.data()));
    return;
  }
  std::array<char, 64> buf{};
  auto [p, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  (void)ec;
  out->append(buf.data(), static_cast<std::size_t>(p - buf.data()));
}

void AppendIndent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
              ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type()) {
    case JsonType::kNull:
      *out += "null";
      return;
    case JsonType::kBool:
      *out += AsBool() ? "true" : "false";
      return;
    case JsonType::kNumber:
      AppendNumber(out, AsNumber());
      return;
    case JsonType::kString:
      out->push_back('"');
      *out += JsonEscape(AsString());
      out->push_back('"');
      return;
    case JsonType::kArray: {
      const JsonArray& arr = AsArray();
      if (arr.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : arr) {
        if (!first) out->push_back(',');
        first = false;
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case JsonType::kObject: {
      const JsonObject& obj = AsObject();
      if (obj.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj) {
        if (!first) out->push_back(',');
        first = false;
        if (indent >= 0) AppendIndent(out, indent, depth + 1);
        out->push_back('"');
        *out += JsonEscape(k);
        *out += indent >= 0 ? "\": " : "\":";
        v->DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) AppendIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  common::Result<JsonValue> ParseDocument() {
    SkipWs();
    auto value = ParseValue(0);
    if (!value.ok()) return value.status();
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return std::move(value).value();
  }

 private:
  common::Status Error(std::string_view what) const {
    return common::Status::InvalidArgument(
        "offset " + std::to_string(pos_) + ": " + std::string(what));
  }

  [[nodiscard]] bool AtEnd() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char Peek() const noexcept { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  common::Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case 'n':
        if (ConsumeWord("null")) return JsonValue(nullptr);
        return Error("invalid literal");
      case 't':
        if (ConsumeWord("true")) return JsonValue(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return JsonValue(false);
        return Error("invalid literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  common::Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      pos_ = start;
      return Error("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit expected after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit expected in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    double out = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    auto [p, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || p != last) {
      return Error("unparseable number");
    }
    return JsonValue(out);
  }

  static void AppendUtf8(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  common::Result<std::uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  common::Result<JsonValue> ParseString() {
    auto raw = ParseRawString();
    if (!raw.ok()) return raw.status();
    return JsonValue(std::move(raw).value());
  }

  common::Result<std::string> ParseRawString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    for (;;) {
      if (AtEnd()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Error("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          auto hi = ParseHex4();
          if (!hi.ok()) return hi.status();
          std::uint32_t cp = *hi;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!ConsumeWord("\\u")) {
              return Error("unpaired high surrogate");
            }
            auto lo = ParseHex4();
            if (!lo.ok()) return lo.status();
            if (*lo < 0xDC00 || *lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (*lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(&out, cp);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  common::Result<JsonValue> ParseArray(int depth) {
    if (!Consume('[')) return Error("expected '['");
    JsonArray arr;
    SkipWs();
    if (Consume(']')) return JsonValue(std::move(arr));
    for (;;) {
      SkipWs();
      auto v = ParseValue(depth + 1);
      if (!v.ok()) return v.status();
      arr.push_back(std::move(v).value());
      SkipWs();
      if (Consume(']')) return JsonValue(std::move(arr));
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  common::Result<JsonValue> ParseObject(int depth) {
    if (!Consume('{')) return Error("expected '{'");
    JsonObject obj;
    SkipWs();
    if (Consume('}')) return JsonValue(std::move(obj));
    for (;;) {
      SkipWs();
      auto key = ParseRawString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      auto v = ParseValue(depth + 1);
      if (!v.ok()) return v.status();
      obj.Set(std::move(key).value(), std::move(v).value());
      SkipWs();
      if (Consume('}')) return JsonValue(std::move(obj));
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

common::Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

common::Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::Status::NotFound("cannot open JSON file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseJson(buf.str());
}

}  // namespace scalia::config
