#include "config/loaders.h"

#include <cmath>
#include <set>

#include "common/sim_time.h"
#include "common/units.h"

namespace scalia::config {
namespace {

/// Fetches a required numeric member constrained to [lo, hi].
common::Result<double> RequireNumber(const JsonObject& obj,
                                     std::string_view key, double lo,
                                     double hi) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return common::Status::InvalidArgument("missing member \"" +
                                           std::string(key) + "\"");
  }
  auto num = v->GetNumber();
  if (!num.ok()) {
    return common::Status::InvalidArgument(std::string(key) + ": " +
                                           num.status().message());
  }
  if (!(*num >= lo && *num <= hi)) {
    return common::Status::InvalidArgument(
        std::string(key) + " out of range [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "]");
  }
  return *num;
}

common::Result<std::string> RequireString(const JsonObject& obj,
                                          std::string_view key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return common::Status::InvalidArgument("missing member \"" +
                                           std::string(key) + "\"");
  }
  auto s = v->GetString();
  if (!s.ok()) {
    return common::Status::InvalidArgument(std::string(key) + ": " +
                                           s.status().message());
  }
  return std::move(s).value();
}

/// Parses an optional non-negative byte count; integral values only.
common::Result<std::optional<common::Bytes>> OptionalBytes(
    const JsonObject& obj, std::string_view key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return std::optional<common::Bytes>{};
  auto num = v->GetNumber();
  if (!num.ok()) {
    return common::Status::InvalidArgument(std::string(key) + ": " +
                                           num.status().message());
  }
  if (*num < 0 || *num != std::floor(*num) || *num > 9.007199254740992e15) {
    return common::Status::InvalidArgument(
        std::string(key) + " must be a non-negative integer byte count");
  }
  return std::optional<common::Bytes>{static_cast<common::Bytes>(*num)};
}

common::Result<provider::Zone> ParseZoneName(const std::string& name) {
  using provider::Zone;
  if (name == "EU") return Zone::kEU;
  if (name == "US") return Zone::kUS;
  if (name == "APAC") return Zone::kAPAC;
  if (name == "OnPrem") return Zone::kOnPrem;
  return common::Status::InvalidArgument("unknown zone \"" + name + "\"");
}

}  // namespace

common::Result<provider::ZoneSet> LoadZones(const JsonValue& value) {
  if (value.is_string() && value.AsString() == "all") {
    return provider::ZoneSet::All();
  }
  if (!value.is_array()) {
    return common::Status::InvalidArgument(
        "zones must be an array of zone names or the string \"all\"");
  }
  provider::ZoneSet zones;
  for (const JsonValue& z : value.AsArray()) {
    auto name = z.GetString();
    if (!name.ok()) {
      return common::Status::InvalidArgument("zones: " +
                                             name.status().message());
    }
    auto zone = ParseZoneName(*name);
    if (!zone.ok()) return zone.status();
    zones.Add(*zone);
  }
  if (zones.Empty()) {
    return common::Status::InvalidArgument("zones must not be empty");
  }
  return zones;
}

common::Result<provider::ProviderSpec> LoadProviderSpec(
    const JsonValue& value) {
  if (!value.is_object()) {
    return common::Status::InvalidArgument("provider must be an object");
  }
  const JsonObject& obj = value.AsObject();
  provider::ProviderSpec spec;

  auto id = RequireString(obj, "id");
  if (!id.ok()) return id.status();
  if (id->empty()) {
    return common::Status::InvalidArgument("provider id must not be empty");
  }
  spec.id = std::move(id).value();

  if (const JsonValue* d = obj.Find("description")) {
    auto s = d->GetString();
    if (!s.ok()) {
      return common::Status::InvalidArgument("description: " +
                                             s.status().message());
    }
    spec.description = std::move(s).value();
  } else {
    spec.description = spec.id;
  }

  // SLA fractions are open below 1.0 for availability but durability may be
  // arbitrarily many nines; both must be < 1 (a perfect SLA breaks the
  // failure-probability arithmetic of Algorithm 2) and >= 0.5 (sanity).
  auto dura = RequireNumber(obj, "durability", 0.5, 1.0 - 1e-15);
  if (!dura.ok()) return dura.status();
  auto avail = RequireNumber(obj, "availability", 0.5, 1.0 - 1e-15);
  if (!avail.ok()) return avail.status();
  spec.sla = provider::Sla{.durability = *dura, .availability = *avail};

  auto zones_member = value.GetMember("zones");
  if (!zones_member.ok()) return zones_member.status();
  auto zones = LoadZones(**zones_member);
  if (!zones.ok()) return zones.status();
  spec.zones = *zones;

  auto storage = RequireNumber(obj, "storage_gb_month", 0.0, 1e6);
  if (!storage.ok()) return storage.status();
  auto bw_in = RequireNumber(obj, "bw_in_gb", 0.0, 1e6);
  if (!bw_in.ok()) return bw_in.status();
  auto bw_out = RequireNumber(obj, "bw_out_gb", 0.0, 1e6);
  if (!bw_out.ok()) return bw_out.status();
  auto ops = RequireNumber(obj, "ops_per_1000", 0.0, 1e6);
  if (!ops.ok()) return ops.status();
  spec.pricing = provider::PricingPolicy{.storage_gb_month = *storage,
                                         .bw_in_gb = *bw_in,
                                         .bw_out_gb = *bw_out,
                                         .ops_per_1000 = *ops};

  if (obj.Contains("read_latency_ms")) {
    auto lat = RequireNumber(obj, "read_latency_ms", 0.0, 1e6);
    if (!lat.ok()) return lat.status();
    spec.read_latency_ms = *lat;
  }

  auto max_chunk = OptionalBytes(obj, "max_chunk_size");
  if (!max_chunk.ok()) return max_chunk.status();
  spec.max_chunk_size = *max_chunk;

  auto capacity = OptionalBytes(obj, "capacity");
  if (!capacity.ok()) return capacity.status();
  spec.capacity = *capacity;

  return spec;
}

common::Result<std::vector<provider::ProviderSpec>> LoadCatalog(
    const JsonValue& value) {
  auto providers = value.GetMember("providers");
  if (!providers.ok()) return providers.status();
  if (!(*providers)->is_array()) {
    return common::Status::InvalidArgument("\"providers\" must be an array");
  }
  std::vector<provider::ProviderSpec> catalog;
  std::set<std::string> seen;
  for (const JsonValue& entry : (*providers)->AsArray()) {
    auto spec = LoadProviderSpec(entry);
    if (!spec.ok()) return spec.status();
    if (!seen.insert(spec->id).second) {
      return common::Status::InvalidArgument("duplicate provider id \"" +
                                             spec->id + "\"");
    }
    catalog.push_back(std::move(spec).value());
  }
  return catalog;
}

common::Result<std::vector<provider::ProviderSpec>> LoadCatalogFromText(
    std::string_view text) {
  auto doc = ParseJson(text);
  if (!doc.ok()) return doc.status();
  return LoadCatalog(*doc);
}

common::Result<std::vector<provider::ProviderSpec>> LoadCatalogFromFile(
    const std::string& path) {
  auto doc = ParseJsonFile(path);
  if (!doc.ok()) return doc.status();
  return LoadCatalog(*doc);
}

common::Result<core::StorageRule> LoadStorageRule(const JsonValue& value) {
  if (!value.is_object()) {
    return common::Status::InvalidArgument("rule must be an object");
  }
  const JsonObject& obj = value.AsObject();
  core::StorageRule rule;

  auto name = RequireString(obj, "name");
  if (!name.ok()) return name.status();
  rule.name = std::move(name).value();

  auto dura = RequireNumber(obj, "durability", 0.0, 1.0 - 1e-15);
  if (!dura.ok()) return dura.status();
  rule.durability = *dura;

  auto avail = RequireNumber(obj, "availability", 0.0, 1.0 - 1e-15);
  if (!avail.ok()) return avail.status();
  rule.availability = *avail;

  if (const JsonValue* z = obj.Find("zones")) {
    auto zones = LoadZones(*z);
    if (!zones.ok()) return zones.status();
    rule.allowed_zones = *zones;
  } else {
    rule.allowed_zones = provider::ZoneSet::All();
  }

  auto lockin = RequireNumber(obj, "lockin", 1e-6, 1.0);
  if (!lockin.ok()) return lockin.status();
  rule.lockin = *lockin;

  if (obj.Contains("ttl_hours")) {
    auto ttl = RequireNumber(obj, "ttl_hours", 0.0, 1e9);
    if (!ttl.ok()) return ttl.status();
    rule.ttl_hint = common::FromHours(*ttl);
  }

  return rule;
}

common::Result<std::vector<core::StorageRule>> LoadRules(
    const JsonValue& value) {
  auto rules_member = value.GetMember("rules");
  if (!rules_member.ok()) return rules_member.status();
  if (!(*rules_member)->is_array()) {
    return common::Status::InvalidArgument("\"rules\" must be an array");
  }
  std::vector<core::StorageRule> rules;
  std::set<std::string> seen;
  for (const JsonValue& entry : (*rules_member)->AsArray()) {
    auto rule = LoadStorageRule(entry);
    if (!rule.ok()) return rule.status();
    if (!seen.insert(rule->name).second) {
      return common::Status::InvalidArgument("duplicate rule name \"" +
                                             rule->name + "\"");
    }
    rules.push_back(std::move(rule).value());
  }
  return rules;
}

common::Result<std::vector<core::StorageRule>> LoadRulesFromText(
    std::string_view text) {
  auto doc = ParseJson(text);
  if (!doc.ok()) return doc.status();
  return LoadRules(*doc);
}

namespace {

JsonValue ZonesToJson(provider::ZoneSet zones) {
  if (zones == provider::ZoneSet::All()) return JsonValue("all");
  JsonArray arr;
  using provider::Zone;
  for (Zone z : {Zone::kEU, Zone::kUS, Zone::kAPAC, Zone::kOnPrem}) {
    if (zones.Contains(z)) arr.emplace_back(provider::ZoneName(z));
  }
  return JsonValue(std::move(arr));
}

}  // namespace

JsonValue ProviderSpecToJson(const provider::ProviderSpec& spec) {
  JsonObject obj;
  obj.Set("id", spec.id);
  obj.Set("description", spec.description);
  obj.Set("durability", spec.sla.durability);
  obj.Set("availability", spec.sla.availability);
  obj.Set("zones", ZonesToJson(spec.zones));
  obj.Set("storage_gb_month", spec.pricing.storage_gb_month);
  obj.Set("bw_in_gb", spec.pricing.bw_in_gb);
  obj.Set("bw_out_gb", spec.pricing.bw_out_gb);
  obj.Set("ops_per_1000", spec.pricing.ops_per_1000);
  obj.Set("read_latency_ms", spec.read_latency_ms);
  if (spec.max_chunk_size) obj.Set("max_chunk_size", *spec.max_chunk_size);
  if (spec.capacity) obj.Set("capacity", *spec.capacity);
  return JsonValue(std::move(obj));
}

JsonValue CatalogToJson(const std::vector<provider::ProviderSpec>& catalog) {
  JsonArray arr;
  arr.reserve(catalog.size());
  for (const auto& spec : catalog) arr.push_back(ProviderSpecToJson(spec));
  JsonObject doc;
  doc.Set("providers", JsonValue(std::move(arr)));
  return JsonValue(std::move(doc));
}

JsonValue StorageRuleToJson(const core::StorageRule& rule) {
  JsonObject obj;
  obj.Set("name", rule.name);
  obj.Set("durability", rule.durability);
  obj.Set("availability", rule.availability);
  obj.Set("zones", ZonesToJson(rule.allowed_zones));
  obj.Set("lockin", rule.lockin);
  if (rule.ttl_hint) {
    obj.Set("ttl_hours", common::ToHours(*rule.ttl_hint));
  }
  return JsonValue(std::move(obj));
}

JsonValue RulesToJson(const std::vector<core::StorageRule>& rules) {
  JsonArray arr;
  arr.reserve(rules.size());
  for (const auto& rule : rules) arr.push_back(StorageRuleToJson(rule));
  JsonObject doc;
  doc.Set("rules", JsonValue(std::move(arr)));
  return JsonValue(std::move(doc));
}

}  // namespace scalia::config
