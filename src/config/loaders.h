// Loaders mapping JSON documents to Scalia domain objects.
//
// A deployment describes its provider market and its storage rules in JSON
// (the broker's equivalent of the paper's Figs. 2 and 3); these loaders
// validate the documents field-by-field and produce the strongly-typed
// catalog/rule objects the engine layer consumes.  Serializers for the
// reverse direction keep the files round-trippable.
//
// Catalog document shape:
//
//   { "providers": [ {
//       "id": "S3(h)", "description": "Amazon S3 (High)",
//       "durability": 0.99999999999, "availability": 0.999,
//       "zones": ["EU", "US", "APAC"],
//       "storage_gb_month": 0.14, "bw_in_gb": 0.1, "bw_out_gb": 0.15,
//       "ops_per_1000": 0.01,
//       "read_latency_ms": 50.0,          // optional
//       "max_chunk_size": 1000000,        // optional, bytes
//       "capacity": 50000000000           // optional, bytes (private)
//   } ] }
//
// Rules document shape:
//
//   { "rules": [ {
//       "name": "rule1", "durability": 0.999999, "availability": 0.9999,
//       "zones": ["EU", "US"],            // omitted or "all" = all zones
//       "lockin": 0.3,
//       "ttl_hours": 24                   // optional lifetime hint
//   } ] }
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "config/json.h"
#include "core/rule.h"
#include "provider/spec.h"

namespace scalia::config {

/// Parses a single provider object.
[[nodiscard]] common::Result<provider::ProviderSpec> LoadProviderSpec(
    const JsonValue& value);

/// Parses a catalog document ({"providers": [...]}).  Duplicate provider
/// ids are rejected.
[[nodiscard]] common::Result<std::vector<provider::ProviderSpec>> LoadCatalog(
    const JsonValue& value);

/// Parses a catalog from JSON text.
[[nodiscard]] common::Result<std::vector<provider::ProviderSpec>>
LoadCatalogFromText(std::string_view text);

/// Parses a catalog from a file.
[[nodiscard]] common::Result<std::vector<provider::ProviderSpec>>
LoadCatalogFromFile(const std::string& path);

/// Parses a single storage rule object.
[[nodiscard]] common::Result<core::StorageRule> LoadStorageRule(
    const JsonValue& value);

/// Parses a rules document ({"rules": [...]}).  Duplicate names are
/// rejected.
[[nodiscard]] common::Result<std::vector<core::StorageRule>> LoadRules(
    const JsonValue& value);

/// Parses rules from JSON text.
[[nodiscard]] common::Result<std::vector<core::StorageRule>> LoadRulesFromText(
    std::string_view text);

/// Serializes a provider to the loader's document shape.
[[nodiscard]] JsonValue ProviderSpecToJson(const provider::ProviderSpec& spec);

/// Serializes a full catalog document.
[[nodiscard]] JsonValue CatalogToJson(
    const std::vector<provider::ProviderSpec>& catalog);

/// Serializes a storage rule.
[[nodiscard]] JsonValue StorageRuleToJson(const core::StorageRule& rule);

/// Serializes a rules document.
[[nodiscard]] JsonValue RulesToJson(
    const std::vector<core::StorageRule>& rules);

/// Parses a zone list ("EU", "US", "APAC", "OnPrem", or the wildcard
/// "all"); an absent/empty list is an error for providers but callers may
/// default it for rules.
[[nodiscard]] common::Result<provider::ZoneSet> LoadZones(
    const JsonValue& value);

}  // namespace scalia::config
