// Basic provider-domain vocabulary: identifiers and geographic zones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scalia::provider {

/// Providers are identified by short stable names, e.g. "S3(h)", "RS".
using ProviderId = std::string;

/// Geographic zones a provider operates in (Fig. 3's "Zones" column).
enum class Zone : std::uint8_t {
  kEU = 0,
  kUS = 1,
  kAPAC = 2,
  kOnPrem = 3,  // private storage resources at the customer premises
};

[[nodiscard]] constexpr const char* ZoneName(Zone z) {
  switch (z) {
    case Zone::kEU: return "EU";
    case Zone::kUS: return "US";
    case Zone::kAPAC: return "APAC";
    case Zone::kOnPrem: return "OnPrem";
  }
  return "?";
}

/// A small bitmask set of zones.
class ZoneSet {
 public:
  constexpr ZoneSet() = default;
  constexpr ZoneSet(std::initializer_list<Zone> zones) {
    for (Zone z : zones) Add(z);
  }

  constexpr void Add(Zone z) noexcept {
    bits_ |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(z));
  }
  [[nodiscard]] constexpr bool Contains(Zone z) const noexcept {
    return (bits_ >> static_cast<unsigned>(z)) & 1u;
  }
  [[nodiscard]] constexpr bool Intersects(ZoneSet o) const noexcept {
    return (bits_ & o.bits_) != 0;
  }
  /// True when every zone in `o` is present in this set.
  [[nodiscard]] constexpr bool Covers(ZoneSet o) const noexcept {
    return (bits_ & o.bits_) == o.bits_;
  }
  [[nodiscard]] constexpr bool Empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] constexpr std::uint8_t bits() const noexcept { return bits_; }

  friend constexpr bool operator==(ZoneSet, ZoneSet) = default;

  /// The "all zones" wildcard of the paper's Rule 3.
  [[nodiscard]] static constexpr ZoneSet All() {
    return ZoneSet{Zone::kEU, Zone::kUS, Zone::kAPAC, Zone::kOnPrem};
  }

  [[nodiscard]] std::string ToString() const {
    std::string out;
    for (Zone z : {Zone::kEU, Zone::kUS, Zone::kAPAC, Zone::kOnPrem}) {
      if (!Contains(z)) continue;
      if (!out.empty()) out += ",";
      out += ZoneName(z);
    }
    return out.empty() ? "none" : out;
  }

 private:
  std::uint8_t bits_ = 0;
};

}  // namespace scalia::provider
