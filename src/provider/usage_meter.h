// Per-provider usage metering.
//
// The evaluation figures 12/15/17 plot "total amount of resources from the
// storage providers used by Scalia" — storage, bandwidth in, bandwidth out —
// per sampling period.  The meter integrates stored bytes over time
// (byte-hours) and counts transfer volumes and operations, then rolls the
// counters into a PeriodUsage at each sampling boundary.
#pragma once

#include <vector>

#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "provider/pricing.h"

namespace scalia::provider {

/// The meter's complete internal state, for checkpointing the billing
/// counters across process restarts (durability subsystem).
struct UsageMeterSnapshot {
  common::SimTime period_start = 0;
  common::SimTime last_storage_change = 0;
  common::Bytes stored = 0;
  double period_byte_hours = 0.0;
  double total_byte_hours = 0.0;
  PeriodUsage period{};
  PeriodUsage totals{};
};

class UsageMeter {
 public:
  explicit UsageMeter(common::SimTime start = 0)
      : period_start_(start), last_storage_change_(start) {}

  /// Records an upload of `bytes` (one PUT operation).
  void RecordPut(common::SimTime now, common::Bytes bytes);
  /// Records a download of `bytes` (one GET operation).
  void RecordGet(common::SimTime now, common::Bytes bytes);
  /// Records an operation with no payload (DELETE, LIST, HEAD).
  void RecordOp(common::SimTime now);
  /// Updates the currently stored byte count (after a put or delete).
  void SetStoredBytes(common::SimTime now, common::Bytes bytes);
  [[nodiscard]] common::Bytes stored_bytes() const;

  /// Closes the sampling period ending at `now` and returns its usage.
  PeriodUsage EndPeriod(common::SimTime now);

  /// Running totals since construction (for the resource plots).
  [[nodiscard]] PeriodUsage Totals(common::SimTime now) const;

  /// Checkpoint support: captures / replaces the full counter state.
  [[nodiscard]] UsageMeterSnapshot Snapshot() const;
  void Restore(const UsageMeterSnapshot& snapshot);

 private:
  void AccrueStorageLocked(common::SimTime now) REQUIRES(mu_);

  mutable common::Mutex mu_;
  common::SimTime period_start_ GUARDED_BY(mu_);
  common::SimTime last_storage_change_ GUARDED_BY(mu_);
  common::Bytes stored_ GUARDED_BY(mu_) = 0;
  double period_byte_hours_ GUARDED_BY(mu_) = 0.0;
  PeriodUsage period_ GUARDED_BY(mu_){};
  PeriodUsage totals_ GUARDED_BY(mu_){};
  double total_byte_hours_ GUARDED_BY(mu_) = 0.0;
};

}  // namespace scalia::provider
