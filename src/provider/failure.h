// Provider failure schedules.
//
// The evaluation injects transient provider outages (S3(l) unreachable from
// hour 60 to hour 120 in §IV-E) and permanent events such as new-provider
// arrival.  A FailureSchedule is an ordered list of half-open outage windows
// [from, to); a provider is reachable at time t iff t lies in no window.
#pragma once

#include <algorithm>
#include <vector>

#include "common/sim_time.h"

namespace scalia::provider {

class FailureSchedule {
 public:
  FailureSchedule() = default;

  /// Adds outage window [from, to).  Overlapping and adjacent windows are
  /// merged on insert, so the stored list is always sorted and disjoint —
  /// which is what makes the single forward pass in NextAvailable exact
  /// (a jump can never land back inside an earlier window).
  void AddOutage(common::SimTime from, common::SimTime to) {
    if (to <= from) return;  // zero-length or inverted: no outage
    Window merged{from, to};
    std::vector<Window> out;
    out.reserve(windows_.size() + 1);
    for (const auto& w : windows_) {
      if (w.to < merged.from || w.from > merged.to) {
        out.push_back(w);  // strictly before or after, no touch
      } else {
        merged.from = std::min(merged.from, w.from);
        merged.to = std::max(merged.to, w.to);
      }
    }
    out.push_back(merged);
    std::sort(out.begin(), out.end());
    windows_ = std::move(out);
  }

  [[nodiscard]] bool IsAvailable(common::SimTime t) const noexcept {
    for (const auto& w : windows_) {
      if (t >= w.from && t < w.to) return false;
      if (w.from > t) break;
    }
    return true;
  }

  /// Earliest time >= t at which the provider is available again; returns t
  /// itself if already available.  Windows are disjoint and sorted (merge on
  /// insert), so one forward pass suffices.
  [[nodiscard]] common::SimTime NextAvailable(common::SimTime t) const {
    common::SimTime cur = t;
    for (const auto& w : windows_) {
      if (cur >= w.from && cur < w.to) cur = w.to;
    }
    return cur;
  }

  [[nodiscard]] bool Empty() const noexcept { return windows_.empty(); }

  [[nodiscard]] std::size_t WindowCount() const noexcept {
    return windows_.size();
  }

 private:
  struct Window {
    common::SimTime from;
    common::SimTime to;
    friend constexpr auto operator<=>(const Window&, const Window&) = default;
  };
  std::vector<Window> windows_;
};

}  // namespace scalia::provider
