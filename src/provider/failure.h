// Provider failure schedules.
//
// The evaluation injects transient provider outages (S3(l) unreachable from
// hour 60 to hour 120 in §IV-E) and permanent events such as new-provider
// arrival.  A FailureSchedule is an ordered list of half-open outage windows
// [from, to); a provider is reachable at time t iff t lies in no window.
#pragma once

#include <algorithm>
#include <vector>

#include "common/sim_time.h"

namespace scalia::provider {

class FailureSchedule {
 public:
  FailureSchedule() = default;

  /// Adds outage window [from, to).
  void AddOutage(common::SimTime from, common::SimTime to) {
    if (to <= from) return;
    windows_.push_back({from, to});
    std::sort(windows_.begin(), windows_.end());
  }

  [[nodiscard]] bool IsAvailable(common::SimTime t) const noexcept {
    for (const auto& w : windows_) {
      if (t >= w.from && t < w.to) return false;
      if (w.from > t) break;
    }
    return true;
  }

  /// Earliest time >= t at which the provider is available again; returns t
  /// itself if already available.
  [[nodiscard]] common::SimTime NextAvailable(common::SimTime t) const {
    common::SimTime cur = t;
    for (const auto& w : windows_) {
      if (cur >= w.from && cur < w.to) cur = w.to;
    }
    return cur;
  }

  [[nodiscard]] bool Empty() const noexcept { return windows_.empty(); }

 private:
  struct Window {
    common::SimTime from;
    common::SimTime to;
    friend constexpr auto operator<=>(const Window&, const Window&) = default;
  };
  std::vector<Window> windows_;
};

}  // namespace scalia::provider
