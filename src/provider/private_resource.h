// Private storage resources with an authenticated S3-compatible interface.
//
// §III-E: a corporate resource (workstation, NAS, dedicated server) exposes
// a lightweight web service with an S3-like REST interface.  Requests are
// authenticated by an HMAC of the request parameters under a private token;
// a timestamp in the signed payload prevents replay.  This module implements
// that protocol faithfully over the in-process store: the client signs
// requests, the service verifies signature + timestamp freshness + replay
// cache before touching the store.
#pragma once

#include <deque>
#include <string>
#include <unordered_set>

#include "common/mutex.h"
#include "common/sha256.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "provider/store.h"

namespace scalia::provider {

/// A signed request as it would travel over the wire.
struct SignedRequest {
  std::string verb;       // "PUT" | "GET" | "DELETE" | "LIST"
  std::string key;        // object key (or prefix for LIST)
  std::string body;       // payload for PUT, empty otherwise
  common::SimTime timestamp = 0;
  std::string signature_hex;  // HMAC-SHA256 over the canonical string
};

/// Canonical string-to-sign: verb|key|timestamp|SHA256(body).
[[nodiscard]] std::string CanonicalString(const SignedRequest& req);

/// Client-side signer holding the private token.
class RequestSigner {
 public:
  explicit RequestSigner(std::string token) : token_(std::move(token)) {}

  [[nodiscard]] SignedRequest Sign(std::string verb, std::string key,
                                   std::string body,
                                   common::SimTime now) const;

 private:
  std::string token_;
};

/// The standalone web service deployed on the private resource.
class PrivateResourceService {
 public:
  /// `replay_window` bounds how old a signed timestamp may be; requests
  /// outside it (or replayed inside it) are rejected.
  PrivateResourceService(ProviderSpec spec, std::string token,
                         common::Duration replay_window = common::kMinute * 5)
      : store_(std::move(spec)),
        token_(std::move(token)),
        replay_window_(replay_window) {}

  /// Verifies authentication and dispatches to the store.  On success for
  /// GET, `response_body` receives the object bytes; for LIST it receives
  /// the newline-joined keys.
  common::Status Handle(const SignedRequest& req, common::SimTime now,
                        std::string* response_body);

  [[nodiscard]] SimulatedProviderStore& store() noexcept { return store_; }

 private:
  common::Status Authenticate(const SignedRequest& req, common::SimTime now);

  SimulatedProviderStore store_;
  std::string token_;
  common::Duration replay_window_;
  common::Mutex mu_;
  // Recent signatures within the replay window, with eviction order.
  std::unordered_set<std::string> seen_signatures_ GUARDED_BY(mu_);
  std::deque<std::pair<common::SimTime, std::string>> seen_order_
      GUARDED_BY(mu_);
};

}  // namespace scalia::provider
