#include "provider/usage_meter.h"

namespace scalia::provider {

void UsageMeter::AccrueStorageLocked(common::SimTime now) {
  if (now <= last_storage_change_) return;
  const double hours = common::ToHours(now - last_storage_change_);
  const double byte_hours = static_cast<double>(stored_) * hours;
  period_byte_hours_ += byte_hours;
  total_byte_hours_ += byte_hours;
  last_storage_change_ = now;
}

void UsageMeter::RecordPut(common::SimTime now, common::Bytes bytes) {
  std::lock_guard lock(mu_);
  AccrueStorageLocked(now);
  const double gb = common::ToGB(bytes);
  period_.bw_in_gb += gb;
  period_.ops += 1.0;
  totals_.bw_in_gb += gb;
  totals_.ops += 1.0;
}

void UsageMeter::RecordGet(common::SimTime now, common::Bytes bytes) {
  std::lock_guard lock(mu_);
  AccrueStorageLocked(now);
  const double gb = common::ToGB(bytes);
  period_.bw_out_gb += gb;
  period_.ops += 1.0;
  totals_.bw_out_gb += gb;
  totals_.ops += 1.0;
}

void UsageMeter::RecordOp(common::SimTime now) {
  std::lock_guard lock(mu_);
  AccrueStorageLocked(now);
  period_.ops += 1.0;
  totals_.ops += 1.0;
}

void UsageMeter::SetStoredBytes(common::SimTime now, common::Bytes bytes) {
  std::lock_guard lock(mu_);
  AccrueStorageLocked(now);
  stored_ = bytes;
}

common::Bytes UsageMeter::stored_bytes() const {
  std::lock_guard lock(mu_);
  return stored_;
}

PeriodUsage UsageMeter::EndPeriod(common::SimTime now) {
  std::lock_guard lock(mu_);
  AccrueStorageLocked(now);
  PeriodUsage out = period_;
  out.storage_gb_hours =
      period_byte_hours_ / static_cast<double>(common::kGB);
  period_ = PeriodUsage{};
  period_byte_hours_ = 0.0;
  period_start_ = now;
  return out;
}

PeriodUsage UsageMeter::Totals(common::SimTime now) const {
  std::lock_guard lock(mu_);
  const_cast<UsageMeter*>(this)->AccrueStorageLocked(now);
  PeriodUsage out = totals_;
  out.storage_gb_hours = total_byte_hours_ / static_cast<double>(common::kGB);
  return out;
}

}  // namespace scalia::provider
