#include "provider/usage_meter.h"

namespace scalia::provider {

void UsageMeter::AccrueStorageLocked(common::SimTime now) {
  if (now <= last_storage_change_) return;
  const double hours = common::ToHours(now - last_storage_change_);
  const double byte_hours = static_cast<double>(stored_) * hours;
  period_byte_hours_ += byte_hours;
  total_byte_hours_ += byte_hours;
  last_storage_change_ = now;
}

void UsageMeter::RecordPut(common::SimTime now, common::Bytes bytes) {
  common::MutexLock lock(mu_);
  AccrueStorageLocked(now);
  const double gb = common::ToGB(bytes);
  period_.bw_in_gb += gb;
  period_.ops += 1.0;
  totals_.bw_in_gb += gb;
  totals_.ops += 1.0;
}

void UsageMeter::RecordGet(common::SimTime now, common::Bytes bytes) {
  common::MutexLock lock(mu_);
  AccrueStorageLocked(now);
  const double gb = common::ToGB(bytes);
  period_.bw_out_gb += gb;
  period_.ops += 1.0;
  totals_.bw_out_gb += gb;
  totals_.ops += 1.0;
}

void UsageMeter::RecordOp(common::SimTime now) {
  common::MutexLock lock(mu_);
  AccrueStorageLocked(now);
  period_.ops += 1.0;
  totals_.ops += 1.0;
}

void UsageMeter::SetStoredBytes(common::SimTime now, common::Bytes bytes) {
  common::MutexLock lock(mu_);
  AccrueStorageLocked(now);
  stored_ = bytes;
}

common::Bytes UsageMeter::stored_bytes() const {
  common::MutexLock lock(mu_);
  return stored_;
}

PeriodUsage UsageMeter::EndPeriod(common::SimTime now) {
  common::MutexLock lock(mu_);
  AccrueStorageLocked(now);
  PeriodUsage out = period_;
  out.storage_gb_hours =
      period_byte_hours_ / static_cast<double>(common::kGB);
  period_ = PeriodUsage{};
  period_byte_hours_ = 0.0;
  period_start_ = now;
  return out;
}

UsageMeterSnapshot UsageMeter::Snapshot() const {
  common::MutexLock lock(mu_);
  UsageMeterSnapshot snap;
  snap.period_start = period_start_;
  snap.last_storage_change = last_storage_change_;
  snap.stored = stored_;
  snap.period_byte_hours = period_byte_hours_;
  snap.total_byte_hours = total_byte_hours_;
  snap.period = period_;
  snap.totals = totals_;
  return snap;
}

void UsageMeter::Restore(const UsageMeterSnapshot& snapshot) {
  common::MutexLock lock(mu_);
  period_start_ = snapshot.period_start;
  last_storage_change_ = snapshot.last_storage_change;
  stored_ = snapshot.stored;
  period_byte_hours_ = snapshot.period_byte_hours;
  total_byte_hours_ = snapshot.total_byte_hours;
  period_ = snapshot.period;
  totals_ = snapshot.totals;
}

PeriodUsage UsageMeter::Totals(common::SimTime now) const {
  common::MutexLock lock(mu_);
  const_cast<UsageMeter*>(this)->AccrueStorageLocked(now);
  PeriodUsage out = totals_;
  out.storage_gb_hours = total_byte_hours_ / static_cast<double>(common::kGB);
  return out;
}

}  // namespace scalia::provider
