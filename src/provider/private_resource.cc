#include "provider/private_resource.h"

#include "common/string_util.h"

namespace scalia::provider {

std::string CanonicalString(const SignedRequest& req) {
  std::string s;
  s += req.verb;
  s += '|';
  s += req.key;
  s += '|';
  s += std::to_string(req.timestamp);
  s += '|';
  s += common::Sha256::HexHash(req.body);
  return s;
}

SignedRequest RequestSigner::Sign(std::string verb, std::string key,
                                  std::string body,
                                  common::SimTime now) const {
  SignedRequest req;
  req.verb = std::move(verb);
  req.key = std::move(key);
  req.body = std::move(body);
  req.timestamp = now;
  req.signature_hex =
      common::ToHex(common::HmacSha256(token_, CanonicalString(req)));
  return req;
}

common::Status PrivateResourceService::Authenticate(const SignedRequest& req,
                                                    common::SimTime now) {
  // Freshness: reject timestamps outside the replay window (either stale or
  // from the future beyond clock-skew tolerance).
  if (req.timestamp > now + replay_window_ ||
      req.timestamp + replay_window_ < now) {
    return common::Status::Unauthenticated("request timestamp outside window");
  }
  const common::Sha256Digest expected =
      common::HmacSha256(token_, CanonicalString(req));
  const std::string expected_hex = common::ToHex(expected);
  // Compare as fixed-length hex through the constant-time digest routine.
  if (expected_hex.size() != req.signature_hex.size()) {
    return common::Status::Unauthenticated("bad signature length");
  }
  common::Sha256Digest got{};
  bool parse_ok = req.signature_hex.size() == 64;
  if (parse_ok) {
    auto nibble = [&parse_ok](char c) -> std::uint8_t {
      if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
      if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
      parse_ok = false;
      return 0;
    };
    for (std::size_t i = 0; i < 32; ++i) {
      got[i] = static_cast<std::uint8_t>(
          (nibble(req.signature_hex[2 * i]) << 4) |
          nibble(req.signature_hex[2 * i + 1]));
    }
  }
  if (!parse_ok || !common::DigestEquals(expected, got)) {
    return common::Status::Unauthenticated("signature mismatch");
  }
  // Replay protection: a given signature is accepted at most once within the
  // window.
  common::MutexLock lock(mu_);
  while (!seen_order_.empty() &&
         seen_order_.front().first + replay_window_ < now) {
    seen_signatures_.erase(seen_order_.front().second);
    seen_order_.pop_front();
  }
  if (!seen_signatures_.insert(req.signature_hex).second) {
    return common::Status::Unauthenticated("replayed request");
  }
  seen_order_.emplace_back(req.timestamp, req.signature_hex);
  return common::Status::Ok();
}

common::Status PrivateResourceService::Handle(const SignedRequest& req,
                                              common::SimTime now,
                                              std::string* response_body) {
  if (auto s = Authenticate(req, now); !s.ok()) return s;
  if (req.verb == "PUT") {
    return store_.Put(now, req.key, req.body);
  }
  if (req.verb == "GET") {
    auto blob = store_.Get(now, req.key);
    if (!blob.ok()) return blob.status();
    if (response_body != nullptr) *response_body = std::move(*blob);
    return common::Status::Ok();
  }
  if (req.verb == "DELETE") {
    return store_.Delete(now, req.key);
  }
  if (req.verb == "LIST") {
    auto keys = store_.List(now, req.key);
    if (!keys.ok()) return keys.status();
    if (response_body != nullptr) {
      *response_body = common::Join(*keys, "\n");
    }
    return common::Status::Ok();
  }
  return common::Status::InvalidArgument("unknown verb " + req.verb);
}

}  // namespace scalia::provider
