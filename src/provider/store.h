// SimulatedProviderStore: the cloud-provider substitute.
//
// The paper's evaluation runs against real providers' *pricing* only ("we
// only present here results coming from a simulator"); this class gives the
// engine a fully functional object store per provider — put/get/delete/list
// over opaque blobs keyed by skey — with metered usage, failure windows and
// optional capacity limits, so every engine code path (§III-D) executes for
// real.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "provider/failure.h"
#include "provider/fault_hook.h"
#include "provider/spec.h"
#include "provider/usage_meter.h"

namespace scalia::provider {

class SimulatedProviderStore {
 public:
  explicit SimulatedProviderStore(ProviderSpec spec)
      : spec_(std::move(spec)) {}

  [[nodiscard]] const ProviderSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] FailureSchedule& failures() noexcept { return failures_; }
  [[nodiscard]] const FailureSchedule& failures() const noexcept {
    return failures_;
  }
  [[nodiscard]] UsageMeter& meter() noexcept { return meter_; }
  [[nodiscard]] const UsageMeter& meter() const noexcept { return meter_; }

  [[nodiscard]] bool IsAvailable(common::SimTime now) const {
    if (!failures_.IsAvailable(now)) return false;
    if (auto* hook = fault_hook_.load(std::memory_order_acquire)) {
      return !hook->IsDark(spec_.id, now);
    }
    return true;
  }

  /// Installs (or clears, with nullptr) the fault hook consulted on every
  /// operation.  Normally installed registry-wide via
  /// ProviderRegistry::SetFaultHook; the hook must outlive the store.
  void SetFaultHook(FaultHook* hook) {
    fault_hook_.store(hook, std::memory_order_release);
  }

  /// Stores `blob` under `key`.  Fails Unavailable during an outage window,
  /// ResourceExhausted when a private resource's capacity would be exceeded,
  /// InvalidArgument when the blob violates the provider's max chunk size.
  common::Status Put(common::SimTime now, const std::string& key,
                     std::string blob);

  /// Retrieves the blob stored under `key`.
  common::Result<std::string> Get(common::SimTime now, const std::string& key);

  /// Deletes `key`; deleting a missing key reports NotFound.
  common::Status Delete(common::SimTime now, const std::string& key);

  /// Lists keys with the given prefix (billed as one operation).
  common::Result<std::vector<std::string>> List(common::SimTime now,
                                                const std::string& prefix);

  [[nodiscard]] std::size_t ObjectCount() const;
  [[nodiscard]] common::Bytes StoredBytes() const;

 private:
  common::Status CheckReachable(common::SimTime now) const;

  /// Consults the fault hook for one op: applies injected latency, reports
  /// darkness/brownout failures to the health EWMA, and returns the status
  /// the op must fail with (Ok to proceed).
  common::Status BeginOp(common::SimTime now, OpKind op) const;

  /// Reports a completed (non-injected-fault) op outcome to the hook.
  void EndOp(OpKind op, bool ok) const;

  ProviderSpec spec_;
  FailureSchedule failures_;
  std::atomic<FaultHook*> fault_hook_{nullptr};
  UsageMeter meter_;
  mutable common::Mutex mu_;
  std::map<std::string, std::string> objects_ GUARDED_BY(mu_);
  common::Bytes stored_bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace scalia::provider
