#include "provider/registry.h"

#include <algorithm>

namespace scalia::provider {

common::Status ProviderRegistry::Register(ProviderSpec spec) {
  std::lock_guard lock(mu_);
  for (auto& [id, entry] : entries_) {
    if (id == spec.id) {
      if (entry.registered) {
        return common::Status::Conflict("provider " + spec.id +
                                        " already registered");
      }
      entry.registered = true;  // re-registration after an unregister
      return common::Status::Ok();
    }
  }
  ProviderId id = spec.id;
  Entry entry;
  entry.store = std::make_unique<SimulatedProviderStore>(std::move(spec));
  entries_.emplace_back(std::move(id), std::move(entry));
  return common::Status::Ok();
}

common::Status ProviderRegistry::Unregister(const ProviderId& id) {
  std::lock_guard lock(mu_);
  for (auto& [eid, entry] : entries_) {
    if (eid == id && entry.registered) {
      entry.registered = false;
      return common::Status::Ok();
    }
  }
  return common::Status::NotFound("provider " + id + " not registered");
}

SimulatedProviderStore* ProviderRegistry::Find(const ProviderId& id) {
  std::lock_guard lock(mu_);
  for (auto& [eid, entry] : entries_) {
    if (eid == id) return entry.store.get();
  }
  return nullptr;
}

std::vector<ProviderSpec> ProviderRegistry::Specs() const {
  std::lock_guard lock(mu_);
  std::vector<ProviderSpec> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.registered) out.push_back(entry.store->spec());
  }
  return out;
}

std::vector<ProviderSpec> ProviderRegistry::AvailableSpecs(
    common::SimTime now) const {
  std::lock_guard lock(mu_);
  std::vector<ProviderSpec> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.registered && entry.store->IsAvailable(now)) {
      out.push_back(entry.store->spec());
    }
  }
  return out;
}

std::size_t ProviderRegistry::Count() const {
  std::lock_guard lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const auto& e) { return e.second.registered; }));
}

}  // namespace scalia::provider
