#include "provider/registry.h"

#include <algorithm>

namespace scalia::provider {

common::Status ProviderRegistry::Register(ProviderSpec spec) {
  common::MutexLock lock(mu_);
  for (auto& [id, entry] : entries_) {
    if (id == spec.id) {
      if (entry.registered) {
        return common::Status::Conflict("provider " + spec.id +
                                        " already registered");
      }
      entry.registered = true;  // re-registration after an unregister
      return common::Status::Ok();
    }
  }
  ProviderId id = spec.id;
  Entry entry;
  entry.store = std::make_unique<SimulatedProviderStore>(std::move(spec));
  entry.store->SetFaultHook(fault_hook_);
  entries_.emplace_back(std::move(id), std::move(entry));
  return common::Status::Ok();
}

void ProviderRegistry::SetFaultHook(FaultHook* hook) {
  common::MutexLock lock(mu_);
  fault_hook_ = hook;
  for (auto& [id, entry] : entries_) entry.store->SetFaultHook(hook);
}

ProviderSpec ProviderRegistry::ShockedSpec(const ProviderSpec& spec,
                                           common::SimTime now) const {
  if (fault_hook_ == nullptr) return spec;
  const double mult = fault_hook_->PriceMultiplier(spec.id, now);
  if (mult == 1.0) return spec;
  ProviderSpec shocked = spec;
  shocked.pricing.storage_gb_month *= mult;
  shocked.pricing.bw_in_gb *= mult;
  shocked.pricing.bw_out_gb *= mult;
  shocked.pricing.ops_per_1000 *= mult;
  return shocked;
}

common::Status ProviderRegistry::Unregister(const ProviderId& id) {
  common::MutexLock lock(mu_);
  for (auto& [eid, entry] : entries_) {
    if (eid == id && entry.registered) {
      entry.registered = false;
      return common::Status::Ok();
    }
  }
  return common::Status::NotFound("provider " + id + " not registered");
}

SimulatedProviderStore* ProviderRegistry::Find(const ProviderId& id) {
  common::MutexLock lock(mu_);
  for (auto& [eid, entry] : entries_) {
    if (eid == id) return entry.store.get();
  }
  return nullptr;
}

std::vector<ProviderSpec> ProviderRegistry::Specs() const {
  common::MutexLock lock(mu_);
  std::vector<ProviderSpec> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.registered) out.push_back(entry.store->spec());
  }
  return out;
}

std::vector<ProviderSpec> ProviderRegistry::Specs(common::SimTime now) const {
  common::MutexLock lock(mu_);
  std::vector<ProviderSpec> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.registered) out.push_back(ShockedSpec(entry.store->spec(), now));
  }
  return out;
}

std::vector<ProviderSpec> ProviderRegistry::AvailableSpecs(
    common::SimTime now) const {
  common::MutexLock lock(mu_);
  std::vector<ProviderSpec> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.registered && entry.store->IsAvailable(now)) {
      out.push_back(ShockedSpec(entry.store->spec(), now));
    }
  }
  return out;
}

std::size_t ProviderRegistry::Count() const {
  common::MutexLock lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const auto& e) { return e.second.registered; }));
}

}  // namespace scalia::provider
