// Provider specifications: SLA, pricing, zones, and constraints.
//
// Mirrors the catalog of Fig. 3.  Prices are USD per GB for storage (per
// GB·month), bandwidth in and out (per GB moved), and USD per 1000 requests
// for operations.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/money.h"
#include "common/units.h"
#include "provider/types.h"

namespace scalia::provider {

/// Service-level agreement, as advertised fractions (0.999 = 99.9 %).
struct Sla {
  double durability = 0.0;
  double availability = 0.0;
};

/// Catalog prices, Fig. 3 units.
struct PricingPolicy {
  double storage_gb_month = 0.0;  // USD per GB per billing month
  double bw_in_gb = 0.0;          // USD per GB uploaded
  double bw_out_gb = 0.0;         // USD per GB downloaded
  double ops_per_1000 = 0.0;      // USD per 1000 requests

  friend bool operator==(const PricingPolicy&, const PricingPolicy&) = default;
};

/// A public cloud storage provider or a registered private resource.
struct ProviderSpec {
  ProviderId id;
  std::string description;
  Sla sla;
  ZoneSet zones;
  PricingPolicy pricing;

  /// Typical time-to-first-byte for a chunk GET, used by the
  /// latency-minimizing placement objective (§I: "minimizing query latency
  /// by promoting the most high-performing providers").  Chunk fetches run
  /// in parallel, so an object read's latency is the max over the m chunks.
  double read_latency_ms = 50.0;

  /// Providers may constrain chunk sizes (§III-A.2); a set containing a
  /// provider whose max chunk size is exceeded is evaluated against the
  /// alternative of excluding that provider.
  std::optional<common::Bytes> max_chunk_size;

  /// Private resources (§III-E) advertise a hard capacity the placement
  /// must not exceed ("will never grow beyond the limit set in the
  /// properties of the resource").
  std::optional<common::Bytes> capacity;

  [[nodiscard]] bool is_private() const noexcept {
    return zones.Contains(Zone::kOnPrem);
  }
};

/// The five public providers of the paper's evaluation (Fig. 3), in the
/// paper's order: S3(h), S3(l), RS, Azu, Ggl.
[[nodiscard]] std::vector<ProviderSpec> PaperCatalog();

/// The "CheapStor" provider registered at hour 400 of §IV-D.
[[nodiscard]] ProviderSpec CheapStorSpec();

/// Looks a provider up by id in a catalog; nullptr when absent.
[[nodiscard]] const ProviderSpec* FindSpec(
    const std::vector<ProviderSpec>& catalog, const ProviderId& id);

}  // namespace scalia::provider
