// Cost computation: pricing policy x metered usage.
//
// Storage can be billed in two modes (DESIGN.md §3):
//  * kProrated  — the catalog GB·month rate pro-rated by the fraction of a
//                 billing month the sampling period covers (physically
//                 correct cloud billing).
//  * kPerPeriod — the catalog rate charged per GB per sampling period; this
//                 reproduces the absolute magnitudes of the paper's Fig. 18.
// Relative (percent-over-ideal) results are reported in both modes by the
// benches.
#pragma once

#include "common/money.h"
#include "common/sim_time.h"
#include "provider/spec.h"

namespace scalia::provider {

enum class StorageBillingMode { kProrated, kPerPeriod };

[[nodiscard]] constexpr const char* BillingModeName(StorageBillingMode m) {
  return m == StorageBillingMode::kProrated ? "prorated" : "per-period";
}

/// Usage of one provider over one sampling period, in billing units.
struct PeriodUsage {
  double storage_gb_hours = 0.0;  // integral of stored GB over the period
  double bw_in_gb = 0.0;
  double bw_out_gb = 0.0;
  double ops = 0.0;  // request count

  PeriodUsage& operator+=(const PeriodUsage& o) {
    storage_gb_hours += o.storage_gb_hours;
    bw_in_gb += o.bw_in_gb;
    bw_out_gb += o.bw_out_gb;
    ops += o.ops;
    return *this;
  }
};

/// Cost of `usage` under `pricing` for a sampling period of length `period`.
[[nodiscard]] common::Money CostOf(const PricingPolicy& pricing,
                                   const PeriodUsage& usage,
                                   common::Duration period,
                                   StorageBillingMode mode);

}  // namespace scalia::provider
