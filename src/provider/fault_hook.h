// FaultHook: the seam between the provider substrate and src/chaos/.
//
// A hook installed on the registry (and thereby on every store, including
// ones registered later) gets to veto or degrade every provider operation:
// full outages and partitions make a provider dark, brownouts inject latency
// and a per-op error rate, and price shocks scale the spec pricing that the
// optimizer and billing read.  The stores report each op outcome back so the
// hook can maintain observed health (error-rate EWMA) — the signal the
// optimizer's availability-driven re-placement consumes.
//
// The interface lives in provider/ (not chaos/) so the substrate never
// depends on the chaos subsystem; src/chaos/fault_injector.h implements it.
#pragma once

#include "common/sim_time.h"
#include "provider/spec.h"

namespace scalia::provider {

/// Operation classes a hook can distinguish (brownouts typically target the
/// data path, i.e. Get/Put).
enum class OpKind { kGet, kPut, kDelete, kList };

/// Per-operation fault decision.
struct FaultVerdict {
  bool unavailable = false;  // provider dark: fail with Unavailable
  bool fail_op = false;      // brownout error: this one op fails
  int latency_us = 0;        // injected wall-clock latency for this op
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Decision for one operation about to run against `id` at `now`.
  virtual FaultVerdict OnOp(const ProviderId& id, OpKind op,
                            common::SimTime now) = 0;

  /// Reachability consult with no operation attached (IsAvailable /
  /// AvailableSpecs): true when the provider should be treated as dark.
  virtual bool IsDark(const ProviderId& id, common::SimTime now) const = 0;

  /// Outcome report for the health EWMA.  `ok` is false for injected faults
  /// and for darkness; organic errors (NotFound, capacity) are not reported.
  virtual void RecordOutcome(const ProviderId& id, OpKind op, bool ok) = 0;

  /// Multiplier applied to `id`'s pricing at `now` (price shocks); 1.0 when
  /// no shock is active.
  virtual double PriceMultiplier(const ProviderId& id,
                                 common::SimTime now) const = 0;
};

}  // namespace scalia::provider
