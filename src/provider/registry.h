// ProviderRegistry: the dynamic, non-static set of storage resources.
//
// Scalia orchestrates "a non-static set of public cloud and corporate-owned
// private storage resources" (§I): providers appear (CheapStor at hour 400
// in §IV-D), disappear, and fail transiently.  The registry owns one
// SimulatedProviderStore per provider and hands the placement engine
// immutable snapshots of the currently registered specs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "provider/store.h"

namespace scalia::provider {

class ProviderRegistry {
 public:
  ProviderRegistry() = default;

  /// Registers a provider; fails with Conflict when the id already exists.
  common::Status Register(ProviderSpec spec);

  /// Unregisters a provider (e.g. business shutdown).  Chunks stored there
  /// become unreachable; the caller is responsible for repairs.
  common::Status Unregister(const ProviderId& id);

  /// Provider store lookup; nullptr when unknown.  The pointer stays valid
  /// for the registry's lifetime (stores are never destroyed, matching the
  /// real world where a vanished provider's data is simply unreachable).
  [[nodiscard]] SimulatedProviderStore* Find(const ProviderId& id);

  /// Snapshot of the currently registered specs, in registration order.
  [[nodiscard]] std::vector<ProviderSpec> Specs() const;

  /// Same snapshot but priced at `now`: any active price shock from the
  /// installed fault hook is applied to each spec's pricing, so billing and
  /// cost reports see the shocked tariffs the optimizer places against.
  [[nodiscard]] std::vector<ProviderSpec> Specs(common::SimTime now) const;

  /// Specs of providers registered *and* reachable at `now`; this is the
  /// P(obj) the placement algorithm sees during failures (§III-D.3: "Scalia
  /// will choose the best placement that does not include the faulty
  /// provider").
  [[nodiscard]] std::vector<ProviderSpec> AvailableSpecs(
      common::SimTime now) const;

  [[nodiscard]] std::size_t Count() const;

  /// Installs `hook` on every store (including ones registered later) and
  /// applies its price multipliers to the spec snapshots above, so the
  /// placement engine, optimizer and billing all price the same degraded
  /// world.  Pass nullptr to uninstall.  The hook must outlive the registry.
  void SetFaultHook(FaultHook* hook);

 private:
  struct Entry {
    std::unique_ptr<SimulatedProviderStore> store;
    bool registered = true;
  };

  /// Returns `spec` with any active price shock applied.
  [[nodiscard]] ProviderSpec ShockedSpec(const ProviderSpec& spec,
                                         common::SimTime now) const
      REQUIRES(mu_);

  mutable common::Mutex mu_;
  std::vector<std::pair<ProviderId, Entry>> entries_ GUARDED_BY(mu_);
  FaultHook* fault_hook_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace scalia::provider
