#include "provider/store.h"

namespace scalia::provider {

common::Status SimulatedProviderStore::CheckReachable(
    common::SimTime now) const {
  if (!failures_.IsAvailable(now)) {
    return common::Status::Unavailable("provider " + spec_.id +
                                       " is unreachable");
  }
  return common::Status::Ok();
}

common::Status SimulatedProviderStore::Put(common::SimTime now,
                                           const std::string& key,
                                           std::string blob) {
  if (auto s = CheckReachable(now); !s.ok()) return s;
  if (spec_.max_chunk_size && blob.size() > *spec_.max_chunk_size) {
    return common::Status::InvalidArgument(
        "blob exceeds max chunk size of provider " + spec_.id);
  }
  const auto blob_size = static_cast<common::Bytes>(blob.size());
  {
    std::lock_guard lock(mu_);
    common::Bytes new_total = stored_bytes_ + blob_size;
    if (auto it = objects_.find(key); it != objects_.end()) {
      new_total -= static_cast<common::Bytes>(it->second.size());
    }
    if (spec_.capacity && new_total > *spec_.capacity) {
      return common::Status::ResourceExhausted(
          "capacity of private resource " + spec_.id + " exceeded");
    }
    auto it = objects_.find(key);
    if (it != objects_.end()) {
      stored_bytes_ -= static_cast<common::Bytes>(it->second.size());
      it->second = std::move(blob);
    } else {
      objects_.emplace(key, std::move(blob));
    }
    stored_bytes_ += blob_size;
    meter_.RecordPut(now, blob_size);
    meter_.SetStoredBytes(now, stored_bytes_);
  }
  return common::Status::Ok();
}

common::Result<std::string> SimulatedProviderStore::Get(
    common::SimTime now, const std::string& key) {
  if (auto s = CheckReachable(now); !s.ok()) return s;
  std::lock_guard lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return common::Status::NotFound("key " + key + " not at provider " +
                                    spec_.id);
  }
  meter_.RecordGet(now, static_cast<common::Bytes>(it->second.size()));
  return it->second;
}

common::Status SimulatedProviderStore::Delete(common::SimTime now,
                                              const std::string& key) {
  if (auto s = CheckReachable(now); !s.ok()) return s;
  std::lock_guard lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return common::Status::NotFound("key " + key + " not at provider " +
                                    spec_.id);
  }
  stored_bytes_ -= static_cast<common::Bytes>(it->second.size());
  objects_.erase(it);
  meter_.RecordOp(now);
  meter_.SetStoredBytes(now, stored_bytes_);
  return common::Status::Ok();
}

common::Result<std::vector<std::string>> SimulatedProviderStore::List(
    common::SimTime now, const std::string& prefix) {
  if (auto s = CheckReachable(now); !s.ok()) return s;
  std::lock_guard lock(mu_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  meter_.RecordOp(now);
  return keys;
}

std::size_t SimulatedProviderStore::ObjectCount() const {
  std::lock_guard lock(mu_);
  return objects_.size();
}

common::Bytes SimulatedProviderStore::StoredBytes() const {
  std::lock_guard lock(mu_);
  return stored_bytes_;
}

}  // namespace scalia::provider
