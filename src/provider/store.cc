#include "provider/store.h"

#include <chrono>
#include <thread>

namespace scalia::provider {

common::Status SimulatedProviderStore::CheckReachable(
    common::SimTime now) const {
  if (!failures_.IsAvailable(now)) {
    return common::Status::Unavailable("provider " + spec_.id +
                                       " is unreachable");
  }
  if (auto* hook = fault_hook_.load(std::memory_order_acquire);
      hook != nullptr && hook->IsDark(spec_.id, now)) {
    return common::Status::Unavailable("provider " + spec_.id +
                                       " is dark (injected fault)");
  }
  return common::Status::Ok();
}

common::Status SimulatedProviderStore::BeginOp(common::SimTime now,
                                               OpKind op) const {
  if (!failures_.IsAvailable(now)) {
    // Scheduled outage window: report as a failed contact so observed health
    // matches the degraded world.
    if (auto* hook = fault_hook_.load(std::memory_order_acquire)) {
      hook->RecordOutcome(spec_.id, op, /*ok=*/false);
    }
    return common::Status::Unavailable("provider " + spec_.id +
                                       " is unreachable");
  }
  auto* hook = fault_hook_.load(std::memory_order_acquire);
  if (hook == nullptr) return common::Status::Ok();
  const FaultVerdict verdict = hook->OnOp(spec_.id, op, now);
  if (verdict.latency_us > 0) {
    // Brownout latency is wall-clock: it lands on whichever thread carries
    // the chunk I/O, exactly like a slow provider would.
    std::this_thread::sleep_for(std::chrono::microseconds(verdict.latency_us));
  }
  if (verdict.unavailable) {
    hook->RecordOutcome(spec_.id, op, /*ok=*/false);
    return common::Status::Unavailable("provider " + spec_.id +
                                       " is dark (injected fault)");
  }
  if (verdict.fail_op) {
    hook->RecordOutcome(spec_.id, op, /*ok=*/false);
    return common::Status::Unavailable("provider " + spec_.id +
                                       " request failed (injected brownout)");
  }
  return common::Status::Ok();
}

void SimulatedProviderStore::EndOp(OpKind op, bool ok) const {
  if (auto* hook = fault_hook_.load(std::memory_order_acquire)) {
    hook->RecordOutcome(spec_.id, op, ok);
  }
}

common::Status SimulatedProviderStore::Put(common::SimTime now,
                                           const std::string& key,
                                           std::string blob) {
  if (auto s = BeginOp(now, OpKind::kPut); !s.ok()) return s;
  if (spec_.max_chunk_size && blob.size() > *spec_.max_chunk_size) {
    return common::Status::InvalidArgument(
        "blob exceeds max chunk size of provider " + spec_.id);
  }
  const auto blob_size = static_cast<common::Bytes>(blob.size());
  {
    common::MutexLock lock(mu_);
    common::Bytes new_total = stored_bytes_ + blob_size;
    if (auto it = objects_.find(key); it != objects_.end()) {
      new_total -= static_cast<common::Bytes>(it->second.size());
    }
    if (spec_.capacity && new_total > *spec_.capacity) {
      return common::Status::ResourceExhausted(
          "capacity of private resource " + spec_.id + " exceeded");
    }
    auto it = objects_.find(key);
    if (it != objects_.end()) {
      stored_bytes_ -= static_cast<common::Bytes>(it->second.size());
      it->second = std::move(blob);
    } else {
      objects_.emplace(key, std::move(blob));
    }
    stored_bytes_ += blob_size;
    meter_.RecordPut(now, blob_size);
    meter_.SetStoredBytes(now, stored_bytes_);
  }
  EndOp(OpKind::kPut, true);
  return common::Status::Ok();
}

common::Result<std::string> SimulatedProviderStore::Get(
    common::SimTime now, const std::string& key) {
  if (auto s = BeginOp(now, OpKind::kGet); !s.ok()) return s;
  common::MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    // NotFound is an organic answer, not a provider failure: the provider
    // responded, so health-wise this contact succeeded.
    EndOp(OpKind::kGet, true);
    return common::Status::NotFound("key " + key + " not at provider " +
                                    spec_.id);
  }
  meter_.RecordGet(now, static_cast<common::Bytes>(it->second.size()));
  EndOp(OpKind::kGet, true);
  return it->second;
}

common::Status SimulatedProviderStore::Delete(common::SimTime now,
                                              const std::string& key) {
  if (auto s = BeginOp(now, OpKind::kDelete); !s.ok()) return s;
  common::MutexLock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    EndOp(OpKind::kDelete, true);
    return common::Status::NotFound("key " + key + " not at provider " +
                                    spec_.id);
  }
  stored_bytes_ -= static_cast<common::Bytes>(it->second.size());
  objects_.erase(it);
  meter_.RecordOp(now);
  meter_.SetStoredBytes(now, stored_bytes_);
  EndOp(OpKind::kDelete, true);
  return common::Status::Ok();
}

common::Result<std::vector<std::string>> SimulatedProviderStore::List(
    common::SimTime now, const std::string& prefix) {
  if (auto s = BeginOp(now, OpKind::kList); !s.ok()) return s;
  common::MutexLock lock(mu_);
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  meter_.RecordOp(now);
  EndOp(OpKind::kList, true);
  return keys;
}

std::size_t SimulatedProviderStore::ObjectCount() const {
  common::MutexLock lock(mu_);
  return objects_.size();
}

common::Bytes SimulatedProviderStore::StoredBytes() const {
  common::MutexLock lock(mu_);
  return stored_bytes_;
}

}  // namespace scalia::provider
