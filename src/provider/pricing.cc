#include "provider/pricing.h"

namespace scalia::provider {

common::Money CostOf(const PricingPolicy& pricing, const PeriodUsage& usage,
                     common::Duration period, StorageBillingMode mode) {
  const double hours = common::ToHours(period);
  const double avg_gb = hours > 0.0 ? usage.storage_gb_hours / hours : 0.0;
  double storage_cost;
  switch (mode) {
    case StorageBillingMode::kProrated:
      storage_cost =
          avg_gb * pricing.storage_gb_month * common::MonthFraction(period);
      break;
    case StorageBillingMode::kPerPeriod:
      storage_cost = avg_gb * pricing.storage_gb_month;
      break;
    default:
      storage_cost = 0.0;
  }
  const double bw_cost =
      usage.bw_in_gb * pricing.bw_in_gb + usage.bw_out_gb * pricing.bw_out_gb;
  const double ops_cost = usage.ops / 1000.0 * pricing.ops_per_1000;
  return common::Money(storage_cost + bw_cost + ops_cost);
}

}  // namespace scalia::provider
