#include "provider/spec.h"

namespace scalia::provider {

std::vector<ProviderSpec> PaperCatalog() {
  std::vector<ProviderSpec> catalog;
  catalog.push_back(ProviderSpec{
      .id = "S3(h)",
      .description = "Amazon S3 (High)",
      .sla = {.durability = 0.99999999999, .availability = 0.999},
      .zones = {Zone::kEU, Zone::kUS, Zone::kAPAC},
      .pricing = {.storage_gb_month = 0.14,
                  .bw_in_gb = 0.10,
                  .bw_out_gb = 0.15,
                  .ops_per_1000 = 0.01},
      .read_latency_ms = 45.0,
      .max_chunk_size = std::nullopt,
      .capacity = std::nullopt});
  catalog.push_back(ProviderSpec{
      .id = "S3(l)",
      .description = "Amazon S3 (Low)",
      .sla = {.durability = 0.9999, .availability = 0.999},
      .zones = {Zone::kEU, Zone::kUS, Zone::kAPAC},
      .pricing = {.storage_gb_month = 0.093,
                  .bw_in_gb = 0.10,
                  .bw_out_gb = 0.15,
                  .ops_per_1000 = 0.01},
      .read_latency_ms = 60.0,
      .max_chunk_size = std::nullopt,
      .capacity = std::nullopt});
  catalog.push_back(ProviderSpec{
      .id = "RS",
      .description = "Rackspace CloudFiles",
      .sla = {.durability = 0.999999, .availability = 0.999},
      .zones = {Zone::kUS},
      .pricing = {.storage_gb_month = 0.15,
                  .bw_in_gb = 0.08,
                  .bw_out_gb = 0.18,
                  .ops_per_1000 = 0.0},
      .read_latency_ms = 80.0,
      .max_chunk_size = std::nullopt,
      .capacity = std::nullopt});
  catalog.push_back(ProviderSpec{
      .id = "Azu",
      .description = "Microsoft Azure",
      .sla = {.durability = 0.999999, .availability = 0.999},
      .zones = {Zone::kUS},
      .pricing = {.storage_gb_month = 0.15,
                  .bw_in_gb = 0.10,
                  .bw_out_gb = 0.15,
                  .ops_per_1000 = 0.01},
      .read_latency_ms = 55.0,
      .max_chunk_size = std::nullopt,
      .capacity = std::nullopt});
  catalog.push_back(ProviderSpec{
      .id = "Ggl",
      .description = "Google Storage",
      .sla = {.durability = 0.999999, .availability = 0.999},
      .zones = {Zone::kUS},
      .pricing = {.storage_gb_month = 0.17,
                  .bw_in_gb = 0.10,
                  .bw_out_gb = 0.15,
                  .ops_per_1000 = 0.01},
      .read_latency_ms = 40.0,
      .max_chunk_size = std::nullopt,
      .capacity = std::nullopt});
  return catalog;
}

ProviderSpec CheapStorSpec() {
  return ProviderSpec{
      .id = "CheapStor",
      .description = "CheapStor (registered at hour 400, §IV-D)",
      .sla = {.durability = 0.999999, .availability = 0.999},
      .zones = {Zone::kUS},
      .pricing = {.storage_gb_month = 0.09,
                  .bw_in_gb = 0.10,
                  .bw_out_gb = 0.15,
                  .ops_per_1000 = 0.01},
      .read_latency_ms = 120.0,
      .max_chunk_size = std::nullopt,
      .capacity = std::nullopt};
}

const ProviderSpec* FindSpec(const std::vector<ProviderSpec>& catalog,
                             const ProviderId& id) {
  for (const auto& spec : catalog) {
    if (spec.id == id) return &spec;
  }
  return nullptr;
}

}  // namespace scalia::provider
