#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace scalia::net {

namespace {

[[nodiscard]] std::string ErrnoString() {
  return std::strerror(errno);
}

}  // namespace

HttpClient::HttpClient(std::string host, std::uint16_t port, Options options)
    : host_(std::move(host)), port_(port), options_(options) {}

HttpClient::HttpClient(std::string host, std::uint16_t port)
    : HttpClient(std::move(host), port, Options{}) {}

HttpClient::~HttpClient() { Close(); }

common::Status HttpClient::Connect() {
  if (connected()) return common::Status::Ok();

  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return common::Status::Internal("socket(): " + ErrnoString());

  if (options_.timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.timeout_ms / 1000;
    tv.tv_usec = (options_.timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  const std::string numeric = host_ == "localhost" ? "127.0.0.1" : host_;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    Close();
    return common::Status::InvalidArgument("unparseable host \"" + host_ +
                                           "\" (IPv4 literal expected)");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string err = ErrnoString();
    Close();
    return common::Status::Unavailable("connect(" + numeric + ":" +
                                       std::to_string(port_) + "): " + err);
  }
  return common::Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

common::Status HttpClient::WriteAll(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return common::Status::Unavailable("send(): " + ErrnoString());
  }
  return common::Status::Ok();
}

common::Result<api::HttpResponse> HttpClient::ReadResponse(
    bool head_response, bool* eof_before_any_bytes) {
  ResponseParser parser(options_.limits);
  char buf[64 * 1024];
  bool received_any = false;
  for (;;) {
    if (auto parsed = parser.Next(head_response)) {
      if (!parsed->keep_alive) Close();
      return std::move(parsed->response);
    }
    if (parser.error_status() != 0) {
      Close();
      return common::Status::Internal("bad response: " +
                                      parser.error_message());
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      received_any = true;
      parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    if (n == 0) {
      if (!received_any && eof_before_any_bytes != nullptr) {
        *eof_before_any_bytes = true;
      }
      return common::Status::Unavailable(
          "connection closed mid-response");
    }
    return common::Status::Unavailable("recv(): " + ErrnoString());
  }
}

common::Result<api::HttpResponse> HttpClient::RoundTrip(
    const api::HttpRequest& request) {
  const bool was_connected = connected();
  if (common::Status s = Connect(); !s.ok()) return s;

  // A kept-alive connection the server closed between requests surfaces
  // either as a write failure or — when the bytes fit the socket buffer
  // before the RST/FIN is seen — as EOF before any response bytes.  Both
  // are safe to retry exactly once on a fresh connection.
  const std::string wire = SerializeRequest(request, /*keep_alive=*/true);
  bool redialed = false;
  common::Status written = WriteAll(wire);
  if (!written.ok() && was_connected) {
    Close();
    if (common::Status s = Connect(); !s.ok()) return s;
    redialed = true;
    written = WriteAll(wire);
  }
  if (!written.ok()) {
    Close();
    return written;
  }

  const bool head = request.method == api::HttpMethod::kHead;
  bool eof_before_any_bytes = false;
  auto response = ReadResponse(
      head, was_connected && !redialed ? &eof_before_any_bytes : nullptr);
  if (!response.ok() && eof_before_any_bytes) {
    if (common::Status s = Connect(); !s.ok()) return s;
    if (common::Status s = WriteAll(wire); !s.ok()) {
      Close();
      return s;
    }
    return ReadResponse(head, nullptr);
  }
  return response;
}

}  // namespace scalia::net
