// Wide-area latency model for reads through Scalia.
//
// The paper defers "the evaluation of the latency overhead … to future
// work" but names latency minimization as an explicit optimization goal
// (§I: "minimizing query latency by promoting the most high-performing
// providers").  This model supplies the physics for that goal and for the
// CDN extension of §III-B: a region-to-zone round-trip-time matrix, a
// per-link throughput, and the m-parallel-fetch composition rule — an
// erasure-coded read completes when the slowest of its m chunk fetches
// completes.
#pragma once

#include <span>
#include <vector>

#include "common/units.h"
#include "net/geo.h"
#include "provider/spec.h"

namespace scalia::net {

/// One client-region → provider-zone link.
struct LinkSpec {
  double rtt_ms = 50.0;
  double throughput_mbps = 100.0;  // sustained transfer rate, megabits/s

  friend bool operator==(const LinkSpec&, const LinkSpec&) = default;
};

/// Latency matrix between the three client regions and the four provider
/// zones.  Defaults are representative public-internet figures: ~10–30 ms
/// intra-continental, ~90–120 ms trans-Atlantic, ~150–250 ms to/from APAC,
/// ~2 ms to an on-premise resource in the home region.
class LatencyModel {
 public:
  LatencyModel();

  /// The deployment's home region, where OnPrem resources live.
  void set_home_region(Region r) noexcept { home_ = r; }
  [[nodiscard]] Region home_region() const noexcept { return home_; }

  [[nodiscard]] const LinkSpec& Link(Region from, provider::Zone to) const;
  void SetLink(Region from, provider::Zone to, LinkSpec link);

  /// The zone of `spec` nearest to `from` (providers operating in several
  /// zones serve from the closest one, like real multi-region clouds).
  [[nodiscard]] provider::Zone ServingZone(Region from,
                                           const provider::ProviderSpec& spec)
      const;

  /// Latency of fetching one `chunk_bytes` chunk of `spec` from `from`:
  /// link RTT + the provider's time-to-first-byte + transfer time.
  [[nodiscard]] double ChunkFetchMs(Region from,
                                    const provider::ProviderSpec& spec,
                                    common::Bytes chunk_bytes) const;

  /// Latency of an object read striped over `pset` with threshold m: the m
  /// *fastest* providers are fetched in parallel, so the read completes at
  /// the m-th smallest chunk latency.
  [[nodiscard]] double ObjectReadMs(Region from,
                                    std::span<const provider::ProviderSpec>
                                        pset,
                                    int m, common::Bytes object_bytes) const;

 private:
  [[nodiscard]] static std::size_t Index(Region from, provider::Zone to) {
    return static_cast<std::size_t>(from) * 4u +
           static_cast<std::size_t>(to);
  }

  Region home_ = Region::kEurope;
  std::vector<LinkSpec> links_;  // 3 regions x 4 zones
};

}  // namespace scalia::net
