#include "net/latency.h"

#include <algorithm>
#include <cassert>

namespace scalia::net {

namespace {

/// Default RTTs (ms) from client regions (rows: EU, NA, Asia) to provider
/// zones (cols: EU, US, APAC, OnPrem-in-home-region).
constexpr double kDefaultRtt[3][4] = {
    // EU        US     APAC   OnPrem
    {15.0, 95.0, 230.0, 2.0},    // from Europe
    {95.0, 20.0, 160.0, 95.0},   // from North America
    {230.0, 160.0, 30.0, 230.0}  // from Asia
};

constexpr double kDefaultThroughputMbps = 200.0;

}  // namespace

LatencyModel::LatencyModel() : links_(3 * 4) {
  for (Region from : kAllRegions) {
    for (provider::Zone to :
         {provider::Zone::kEU, provider::Zone::kUS, provider::Zone::kAPAC,
          provider::Zone::kOnPrem}) {
      links_[Index(from, to)] =
          LinkSpec{.rtt_ms = kDefaultRtt[static_cast<std::size_t>(from)]
                                        [static_cast<std::size_t>(to)],
                   .throughput_mbps = kDefaultThroughputMbps};
    }
  }
}

const LinkSpec& LatencyModel::Link(Region from, provider::Zone to) const {
  // The OnPrem column is authored relative to the home region: a client in
  // the home region reaches the appliance on the LAN; everyone else pays
  // the WAN RTT to the home region's zone.
  if (to == provider::Zone::kOnPrem && from != home_) {
    return links_[Index(from, HomeZone(home_))];
  }
  return links_[Index(from, to)];
}

void LatencyModel::SetLink(Region from, provider::Zone to, LinkSpec link) {
  links_[Index(from, to)] = link;
}

provider::Zone LatencyModel::ServingZone(
    Region from, const provider::ProviderSpec& spec) const {
  provider::Zone best = provider::Zone::kUS;
  double best_rtt = -1.0;
  for (provider::Zone z :
       {provider::Zone::kEU, provider::Zone::kUS, provider::Zone::kAPAC,
        provider::Zone::kOnPrem}) {
    if (!spec.zones.Contains(z)) continue;
    const double rtt = Link(from, z).rtt_ms;
    if (best_rtt < 0.0 || rtt < best_rtt) {
      best_rtt = rtt;
      best = z;
    }
  }
  assert(best_rtt >= 0.0 && "provider must operate in at least one zone");
  return best;
}

double LatencyModel::ChunkFetchMs(Region from,
                                  const provider::ProviderSpec& spec,
                                  common::Bytes chunk_bytes) const {
  const LinkSpec& link = Link(from, ServingZone(from, spec));
  const double transfer_ms = static_cast<double>(chunk_bytes) * 8.0 /
                             (link.throughput_mbps * 1000.0);
  return link.rtt_ms + spec.read_latency_ms + transfer_ms;
}

double LatencyModel::ObjectReadMs(Region from,
                                  std::span<const provider::ProviderSpec> pset,
                                  int m, common::Bytes object_bytes) const {
  if (pset.empty() || m <= 0 || static_cast<std::size_t>(m) > pset.size()) {
    return 0.0;
  }
  const common::Bytes chunk =
      common::CeilDiv(object_bytes, static_cast<common::Bytes>(m));
  std::vector<double> fetch;
  fetch.reserve(pset.size());
  for (const auto& spec : pset) {
    fetch.push_back(ChunkFetchMs(from, spec, chunk));
  }
  // Reads hit the m fastest providers in parallel; the read completes when
  // the slowest of those m returns, i.e. at the m-th smallest latency.
  std::nth_element(fetch.begin(), fetch.begin() + (m - 1), fetch.end());
  return fetch[static_cast<std::size_t>(m - 1)];
}

}  // namespace scalia::net
