// Client geography: the regions requests originate from.
//
// The paper's gallery/trend workloads are driven by a real website whose
// visitors come "mainly from Europe (62%), North America (27%) and Asia
// (6%)" (§III-A.3); this module names those regions, carries the traffic
// mix, and maps regions onto the provider zones of Fig. 3 so the latency
// model and the CDN can reason about distance.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "provider/types.h"

namespace scalia::net {

/// Where a client request originates.
enum class Region : std::uint8_t {
  kEurope = 0,
  kNorthAmerica = 1,
  kAsia = 2,
};

inline constexpr std::array<Region, 3> kAllRegions = {
    Region::kEurope, Region::kNorthAmerica, Region::kAsia};

[[nodiscard]] constexpr std::string_view RegionName(Region r) {
  switch (r) {
    case Region::kEurope: return "EU";
    case Region::kNorthAmerica: return "NA";
    case Region::kAsia: return "Asia";
  }
  return "?";
}

/// The paper's visitor mix, normalized over the three named regions
/// (62 / 27 / 6 renormalized to sum to 1).
struct TrafficMix {
  std::array<double, 3> share = {0.6526, 0.2842, 0.0632};

  [[nodiscard]] double Share(Region r) const {
    return share[static_cast<std::size_t>(r)];
  }

  /// Picks the region a uniform draw u in [0,1) falls into.
  [[nodiscard]] Region Pick(double u) const {
    double acc = 0.0;
    for (Region r : kAllRegions) {
      acc += Share(r);
      if (u < acc) return r;
    }
    return Region::kAsia;
  }
};

/// The provider zone geographically closest to a client region.  OnPrem
/// resources sit at the customer premises; we locate the premises via the
/// deployment's home region (§III: appliance "located directly in the
/// customer's data center").
[[nodiscard]] constexpr provider::Zone HomeZone(Region r) {
  switch (r) {
    case Region::kEurope: return provider::Zone::kEU;
    case Region::kNorthAmerica: return provider::Zone::kUS;
    case Region::kAsia: return provider::Zone::kAPAC;
  }
  return provider::Zone::kUS;
}

/// The client region whose traffic a provider zone serves most locally.
[[nodiscard]] constexpr Region NearestRegion(provider::Zone z) {
  switch (z) {
    case provider::Zone::kEU: return Region::kEurope;
    case provider::Zone::kUS: return Region::kNorthAmerica;
    case provider::Zone::kAPAC: return Region::kAsia;
    case provider::Zone::kOnPrem: return Region::kEurope;
  }
  return Region::kEurope;
}

}  // namespace scalia::net
