#include "net/server/http_parser.h"

#include "common/string_util.h"

namespace scalia::net {

namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeaderEnd = "\r\n\r\n";

[[nodiscard]] std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Whether the Connection header value lists `token` (comma-separated,
/// case-insensitive).
[[nodiscard]] bool ConnectionLists(std::string_view value,
                                   std::string_view token) {
  const std::string lowered = common::AsciiLower(value);
  std::size_t start = 0;
  while (start <= lowered.size()) {
    std::size_t end = lowered.find(',', start);
    if (end == std::string::npos) end = lowered.size();
    if (TrimOws(std::string_view(lowered).substr(start, end - start)) ==
        token) {
      return true;
    }
    start = end + 1;
  }
  return false;
}

/// Strict non-negative decimal parse for Content-Length; rejects signs,
/// whitespace and overflow.
[[nodiscard]] std::optional<std::size_t> ParseContentLength(
    std::string_view s) {
  if (s.empty() || s.size() > 18) return std::nullopt;
  std::size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

/// keep-alive from version + Connection header: HTTP/1.1 defaults to
/// persistent, HTTP/1.0 must opt in.
[[nodiscard]] bool KeepAliveFor(bool http_1_0, const api::HeaderMap& headers) {
  const std::string* connection = headers.Find("connection");
  if (http_1_0) {
    return connection != nullptr && ConnectionLists(*connection, "keep-alive");
  }
  return connection == nullptr || !ConnectionLists(*connection, "close");
}

/// Parses header lines (everything after the start line) into `headers`;
/// returns an error message on malformed lines, empty string on success.
[[nodiscard]] std::string ParseHeaderLines(std::string_view block,
                                           api::HeaderMap* headers) {
  std::size_t start = 0;
  while (start < block.size()) {
    std::size_t end = block.find(kCrlf, start);
    if (end == std::string_view::npos) end = block.size();
    const std::string_view line = block.substr(start, end - start);
    start = end + kCrlf.size();
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      return "obsolete header line folding";
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return "header line without ':'";
    const std::string_view name = line.substr(0, colon);
    if (name.empty() || TrimOws(name).size() != name.size()) {
      return "malformed header name";
    }
    // Duplicate Content-Length is a request-smuggling vector (RFC 9112
    // §6.3): last-wins framing here could disagree with a first-wins
    // intermediary, desyncing the pipeline.  Reject outright.
    if (common::AsciiLower(name) == "content-length" &&
        headers->Contains("content-length")) {
      return "duplicate content-length";
    }
    headers->Set(name, std::string(TrimOws(line.substr(colon + 1))));
  }
  return {};
}

}  // namespace

void RequestParser::Feed(std::string_view data) {
  if (error_status_ != 0) return;
  // Compact before growing: drop the consumed prefix once it dominates.
  if (consumed_ > 0 && (consumed_ == buffer_.size() || consumed_ > 64 * 1024)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data);
}

void RequestParser::Fail(int status, std::string message) {
  error_status_ = status;
  error_message_ = std::move(message);
}

namespace {

/// Clears a scratch request in place: containers empty but keep their heap
/// capacity (strings shrink lazily, maps drop nodes), so a keep-alive
/// connection stops paying a fresh allocation set per request.
void ResetScratch(ParsedRequest* out) {
  out->request.method = api::HttpMethod::kGet;
  out->request.path.clear();
  out->request.query.clear();
  out->request.headers.Clear();
  out->request.body.clear();
  out->keep_alive = true;
}

}  // namespace

bool RequestParser::ParseHeaderBlock(std::string_view block,
                                     ParsedRequest* out) {
  ResetScratch(out);

  std::size_t line_end = block.find(kCrlf);
  if (line_end == std::string_view::npos) line_end = block.size();
  const std::string_view request_line = block.substr(0, line_end);

  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    Fail(400, "malformed request line");
    return false;
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);

  bool http_1_0 = false;
  if (version == "HTTP/1.0") {
    http_1_0 = true;
  } else if (version != "HTTP/1.1") {
    if (version.substr(0, 5) == "HTTP/") {
      Fail(505, "unsupported HTTP version");
    } else {
      Fail(400, "malformed HTTP version");
    }
    return false;
  }
  if (target.empty() || target.front() != '/') {
    Fail(400, "request target must be origin-form");
    return false;
  }
  const auto parsed_method = api::ParseMethod(method);
  if (!parsed_method) {
    Fail(405, "unsupported method \"" + std::string(method) + "\"");
    return false;
  }

  out->request.method = *parsed_method;
  // The query string is split off and decoded here so the wire form matches
  // the in-process convention (path without query + decoded query map) the
  // request signature covers.  The path stays percent-encoded; decoding and
  // traversal checks are api::ParseTarget's job in the gateway.
  std::string_view path = target;
  if (const std::size_t qpos = target.find('?');
      qpos != std::string_view::npos) {
    path = target.substr(0, qpos);
    auto query = api::ParseQueryString(target.substr(qpos + 1));
    if (!query.ok()) {
      Fail(400, "malformed query string: " + query.status().message());
      return false;
    }
    out->request.query = std::move(query).value();
  }
  out->request.path.assign(path);
  if (std::string err = ParseHeaderLines(block.substr(line_end),
                                         &out->request.headers);
      !err.empty()) {
    Fail(400, std::move(err));
    return false;
  }

  if (out->request.headers.Contains("transfer-encoding")) {
    Fail(501, "transfer-encoding is not supported");
    return false;
  }
  body_length_ = 0;
  if (const std::string* cl = out->request.headers.Find("content-length")) {
    const auto length = ParseContentLength(*cl);
    if (!length) {
      Fail(400, "malformed content-length");
      return false;
    }
    if (*length > limits_.max_body_bytes) {
      Fail(413, "content-length exceeds " +
                    std::to_string(limits_.max_body_bytes) + " bytes");
      return false;
    }
    body_length_ = *length;
  }
  out->keep_alive = KeepAliveFor(http_1_0, out->request.headers);
  return true;
}

bool RequestParser::Next(ParsedRequest* out) {
  if (error_status_ != 0) return false;

  if (state_ == State::kHeaders) {
    const std::size_t block_end = buffer_.find(kHeaderEnd, consumed_);
    if (block_end == std::string::npos) {
      if (buffered_bytes() > limits_.max_header_bytes) {
        Fail(431, "request headers exceed " +
                      std::to_string(limits_.max_header_bytes) + " bytes");
      }
      return false;
    }
    const std::size_t block_size = block_end + kHeaderEnd.size() - consumed_;
    if (block_size > limits_.max_header_bytes) {
      Fail(431, "request headers exceed " +
                    std::to_string(limits_.max_header_bytes) + " bytes");
      return false;
    }
    if (!ParseHeaderBlock(
            std::string_view(buffer_).substr(consumed_, block_size -
                                                            kHeaderEnd.size()),
            out)) {
      return false;
    }
    consumed_ += block_size;
    state_ = State::kBody;
  }

  if (buffered_bytes() < body_length_) return false;
  // assign() reuses the scratch body's existing capacity; the old
  // buffer_.substr() spelling allocated a fresh body string per request.
  out->request.body.assign(buffer_, consumed_, body_length_);
  consumed_ += body_length_;
  state_ = State::kHeaders;
  return true;
}

std::optional<ParsedRequest> RequestParser::Next() {
  // Compatibility wrapper over the scratch-reusing overload; pending_ keeps
  // the header state of a body still in flight between calls.
  if (!Next(&pending_)) return std::nullopt;
  ParsedRequest done = std::move(pending_);
  pending_ = ParsedRequest{};
  return done;
}

void ResponseParser::Feed(std::string_view data) {
  if (error_status_ != 0) return;
  if (consumed_ > 0 && (consumed_ == buffer_.size() || consumed_ > 64 * 1024)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data);
}

void ResponseParser::Fail(std::string message) {
  error_status_ = 502;  // what a gateway would report: bad upstream response
  error_message_ = std::move(message);
}

std::optional<ParsedResponse> ResponseParser::Next(bool head_response) {
  if (error_status_ != 0) return std::nullopt;

  if (state_ == State::kHeaders) {
    const std::size_t block_end = buffer_.find(kHeaderEnd, consumed_);
    if (block_end == std::string::npos) {
      if (buffered_bytes() > limits_.max_header_bytes) {
        Fail("response headers too large");
      }
      return std::nullopt;
    }
    const std::size_t block_size = block_end + kHeaderEnd.size() - consumed_;
    if (block_size > limits_.max_header_bytes) {
      Fail("response headers too large");
      return std::nullopt;
    }
    const std::string_view block = std::string_view(buffer_).substr(
        consumed_, block_size - kHeaderEnd.size());

    pending_ = ParsedResponse{};
    std::size_t line_end = block.find(kCrlf);
    if (line_end == std::string_view::npos) line_end = block.size();
    const std::string_view status_line = block.substr(0, line_end);

    // Status line: HTTP/1.x SP 3-digit-code SP reason-phrase.
    const std::size_t sp1 = status_line.find(' ');
    if (sp1 == std::string_view::npos ||
        status_line.substr(0, 5) != "HTTP/") {
      Fail("malformed status line");
      return std::nullopt;
    }
    std::size_t sp2 = status_line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) sp2 = status_line.size();
    const std::string_view code = status_line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (code.size() != 3 || code[0] < '1' || code[0] > '5') {
      Fail("malformed status code");
      return std::nullopt;
    }
    int status = 0;
    for (char c : code) {
      if (c < '0' || c > '9') {
        Fail("malformed status code");
        return std::nullopt;
      }
      status = status * 10 + (c - '0');
    }
    pending_.response.status = status;

    if (std::string err = ParseHeaderLines(block.substr(line_end),
                                           &pending_.response.headers);
        !err.empty()) {
      Fail(std::move(err));
      return std::nullopt;
    }
    const bool http_1_0 = status_line.substr(0, 8) == "HTTP/1.0";
    pending_.keep_alive = KeepAliveFor(http_1_0, pending_.response.headers);

    body_length_ = 0;
    if (!head_response) {
      if (const std::string* cl =
              pending_.response.headers.Find("content-length")) {
        const auto length = ParseContentLength(*cl);
        if (!length || *length > limits_.max_body_bytes) {
          Fail("malformed or oversized content-length");
          return std::nullopt;
        }
        body_length_ = *length;
      }
    }
    consumed_ += block_size;
    state_ = State::kBody;
  }

  if (buffered_bytes() < body_length_) return std::nullopt;
  pending_.response.body = buffer_.substr(consumed_, body_length_);
  consumed_ += body_length_;
  state_ = State::kHeaders;
  ParsedResponse done = std::move(pending_);
  pending_ = ParsedResponse{};
  return done;
}

std::string SerializeResponseHead(const api::HttpResponse& response,
                                  bool keep_alive) {
  std::string wire;
  wire.reserve(160);
  wire += "HTTP/1.1 ";
  wire += std::to_string(response.status);
  wire += ' ';
  wire += api::StatusText(response.status);
  wire += kCrlf;
  bool has_content_length = false;
  for (const auto& [name, value] : response.headers) {
    if (name == "connection") continue;  // the server owns this header
    if (name == "content-length") has_content_length = true;
    wire += name;
    wire += ": ";
    wire += value;
    wire += kCrlf;
  }
  if (!has_content_length) {
    wire += "content-length: ";
    wire += std::to_string(response.body.size());
    wire += kCrlf;
  }
  wire += keep_alive ? "connection: keep-alive" : "connection: close";
  wire += kCrlf;
  wire += kCrlf;
  return wire;
}

std::string SerializeResponse(const api::HttpResponse& response,
                              bool keep_alive) {
  std::string wire = SerializeResponseHead(response, keep_alive);
  wire += response.body;
  return wire;
}

std::string SerializeRequest(const api::HttpRequest& request,
                             bool keep_alive) {
  std::string wire;
  wire.reserve(128 + request.body.size());
  wire += api::MethodName(request.method);
  wire += ' ';
  wire += request.path;
  char sep = '?';
  for (const auto& [key, value] : request.query) {
    wire += sep;
    sep = '&';
    wire += api::UrlEncode(key);
    wire += '=';
    wire += api::UrlEncode(value);
  }
  wire += " HTTP/1.1";
  wire += kCrlf;
  bool has_content_length = false;
  for (const auto& [name, value] : request.headers) {
    if (name == "connection") continue;
    if (name == "content-length") has_content_length = true;
    wire += name;
    wire += ": ";
    wire += value;
    wire += kCrlf;
  }
  if (!has_content_length) {
    wire += "content-length: ";
    wire += std::to_string(request.body.size());
    wire += kCrlf;
  }
  wire += keep_alive ? "connection: keep-alive" : "connection: close";
  wire += kCrlf;
  wire += kCrlf;
  wire += request.body;
  return wire;
}

}  // namespace scalia::net
