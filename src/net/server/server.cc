#include "net/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <utility>
#include <vector>

#include "common/log.h"

namespace scalia::net {

namespace {

constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;

[[nodiscard]] std::string ErrnoString() {
  return std::strerror(errno);
}

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

HttpServer::HttpServer(ServerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  if (!config_.clock) {
    config_.clock = [] {
      return static_cast<common::SimTime>(::time(nullptr));
    };
  }
}

HttpServer::~HttpServer() { Stop(); }

common::Status HttpServer::Start() {
  if (started_) {
    return common::Status::FailedPrecondition("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return common::Status::Internal("socket(): " + ErrnoString());
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd_);
    return common::Status::InvalidArgument("unparseable bind address \"" +
                                           config_.bind_address + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const std::string err = ErrnoString();
    CloseFd(listen_fd_);
    return common::Status::Unavailable("bind(" + config_.bind_address + ":" +
                                       std::to_string(config_.port) +
                                       "): " + err);
  }
  if (::listen(listen_fd_, 256) != 0) {
    const std::string err = ErrnoString();
    CloseFd(listen_fd_);
    return common::Status::Internal("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string err = ErrnoString();
    CloseFd(listen_fd_);
    return common::Status::Internal("getsockname(): " + err);
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    CloseFd(listen_fd_);
    CloseFd(epoll_fd_);
    CloseFd(wake_fd_);
    return common::Status::Internal("epoll/eventfd setup: " + ErrnoString());
  }
  epoll_event listen_ev{};
  listen_ev.events = EPOLLIN;
  listen_ev.data.u64 = kListenerId;
  epoll_event wake_ev{};
  wake_ev.events = EPOLLIN;
  wake_ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_ev) != 0 ||
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_ev) != 0) {
    CloseFd(listen_fd_);
    CloseFd(epoll_fd_);
    CloseFd(wake_fd_);
    return common::Status::Internal("epoll_ctl(): " + ErrnoString());
  }

  stopping_.store(false, std::memory_order_release);
  started_ = true;
  io_thread_ = std::thread([this] { IoLoop(); });
  SCALIA_LOG(common::LogLevel::kInfo, "net.server")
      << "listening on " << config_.bind_address << ":" << port_;
  return common::Status::Ok();
}

void HttpServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  WakeIo();
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::unique_lock lock(in_flight_mu_);
    in_flight_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  // The I/O thread is gone and no handler is running: flush whatever
  // responses completed during shutdown, best-effort, then tear down.
  DrainCompletions();
  for (auto& [id, conn] : conns_) CloseFd(conn->fd);
  conns_.clear();
  CloseFd(listen_fd_);
  CloseFd(epoll_fd_);
  CloseFd(wake_fd_);
  started_ = false;
}

ServerStats HttpServer::stats() const {
  ServerStats s;
  s.connections_accepted = stat_accepted_.load(std::memory_order_relaxed);
  s.connections_rejected = stat_rejected_.load(std::memory_order_relaxed);
  s.connections_timed_out = stat_timed_out_.load(std::memory_order_relaxed);
  s.requests_served = stat_requests_.load(std::memory_order_relaxed);
  s.protocol_errors = stat_protocol_errors_.load(std::memory_order_relaxed);
  s.bytes_in = stat_bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = stat_bytes_out_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::WakeIo() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void HttpServer::IoLoop() {
  std::array<epoll_event, 64> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               NextDeadlineMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      SCALIA_LOG(common::LogLevel::kError, "net.server")
          << "epoll_wait(): " << ErrnoString();
      break;
    }
    for (int i = 0; i < n && !stopping_.load(std::memory_order_acquire);
         ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        AcceptReady();
      } else if (id == kWakeId) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        DrainCompletions();
      } else {
        HandleEvent(id, events[i].events);
      }
    }
    if (!stopping_.load(std::memory_order_acquire)) SweepIdleConnections();
  }
}

int HttpServer::NextDeadlineMs() const {
  if (config_.idle_timeout_ms <= 0 || conns_.empty()) return -1;
  // Wake when the sweep is next due.  `idle_scan_due_` may be in the past
  // (a deadline crossed since the last sweep, or the epoch default before
  // the first one); the clamp turns that into an immediate wake.
  const long remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          idle_scan_due_ - std::chrono::steady_clock::now())
          .count();
  // Cap the sleep (a sweep pass is cheap) so the int cast can never
  // overflow on an absurd configured timeout.
  return static_cast<int>(std::clamp(remaining, 1L, 60'000L));
}

void HttpServer::SweepIdleConnections() {
  if (config_.idle_timeout_ms <= 0 || conns_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  // O(1) on the hot path: the full scan runs only once the earliest
  // deadline found by the previous scan has passed.  Client activity only
  // pushes deadlines later, so the cache may wake us early, never late.
  if (now < idle_scan_due_) return;
  const auto timeout = std::chrono::milliseconds(config_.idle_timeout_ms);
  auto earliest = now + timeout;  // upper bound: a fresh connection's due
  std::vector<std::uint64_t> expired;
  for (const auto& [id, conn] : conns_) {
    if (conn->busy) continue;
    const auto due = conn->last_activity + timeout;
    if (due <= now) {
      expired.push_back(id);
    } else if (due < earliest) {
      earliest = due;
    }
  }
  idle_scan_due_ = earliest;
  for (const std::uint64_t id : expired) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Connection& conn = *it->second;
    if (conn.timed_out || conn.draining) {
      // Already answered (408 or a protocol error) and the client is still
      // silent: stop lingering and reclaim the slot.
      CloseConnection(id);
      continue;
    }
    // First expiry: answer 408, then linger so the client can read it.
    stat_timed_out_.fetch_add(1, std::memory_order_relaxed);
    api::HttpResponse timeout;
    timeout.status = 408;
    timeout.body = "read/idle deadline exceeded\n";
    timeout.headers.Set("content-type", "text/plain");
    conn.outbuf += SerializeResponse(timeout, /*keep_alive=*/false);
    conn.close_after_flush = true;
    conn.error_close = true;
    conn.timed_out = true;
    conn.last_activity = now;  // restart the clock for the linger phase
    if (FlushWrites(conn)) UpdateInterest(conn);
  }
}

void HttpServer::AcceptReady() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of file descriptors: mask the listener so the level-triggered
        // epoll does not busy-spin; CloseConnection re-arms it when an fd
        // frees up.
        SCALIA_LOG(common::LogLevel::kWarning, "net.server")
            << "accept4(): out of file descriptors; pausing accepts";
        epoll_event ev{};
        ev.data.u64 = kListenerId;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev) == 0) {
          accept_paused_ = true;
        }
        return;
      }
      SCALIA_LOG(common::LogLevel::kError, "net.server")
          << "accept4(): " << ErrnoString();
      return;
    }
    if (conns_.size() >= config_.max_connections) {
      stat_rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->parser = RequestParser(config_.limits);
    conn->last_activity = std::chrono::steady_clock::now();
    conn->epoll_events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    stat_accepted_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void HttpServer::HandleEvent(std::uint64_t conn_id, std::uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // raced with a close
  Connection& conn = *it->second;

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseConnection(conn_id);
    return;
  }
  if ((events & EPOLLIN) != 0) {
    if (!ReadReady(conn)) {
      CloseConnection(conn_id);
      return;
    }
  }
  // Two rounds: the second dispatch picks up a request that was held back
  // by write-side back-pressure which the first flush just relieved.
  for (int round = 0; round < 2; ++round) {
    DispatchNext(conn);
    if (!FlushWrites(conn)) return;
  }
  UpdateInterest(conn);
}

bool HttpServer::ReadReady(Connection& conn) {
  char buf[64 * 1024];
  // Once a connection is lingering (408 sent or protocol-error drain),
  // incoming bytes no longer count as progress: a client trickling one
  // byte per deadline must not dodge the force-close.
  if (!conn.draining && !conn.timed_out) {
    conn.last_activity = std::chrono::steady_clock::now();
  }
  if (conn.draining) {
    // Lingering close: discard whatever the client is still sending (e.g.
    // the body of a 413-rejected upload) so close() finds an empty receive
    // buffer and the error answer is not wiped out by an RST.  Bounded by
    // drain_budget against a client that streams forever.
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n > 0) {
        const auto discarded = static_cast<std::size_t>(n);
        if (discarded >= conn.drain_budget) return false;  // budget spent
        conn.drain_budget -= discarded;
        continue;
      }
      if (n == 0) {
        conn.peer_eof = true;
        return true;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
  }
  // Back-pressure: stop reading once the parser holds a full request's
  // worth of unconsumed bytes (a complete request always fits below the
  // threshold, so parsing can always progress).  EPOLLIN is masked by
  // UpdateInterest, so level-triggered epoll does not spin, and reading
  // resumes as dispatches drain the buffer.
  const std::size_t pause_at =
      config_.limits.max_header_bytes + config_.limits.max_body_bytes;
  for (;;) {
    if (conn.parser.buffered_bytes() >= pause_at) return true;
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      stat_bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
      conn.parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
      if (static_cast<std::size_t>(n) < sizeof buf) return true;
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      return true;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;  // reset or another fatal error
  }
}

void HttpServer::DispatchNext(Connection& conn) {
  if (conn.busy || conn.close_after_flush ||
      stopping_.load(std::memory_order_acquire)) {
    return;
  }
  // Write-side back-pressure: a client that pipelines requests without
  // reading responses must not grow outbuf unboundedly.  A response body
  // is at most max_body_bytes (PUT-bounded), so gating here caps the
  // backlog at roughly twice that.  Dispatch resumes from the EPOLLOUT
  // path once the client drains.
  if (conn.outbuf.size() - conn.outbuf_off >= config_.limits.max_body_bytes) {
    conn.dispatch_deferred = true;
    return;
  }
  conn.dispatch_deferred = false;
  auto parsed = conn.parser.Next();
  if (!parsed) {
    if (conn.parser.error_status() != 0) {
      stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      api::HttpResponse error;
      error.status = conn.parser.error_status();
      error.body = conn.parser.error_message() + "\n";
      error.headers.Set("content-type", "text/plain");
      conn.outbuf += SerializeResponse(error, /*keep_alive=*/false);
      conn.close_after_flush = true;
      conn.error_close = true;
    }
    return;
  }

  conn.busy = true;
  const std::uint64_t conn_id = conn.id;
  const bool keep_alive = parsed->keep_alive;
  {
    std::lock_guard lock(in_flight_mu_);
    ++in_flight_;
  }
  pool().Submit([this, conn_id, keep_alive,
                 request = std::move(parsed->request)] {
    api::HttpResponse response;
    try {
      response = handler_(config_.clock(), request);
    } catch (const std::exception& e) {
      response = api::HttpResponse{};
      response.status = 500;
      response.body = std::string("handler exception: ") + e.what();
    } catch (...) {
      response = api::HttpResponse{};
      response.status = 500;
      response.body = "handler exception";
    }
    // HEAD answers describe the body without carrying it (RFC 9110 §9.3.2):
    // keep the length, drop the bytes — otherwise a kept-alive client that
    // rightly skips the body would desync on, e.g., a 404 error body.
    if (request.method == api::HttpMethod::kHead && !response.body.empty()) {
      if (!response.headers.Contains("content-length")) {
        response.headers.Set("content-length",
                             std::to_string(response.body.size()));
      }
      response.body.clear();
    }
    Completion completion{conn_id, SerializeResponse(response, keep_alive),
                          keep_alive};
    {
      std::lock_guard lock(completions_mu_);
      completions_.push_back(std::move(completion));
    }
    WakeIo();
    {
      // Notify under the lock: Stop() may destroy this server the moment
      // it observes in_flight_ == 0, so the broadcast must complete before
      // the mutex is released.
      std::lock_guard lock(in_flight_mu_);
      --in_flight_;
      in_flight_cv_.notify_all();
    }
  });
}

void HttpServer::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard lock(completions_mu_);
    done.swap(completions_);
  }
  for (auto& completion : done) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // connection died while handling
    Connection& conn = *it->second;
    conn.busy = false;
    conn.last_activity = std::chrono::steady_clock::now();
    conn.outbuf += completion.wire;
    stat_requests_.fetch_add(1, std::memory_order_relaxed);
    if (!completion.keep_alive) conn.close_after_flush = true;
    // Two rounds, like HandleEvent: a pipelined request may already be
    // buffered, and the second dispatch picks up one that write-side
    // back-pressure held until the first flush drained outbuf.
    bool alive = true;
    for (int round = 0; round < 2; ++round) {
      DispatchNext(conn);
      if (!FlushWrites(conn)) {
        alive = false;
        break;
      }
    }
    if (alive) UpdateInterest(conn);
  }
}

bool HttpServer::FlushWrites(Connection& conn) {
  while (conn.outbuf_off < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.outbuf_off,
               conn.outbuf.size() - conn.outbuf_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf_off += static_cast<std::size_t>(n);
      stat_bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      // Like ReadReady: once the connection is lingering, send progress is
      // not client progress — a trickle-reader must not stretch the linger.
      if (!conn.draining && !conn.timed_out) {
        conn.last_activity = std::chrono::steady_clock::now();
      }
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;  // UpdateInterest arms EPOLLOUT for the rest
    }
    CloseConnection(conn.id);
    return false;
  }
  conn.outbuf.clear();
  conn.outbuf_off = 0;
  if (conn.close_after_flush ||
      (conn.peer_eof && !conn.busy && !conn.dispatch_deferred)) {
    if (conn.error_close && !conn.peer_eof) {
      // Answer flushed after a protocol error, but the client may still be
      // mid-send: half-close and drain instead of closing outright.
      if (!conn.draining) {
        ::shutdown(conn.fd, SHUT_WR);
        conn.draining = true;
        conn.drain_budget = config_.limits.max_body_bytes;
      }
      return true;
    }
    CloseConnection(conn.id);
    return false;
  }
  return true;
}

void HttpServer::UpdateInterest(Connection& conn) {
  const std::size_t pause_at =
      config_.limits.max_header_bytes + config_.limits.max_body_bytes;
  const bool paused = conn.parser.buffered_bytes() >= pause_at;
  std::uint32_t want = 0;
  if (conn.draining) {
    want |= EPOLLIN;  // keep discarding until peer EOF
  } else if (!paused && !conn.close_after_flush && !conn.peer_eof) {
    want |= EPOLLIN;
  }
  if (conn.outbuf_off < conn.outbuf.size()) want |= EPOLLOUT;
  if (want == conn.epoll_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.epoll_events = want;
  }
}

void HttpServer::CloseConnection(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  if (accept_paused_) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev) == 0) {
      accept_paused_ = false;
    }
  }
}

}  // namespace scalia::net
