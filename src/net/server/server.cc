#include "net/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/log.h"
#include "net/server/buffer_pool.h"
#include "net/server/out_queue.h"

namespace scalia::net {

namespace {

constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;

[[nodiscard]] std::string ErrnoString() {
  return std::strerror(errno);
}

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

/// One event loop: an acceptor socket, an epoll set, a buffer pool, and
/// every connection the kernel's SO_REUSEPORT steering handed it.  All of
/// a connection's life — accept, parse, handle, serialize, flush — happens
/// on this loop's thread; the only cross-thread traffic is Stop()'s wake
/// and the relaxed stats counters.
class HttpServer::EventLoop {
 public:
  EventLoop(HttpServer* server, std::size_t index, int listen_fd)
      : server_(server), index_(index), listen_fd_(listen_fd) {}

  ~EventLoop() { Teardown(); }

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll set + wake eventfd and registers the acceptor.
  [[nodiscard]] common::Status Init() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      return common::Status::Internal("epoll/eventfd setup: " + ErrnoString());
    }
    epoll_event listen_ev{};
    listen_ev.events = EPOLLIN;
    listen_ev.data.u64 = kListenerId;
    epoll_event wake_ev{};
    wake_ev.events = EPOLLIN;
    wake_ev.data.u64 = kWakeId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_ev) != 0 ||
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_ev) != 0) {
      return common::Status::Internal("epoll_ctl(): " + ErrnoString());
    }
    return common::Status::Ok();
  }

  void StartThread() {
    thread_ = std::thread([this] { Run(); });
  }

  void Wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  /// Closes every connection and the loop's fds.  Only after Join().
  void Teardown() {
    for (auto& [id, conn] : conns_) {
      CloseFd(conn->fd);
      server_->total_conns_.fetch_sub(1, std::memory_order_relaxed);
    }
    conns_.clear();
    CloseFd(listen_fd_);
    CloseFd(epoll_fd_);
    CloseFd(wake_fd_);
  }

  [[nodiscard]] LoopStats Snapshot() const {
    LoopStats s;
    s.connections_accepted = stat_accepted_.load(std::memory_order_relaxed);
    s.bytes_written = stat_bytes_out_.load(std::memory_order_relaxed);
    s.writev_calls = stat_writev_calls_.load(std::memory_order_relaxed);
    s.requests_throttled = stat_throttled_.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] std::uint64_t rejected() const {
    return stat_rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t timed_out() const {
    return stat_timed_out_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests() const {
    return stat_requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t protocol_errors() const {
    return stat_protocol_errors_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_in() const {
    return stat_bytes_in_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    explicit Connection(BufferPool* pool) : outq(pool) {}

    std::uint64_t id = 0;
    int fd = -1;
    RequestParser parser;
    /// Per-connection parse scratch: RequestParser::Next(&scratch) reuses
    /// the strings/maps (and their heap capacity) across every keep-alive
    /// request this connection serves.
    ParsedRequest scratch;
    OutQueue outq;
    /// Write-side back-pressure deferred a dispatch; a complete request
    /// may still be buffered, so a peer EOF must not close the connection
    /// before it is served.
    bool dispatch_deferred = false;
    bool close_after_flush = false;
    bool error_close = false;       // closing because of a protocol error
    /// Lingering close: response flushed + SHUT_WR sent; reads are being
    /// discarded until peer EOF (or budget), so the client can read the
    /// error answer before any RST.
    bool draining = false;
    std::size_t drain_budget = 0;
    bool peer_eof = false;
    bool timed_out = false;  // 408 sent; the next expiry force-closes
    /// Queued responses this tick, awaiting the barrier commit before
    /// they may touch the wire.
    bool tick_pending = false;
    /// Last client progress (accept, bytes read, response written, flush
    /// progress) against which the idle deadline is measured.
    std::chrono::steady_clock::time_point last_activity;
    std::uint32_t epoll_events = 0;  // currently armed interest set
  };

  [[nodiscard]] const ServerConfig& config() const {
    return server_->config_;
  }
  [[nodiscard]] bool stopping() const {
    return server_->stopping_.load(std::memory_order_acquire);
  }

  void Run() {
    // The barrier lives on this thread for the loop's whole life, so
    // thread-local hooks (durability::AckCohort) catch every handler-made
    // append from the first tick on.
    if (config().barrier_factory) barrier_ = config().barrier_factory();
    std::array<epoll_event, 64> events;
    while (!stopping()) {
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()),
                                 NextDeadlineMs());
      if (n < 0) {
        if (errno == EINTR) continue;
        SCALIA_LOG(common::LogLevel::kError, "net.server")
            << "loop " << index_ << " epoll_wait(): " << ErrnoString();
        break;
      }
      for (int i = 0; i < n && !stopping(); ++i) {
        const std::uint64_t id = events[i].data.u64;
        if (id == kListenerId) {
          AcceptReady();
        } else if (id == kWakeId) {
          std::uint64_t drained = 0;
          while (::read(wake_fd_, &drained, sizeof drained) > 0) {
          }
        } else {
          HandleEvent(id, events[i].events);
        }
      }
      // Commit + flush even when stopping: handlers already ran, and a
      // committed response should reach the client rather than vanish.
      CommitTickAndFlush();
      if (!stopping()) SweepIdleConnections();
    }
    barrier_.reset();  // destroyed on the loop thread, like it was created
  }

  /// Milliseconds until the next idle sweep is due (epoll_wait timeout);
  /// -1 when deadlines are disabled or no connections exist.  O(1): reads
  /// the deadline cached by the last sweep.
  [[nodiscard]] int NextDeadlineMs() const {
    if (config().idle_timeout_ms <= 0 || conns_.empty()) return -1;
    // Wake when the sweep is next due.  `idle_scan_due_` may be in the past
    // (a deadline crossed since the last sweep, or the epoch default before
    // the first one); the clamp turns that into an immediate wake.
    const long remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            idle_scan_due_ - std::chrono::steady_clock::now())
            .count();
    // Cap the sleep (a sweep pass is cheap) so the int cast can never
    // overflow on an absurd configured timeout.
    return static_cast<int>(std::clamp(remaining, 1L, 60'000L));
  }

  /// Expires idle connections: first expiry answers 408 + lingering close
  /// — but only on an idle wire; a connection stuck behind a half-flushed
  /// response closes without one (splicing a 408 into the byte stream
  /// would corrupt the framing for a pipelined client).  A second expiry
  /// (client still silent) force-closes.  Scans the connection map only
  /// when the cached earliest deadline has passed.
  void SweepIdleConnections() {
    if (config().idle_timeout_ms <= 0 || conns_.empty()) return;
    const auto now = std::chrono::steady_clock::now();
    // O(1) on the hot path: the full scan runs only once the earliest
    // deadline found by the previous scan has passed.  Client activity only
    // pushes deadlines later, so the cache may wake us early, never late.
    if (now < idle_scan_due_) return;
    const auto timeout = std::chrono::milliseconds(config().idle_timeout_ms);
    auto earliest = now + timeout;  // upper bound: a fresh connection's due
    std::vector<std::uint64_t> expired;
    for (const auto& [id, conn] : conns_) {
      const auto due = conn->last_activity + timeout;
      if (due <= now) {
        expired.push_back(id);
      } else if (due < earliest) {
        earliest = due;
      }
    }
    idle_scan_due_ = earliest;
    for (const std::uint64_t id : expired) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Connection& conn = *it->second;
      if (conn.timed_out || conn.draining) {
        // Already answered (408 or a protocol error) and the client is
        // still silent: stop lingering and reclaim the slot.
        CloseConnection(id);
        continue;
      }
      stat_timed_out_.fetch_add(1, std::memory_order_relaxed);
      if (!conn.outq.empty()) {
        // Half-flushed response on the wire: a 408 appended here would land
        // mid-stream.  The peer stopped reading for a whole deadline —
        // close without an answer.
        CloseConnection(id);
        continue;
      }
      // First expiry: answer 408, then linger so the client can read it.
      api::HttpResponse timeout_answer;
      timeout_answer.status = 408;
      timeout_answer.body = "read/idle deadline exceeded\n";
      timeout_answer.headers.Set("content-type", "text/plain");
      conn.outq.PushHead(SerializeResponse(timeout_answer,
                                           /*keep_alive=*/false));
      conn.close_after_flush = true;
      conn.error_close = true;
      conn.timed_out = true;
      conn.last_activity = now;  // restart the clock for the linger phase
      if (FlushWrites(conn)) UpdateInterest(conn);
    }
  }

  void AcceptReady() {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EMFILE || errno == ENFILE) {
          // Out of file descriptors: mask the listener so the
          // level-triggered epoll does not busy-spin; CloseConnection
          // re-arms it when an fd frees up.
          SCALIA_LOG(common::LogLevel::kWarning, "net.server")
              << "loop " << index_
              << " accept4(): out of file descriptors; pausing accepts";
          epoll_event ev{};
          ev.data.u64 = kListenerId;
          if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev) == 0) {
            accept_paused_ = true;
          }
          return;
        }
        SCALIA_LOG(common::LogLevel::kError, "net.server")
            << "loop " << index_ << " accept4(): " << ErrnoString();
        return;
      }
      if (server_->total_conns_.load(std::memory_order_relaxed) >=
          config().max_connections) {
        stat_rejected_.fetch_add(1, std::memory_order_relaxed);
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

      auto conn = std::make_unique<Connection>(&pool_);
      conn->id = next_conn_id_++;
      conn->fd = fd;
      conn->parser = RequestParser(config().limits);
      conn->last_activity = std::chrono::steady_clock::now();
      conn->epoll_events = EPOLLIN;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = conn->id;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      stat_accepted_.fetch_add(1, std::memory_order_relaxed);
      server_->total_conns_.fetch_add(1, std::memory_order_relaxed);
      conns_.emplace(conn->id, std::move(conn));
    }
  }

  void HandleEvent(std::uint64_t conn_id, std::uint32_t events) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;  // raced with a close
    Connection& conn = *it->second;

    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      CloseConnection(conn_id);
      return;
    }
    if ((events & EPOLLIN) != 0) {
      if (!ReadReady(conn)) {
        CloseConnection(conn_id);
        return;
      }
    }
    // Two rounds: the second dispatch picks up a request that was held back
    // by write-side back-pressure which the first flush just relieved.
    for (int round = 0; round < 2; ++round) {
      DispatchNext(conn);
      // Responses queued under a barrier wait for the tick commit; the
      // flush (and interest update) happen in CommitTickAndFlush.  Bytes
      // already in the queue at EPOLLOUT time were committed by an earlier
      // tick, so flushing them here is safe.
      if (conn.tick_pending) return;
      if (!FlushWrites(conn)) return;
    }
    UpdateInterest(conn);
  }

  /// Reads until EAGAIN (or back-pressure pause); false on a fatal socket
  /// error — the caller closes.
  [[nodiscard]] bool ReadReady(Connection& conn) {
    char buf[64 * 1024];
    // Once a connection is lingering (408 sent or protocol-error drain),
    // incoming bytes no longer count as progress: a client trickling one
    // byte per deadline must not dodge the force-close.
    if (!conn.draining && !conn.timed_out) {
      conn.last_activity = std::chrono::steady_clock::now();
    }
    if (conn.draining) {
      // Lingering close: discard whatever the client is still sending
      // (e.g. the body of a 413-rejected upload) so close() finds an empty
      // receive buffer and the error answer is not wiped out by an RST.
      // Bounded by drain_budget against a client that streams forever.
      for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
        if (n > 0) {
          const auto discarded = static_cast<std::size_t>(n);
          if (discarded >= conn.drain_budget) return false;  // budget spent
          conn.drain_budget -= discarded;
          continue;
        }
        if (n == 0) {
          conn.peer_eof = true;
          return true;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
    }
    // Back-pressure: stop reading once the parser holds a full request's
    // worth of unconsumed bytes (a complete request always fits below the
    // threshold, so parsing can always progress).  EPOLLIN is masked by
    // UpdateInterest, so level-triggered epoll does not spin, and reading
    // resumes as dispatches drain the buffer.
    const std::size_t pause_at =
        config().limits.max_header_bytes + config().limits.max_body_bytes;
    for (;;) {
      if (conn.parser.buffered_bytes() >= pause_at) return true;
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n > 0) {
        stat_bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
        conn.parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
        if (static_cast<std::size_t>(n) < sizeof buf) return true;
        continue;
      }
      if (n == 0) {
        conn.peer_eof = true;
        return true;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // reset or another fatal error
    }
  }

  /// Runs every buffered request inline on the loop thread — parse, call
  /// the handler, queue head + body — until the parser runs dry or
  /// write-side back-pressure defers.  Emits the protocol-error answer
  /// when the parser has failed.
  void DispatchNext(Connection& conn) {
    while (!conn.close_after_flush && !stopping()) {
      // Write-side back-pressure: a client that pipelines requests without
      // reading responses must not grow the out queue unboundedly.  A
      // response body is at most max_body_bytes (PUT-bounded), so gating
      // here caps the backlog at roughly twice that.  Dispatch resumes
      // from the EPOLLOUT path once the client drains.
      if (conn.outq.pending_bytes() >= config().limits.max_body_bytes) {
        conn.dispatch_deferred = true;
        return;
      }
      conn.dispatch_deferred = false;
      const bool have_request = conn.parser.Next(&conn.scratch);
      if (!have_request) {
        if (conn.parser.error_status() != 0) {
          stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          api::HttpResponse error;
          error.status = conn.parser.error_status();
          error.body = conn.parser.error_message() + "\n";
          error.headers.Set("content-type", "text/plain");
          conn.outq.PushHead(SerializeResponse(error, /*keep_alive=*/false));
          conn.close_after_flush = true;
          conn.error_close = true;
          MarkTickPending(conn);
        }
        return;
      }

      ParsedRequest& parsed = conn.scratch;
      api::HttpResponse response;
      try {
        response = server_->handler_(config().clock(), parsed.request);
      } catch (const std::exception& e) {
        response = api::HttpResponse{};
        response.status = 500;
        response.body = std::string("handler exception: ") + e.what();
      } catch (...) {
        response = api::HttpResponse{};
        response.status = 500;
        response.body = "handler exception";
      }
      // HEAD answers describe the body without carrying it (RFC 9110
      // §9.3.2): keep the length, drop the bytes — otherwise a kept-alive
      // client that rightly skips the body would desync on, e.g., a 404
      // error body.
      if (parsed.request.method == api::HttpMethod::kHead &&
          !response.body.empty()) {
        if (!response.headers.Contains("content-length")) {
          response.headers.Set("content-length",
                               std::to_string(response.body.size()));
        }
        response.body.clear();
      }
      conn.outq.PushHead(SerializeResponseHead(response, parsed.keep_alive));
      conn.outq.PushBody(std::move(response.body));
      stat_requests_.fetch_add(1, std::memory_order_relaxed);
      if (response.status == 429) {
        stat_throttled_.fetch_add(1, std::memory_order_relaxed);
      }
      conn.last_activity = std::chrono::steady_clock::now();
      MarkTickPending(conn);
      if (!parsed.keep_alive) {
        conn.close_after_flush = true;
        return;
      }
    }
  }

  /// Barrier mode: records the connection for the end-of-tick commit +
  /// flush.  Without a barrier, flushing happens inline and this is a
  /// no-op.
  void MarkTickPending(Connection& conn) {
    if (!barrier_) return;
    if (conn.tick_pending) return;
    conn.tick_pending = true;
    tick_pending_.push_back(conn.id);
  }

  /// End of tick under a barrier: make the tick's responses durable with
  /// one Commit(), then flush them.  Flushing can relieve back-pressure
  /// and surface more buffered requests, so the loop repeats — each round
  /// consumes buffered requests, so it terminates — and a commit failure
  /// drops the unacknowledged responses by closing their connections.
  void CommitTickAndFlush() {
    while (!tick_pending_.empty()) {
      if (auto s = barrier_->Commit(); !s.ok()) {
        SCALIA_LOG(common::LogLevel::kError, "net.server")
            << "loop " << index_ << " flush barrier commit failed ("
            << s.message() << "); dropping " << tick_pending_.size()
            << " connection(s) with unacknowledged responses";
        std::vector<std::uint64_t> ids;
        ids.swap(tick_pending_);
        for (const std::uint64_t id : ids) CloseConnection(id);
        return;
      }
      std::vector<std::uint64_t> ids;
      ids.swap(tick_pending_);
      for (const std::uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        Connection& conn = *it->second;
        conn.tick_pending = false;
        if (!FlushWrites(conn)) continue;  // closed
        DispatchNext(conn);  // back-pressure resume; may re-mark the conn
        if (conn.tick_pending) continue;  // next round commits + flushes
        UpdateInterest(conn);
      }
    }
  }

  /// Writes what the socket accepts; arms EPOLLOUT on short writes and
  /// closes once drained if the connection is finished.  False when the
  /// connection was closed.
  [[nodiscard]] bool FlushWrites(Connection& conn) {
    if (!conn.outq.empty()) {
      const OutQueue::FlushResult result = conn.outq.Flush(conn.fd);
      if (result.bytes_written > 0) {
        stat_bytes_out_.fetch_add(result.bytes_written,
                                  std::memory_order_relaxed);
        // Like ReadReady: once the connection is lingering, send progress
        // is not client progress — a trickle-reader must not stretch the
        // linger.
        if (!conn.draining && !conn.timed_out) {
          conn.last_activity = std::chrono::steady_clock::now();
        }
      }
      stat_writev_calls_.fetch_add(result.writev_calls,
                                   std::memory_order_relaxed);
      if (result.status == OutQueue::FlushStatus::kWouldBlock) {
        return true;  // UpdateInterest arms EPOLLOUT for the rest
      }
      if (result.status == OutQueue::FlushStatus::kError) {
        CloseConnection(conn.id);
        return false;
      }
    }
    if (conn.close_after_flush ||
        (conn.peer_eof && !conn.dispatch_deferred)) {
      if (conn.error_close && !conn.peer_eof) {
        // Answer flushed after a protocol error, but the client may still
        // be mid-send: half-close and drain instead of closing outright.
        if (!conn.draining) {
          ::shutdown(conn.fd, SHUT_WR);
          conn.draining = true;
          conn.drain_budget = config().limits.max_body_bytes;
        }
        return true;
      }
      CloseConnection(conn.id);
      return false;
    }
    return true;
  }

  void UpdateInterest(Connection& conn) {
    const std::size_t pause_at =
        config().limits.max_header_bytes + config().limits.max_body_bytes;
    const bool paused = conn.parser.buffered_bytes() >= pause_at;
    std::uint32_t want = 0;
    if (conn.draining) {
      want |= EPOLLIN;  // keep discarding until peer EOF
    } else if (!paused && !conn.close_after_flush && !conn.peer_eof) {
      want |= EPOLLIN;
    }
    if (!conn.outq.empty()) want |= EPOLLOUT;
    if (want == conn.epoll_events) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = conn.id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
      conn.epoll_events = want;
    }
  }

  void CloseConnection(std::uint64_t conn_id) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
    ::close(it->second->fd);
    conns_.erase(it);
    server_->total_conns_.fetch_sub(1, std::memory_order_relaxed);
    if (accept_paused_) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kListenerId;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, listen_fd_, &ev) == 0) {
        accept_paused_ = false;
      }
    }
  }

  HttpServer* server_;
  std::size_t index_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;

  // Loop-thread-only state.  `pool_` outlives `conns_` (reverse member
  // destruction) so drained OutQueues can return their blocks.
  BufferPool pool_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake eventfd
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::unique_ptr<FlushBarrier> barrier_;
  /// Connections with responses queued this tick, awaiting the commit.
  std::vector<std::uint64_t> tick_pending_;
  bool accept_paused_ = false;  // listener masked after EMFILE/ENFILE
  /// When the next idle sweep is due (earliest connection deadline found
  /// by the last sweep).  Activity only pushes deadlines later, so the
  /// cache can be early but never late; the epoch default forces a first
  /// scan.
  std::chrono::steady_clock::time_point idle_scan_due_{};

  std::atomic<std::uint64_t> stat_accepted_{0};
  std::atomic<std::uint64_t> stat_rejected_{0};
  std::atomic<std::uint64_t> stat_timed_out_{0};
  std::atomic<std::uint64_t> stat_requests_{0};
  std::atomic<std::uint64_t> stat_throttled_{0};
  std::atomic<std::uint64_t> stat_protocol_errors_{0};
  std::atomic<std::uint64_t> stat_bytes_in_{0};
  std::atomic<std::uint64_t> stat_bytes_out_{0};
  std::atomic<std::uint64_t> stat_writev_calls_{0};
};

HttpServer::HttpServer(ServerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  if (!config_.clock) {
    config_.clock = [] {
      return static_cast<common::SimTime>(::time(nullptr));
    };
  }
}

HttpServer::~HttpServer() { Stop(); }

common::Status HttpServer::Start() {
  if (started_) {
    return common::Status::FailedPrecondition("server already started");
  }

  std::size_t want_loops = std::max<std::size_t>(1, config_.num_loops);
  if (want_loops > 1) {
    // Probe for SO_REUSEPORT before committing to a loop count: without it
    // the extra acceptors cannot share the port, so degrade to one loop
    // (correct, just unscaled) instead of failing to start.
    bool available = false;
    if (!config_.simulate_reuseport_unavailable) {
      const int probe = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (probe >= 0) {
        const int one = 1;
        available = ::setsockopt(probe, SOL_SOCKET, SO_REUSEPORT, &one,
                                 sizeof one) == 0;
        ::close(probe);
      }
    }
    if (!available) {
      SCALIA_LOG(common::LogLevel::kWarning, "net.server")
          << "SO_REUSEPORT unavailable; degrading from " << want_loops
          << " event loops to 1 (accept scaling disabled)";
      want_loops = 1;
    }
  }
  const bool reuseport = want_loops > 1;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return common::Status::InvalidArgument("unparseable bind address \"" +
                                           config_.bind_address + "\"");
  }

  std::vector<int> listen_fds;
  auto fail = [&listen_fds](common::Status status) {
    for (int fd : listen_fds) ::close(fd);
    return status;
  };

  for (std::size_t i = 0; i < want_loops; ++i) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return fail(common::Status::Internal("socket(): " + ErrnoString()));
    }
    listen_fds.push_back(fd);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (reuseport &&
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      return fail(
          common::Status::Internal("setsockopt(SO_REUSEPORT): " +
                                   ErrnoString()));
    }
    // The first socket resolves an ephemeral port; the rest share it.
    addr.sin_port = htons(i == 0 ? config_.port : port_);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
      return fail(common::Status::Unavailable(
          "bind(" + config_.bind_address + ":" +
          std::to_string(ntohs(addr.sin_port)) + "): " + ErrnoString()));
    }
    if (::listen(fd, 256) != 0) {
      return fail(common::Status::Internal("listen(): " + ErrnoString()));
    }
    if (i == 0) {
      sockaddr_in bound{};
      socklen_t bound_len = sizeof bound;
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                        &bound_len) != 0) {
        return fail(
            common::Status::Internal("getsockname(): " + ErrnoString()));
      }
      port_ = ntohs(bound.sin_port);
    }
  }

  loops_.reserve(want_loops);
  for (std::size_t i = 0; i < want_loops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(this, i, listen_fds[i]));
    if (auto status = loops_.back()->Init(); !status.ok()) {
      // Each EventLoop owns its listen fd from construction; destroying
      // the vector closes everything built so far.
      loops_.clear();
      port_ = 0;
      return status;
    }
  }
  listen_fds.clear();  // ownership moved into the loops

  stopping_.store(false, std::memory_order_release);
  started_ = true;
  for (auto& loop : loops_) loop->StartThread();
  SCALIA_LOG(common::LogLevel::kInfo, "net.server")
      << "listening on " << config_.bind_address << ":" << port_ << " with "
      << loops_.size() << " event loop(s)";
  return common::Status::Ok();
}

void HttpServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& loop : loops_) loop->Wake();
  for (auto& loop : loops_) loop->Join();
  final_stats_ = stats();
  for (auto& loop : loops_) loop->Teardown();
  loops_.clear();
  started_ = false;
}

ServerStats HttpServer::stats() const {
  if (loops_.empty()) return final_stats_;
  ServerStats s;
  s.loops.reserve(loops_.size());
  for (const auto& loop : loops_) {
    const LoopStats per_loop = loop->Snapshot();
    s.connections_accepted += per_loop.connections_accepted;
    s.bytes_out += per_loop.bytes_written;
    s.writev_calls += per_loop.writev_calls;
    s.connections_rejected += loop->rejected();
    s.connections_timed_out += loop->timed_out();
    s.requests_served += loop->requests();
    s.requests_throttled += per_loop.requests_throttled;
    s.protocol_errors += loop->protocol_errors();
    s.bytes_in += loop->bytes_in();
    s.loops.push_back(per_loop);
  }
  return s;
}

}  // namespace scalia::net
