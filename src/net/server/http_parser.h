// Incremental HTTP/1.1 wire parsing for the networked S3 gateway.
//
// api/http.h models the messages; this module binds them to the wire.  The
// RequestParser consumes bytes exactly as recv() delivers them — a request
// line split across ten reads is as valid as one arriving whole — and
// yields complete api::HttpRequest values plus the keep-alive decision.
// Protocol violations surface as an HTTP status (400/405/411 tree) instead
// of an exception, so the server can answer on the wire before closing:
//
//   431  request line + headers exceed max_header_bytes
//   413  declared Content-Length exceeds max_body_bytes
//   501  Transfer-Encoding (chunked uploads are not supported)
//   505  an HTTP/x.y version other than 1.0 / 1.1
//   405  a syntactically valid but unsupported method (POST, PATCH, …)
//   400  everything malformed (bad request line, bad Content-Length, …)
//
// The ResponseParser is the client-side mirror (status line instead of a
// request line), used by net::HttpClient and the loopback tests.  Bodies
// are delimited by Content-Length only; percent-encoded targets are kept
// raw — decoding and traversal checks stay in api::ParseTarget.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "api/http.h"

namespace scalia::net {

struct ParserLimits {
  /// Bound on the request line + header block, including the blank line.
  std::size_t max_header_bytes = 16 * 1024;
  /// Bound on the declared Content-Length.
  std::size_t max_body_bytes = 64ull * 1024 * 1024;
};

struct ParsedRequest {
  api::HttpRequest request;
  /// Whether the connection may serve another request afterwards
  /// (HTTP/1.1 default, overridden by Connection; HTTP/1.0 opts in).
  bool keep_alive = true;
};

class RequestParser {
 public:
  explicit RequestParser(ParserLimits limits = {}) : limits_(limits) {}

  /// Appends bytes received from the wire.
  void Feed(std::string_view data);

  /// Extracts the next complete request, nullopt when more bytes are
  /// needed.  After a protocol error, always nullopt (see error_status).
  [[nodiscard]] std::optional<ParsedRequest> Next();

  /// Allocation-reusing variant: parses the next complete request into
  /// `*out`, clearing its strings/maps in place so their heap capacity is
  /// reused across keep-alive requests (the serving loop keeps one scratch
  /// ParsedRequest per connection).  Returns false when more bytes are
  /// needed or after a protocol error.  A request whose body is still in
  /// flight parks its header state in `*out`, so the caller must pass the
  /// *same* scratch object until a request completes, and must not
  /// interleave calls to the optional-returning Next().
  [[nodiscard]] bool Next(ParsedRequest* out);

  /// 0 while the stream is healthy; otherwise the HTTP status the server
  /// should answer with before closing the connection.
  [[nodiscard]] int error_status() const noexcept { return error_status_; }
  [[nodiscard]] const std::string& error_message() const noexcept {
    return error_message_;
  }

  /// Bytes buffered but not yet consumed into a request (back-pressure
  /// signal: the server stops reading when this grows too large).
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  enum class State { kHeaders, kBody };

  void Fail(int status, std::string message);
  /// Parses the request line + header lines into `*out` (cleared in place
  /// first); returns false after calling Fail().
  bool ParseHeaderBlock(std::string_view block, ParsedRequest* out);

  ParserLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;
  State state_ = State::kHeaders;
  ParsedRequest pending_;
  std::size_t body_length_ = 0;
  int error_status_ = 0;
  std::string error_message_;
};

struct ParsedResponse {
  api::HttpResponse response;
  bool keep_alive = true;
};

class ResponseParser {
 public:
  explicit ResponseParser(ParserLimits limits = {}) : limits_(limits) {}

  void Feed(std::string_view data);

  /// `head_response` skips the body (HEAD answers carry Content-Length
  /// describing the object but no payload).
  [[nodiscard]] std::optional<ParsedResponse> Next(bool head_response);

  [[nodiscard]] int error_status() const noexcept { return error_status_; }
  [[nodiscard]] const std::string& error_message() const noexcept {
    return error_message_;
  }

 private:
  enum class State { kHeaders, kBody };

  void Fail(std::string message);
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

  ParserLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;
  State state_ = State::kHeaders;
  ParsedResponse pending_;
  std::size_t body_length_ = 0;
  int error_status_ = 0;
  std::string error_message_;
};

/// Renders a response to the wire.  Emits Content-Length (preserving an
/// explicit one, e.g. a HEAD answer describing the object's size) and a
/// Connection header matching `keep_alive`.
[[nodiscard]] std::string SerializeResponse(const api::HttpResponse& response,
                                            bool keep_alive);

/// The head alone — status line, headers, Content-Length, the blank line —
/// without the body bytes.  The serving loop queues this next to the body
/// by reference (net/server/out_queue.h) so a response body is gathered by
/// writev instead of copied into a contiguous wire string.
[[nodiscard]] std::string SerializeResponseHead(
    const api::HttpResponse& response, bool keep_alive);

/// Renders a request to the wire: request line (path + re-encoded query),
/// headers, Content-Length, Connection.
[[nodiscard]] std::string SerializeRequest(const api::HttpRequest& request,
                                           bool keep_alive);

}  // namespace scalia::net
