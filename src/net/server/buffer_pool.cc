#include "net/server/buffer_pool.h"

#include <cstring>
#include <utility>

namespace scalia::net {

BufferPool::Block& BufferPool::Block::operator=(Block&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = std::exchange(other.pool_, nullptr);
    mem_ = std::move(other.mem_);
    capacity_ = std::exchange(other.capacity_, 0);
    used_ = std::exchange(other.used_, 0);
  }
  return *this;
}

std::size_t BufferPool::Block::Append(std::string_view bytes) {
  const std::size_t take = std::min(bytes.size(), remaining());
  if (take > 0) {
    std::memcpy(mem_.get() + used_, bytes.data(), take);
    used_ += take;
  }
  return take;
}

void BufferPool::Block::Release() {
  if (mem_ != nullptr && pool_ != nullptr) {
    pool_->Return(std::move(mem_));
  }
  mem_.reset();
  pool_ = nullptr;
  capacity_ = 0;
  used_ = 0;
}

BufferPool::BufferPool(Config config) : config_(config) {
  if (config_.block_bytes == 0) config_.block_bytes = 16 * 1024;
}

BufferPool::Block BufferPool::Acquire() {
  std::unique_ptr<char[]> mem;
  if (!free_.empty()) {
    mem = std::move(free_.back());
    free_.pop_back();
    ++stats_.reuses;
  } else {
    mem = std::make_unique<char[]>(config_.block_bytes);
    ++stats_.allocations;
  }
  stats_.free_blocks = free_.size();
  ++stats_.outstanding;
  return Block(this, std::move(mem), config_.block_bytes);
}

void BufferPool::Return(std::unique_ptr<char[]> mem) {
  if (stats_.outstanding > 0) --stats_.outstanding;
  if (free_.size() < config_.max_free_blocks) {
    free_.push_back(std::move(mem));
  } else {
    ++stats_.discards;  // list full: let the heap have it back
  }
  stats_.free_blocks = free_.size();
}

}  // namespace scalia::net
