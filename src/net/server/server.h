// Networked front door for the S3-compatible gateway.
//
// §III-A's engines are "simple stateless web services"; this server is the
// serving loop that makes ours one.  A single I/O thread owns a listening
// TCP socket and an epoll set of non-blocking connections: it accepts,
// reads, and feeds bytes to each connection's incremental RequestParser.
// Complete requests are dispatched to the shared common::ThreadPool — the
// same pool the optimizer and chunk transfers use — where the handler
// (typically api::S3Gateway::Handle via core::ScaliaCluster::RouteRequest)
// produces the response; the serialized bytes are handed back to the I/O
// thread over a completion queue + eventfd wakeup and flushed to the wire,
// honouring keep-alive and pipelining (one request in flight per
// connection; later pipelined requests wait buffered, so responses can
// never reorder).
//
// Protocol errors answer on the wire (431/413/400/405/501/505, see
// http_parser.h) and then close.  Stop() is graceful: the listener closes,
// in-flight handlers drain, and every worker joins before it returns.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/http.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/server/http_parser.h"

namespace scalia::net {

struct ServerConfig {
  /// Dotted-quad address to bind ("0.0.0.0" to serve beyond loopback).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 1024;
  /// Read/idle deadline: a connection that makes no progress — sends no
  /// byte of a pending request and has none in flight — for this long is
  /// answered `408 Request Timeout` and closed, so a slowloris or idle
  /// client cannot pin a connection slot.  0 disables the deadline.
  long idle_timeout_ms = 60'000;
  ParserLimits limits;
  /// Handler pool; nullptr uses common::ThreadPool::Shared().
  common::ThreadPool* pool = nullptr;
  /// Timestamp handed to the handler per request; defaults to the wall
  /// clock in seconds (examples) — tests pin it for deterministic auth.
  std::function<common::SimTime()> clock;
};

/// Monotonic counters, readable while serving.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections
  std::uint64_t connections_timed_out = 0;  // idle/read deadline expiries
  std::uint64_t requests_served = 0;       // handler responses written
  std::uint64_t protocol_errors = 0;       // parser-level error answers
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class HttpServer {
 public:
  using Handler =
      std::function<api::HttpResponse(common::SimTime, const api::HttpRequest&)>;

  HttpServer(ServerConfig config, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and starts the I/O thread.  Fails on an unparseable
  /// address or an occupied port.
  [[nodiscard]] common::Status Start();

  /// Graceful shutdown: stops accepting, lets in-flight handlers finish,
  /// closes every connection and joins the I/O thread.  Idempotent.
  void Stop();

  /// The bound port (resolves port 0 after Start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    RequestParser parser;
    std::string outbuf;
    std::size_t outbuf_off = 0;
    bool busy = false;              // one request is with the thread pool
    /// Write-side back-pressure deferred a dispatch; a complete request
    /// may still be buffered, so a peer EOF must not close the connection
    /// before it is served.
    bool dispatch_deferred = false;
    bool close_after_flush = false;
    bool error_close = false;       // closing because of a protocol error
    /// Lingering close: response flushed + SHUT_WR sent; reads are being
    /// discarded until peer EOF (or budget), so the client can read the
    /// error answer before any RST.
    bool draining = false;
    std::size_t drain_budget = 0;
    bool peer_eof = false;
    bool timed_out = false;  // 408 sent; the next expiry force-closes
    /// Last client progress (accept, bytes read, response written, flush
    /// progress) against which the idle deadline is measured.
    std::chrono::steady_clock::time_point last_activity;
    std::uint32_t epoll_events = 0;  // currently armed interest set
  };

  /// A handler result crossing back from a pool thread to the I/O thread.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::string wire;
    bool keep_alive = true;
  };

  void IoLoop();
  void AcceptReady();
  /// Milliseconds until the next idle sweep is due (epoll_wait timeout);
  /// -1 when deadlines are disabled or no connections exist.  O(1): reads
  /// the deadline cached by the last sweep.
  [[nodiscard]] int NextDeadlineMs() const;
  /// Expires idle connections: first expiry answers 408 + lingering close,
  /// a second expiry (client still silent) force-closes.  Scans the
  /// connection map only when the cached earliest deadline has passed.
  void SweepIdleConnections();
  void HandleEvent(std::uint64_t conn_id, std::uint32_t events);
  /// Reads until EAGAIN (or back-pressure pause); false on a fatal socket
  /// error — the caller closes.
  [[nodiscard]] bool ReadReady(Connection& conn);
  /// Starts the next buffered request if the connection is idle; emits the
  /// protocol-error answer when the parser has failed.
  void DispatchNext(Connection& conn);
  /// Writes what the socket accepts; arms EPOLLOUT on short writes and
  /// closes once drained if the connection is finished.  False when the
  /// connection was closed.
  [[nodiscard]] bool FlushWrites(Connection& conn);
  void DrainCompletions();
  void UpdateInterest(Connection& conn);
  void CloseConnection(std::uint64_t conn_id);
  void WakeIo();

  [[nodiscard]] common::ThreadPool& pool() const noexcept {
    return config_.pool != nullptr ? *config_.pool
                                   : common::ThreadPool::Shared();
  }

  ServerConfig config_;
  Handler handler_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};

  // I/O-thread-only state.
  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake eventfd
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  bool accept_paused_ = false;  // listener masked after EMFILE/ENFILE
  /// When the next idle sweep is due (earliest connection deadline found by
  /// the last sweep).  Activity only pushes deadlines later, so the cache
  /// can be early but never late; the epoch default forces a first scan.
  std::chrono::steady_clock::time_point idle_scan_due_{};

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::mutex in_flight_mu_;
  std::condition_variable in_flight_cv_;
  std::size_t in_flight_ = 0;

  std::atomic<std::uint64_t> stat_accepted_{0};
  std::atomic<std::uint64_t> stat_rejected_{0};
  std::atomic<std::uint64_t> stat_timed_out_{0};
  std::atomic<std::uint64_t> stat_requests_{0};
  std::atomic<std::uint64_t> stat_protocol_errors_{0};
  std::atomic<std::uint64_t> stat_bytes_in_{0};
  std::atomic<std::uint64_t> stat_bytes_out_{0};
};

}  // namespace scalia::net
