// Networked front door for the S3-compatible gateway.
//
// §III-A's engines are "simple stateless web services"; this server is the
// serving loop that makes ours one.  Serving is *shard-local*: the server
// runs `num_loops` independent event loops, each owning an acceptor socket
// (SO_REUSEPORT spreads incoming connections across them in the kernel),
// an epoll set, a BufferPool, and every connection it accepted.  A request
// is parsed, handled and answered entirely on its loop's thread — no
// thread-pool hop, no completion queue, no cross-thread wakeup on the hot
// path.  Responses are queued as head + body segments in a per-connection
// OutQueue and leave through scatter-gather writes (out_queue.h), so a
// pipelined burst of K responses costs O(1) syscalls, not K.
//
// Durability batches per tick: when a FlushBarrier factory is configured,
// each loop commits the barrier once per event-loop tick — after handlers
// ran, before their responses reach the wire — so K pipelined PUTs fsync
// once (durability::AckCohort) and nothing is acknowledged before it is
// durable.
//
// Keep-alive and pipelining are honoured with in-order responses.
// Protocol errors answer on the wire (431/413/400/405/501/505, see
// http_parser.h) and then close.  Stop() is graceful: every loop drains
// its tick and joins before it returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/http.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "net/server/http_parser.h"

namespace scalia::net {

/// Per-loop durability hook.  Each event loop builds one barrier (on its
/// own thread, so thread-local machinery like durability::AckCohort
/// installs correctly) and calls Commit() once per tick, after handlers
/// ran and before their responses are flushed.  A failed Commit() drops
/// the tick's unflushed responses and closes their connections — nothing
/// is ever acknowledged to a client that is not durable.  Commit() must be
/// cheap when no work was deferred since the last call.
class FlushBarrier {
 public:
  virtual ~FlushBarrier() = default;
  [[nodiscard]] virtual common::Status Commit() = 0;
};

struct ServerConfig {
  /// Dotted-quad address to bind ("0.0.0.0" to serve beyond loopback).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Event loops, each with its own acceptor.  Values > 1 bind the port
  /// SO_REUSEPORT so the kernel load-balances accepts; when the option is
  /// unavailable the server degrades to one loop with a logged warning.
  std::size_t num_loops = 1;
  /// Accepted connections (across all loops) beyond this are closed
  /// immediately.
  std::size_t max_connections = 1024;
  /// Read/idle deadline: a connection that makes no progress — sends no
  /// byte of a pending request and has none in flight — for this long is
  /// answered `408 Request Timeout` and closed, so a slowloris or idle
  /// client cannot pin a connection slot.  0 disables the deadline.
  long idle_timeout_ms = 60'000;
  ParserLimits limits;
  /// Timestamp handed to the handler per request; defaults to the wall
  /// clock in seconds (examples) — tests pin it for deterministic auth.
  std::function<common::SimTime()> clock;
  /// When set, every loop creates one FlushBarrier and commits it per
  /// tick before flushing responses (see FlushBarrier).
  std::function<std::unique_ptr<FlushBarrier>()> barrier_factory;
  /// Test hook: pretend SO_REUSEPORT is unavailable, forcing the
  /// single-loop fallback path.
  bool simulate_reuseport_unavailable = false;
};

/// Per-event-loop counters (operational visibility into the kernel's
/// SO_REUSEPORT accept distribution and each loop's write amplification).
struct LoopStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t writev_calls = 0;
  std::uint64_t requests_throttled = 0;  // 429 responses (admission sheds)
};

/// Monotonic counters, readable while serving.  Aggregated across loops;
/// `loops` breaks the per-loop shares out.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections
  std::uint64_t connections_timed_out = 0;  // idle/read deadline expiries
  std::uint64_t requests_served = 0;       // handler responses written
  std::uint64_t requests_throttled = 0;    // 429s (SLO admission sheds)
  std::uint64_t protocol_errors = 0;       // parser-level error answers
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t writev_calls = 0;          // gather writes issued
  std::vector<LoopStats> loops;            // one entry per event loop
};

class HttpServer {
 public:
  using Handler =
      std::function<api::HttpResponse(common::SimTime, const api::HttpRequest&)>;

  HttpServer(ServerConfig config, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds the acceptor sockets, resolves the SO_REUSEPORT fallback, and
  /// starts one I/O thread per loop.  Fails on an unparseable address or
  /// an occupied port.
  [[nodiscard]] common::Status Start();

  /// Graceful shutdown: every loop finishes its tick (committing and
  /// flushing queued responses), closes its connections and joins.
  /// Idempotent.
  void Stop();

  /// The bound port (resolves port 0 after Start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Event loops actually serving — config_.num_loops, or 1 after the
  /// SO_REUSEPORT fallback.  Valid after Start().
  [[nodiscard]] std::size_t num_loops() const noexcept {
    return loops_.size();
  }

  [[nodiscard]] ServerStats stats() const;

 private:
  class EventLoop;  // one acceptor + epoll set + its connections (server.cc)

  ServerConfig config_;
  Handler handler_;

  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  /// Live connections across all loops, against max_connections.
  std::atomic<std::size_t> total_conns_{0};
  std::vector<std::unique_ptr<EventLoop>> loops_;
  /// Snapshot taken by Stop() so counters survive the loops' teardown.
  ServerStats final_stats_;
};

}  // namespace scalia::net
