// Scatter-gather output queue for one connection.
//
// Replaces the `outbuf += SerializeResponse(...)` string-append scheme: a
// response is queued as a *head* segment (status line + headers, copied
// into pooled BufferPool blocks — several heads share one block) followed
// by a *body* segment (the handler's body string, moved, never copied).
// Flush() walks the segment chain and hands up to kMaxIov spans per call
// to one scatter-gather write, so a pipelined burst of K responses leaves
// in O(1) syscalls instead of K serialize-copy-send rounds.
//
// The gather write is sendmsg(MSG_NOSIGNAL) — writev semantics without the
// SIGPIPE a dead peer would otherwise raise.  Tests inject short writes
// through set_writev_fn to exercise partial-flush resume.
//
// Single-threaded by design, like the BufferPool it draws from: one event
// loop owns the connection and is the only caller.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "net/server/buffer_pool.h"

namespace scalia::net {

class OutQueue {
 public:
  /// Gather-write hook, writev-shaped.  The default performs
  /// sendmsg(fd, iov, MSG_NOSIGNAL); tests substitute short writers.
  using WritevFn = std::function<ssize_t(int fd, const struct iovec* iov,
                                         int iovcnt)>;

  /// Spans handed to one gather write (well under IOV_MAX everywhere).
  static constexpr int kMaxIov = 64;

  /// `pool` supplies head blocks and must outlive the queue.
  explicit OutQueue(BufferPool* pool) : pool_(pool) {}

  void set_writev_fn(WritevFn fn) { writev_fn_ = std::move(fn); }

  /// Queues serialized head bytes (copied into pooled blocks; appends to
  /// the open tail block when one has room).  Also used whole for small
  /// self-contained wires such as protocol-error answers.
  void PushHead(std::string_view bytes);

  /// Queues a response body by move — the bytes are never copied again;
  /// the gather write reads them in place.
  void PushBody(std::string body);

  [[nodiscard]] bool empty() const noexcept { return pending_bytes_ == 0; }
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return pending_bytes_;
  }

  enum class FlushStatus { kDrained, kWouldBlock, kError };
  struct FlushResult {
    FlushStatus status = FlushStatus::kDrained;
    std::size_t bytes_written = 0;
    std::size_t writev_calls = 0;
    int error = 0;  // errno when status == kError
  };

  /// Writes what the socket accepts.  kDrained: everything left and the
  /// queue is empty.  kWouldBlock: a short write — the caller arms EPOLLOUT
  /// and resumes later.  kError: a fatal socket error — the caller closes.
  [[nodiscard]] FlushResult Flush(int fd);

  /// Drops everything queued; pooled blocks return to the pool.
  void Clear();

 private:
  struct Segment {
    BufferPool::Block block;  // head bytes, when pooled
    std::string body;         // body bytes, when not
    std::size_t off = 0;      // consumed prefix

    [[nodiscard]] const char* data() const noexcept {
      return (block.valid() ? block.data() : body.data()) + off;
    }
    [[nodiscard]] std::size_t size() const noexcept {
      return (block.valid() ? block.size() : body.size()) - off;
    }
  };

  /// Pops `n` written bytes off the front of the chain.
  void Consume(std::size_t n);

  BufferPool* pool_;
  std::deque<Segment> segments_;
  std::size_t pending_bytes_ = 0;
  WritevFn writev_fn_;  // empty => sendmsg(MSG_NOSIGNAL)
};

}  // namespace scalia::net
