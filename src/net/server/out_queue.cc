#include "net/server/out_queue.h"

#include <sys/socket.h>

#include <cerrno>
#include <utility>

namespace scalia::net {

namespace {

/// writev with MSG_NOSIGNAL: a peer that reset the connection must surface
/// as EPIPE, not a process-killing SIGPIPE.
ssize_t GatherWrite(int fd, const struct iovec* iov, int iovcnt) {
  struct msghdr msg {};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(iovcnt);
  return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
}

}  // namespace

void OutQueue::PushHead(std::string_view bytes) {
  pending_bytes_ += bytes.size();
  while (!bytes.empty()) {
    // Heads pack: keep filling the open tail block while it has room.
    if (segments_.empty() || !segments_.back().block.valid() ||
        segments_.back().block.remaining() == 0) {
      Segment seg;
      seg.block = pool_->Acquire();
      segments_.push_back(std::move(seg));
    }
    const std::size_t taken = segments_.back().block.Append(bytes);
    bytes.remove_prefix(taken);
  }
}

void OutQueue::PushBody(std::string body) {
  if (body.empty()) return;
  pending_bytes_ += body.size();
  Segment seg;
  seg.body = std::move(body);
  segments_.push_back(std::move(seg));
}

OutQueue::FlushResult OutQueue::Flush(int fd) {
  FlushResult result;
  while (pending_bytes_ > 0) {
    struct iovec iov[kMaxIov];
    int iovcnt = 0;
    for (const Segment& seg : segments_) {
      if (iovcnt == kMaxIov) break;
      if (seg.size() == 0) continue;
      iov[iovcnt].iov_base = const_cast<char*>(seg.data());
      iov[iovcnt].iov_len = seg.size();
      ++iovcnt;
    }
    const ssize_t n = writev_fn_ ? writev_fn_(fd, iov, iovcnt)
                                 : GatherWrite(fd, iov, iovcnt);
    if (n > 0) {
      ++result.writev_calls;
      result.bytes_written += static_cast<std::size_t>(n);
      Consume(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      result.status = FlushStatus::kWouldBlock;
      return result;
    }
    result.status = FlushStatus::kError;
    result.error = n < 0 ? errno : EIO;
    return result;
  }
  result.status = FlushStatus::kDrained;
  return result;
}

void OutQueue::Consume(std::size_t n) {
  pending_bytes_ -= n;
  while (n > 0) {
    Segment& front = segments_.front();
    if (front.size() == 0) {
      segments_.pop_front();
      continue;
    }
    const std::size_t take = std::min(n, front.size());
    front.off += take;
    n -= take;
    if (front.size() == 0) segments_.pop_front();
  }
  // A fully-drained queue frees its segments eagerly (blocks recycle).
  if (pending_bytes_ == 0) segments_.clear();
}

void OutQueue::Clear() {
  segments_.clear();
  pending_bytes_ = 0;
}

}  // namespace scalia::net
