// Per-event-loop recycling pool of fixed-size output blocks.
//
// The serving loop builds every response as a chain of segments (see
// out_queue.h): serialized header bytes land in pooled blocks, bodies ride
// along by move.  Allocating those header blocks from the general heap per
// response made malloc/free a measurable share of the small-object hot path
// (BENCH_PR3 → PR5 drift); this pool instead recycles blocks through a
// bounded free list, so the steady state performs no allocation at all.
//
// Deliberately NOT thread-safe: each event loop owns one pool and touches
// it only from its own thread, which is exactly what makes the fast path
// a pointer swap.  Blocks must not outlive their pool (the loop destroys
// its connections — and with them every outstanding block — before the
// pool, by member order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace scalia::net {

class BufferPool {
 public:
  struct Config {
    /// Capacity of every block.  One block comfortably holds dozens of
    /// serialized response heads (~100–200 B each).
    std::size_t block_bytes = 16 * 1024;
    /// Bound on the free list.  Returns beyond it free the block instead
    /// (exhaustion back-pressure never blocks: Acquire() simply allocates
    /// when the list is empty).
    std::size_t max_free_blocks = 256;
  };

  struct Stats {
    std::uint64_t allocations = 0;  // fresh heap blocks handed out
    std::uint64_t reuses = 0;       // acquisitions served from the free list
    std::uint64_t discards = 0;     // returns dropped because the list is full
    std::size_t free_blocks = 0;    // currently parked in the free list
    std::size_t outstanding = 0;    // handed out and not yet returned
  };

  /// Movable owner of one block.  Append() fills it; destruction (or reset)
  /// returns the storage to the pool's free list.
  class Block {
   public:
    Block() = default;
    Block(Block&& other) noexcept { *this = std::move(other); }
    Block& operator=(Block&& other) noexcept;
    ~Block() { Release(); }

    Block(const Block&) = delete;
    Block& operator=(const Block&) = delete;

    [[nodiscard]] const char* data() const noexcept { return mem_.get(); }
    [[nodiscard]] std::size_t size() const noexcept { return used_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] bool valid() const noexcept { return mem_ != nullptr; }
    [[nodiscard]] std::size_t remaining() const noexcept {
      return capacity_ - used_;
    }

    /// Copies as much of `bytes` as fits; returns how many were taken.
    std::size_t Append(std::string_view bytes);

    /// Returns the storage to the pool now (idempotent).
    void Release();

   private:
    friend class BufferPool;
    Block(BufferPool* pool, std::unique_ptr<char[]> mem,
          std::size_t capacity) noexcept
        : pool_(pool), mem_(std::move(mem)), capacity_(capacity) {}

    BufferPool* pool_ = nullptr;
    std::unique_ptr<char[]> mem_;
    std::size_t capacity_ = 0;
    std::size_t used_ = 0;
  };

  BufferPool() : BufferPool(Config{}) {}
  explicit BufferPool(Config config);
  ~BufferPool() = default;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty block, recycled when the free list has one.
  [[nodiscard]] Block Acquire();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t block_bytes() const noexcept {
    return config_.block_bytes;
  }

 private:
  void Return(std::unique_ptr<char[]> mem);

  Config config_;
  std::vector<std::unique_ptr<char[]>> free_;
  Stats stats_;
};

}  // namespace scalia::net
