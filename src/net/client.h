// Small blocking HTTP/1.1 client for driving the networked gateway.
//
// The counterpart of net::HttpServer on the other end of the wire: used by
// the closed-loop load generator (bench/bench_server_throughput.cc) and the
// loopback tests.  One HttpClient owns one TCP connection and reuses it
// across requests (keep-alive); a stale connection — the server closed it
// between requests — is re-dialed once transparently.  Strictly one request
// in flight: RoundTrip() blocks until the full response is parsed.
#pragma once

#include <cstdint>
#include <string>

#include "api/http.h"
#include "common/status.h"
#include "net/server/http_parser.h"

namespace scalia::net {

class HttpClient {
 public:
  struct Options {
    /// Send/receive timeout per socket operation (0 = OS default).
    int timeout_ms = 30'000;
    ParserLimits limits;
  };

  /// `host` is a dotted-quad IPv4 address, or "localhost".
  HttpClient(std::string host, std::uint16_t port, Options options);
  HttpClient(std::string host, std::uint16_t port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Dials if not already connected.  Idempotent.
  [[nodiscard]] common::Status Connect();
  void Close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Sends `request` and blocks for the response.  Reconnects once if the
  /// kept-alive connection turns out to be dead at write time.  Closes the
  /// connection when the server answers `Connection: close`.
  [[nodiscard]] common::Result<api::HttpResponse> RoundTrip(
      const api::HttpRequest& request);

 private:
  [[nodiscard]] common::Status WriteAll(std::string_view data);
  /// `eof_before_any_bytes` (optional) is set when the server closed the
  /// connection before sending anything — the stale keep-alive signature
  /// RoundTrip retries on.
  [[nodiscard]] common::Result<api::HttpResponse> ReadResponse(
      bool head_response, bool* eof_before_any_bytes);

  std::string host_;
  std::uint16_t port_;
  Options options_;
  int fd_ = -1;
};

}  // namespace scalia::net
