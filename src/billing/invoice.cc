#include "billing/invoice.h"

#include <algorithm>

#include "common/string_util.h"

namespace scalia::billing {

namespace {

constexpr double kHoursPerMonth = 720.0;  // 30-day billing month

void AddLine(Invoice* invoice, LineKind kind, double quantity,
             std::string unit, double unit_price) {
  LineItem item;
  item.kind = kind;
  item.quantity = quantity;
  item.unit = std::move(unit);
  item.unit_price = unit_price;
  item.amount = common::Money(quantity * unit_price);
  invoice->total += item.amount;
  invoice->lines.push_back(std::move(item));
}

}  // namespace

Invoice MakeInvoice(const provider::ProviderSpec& spec,
                    const provider::PeriodUsage& usage,
                    common::SimTime window_start,
                    common::SimTime window_end) {
  Invoice invoice;
  invoice.provider = spec.id;
  invoice.window_start = window_start;
  invoice.window_end = window_end;
  AddLine(&invoice, LineKind::kStorage, usage.storage_gb_hours / kHoursPerMonth,
          "GB-month", spec.pricing.storage_gb_month);
  AddLine(&invoice, LineKind::kBandwidthIn, usage.bw_in_gb, "GB",
          spec.pricing.bw_in_gb);
  AddLine(&invoice, LineKind::kBandwidthOut, usage.bw_out_gb, "GB",
          spec.pricing.bw_out_gb);
  // Ops are catalogued per 1000 requests (Fig. 3).
  AddLine(&invoice, LineKind::kOperations, usage.ops, "requests",
          spec.pricing.ops_per_1000 / 1000.0);
  return invoice;
}

std::string Invoice::ToString() const {
  std::string out = "Invoice: " + provider + "  [" +
                    common::FormatSimTime(window_start) + " .. " +
                    common::FormatSimTime(window_end) + ")\n";
  for (const LineItem& line : lines) {
    out += "  ";
    out += LineKindName(line.kind);
    out += ": ";
    out += common::FormatDouble(line.quantity, 6);
    out += " ";
    out += line.unit;
    out += " @ $";
    out += common::FormatDouble(line.unit_price, 6);
    out += " = ";
    out += line.amount.ToString();
    out += "\n";
  }
  out += "  total: " + total.ToString() + "\n";
  return out;
}

common::Money Statement::Total() const {
  common::Money sum;
  for (const Invoice& inv : invoices) sum += inv.total;
  return sum;
}

std::string Statement::ToString() const {
  std::string out;
  for (const Invoice& inv : invoices) out += inv.ToString();
  out += "Statement total: " + Total().ToString() + "\n";
  return out;
}

std::string Statement::ToCsv() const {
  std::string out = "provider,line,quantity,unit,unit_price,amount\n";
  for (const Invoice& inv : invoices) {
    for (const LineItem& line : inv.lines) {
      out += inv.provider;
      out += ',';
      out += LineKindName(line.kind);
      out += ',';
      out += common::FormatDouble(line.quantity, 9);
      out += ',';
      out += line.unit;
      out += ',';
      out += common::FormatDouble(line.unit_price, 6);
      out += ',';
      out += common::FormatDouble(line.amount.usd(), 9);
      out += '\n';
    }
  }
  return out;
}

void Ledger::Accrue(const provider::ProviderId& provider_id,
                    const provider::PeriodUsage& usage) {
  for (auto& [id, acc] : accrued_) {
    if (id == provider_id) {
      acc += usage;
      return;
    }
  }
  accrued_.emplace_back(provider_id, usage);
}

Statement Ledger::Cut(common::SimTime now,
                      const std::vector<provider::ProviderSpec>& catalog) {
  Statement statement;
  statement.window_start = window_start_;
  statement.window_end = now;
  // Deterministic output order regardless of accrual order.
  std::sort(accrued_.begin(), accrued_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [id, usage] : accrued_) {
    const provider::ProviderSpec* spec = provider::FindSpec(catalog, id);
    if (spec == nullptr) continue;
    statement.invoices.push_back(MakeInvoice(*spec, usage, window_start_, now));
  }
  accrued_.clear();
  window_start_ = now;
  return statement;
}

}  // namespace scalia::billing
