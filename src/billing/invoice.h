// Itemized provider invoices.
//
// §II-B frames Scalia's whole purpose as "paying a fair price": the broker
// must therefore be able to show the data owner exactly what each provider
// charged and for which resource.  This module renders metered usage into
// per-provider invoices with one line item per billable resource (storage,
// bandwidth in, bandwidth out, operations — the four price columns of
// Fig. 3), aggregates invoices across providers into a billing statement,
// and exports CSV for downstream cost analysis.
#pragma once

#include <string>
#include <vector>

#include "common/money.h"
#include "common/sim_time.h"
#include "provider/pricing.h"
#include "provider/spec.h"

namespace scalia::billing {

/// One billable resource on an invoice.
enum class LineKind { kStorage, kBandwidthIn, kBandwidthOut, kOperations };

[[nodiscard]] constexpr std::string_view LineKindName(LineKind k) {
  switch (k) {
    case LineKind::kStorage: return "storage";
    case LineKind::kBandwidthIn: return "bandwidth-in";
    case LineKind::kBandwidthOut: return "bandwidth-out";
    case LineKind::kOperations: return "operations";
  }
  return "?";
}

struct LineItem {
  LineKind kind = LineKind::kStorage;
  double quantity = 0.0;     // GB·month, GB, GB, or request count
  std::string unit;          // "GB-month", "GB", "requests"
  double unit_price = 0.0;   // catalog rate for the unit
  common::Money amount;      // quantity x unit_price
};

/// Everything one provider charged over a billing window.
struct Invoice {
  provider::ProviderId provider;
  common::SimTime window_start = 0;
  common::SimTime window_end = 0;
  std::vector<LineItem> lines;
  common::Money total;

  /// Renders a human-readable invoice block (for examples and reports).
  [[nodiscard]] std::string ToString() const;
};

/// A statement aggregates the invoices of every provider in the window.
struct Statement {
  common::SimTime window_start = 0;
  common::SimTime window_end = 0;
  std::vector<Invoice> invoices;

  [[nodiscard]] common::Money Total() const;

  /// Renders all invoices plus the grand total.
  [[nodiscard]] std::string ToString() const;

  /// CSV export: provider,line,quantity,unit,unit_price,amount.
  [[nodiscard]] std::string ToCsv() const;
};

/// Builds an invoice from usage metered over [window_start, window_end).
/// Storage is billed per GB·month (prorated mode) — usage carries
/// GB·hours, so quantity = gb_hours / 720.
[[nodiscard]] Invoice MakeInvoice(const provider::ProviderSpec& spec,
                                  const provider::PeriodUsage& usage,
                                  common::SimTime window_start,
                                  common::SimTime window_end);

/// A running cost ledger: feed per-period usage per provider, cut monthly
/// (or arbitrary-window) statements.
class Ledger {
 public:
  /// Accumulates `usage` for `provider_id` in the current window.
  void Accrue(const provider::ProviderId& provider_id,
              const provider::PeriodUsage& usage);

  /// Closes the window ending at `now` and returns the statement; the
  /// ledger then starts a fresh window at `now`.  `catalog` supplies the
  /// pricing for each accrued provider; unknown providers are skipped.
  [[nodiscard]] Statement Cut(
      common::SimTime now, const std::vector<provider::ProviderSpec>& catalog);

  [[nodiscard]] std::size_t ProviderCount() const {
    return accrued_.size();
  }

 private:
  common::SimTime window_start_ = 0;
  std::vector<std::pair<provider::ProviderId, provider::PeriodUsage>> accrued_;
};

}  // namespace scalia::billing
