#include "api/gateway.h"

#include <utility>

#include "capacity/admission.h"
#include "common/string_util.h"
#include "common/units.h"

namespace scalia::api {

int HttpStatusFor(const common::Status& status) {
  switch (status.code()) {
    case common::StatusCode::kOk: return 200;
    case common::StatusCode::kNotFound: return 404;
    case common::StatusCode::kUnavailable: return 503;
    case common::StatusCode::kConflict: return 409;
    case common::StatusCode::kInvalidArgument: return 400;
    case common::StatusCode::kFailedPrecondition: return 412;
    case common::StatusCode::kResourceExhausted: return 429;
    case common::StatusCode::kUnauthenticated: return 401;
    case common::StatusCode::kInternal: return 500;
  }
  return 500;
}

S3Gateway::S3Gateway(Authenticator* auth, RouteFn route)
    : auth_(auth), route_(std::move(route)) {}

void S3Gateway::RegisterRule(core::StorageRule rule) {
  common::MutexLock lock(rules_mu_);
  rules_[rule.name] = std::move(rule);
}

HttpResponse S3Gateway::ErrorResponse(const common::Status& status) {
  HttpResponse response;
  response.status = HttpStatusFor(status);
  response.body = status.ToString();
  response.headers.Set("content-type", "text/plain");
  return response;
}

HttpResponse S3Gateway::Handle(common::SimTime now,
                               const HttpRequest& request) {
  auto tenant = auth_->Verify(request, now);
  if (!tenant.ok()) return ErrorResponse(tenant.status());

  auto target = ParseTarget(request.path);
  if (!target.ok()) return ErrorResponse(target.status());
  const auto& segments = target->segments;

  if (segments.empty()) {
    return ErrorResponse(
        common::Status::InvalidArgument("container name required"));
  }
  // Tenant isolation: the engines see per-tenant container names, so two
  // tenants' "pictures" containers never collide.
  const std::string container = *tenant + ":" + segments[0];

  if (segments.size() == 1) {
    if (request.method != HttpMethod::kGet) {
      return ErrorResponse(common::Status::InvalidArgument(
          "only GET (list) is supported on containers"));
    }
    // Lists have no single row key; the container name attributes their
    // latency to a stable (if arbitrary) shard slot.
    return Admitted(*tenant, container,
                    [&] { return HandleList(now, container); });
  }
  if (segments.size() != 2) {
    return ErrorResponse(
        common::Status::InvalidArgument("expected /container/key"));
  }
  const std::string& key = segments[1];
  const std::string row_key = core::MakeRowKey(container, key);

  return Admitted(*tenant, row_key, [&]() -> HttpResponse {
    switch (request.method) {
      case HttpMethod::kPut:
        return HandleObjectPut(now, container, key, request);
      case HttpMethod::kGet:
        return HandleObjectGet(now, container, key, /*head_only=*/false);
      case HttpMethod::kHead:
        return HandleObjectGet(now, container, key, /*head_only=*/true);
      case HttpMethod::kDelete:
        return HandleObjectDelete(now, container, key);
    }
    return ErrorResponse(common::Status::InvalidArgument("bad method"));
  });
}

HttpResponse S3Gateway::Admitted(const std::string& tenant,
                                 const std::string& row_key,
                                 const std::function<HttpResponse()>& dispatch) {
  if (admission_ == nullptr || !admission_->enabled()) return dispatch();

  const capacity::AdmissionDecision decision =
      admission_->Admit(tenant, row_key);
  if (!decision.admit) {
    // Shed strictly *before* any engine work: a 429 must not journal to
    // the WAL, must not move the usage meters, and must not feed the p99
    // estimate (a storm of fast rejections would talk the controller into
    // believing the SLO recovered).
    HttpResponse response = ErrorResponse(common::Status::ResourceExhausted(
        "shed: p99 SLO breached, retry later"));
    response.headers.Set("retry-after",
                         std::to_string(decision.retry_after_s));
    return response;
  }

  const std::uint64_t start_us = admission_->NowUs();
  HttpResponse response = dispatch();
  admission_->RecordLatency(
      row_key, static_cast<double>(admission_->NowUs() - start_us));
  return response;
}

HttpResponse S3Gateway::HandleObjectPut(common::SimTime now,
                                        const std::string& container,
                                        const std::string& key,
                                        const HttpRequest& request) {
  std::optional<core::StorageRule> rule;
  if (const std::string* rule_name =
          request.headers.Find("x-scalia-rule")) {
    common::MutexLock lock(rules_mu_);
    auto it = rules_.find(*rule_name);
    if (it == rules_.end()) {
      return ErrorResponse(
          common::Status::InvalidArgument("unknown rule \"" + *rule_name +
                                          "\""));
    }
    rule = it->second;
  }
  if (const std::string* ttl_hours =
          request.headers.Find("x-scalia-ttl-hours")) {
    double hours = 0.0;
    try {
      hours = std::stod(*ttl_hours);
    } catch (...) {
      return ErrorResponse(
          common::Status::InvalidArgument("unparseable x-scalia-ttl-hours"));
    }
    if (hours <= 0.0) {
      return ErrorResponse(
          common::Status::InvalidArgument("x-scalia-ttl-hours must be > 0"));
    }
    if (!rule) rule = core::StorageRule{};  // default rule + TTL hint
    rule->ttl_hint = common::FromHours(hours);
  }

  std::string mime = request.headers.Get("content-type");
  if (mime.empty()) mime = "application/octet-stream";

  const common::Status status =
      route_().Put(now, container, key, request.body, mime, rule);
  if (!status.ok()) return ErrorResponse(status);

  HttpResponse response;
  response.status = 201;
  return response;
}

HttpResponse S3Gateway::HandleObjectGet(common::SimTime now,
                                        const std::string& container,
                                        const std::string& key,
                                        bool head_only) {
  core::EngineApi& engine = route_();
  if (head_only) {
    auto meta = engine.LoadMetadata(now, core::MakeRowKey(container, key));
    if (!meta.ok()) return ErrorResponse(meta.status());
    HttpResponse response;
    response.status = 200;
    response.headers.Set("content-type", meta->mime);
    // HEAD advertises the size a GET body would have — the logical size;
    // meta->size is the post-filter stored footprint.
    response.headers.Set("content-length", std::to_string(meta->LogicalSize()));
    response.headers.Set("x-scalia-erasure-m", std::to_string(meta->m));
    response.headers.Set("x-scalia-erasure-n",
                         std::to_string(meta->stripes.size()));
    return response;
  }
  auto body = engine.Get(now, container, key);
  if (!body.ok()) return ErrorResponse(body.status());
  HttpResponse response;
  response.status = 200;
  response.headers.Set("content-length", std::to_string(body->size()));
  response.body = std::move(body).value();
  return response;
}

HttpResponse S3Gateway::HandleObjectDelete(common::SimTime now,
                                           const std::string& container,
                                           const std::string& key) {
  const common::Status status = route_().Delete(now, container, key);
  if (!status.ok()) return ErrorResponse(status);
  HttpResponse response;
  response.status = 204;
  return response;
}

HttpResponse S3Gateway::HandleList(common::SimTime now,
                                   const std::string& container) {
  auto keys = route_().List(now, container);
  if (!keys.ok()) return ErrorResponse(keys.status());
  HttpResponse response;
  response.status = 200;
  response.headers.Set("content-type", "text/plain");
  response.body = common::Join(*keys, "\n");
  return response;
}

}  // namespace scalia::api
