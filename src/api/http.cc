#include "api/http.h"

#include <cctype>

#include "common/string_util.h"

namespace scalia::api {

std::optional<HttpMethod> ParseMethod(std::string_view name) {
  if (name == "GET") return HttpMethod::kGet;
  if (name == "PUT") return HttpMethod::kPut;
  if (name == "DELETE") return HttpMethod::kDelete;
  if (name == "HEAD") return HttpMethod::kHead;
  return std::nullopt;
}

namespace {

[[nodiscard]] int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

void HeaderMap::Set(std::string_view name, std::string value) {
  headers_[common::AsciiLower(name)] = std::move(value);
}

const std::string* HeaderMap::Find(std::string_view name) const {
  auto it = headers_.find(common::AsciiLower(name));
  return it == headers_.end() ? nullptr : &it->second;
}

common::Result<std::string> UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '%') {
      if (i + 2 >= s.size()) {
        return common::Status::InvalidArgument("truncated %-escape");
      }
      const int hi = HexDigit(s[i + 1]);
      const int lo = HexDigit(s[i + 2]);
      if (hi < 0 || lo < 0) {
        return common::Status::InvalidArgument("malformed %-escape");
      }
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else if (c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UrlEncode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    const bool unreserved = std::isalnum(u) != 0 || c == '-' || c == '_' ||
                            c == '.' || c == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
  return out;
}

common::Result<ParsedTarget> ParseTarget(std::string_view target) {
  if (target.empty() || target[0] != '/') {
    return common::Status::InvalidArgument("target must start with '/'");
  }
  ParsedTarget parsed;

  std::string_view path = target;
  std::string_view query;
  if (const auto qpos = target.find('?'); qpos != std::string_view::npos) {
    path = target.substr(0, qpos);
    query = target.substr(qpos + 1);
  }

  // Path segments.
  std::size_t start = 1;  // skip leading '/'
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    std::string_view raw = path.substr(start, end - start);
    if (!raw.empty()) {
      auto decoded = UrlDecode(raw);
      if (!decoded.ok()) return decoded.status();
      if (*decoded == "." || *decoded == "..") {
        return common::Status::InvalidArgument("path traversal segment");
      }
      parsed.segments.push_back(std::move(decoded).value());
    } else if (end != path.size()) {
      return common::Status::InvalidArgument("empty path segment");
    }
    start = end + 1;
  }

  auto query_map = ParseQueryString(query);
  if (!query_map.ok()) return query_map.status();
  parsed.query = std::move(query_map).value();

  return parsed;
}

common::Result<std::map<std::string, std::string>> ParseQueryString(
    std::string_view query) {
  std::map<std::string, std::string> out;
  std::size_t qstart = 0;
  while (qstart < query.size()) {
    std::size_t qend = query.find('&', qstart);
    if (qend == std::string_view::npos) qend = query.size();
    const std::string_view pair = query.substr(qstart, qend - qstart);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      const std::string_view raw_key =
          eq == std::string_view::npos ? pair : pair.substr(0, eq);
      const std::string_view raw_val =
          eq == std::string_view::npos ? std::string_view{}
                                       : pair.substr(eq + 1);
      auto key = UrlDecode(raw_key);
      if (!key.ok()) return key.status();
      auto val = UrlDecode(raw_val);
      if (!val.ok()) return val.status();
      out[std::move(key).value()] = std::move(val).value();
    }
    qstart = qend + 1;
  }
  return out;
}

std::string_view StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 412: return "Precondition Failed";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

}  // namespace scalia::api
