// Request authentication for the S3-compatible gateway.
//
// Mirrors the HMAC scheme Scalia already requires of private resources
// (§III-E: "authentication is done by signing the request (i.e., HMAC of
// the requests parameters using the private token) and to prevent replay
// attacks, a timestamp is also included"), applied to the client-facing
// API in the style of S3 access keys: each tenant holds an
// (access key id, secret) pair, signs the canonical form of each request
// with HMAC-SHA256, and sends `Authorization: SCALIA <key-id>:<hex>`.
// The verifier checks the signature, bounds clock skew, and rejects
// replays of previously seen signatures inside the skew window.
//
// Canonical string-to-sign:
//
//   METHOD \n raw-path \n x-scalia-timestamp \n SHA256(body) \n
//   sorted(query k=v joined by '&')
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "api/http.h"
#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace scalia::api {

struct Credentials {
  std::string access_key_id;
  std::string secret;
  /// The tenant this key belongs to; containers are namespaced per tenant.
  std::string tenant;
};

/// The canonical representation the signature covers.
[[nodiscard]] std::string StringToSign(const HttpRequest& request);

/// Client-side signer: stamps x-scalia-timestamp and Authorization.
class RequestSigner {
 public:
  explicit RequestSigner(Credentials creds) : creds_(std::move(creds)) {}

  /// Signs `request` in place at time `now`.
  void Sign(HttpRequest* request, common::SimTime now) const;

  [[nodiscard]] const Credentials& credentials() const noexcept {
    return creds_;
  }

 private:
  Credentials creds_;
};

/// Server-side credential registry + verifier, shared by all engines (the
/// engines are stateless; key material lives with the metadata layer).
class Authenticator {
 public:
  /// `max_skew` bounds |request timestamp - now|; signatures are remembered
  /// for one skew window to reject replays.
  explicit Authenticator(common::Duration max_skew = 5 * common::kMinute)
      : max_skew_(max_skew) {}

  void AddCredentials(Credentials creds);
  common::Status RevokeKey(const std::string& access_key_id);

  /// Accepts *unsigned* requests (no Authorization header at all) as
  /// `tenant` — the public-bucket mode of real S3 frontends, used by the
  /// scalia_server example so plain curl can drive the gateway.  A request
  /// that does present an Authorization header is still fully verified.
  void AllowAnonymous(std::string tenant);

  /// Verifies the request at `now`; returns the tenant on success.
  [[nodiscard]] common::Result<std::string> Verify(const HttpRequest& request,
                                                   common::SimTime now);

  [[nodiscard]] std::size_t KeyCount() const;

 private:
  common::Duration max_skew_;
  mutable common::Mutex mu_;
  std::optional<std::string> anonymous_tenant_ GUARDED_BY(mu_);
  std::unordered_map<std::string, Credentials> keys_ GUARDED_BY(mu_);
  std::unordered_set<std::string> seen_signatures_ GUARDED_BY(mu_);
  std::deque<std::pair<common::SimTime, std::string>> seen_order_
      GUARDED_BY(mu_);
};

}  // namespace scalia::api
