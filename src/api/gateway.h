// The S3-compatible gateway: HTTP verbs → engine operations.
//
// Implements the engine layer's outward face (§III-A: put, get, list and
// delete over a key-value model).  Routing:
//
//   PUT    /container/key     store body (Content-Type honoured; optional
//                             x-scalia-rule selects a registered rule,
//                             x-scalia-ttl-hours hints the lifetime)
//   GET    /container/key     fetch object
//   HEAD   /container/key     existence + size/mime without the body
//   DELETE /container/key     delete object
//   GET    /container         list keys (newline-separated body)
//
// Requests authenticate per api/auth.h; each tenant sees only its own
// containers (the gateway namespaces container names by tenant before they
// reach the engines).  Engine statuses map onto HTTP codes: NotFound→404,
// Unavailable→503, Conflict→409, InvalidArgument→400, Unauthenticated→401,
// FailedPrecondition→412, ResourceExhausted→429, Internal→500.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "api/auth.h"
#include "api/http.h"
#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "core/engine_api.h"
#include "core/metadata.h"
#include "core/rule.h"

namespace scalia::capacity {
class AdmissionController;
}  // namespace scalia::capacity

namespace scalia::api {

/// Maps a Status onto the HTTP code the gateway responds with.
[[nodiscard]] int HttpStatusFor(const common::Status& status);

class S3Gateway {
 public:
  /// `route` supplies the engine handling each request: the cluster's
  /// RouteRequest, a fixed engine in single-node deployments, or a
  /// ShardedEngine facade (which routes each call to its shards by key
  /// hash internally).
  using RouteFn = std::function<core::EngineApi&()>;

  S3Gateway(Authenticator* auth, RouteFn route);

  /// Registers a named storage rule clients may select with x-scalia-rule
  /// (the paper's per-class / per-object rules, Fig. 2).
  void RegisterRule(core::StorageRule rule);

  /// Attaches SLO-aware admission control (capacity/admission.h): after
  /// authentication and routing, every request asks the controller before
  /// any engine work happens.  A shed answers 429 + Retry-After without
  /// touching the engine, the WAL or the usage meters; an admitted
  /// request's engine-dispatch latency feeds the controller's per-shard
  /// p99 estimate.  Null (the default) disables admission entirely.
  void SetAdmissionController(capacity::AdmissionController* admission) {
    admission_ = admission;
  }

  /// Serves one request at simulated time `now`.
  [[nodiscard]] HttpResponse Handle(common::SimTime now,
                                    const HttpRequest& request);

 private:
  [[nodiscard]] HttpResponse HandleObjectPut(common::SimTime now,
                                             const std::string& container,
                                             const std::string& key,
                                             const HttpRequest& request);
  [[nodiscard]] HttpResponse HandleObjectGet(common::SimTime now,
                                             const std::string& container,
                                             const std::string& key,
                                             bool head_only);
  [[nodiscard]] HttpResponse HandleObjectDelete(common::SimTime now,
                                                const std::string& container,
                                                const std::string& key);
  [[nodiscard]] HttpResponse HandleList(common::SimTime now,
                                        const std::string& container);

  [[nodiscard]] static HttpResponse ErrorResponse(
      const common::Status& status);

  /// Runs `dispatch` through admission control: shed answers 429 before
  /// any engine work; admitted dispatches are latency-bracketed into the
  /// controller's per-shard p99 estimate for `row_key`'s shard.
  [[nodiscard]] HttpResponse Admitted(
      const std::string& tenant, const std::string& row_key,
      const std::function<HttpResponse()>& dispatch);

  Authenticator* auth_;  // not owned
  RouteFn route_;
  capacity::AdmissionController* admission_ = nullptr;  // not owned

  common::Mutex rules_mu_;
  std::map<std::string, core::StorageRule> rules_ GUARDED_BY(rules_mu_);
};

}  // namespace scalia::api
