// Minimal HTTP message model for the S3-compatible interface.
//
// §III-A: "The engines provide an Amazon S3-like interface (i.e. compatible
// to existing solutions employed by the end-users), where the users can
// put, get, list and delete their data using a key-value data model."
// This module gives that interface a concrete wire shape — method, percent-
// encoded path, query string, case-insensitive headers, body — without
// binding to a socket library: the gateway is exercised in-process by the
// examples and tests exactly as a network frontend would drive it.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace scalia::api {

enum class HttpMethod { kGet, kPut, kDelete, kHead };

[[nodiscard]] constexpr std::string_view MethodName(HttpMethod m) {
  switch (m) {
    case HttpMethod::kGet: return "GET";
    case HttpMethod::kPut: return "PUT";
    case HttpMethod::kDelete: return "DELETE";
    case HttpMethod::kHead: return "HEAD";
  }
  return "?";
}

[[nodiscard]] std::optional<HttpMethod> ParseMethod(std::string_view name);

/// Case-insensitive header map (HTTP header names are case-insensitive;
/// values are kept verbatim).
class HeaderMap {
 public:
  void Set(std::string_view name, std::string value);
  [[nodiscard]] const std::string* Find(std::string_view name) const;
  [[nodiscard]] std::string Get(std::string_view name) const {
    const std::string* v = Find(name);
    return v == nullptr ? std::string{} : *v;
  }
  [[nodiscard]] bool Contains(std::string_view name) const {
    return Find(name) != nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept { return headers_.size(); }
  void Clear() noexcept { headers_.clear(); }

  [[nodiscard]] auto begin() const { return headers_.begin(); }
  [[nodiscard]] auto end() const { return headers_.end(); }

 private:
  // Keys stored lower-cased.
  std::map<std::string, std::string> headers_;
};

struct HttpRequest {
  HttpMethod method = HttpMethod::kGet;
  /// Decoded path segments, e.g. "/pictures/holiday.gif" → {"pictures",
  /// "holiday.gif"}.  Populated by ParsePath.
  std::string path;  // raw, percent-encoded
  std::map<std::string, std::string> query;
  HeaderMap headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  HeaderMap headers;
  std::string body;

  [[nodiscard]] bool ok() const noexcept {
    return status >= 200 && status < 300;
  }
};

/// Percent-decodes a URL component; rejects malformed %-escapes.
[[nodiscard]] common::Result<std::string> UrlDecode(std::string_view s);

/// Percent-encodes everything outside the URL-safe unreserved set.
[[nodiscard]] std::string UrlEncode(std::string_view s);

/// Splits `target` ("/bucket/key?x=1&y=2") into decoded path segments and a
/// decoded query map.  Empty segments (from "//") are rejected, as are
/// segments of "." or ".." (path traversal).
struct ParsedTarget {
  std::vector<std::string> segments;
  std::map<std::string, std::string> query;
};
[[nodiscard]] common::Result<ParsedTarget> ParseTarget(std::string_view target);

/// Decodes a raw query string ("x=1&y=2", no leading '?') into a map.
/// Shared by ParseTarget and the wire parser (net/server/http_parser.h),
/// which must agree on the decoding for request signatures to verify.
[[nodiscard]] common::Result<std::map<std::string, std::string>>
ParseQueryString(std::string_view query);

/// HTTP status text for the codes the gateway emits.
[[nodiscard]] std::string_view StatusText(int status);

}  // namespace scalia::api
