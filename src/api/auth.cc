#include "api/auth.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "common/sha256.h"

namespace scalia::api {

std::string StringToSign(const HttpRequest& request) {
  std::string s;
  s += MethodName(request.method);
  s += '\n';
  s += request.path;
  s += '\n';
  s += request.headers.Get("x-scalia-timestamp");
  s += '\n';
  s += common::Sha256::HexHash(request.body);
  s += '\n';
  bool first = true;
  for (const auto& [k, v] : request.query) {  // std::map: already sorted
    if (!first) s += '&';
    first = false;
    s += k;
    s += '=';
    s += v;
  }
  return s;
}

void RequestSigner::Sign(HttpRequest* request, common::SimTime now) const {
  request->headers.Set("x-scalia-timestamp", std::to_string(now));
  const std::string canonical = StringToSign(*request);
  const std::string sig =
      common::ToHex(common::HmacSha256(creds_.secret, canonical));
  request->headers.Set("authorization",
                       "SCALIA " + creds_.access_key_id + ":" + sig);
}

void Authenticator::AddCredentials(Credentials creds) {
  common::MutexLock lock(mu_);
  keys_[creds.access_key_id] = std::move(creds);
}

common::Status Authenticator::RevokeKey(const std::string& access_key_id) {
  common::MutexLock lock(mu_);
  if (keys_.erase(access_key_id) == 0) {
    return common::Status::NotFound("unknown access key " + access_key_id);
  }
  return common::Status::Ok();
}

std::size_t Authenticator::KeyCount() const {
  common::MutexLock lock(mu_);
  return keys_.size();
}

void Authenticator::AllowAnonymous(std::string tenant) {
  common::MutexLock lock(mu_);
  anonymous_tenant_ = std::move(tenant);
}

common::Result<std::string> Authenticator::Verify(const HttpRequest& request,
                                                  common::SimTime now) {
  const std::string auth = request.headers.Get("authorization");
  if (auth.empty()) {
    common::MutexLock lock(mu_);
    if (anonymous_tenant_) return *anonymous_tenant_;
  }
  constexpr std::string_view kScheme = "SCALIA ";
  if (auth.substr(0, kScheme.size()) != kScheme) {
    return common::Status::Unauthenticated("missing SCALIA authorization");
  }
  const std::size_t colon = auth.find(':', kScheme.size());
  if (colon == std::string::npos) {
    return common::Status::Unauthenticated("malformed authorization header");
  }
  const std::string key_id = auth.substr(kScheme.size(),
                                         colon - kScheme.size());
  const std::string presented_hex = auth.substr(colon + 1);

  const std::string ts_str = request.headers.Get("x-scalia-timestamp");
  if (ts_str.empty()) {
    return common::Status::Unauthenticated("missing x-scalia-timestamp");
  }
  common::SimTime ts = 0;
  try {
    ts = std::stoll(ts_str);
  } catch (...) {
    return common::Status::Unauthenticated("unparseable timestamp");
  }

  // Credentials are copied out so the body hash + HMAC below run without
  // the lock: Verify is called concurrently from the serving loop's handler
  // threads, and hashing a max_body_bytes PUT under a global mutex would
  // serialize every signed request.
  Credentials creds;
  {
    common::MutexLock lock(mu_);
    auto it = keys_.find(key_id);
    if (it == keys_.end()) {
      return common::Status::Unauthenticated("unknown access key " + key_id);
    }
    creds = it->second;
  }

  // Clock-skew bound: stale or future-dated requests are rejected, which
  // also bounds how long the replay cache must remember signatures.
  if (ts > now + max_skew_ || ts < now - max_skew_) {
    return common::Status::Unauthenticated("timestamp outside skew window");
  }

  const std::string canonical = StringToSign(request);
  const common::Sha256Digest expected =
      common::HmacSha256(creds.secret, canonical);
  // Re-derive a digest from the presented hex via constant-time comparison
  // of the hex strings' underlying digests: compare hex case-insensitively
  // by recomputing ToHex(expected).
  const std::string expected_hex = common::ToHex(expected);
  if (presented_hex.size() != expected_hex.size()) {
    return common::Status::Unauthenticated("bad signature");
  }
  unsigned diff = 0;
  for (std::size_t i = 0; i < expected_hex.size(); ++i) {
    diff |= static_cast<unsigned>(expected_hex[i] ^
                                  static_cast<char>(std::tolower(
                                      static_cast<unsigned char>(
                                          presented_hex[i]))));
  }
  if (diff != 0) {
    return common::Status::Unauthenticated("bad signature");
  }

  // Replay rejection inside the skew window.
  {
    common::MutexLock lock(mu_);
    while (!seen_order_.empty() &&
           seen_order_.front().first < now - 2 * max_skew_) {
      seen_signatures_.erase(seen_order_.front().second);
      seen_order_.pop_front();
    }
    if (!seen_signatures_.insert(presented_hex).second) {
      return common::Status::Unauthenticated("replayed signature");
    }
    seen_order_.emplace_back(now, presented_hex);
  }

  return creds.tenant;
}

}  // namespace scalia::api
