#include "capacity/day_schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "workload/diurnal.h"

namespace scalia::capacity {

DaySchedule DaySchedule::Compressed(DayScheduleConfig config) {
  if (config.periods == 0) config.periods = 1;

  // 24 hourly expected-visit counts from the paper's diurnal mixture; the
  // absolute visits_per_day cancels in the normalization below.
  const workload::DiurnalTrafficModel model(/*visits_per_day=*/2500.0);
  const std::vector<double> hourly = model.ExpectedSeries(24);

  // Compress 24 hours onto `periods` slots by sampling the hour each
  // period's midpoint lands on.
  std::vector<double> raw(config.periods, 0.0);
  for (std::size_t p = 0; p < config.periods; ++p) {
    const double hour =
        (static_cast<double>(p) + 0.5) * 24.0 /
        static_cast<double>(config.periods);
    raw[p] = hourly[static_cast<std::size_t>(hour) % 24];
  }

  // Graft the flash crowd on: a Slashdot-style sharp ramp to the full
  // multiple, then a slower decay over the same number of periods.
  if (config.flash_periods > 0 && config.flash_multiple > 1.0) {
    for (std::size_t i = 0; i < 2 * config.flash_periods; ++i) {
      const std::size_t p = config.flash_start_period + i;
      if (p >= raw.size()) break;
      double boost;
      if (i < config.flash_periods) {  // ramp
        boost = 1.0 + (config.flash_multiple - 1.0) *
                          static_cast<double>(i + 1) /
                          static_cast<double>(config.flash_periods);
      } else {  // decay, never dropping below the diurnal baseline
        boost = 1.0 + (config.flash_multiple - 1.0) *
                          static_cast<double>(2 * config.flash_periods - i) /
                          static_cast<double>(2 * config.flash_periods);
      }
      raw[p] *= boost;
    }
  }

  const double peak = *std::max_element(raw.begin(), raw.end());
  DaySchedule schedule;
  schedule.fractions_.reserve(raw.size());
  for (double r : raw) {
    schedule.fractions_.push_back(
        std::max(config.min_fraction, peak > 0.0 ? r / peak : 1.0));
  }
  return schedule;
}

common::Result<DaySchedule> DaySchedule::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return common::Status::NotFound("day schedule file: " + path);
  }
  DaySchedule schedule;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    double fraction = 0.0;
    if (!(ss >> fraction)) continue;  // blank / comment-only line
    std::string trailing;
    if (ss >> trailing) {
      return common::Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": trailing token '" +
          trailing + "'");
    }
    if (!std::isfinite(fraction) || fraction <= 0.0 || fraction > 10.0) {
      return common::Status::InvalidArgument(
          path + ":" + std::to_string(line_no) +
          ": fraction must be finite and in (0, 10]");
    }
    schedule.fractions_.push_back(fraction);
  }
  if (schedule.fractions_.empty()) {
    return common::Status::InvalidArgument(path + ": no periods in schedule");
  }
  return schedule;
}

double DaySchedule::PeakFraction() const {
  if (fractions_.empty()) return 0.0;
  return *std::max_element(fractions_.begin(), fractions_.end());
}

std::string DaySchedule::ToString() const {
  std::string out;
  for (std::size_t p = 0; p < fractions_.size(); ++p) {
    char line[64];
    std::snprintf(line, sizeof(line), "period %2zu: %.2f  ", p, fractions_[p]);
    out += line;
    const auto bars = static_cast<std::size_t>(fractions_[p] * 20.0);
    out.append(bars, '#');
    out += '\n';
  }
  return out;
}

SloTracker::SloTracker(std::size_t periods, double slo_p99_ms)
    : slo_p99_ms_(slo_p99_ms), latencies_(periods), shed_(periods, 0) {}

void SloTracker::Record(std::size_t period, double latency_us, bool shed) {
  if (period >= latencies_.size()) return;
  if (shed) {
    ++shed_[period];
    return;
  }
  latencies_[period].push_back(latency_us);
}

void SloTracker::Merge(const SloTracker& other) {
  const std::size_t n = std::min(latencies_.size(), other.latencies_.size());
  for (std::size_t p = 0; p < n; ++p) {
    latencies_[p].insert(latencies_[p].end(), other.latencies_[p].begin(),
                         other.latencies_[p].end());
    shed_[p] += other.shed_[p];
  }
}

SloTracker::Report SloTracker::Finish() const {
  Report report;
  report.periods.resize(latencies_.size());
  std::size_t nonempty = 0;
  std::size_t met = 0;
  bool first = true;
  for (std::size_t p = 0; p < latencies_.size(); ++p) {
    PeriodReport& period = report.periods[p];
    period.shed = shed_[p];
    period.requests = latencies_[p].size();
    report.total_requests += period.requests;
    report.total_shed += period.shed;
    if (period.requests == 0) continue;

    // Exact per-period p99 (nearest-rank on the sorted sample).
    std::vector<double> sorted = latencies_[p];
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(sorted.size())));
    period.p99_us = sorted[std::min(rank == 0 ? 0 : rank - 1,
                                    sorted.size() - 1)];

    ++nonempty;
    if (period.p99_us <= slo_p99_ms_ * 1000.0) ++met;
    if (first) {
      report.peak_period_requests = period.requests;
      report.trough_period_requests = period.requests;
      first = false;
    } else {
      report.peak_period_requests =
          std::max(report.peak_period_requests, period.requests);
      report.trough_period_requests =
          std::min(report.trough_period_requests, period.requests);
    }
  }
  report.slo_attainment =
      nonempty == 0 ? 0.0
                    : static_cast<double>(met) / static_cast<double>(nonempty);
  return report;
}

}  // namespace scalia::capacity
