#include "capacity/predictor.h"

#include <algorithm>
#include <cmath>

namespace scalia::capacity {

LoadPredictor::LoadPredictor(PredictorConfig config)
    : config_(config), trend_(config.trend) {}

double LoadPredictor::Observe(double rate) {
  if (!std::isfinite(rate) || rate < 0.0) rate = 0.0;
  observed_max_ = std::max(observed_max_, rate);

  const double sma_before = trend_.CurrentSma();
  const bool had_sma = trend_.Observations() > 0;
  trend_changed_ = trend_.Observe(rate);
  const double sma = trend_.CurrentSma();

  // Linear extrapolation of the moving average by its momentum: the next
  // period is expected to continue the ramp the window is on.  With no
  // previous SMA the best forecast is the sample itself.
  double forecast = sma;
  if (had_sma) forecast = sma + (sma - sma_before);

  const double cap = config_.max_forecast_multiple * observed_max_;
  forecast = std::clamp(forecast, 0.0, cap);
  if (!std::isfinite(forecast)) forecast = 0.0;
  forecast_ = forecast;
  return forecast_;
}

CapacityController::CapacityController(CapacityConfig config)
    : config_(config), predictor_(config.predictor) {
  plan_ = PlanFor(0.0);
}

CapacityPlan CapacityController::PlanFor(double forecast) const {
  CapacityPlan plan;
  const double per_thread = std::max(1.0, config_.rate_per_thread);
  const auto threads =
      static_cast<std::size_t>(std::ceil(forecast / per_thread));
  plan.pool_threads =
      std::clamp(threads, config_.min_threads, config_.max_threads);

  // Cache budget and optimizer cadence scale with the forecast's position
  // inside the provisioned range: at the trough the cache is small and the
  // optimizer runs every period; toward the peak the cache grows (hits are
  // the cheapest capacity there is) and the optimizer backs off to leave
  // the CPU to serving.
  const double saturation_rate =
      per_thread * static_cast<double>(config_.max_threads);
  const double load = std::clamp(forecast / saturation_rate, 0.0, 1.0);
  plan.cache_bytes =
      config_.min_cache_bytes +
      static_cast<common::Bytes>(
          load * static_cast<double>(config_.max_cache_bytes -
                                     config_.min_cache_bytes));
  const double cadence_span = static_cast<double>(
      config_.max_optimize_every - config_.min_optimize_every);
  plan.optimize_every =
      config_.min_optimize_every +
      static_cast<std::size_t>(std::lround(load * cadence_span));
  return plan;
}

bool CapacityController::OnPeriodClose(double observed_rate) {
  const double forecast = predictor_.Observe(observed_rate);
  ++periods_since_resize_;

  if (has_plan_) {
    // Hysteresis: ignore forecast drift smaller than the configured
    // fraction of the forecast that set the current plan (floored at one
    // per-thread unit so a 0-forecast baseline can still scale up), and
    // never resize during the cooldown.
    const double reference =
        std::max(plan_forecast_, std::max(1.0, config_.rate_per_thread));
    if (std::abs(forecast - plan_forecast_) <=
        config_.hysteresis * reference) {
      return false;
    }
    if (periods_since_resize_ < config_.cooldown_periods) return false;
  }

  const CapacityPlan next = PlanFor(forecast);
  const bool unchanged = has_plan_ &&
                         next.pool_threads == plan_.pool_threads &&
                         next.cache_bytes == plan_.cache_bytes &&
                         next.optimize_every == plan_.optimize_every;
  // A forecast that moved past the hysteresis band but quantizes to the
  // same plan re-anchors the reference without counting a scale event —
  // otherwise a rate sitting on a plan boundary would evaluate (and
  // jitter around) that boundary forever.
  if (unchanged) {
    plan_forecast_ = forecast;
    return false;
  }

  plan_ = next;
  plan_forecast_ = forecast;
  has_plan_ = true;
  periods_since_resize_ = 0;
  ++scale_events_;
  return true;
}

}  // namespace scalia::capacity
