#include "capacity/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/sharded_engine.h"

namespace scalia::capacity {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(std::move(config)) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  shards_.resize(config_.num_shards);
}

void AdmissionController::SetTenantValue(const std::string& tenant,
                                         double value) {
  common::MutexLock lock(mu_);
  tenants_[tenant].value = value;
}

std::uint64_t AdmissionController::NowUs() const {
  if (config_.now_us) return config_.now_us();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t AdmissionController::ShardOf(const std::string& row_key) const {
  // The engine's own routing hash, so the latency a request contributes is
  // attributed to exactly the shard that served it.  config_.num_shards is
  // immutable after construction, so no lock is needed on this hot path.
  return core::ShardedEngine::ShardForRowKey(row_key, config_.num_shards);
}

bool AdmissionController::AnyShardAboveLocked(double threshold_us) const {
  for (const ShardState& shard : shards_) {
    if (shard.samples >= config_.min_samples && shard.p99_us > threshold_us) {
      return true;
    }
  }
  return false;
}

std::size_t AdmissionController::RankLocked(const std::string& tenant) const {
  double value = config_.default_tenant_value;
  if (auto it = tenants_.find(tenant); it != tenants_.end()) {
    value = it->second.value;
  }
  // Tier rank = number of distinct values strictly below this tenant's;
  // tenants sharing a value share the fate of their tier.
  std::vector<double> below;
  for (const auto& [name, state] : tenants_) {
    if (state.value < value) below.push_back(state.value);
  }
  std::sort(below.begin(), below.end());
  below.erase(std::unique(below.begin(), below.end()), below.end());
  return below.size();
}

AdmissionDecision AdmissionController::Admit(const std::string& tenant,
                                             const std::string& row_key) {
  (void)row_key;  // routing only matters for latency attribution
  if (!enabled()) return {};
  common::MutexLock lock(mu_);
  if (shed_level_ > 0 && RankLocked(tenant) < shed_level_) {
    ++shed_decisions_;
    if (config_.probe_every > 0 &&
        shed_decisions_ % config_.probe_every == 0) {
      // Probe: let this one through so the shard estimates keep seeing
      // real latencies from shed tiers — without it, a fully shed tenant
      // mix could never demonstrate recovery.
      ++probes_;
      ++admitted_;
      return {};
    }
    ++shed_;
    ++tenants_[tenant].shed;  // creates the default-value entry if unknown
    return {.admit = false, .retry_after_s = config_.retry_after_s};
  }
  ++admitted_;
  return {};
}

void AdmissionController::RecordLatency(const std::string& row_key,
                                        double latency_us) {
  RecordLatencyOnShard(ShardOf(row_key), latency_us);
}

void AdmissionController::RecordLatencyOnShard(std::size_t shard,
                                               double latency_us) {
  if (!enabled()) return;
  if (!std::isfinite(latency_us) || latency_us < 0.0) return;
  common::MutexLock lock(mu_);
  ShardState& state = shards_[shard % shards_.size()];
  if (state.samples == 0) {
    state.p99_us = latency_us;
  } else {
    // Stochastic quantile EWMA: up-moves use the full gain, down-moves the
    // gain scaled by (1-q)/q, so the estimate settles where a (1-q)
    // fraction of samples lands above it.
    const double q = config_.quantile;
    if (latency_us > state.p99_us) {
      state.p99_us += config_.gain * (latency_us - state.p99_us);
    } else {
      state.p99_us -=
          config_.gain * ((1.0 - q) / q) * (state.p99_us - latency_us);
    }
  }
  ++state.samples;
  ++samples_since_move_;
  MaybeMoveShedLevelLocked();
}

void AdmissionController::MaybeMoveShedLevelLocked() {
  if (samples_since_move_ < config_.escalation_every_samples) return;

  const double target_us = config_.slo_p99_ms * 1000.0;
  // The highest-value tier is never shed: with every tier dark no admitted
  // samples would flow, the sample-counted cadence would freeze, and the
  // controller could never observe recovery.
  std::vector<double> values;
  values.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) values.push_back(state.value);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  const std::size_t max_level = values.empty() ? 0 : values.size() - 1;

  if (AnyShardAboveLocked(target_us)) {
    if (shed_level_ < max_level) {
      ++shed_level_;
      ++escalations_;
      samples_since_move_ = 0;
    }
  } else if (shed_level_ > 0 &&
             !AnyShardAboveLocked(config_.recover_fraction * target_us)) {
    --shed_level_;
    ++de_escalations_;
    samples_since_move_ = 0;
  }
  // Inside the hysteresis band (or already at the cap) the level holds and
  // the window stays elapsed, so the next decisive sample moves it.
}

double AdmissionController::ShardP99Us(std::size_t shard) const {
  common::MutexLock lock(mu_);
  return shards_[shard % shards_.size()].p99_us;
}

AdmissionStats AdmissionController::Stats() const {
  common::MutexLock lock(mu_);
  AdmissionStats stats;
  stats.admitted = admitted_;
  stats.shed = shed_;
  stats.probes = probes_;
  stats.shed_level = shed_level_;
  stats.escalations = escalations_;
  stats.de_escalations = de_escalations_;
  for (const ShardState& shard : shards_) {
    if (shard.samples >= config_.min_samples) {
      stats.max_p99_us = std::max(stats.max_p99_us, shard.p99_us);
    }
  }
  return stats;
}

std::uint64_t AdmissionController::shed_requests() const {
  common::MutexLock lock(mu_);
  return shed_;
}

std::vector<std::pair<std::string, std::uint64_t>>
AdmissionController::ShedByTenant() const {
  common::MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, state] : tenants_) {
    if (state.shed > 0) out.emplace_back(name, state.shed);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace scalia::capacity
