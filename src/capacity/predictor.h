// Predictive capacity scaling (ROADMAP "Adaptive capacity"; ADS, arXiv
// 1711.02150): scale the serving tier *ahead* of predicted demand instead
// of reacting after the SLO breaks.
//
// The LoadPredictor reuses the paper's SMA-momentum trend machinery
// (stats/trend.h) over per-period request-rate samples: the forecast for
// the next sampling period is the current moving average extrapolated by
// its momentum, clamped to [0, max_forecast_multiple x observed max] so a
// single wild sample can never demand unbounded capacity.
//
// The CapacityController maps that forecast onto the three capacity knobs
// the serving tier owns — chunk-I/O thread-pool size, total cache budget,
// optimizer cadence — and applies *hysteresis*: a new plan is emitted only
// when the forecast moved more than `hysteresis` (relative) away from the
// forecast that set the current plan, and never more often than one resize
// per `cooldown_periods`.  On a constant-rate stream the controller
// provably settles after its first plan and never oscillates (the
// predictor property test asserts exactly this).
//
// Deterministic by construction: both classes are pure sample-in/plan-out
// state machines — no clocks, no threads, no wall-clock sleeps — so the
// whole control loop unit-tests with injected load samples.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/units.h"
#include "stats/trend.h"

namespace scalia::capacity {

struct PredictorConfig {
  /// Trend window/limit over the per-period request-rate samples (the
  /// paper's "ma: 3" SMA reused at serving-tier granularity).
  stats::TrendConfig trend;
  /// Forecasts are clamped to this multiple of the largest rate observed
  /// so far — prediction may lead demand, not invent it.
  double max_forecast_multiple = 4.0;
};

/// Forecasts the next period's request rate from the closed periods so far.
class LoadPredictor {
 public:
  explicit LoadPredictor(PredictorConfig config = {});

  /// Feeds the just-finished period's observed rate (req/s; negative or
  /// non-finite samples are treated as 0) and returns the forecast for the
  /// next period.  The forecast is always finite, non-negative and at most
  /// max_forecast_multiple x the observed maximum.
  double Observe(double rate);

  [[nodiscard]] double forecast() const noexcept { return forecast_; }
  [[nodiscard]] double observed_max() const noexcept { return observed_max_; }
  [[nodiscard]] std::size_t observations() const noexcept {
    return trend_.Observations();
  }
  /// Whether the last Observe() tripped the SMA-momentum trend detector.
  [[nodiscard]] bool trend_changed() const noexcept { return trend_changed_; }

 private:
  PredictorConfig config_;
  stats::TrendDetector trend_;
  double observed_max_ = 0.0;
  double forecast_ = 0.0;
  bool trend_changed_ = false;
};

/// The capacity knobs one plan sets.
struct CapacityPlan {
  /// Chunk-I/O thread-pool size (common::ThreadPool::Resize target).
  std::size_t pool_threads = 1;
  /// Total cache budget across shards (ShardedEngine::SetCacheCapacity).
  common::Bytes cache_bytes = 0;
  /// Periods between optimization-procedure runs: under predicted peak
  /// load the optimizer yields CPU to serving (longer cadence), in the
  /// trough it runs every period.
  std::size_t optimize_every = 1;
};

struct CapacityConfig {
  PredictorConfig predictor;
  /// Request rate one chunk-I/O thread is provisioned for.
  double rate_per_thread = 4000.0;
  std::size_t min_threads = 1;
  std::size_t max_threads = 16;
  /// Cache budget scales linearly between min and max as the forecast
  /// moves from 0 to the rate that saturates max_threads.
  common::Bytes min_cache_bytes = 64 * common::kMiB;
  common::Bytes max_cache_bytes = 512 * common::kMiB;
  std::size_t min_optimize_every = 1;
  std::size_t max_optimize_every = 8;
  /// Relative forecast move (vs. the forecast that set the current plan)
  /// required before a new plan is emitted.
  double hysteresis = 0.25;
  /// Minimum closed periods between two plan changes.
  std::size_t cooldown_periods = 2;
};

/// Closes the loop: per-period observed rate in, capacity plan out.
class CapacityController {
 public:
  explicit CapacityController(CapacityConfig config = {});

  /// Feeds the just-finished period's observed rate.  Returns true when
  /// the plan changed (one scale event); read the new plan via plan().
  bool OnPeriodClose(double observed_rate);

  [[nodiscard]] const CapacityPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const LoadPredictor& predictor() const noexcept {
    return predictor_;
  }
  /// Plan changes emitted so far (the bench's scale_events figure).
  [[nodiscard]] std::uint64_t scale_events() const noexcept {
    return scale_events_;
  }

  /// The plan a given forecast maps to (pure; exposed for tests).
  [[nodiscard]] CapacityPlan PlanFor(double forecast) const;

 private:
  CapacityConfig config_;
  LoadPredictor predictor_;
  CapacityPlan plan_;
  double plan_forecast_ = 0.0;   // forecast that set the current plan
  bool has_plan_ = false;
  std::size_t periods_since_resize_ = 0;
  std::uint64_t scale_events_ = 0;
};

}  // namespace scalia::capacity
