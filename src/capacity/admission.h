// SLO-aware admission control: shed the lowest-value traffic first.
//
// Sits on the gateway hot path at the net/server -> core::EngineApi
// boundary (api::S3Gateway::SetAdmissionController): every admitted
// request's engine-dispatch latency feeds a per-shard p99 estimate, and
// when any shard's estimate breaches the SLO target the controller starts
// 429-throttling tenants in ascending value order — the per-tenant value
// comes from the same monthly budgets core/budget.h and billing/ price
// placements with, so "value" means exactly what the billing pipeline
// bills.  Higher-value tenants keep full service until shedding the
// cheaper ones has not recovered the SLO.
//
// The p99 estimate per shard is a stochastic quantile EWMA: each sample
// moves the estimate up by gain x (sample - est) when it exceeds the
// estimate and down by gain x (1-q)/q x (est - sample) otherwise, so the
// estimate settles where ~1% of samples land above it.  Shed responses
// never feed the estimate — a storm of fast 429s must not talk the
// controller into believing the SLO recovered.
//
// Escalation runs on a *sample-counted* cadence with hysteresis (breach
// above the target escalates one tenant tier; recovery below
// recover_fraction x target de-escalates one tier), so the control loop is
// fully deterministic under injected latencies: no clocks, no threads, no
// wall-time coupling anywhere in the decision path.  The only time source
// is the injectable now_us used to *measure* latencies, and tests inject
// that too.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/money.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace scalia::capacity {

struct AdmissionConfig {
  /// The p99 latency target, in milliseconds.  <= 0 disables admission
  /// control entirely (every request admits).
  double slo_p99_ms = 0.0;
  /// Hysteresis: de-escalation requires every shard's p99 below
  /// recover_fraction x target, not merely below the target.
  double recover_fraction = 0.8;
  /// Quantile tracked (0.99 = p99) and the EWMA step gain.
  double quantile = 0.99;
  double gain = 0.05;
  /// Samples on a shard before its estimate participates in breach
  /// decisions (a cold estimate is noise).
  std::size_t min_samples = 64;
  /// Admitted samples between two shed-level moves (the deterministic
  /// stand-in for a wall-clock evaluation interval).
  std::size_t escalation_every_samples = 256;
  /// Every Nth would-be-shed request is admitted anyway as a *probe*, so
  /// the latency estimate keeps seeing real samples from shed tiers and
  /// recovery stays observable even when every tier below the top is dark.
  /// 0 disables probing.
  std::size_t probe_every = 16;
  /// Retry-After value stamped on every 429.
  long retry_after_s = 1;
  /// Engine shards (the per-shard p99 slots); row keys map onto shards
  /// with the engine's own routing hash.
  std::size_t num_shards = 1;
  /// Tenants with no registered value rank below every registered one.
  double default_tenant_value = 0.0;
  /// Latency time source in microseconds — injectable for deterministic
  /// tests; null uses std::chrono::steady_clock.
  std::function<std::uint64_t()> now_us;
};

struct AdmissionDecision {
  bool admit = true;
  long retry_after_s = 0;
};

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t probes = 0;
  /// Tenant tiers currently shed (0 = SLO healthy).
  std::size_t shed_level = 0;
  std::uint64_t escalations = 0;
  std::uint64_t de_escalations = 0;
  /// Worst per-shard p99 estimate, in microseconds.
  double max_p99_us = 0.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Registers/overwrites a tenant's value (ascending order = shed order).
  void SetTenantValue(const std::string& tenant, double value);
  /// The budget-derived flavour: value = the tenant's monthly budget in
  /// USD, the number the billing ledger invoices against.
  void SetTenantBudget(const std::string& tenant, common::Money monthly) {
    SetTenantValue(tenant, monthly.usd());
  }

  /// Admission check for `tenant` on the shard serving `row_key`.  Never
  /// blocks; a shed decision carries the Retry-After to answer with.
  [[nodiscard]] AdmissionDecision Admit(const std::string& tenant,
                                        const std::string& row_key);

  /// Feeds one admitted request's engine-dispatch latency (microseconds),
  /// attributed to the shard serving `row_key`.
  void RecordLatency(const std::string& row_key, double latency_us);
  /// Shard-addressed variant (tests and embedders that already routed).
  void RecordLatencyOnShard(std::size_t shard, double latency_us);

  /// Microseconds from the configured time source (the gateway brackets
  /// the engine dispatch with this).
  [[nodiscard]] std::uint64_t NowUs() const;

  [[nodiscard]] std::size_t ShardOf(const std::string& row_key) const;
  [[nodiscard]] double ShardP99Us(std::size_t shard) const;
  [[nodiscard]] AdmissionStats Stats() const;
  [[nodiscard]] std::uint64_t shed_requests() const;
  /// Per-tenant shed counts (for the daemon's sampling-period log).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  ShedByTenant() const;

  [[nodiscard]] bool enabled() const noexcept {
    return config_.slo_p99_ms > 0.0;
  }
  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

 private:
  struct ShardState {
    double p99_us = 0.0;
    std::uint64_t samples = 0;
  };
  struct TenantState {
    double value = 0.0;
    std::uint64_t shed = 0;
  };

  /// True when any warmed-up shard's estimate exceeds `threshold_us`.
  [[nodiscard]] bool AnyShardAboveLocked(double threshold_us) const
      REQUIRES(mu_);
  /// Ascending-value rank of `tenant` (0 = cheapest); tenants sharing a
  /// value share the fate of their tier.
  [[nodiscard]] std::size_t RankLocked(const std::string& tenant) const
      REQUIRES(mu_);
  void MaybeMoveShedLevelLocked() REQUIRES(mu_);

  AdmissionConfig config_;
  mutable common::Mutex mu_;
  std::vector<ShardState> shards_ GUARDED_BY(mu_);
  std::unordered_map<std::string, TenantState> tenants_ GUARDED_BY(mu_);
  std::size_t shed_level_ GUARDED_BY(mu_) = 0;
  std::uint64_t samples_since_move_ GUARDED_BY(mu_) = 0;
  std::uint64_t admitted_ GUARDED_BY(mu_) = 0;
  std::uint64_t shed_ GUARDED_BY(mu_) = 0;
  std::uint64_t shed_decisions_ GUARDED_BY(mu_) = 0;
  std::uint64_t probes_ GUARDED_BY(mu_) = 0;
  std::uint64_t escalations_ GUARDED_BY(mu_) = 0;
  std::uint64_t de_escalations_ GUARDED_BY(mu_) = 0;
};

}  // namespace scalia::capacity
