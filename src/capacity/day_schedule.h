// A compressed day-in-the-life load schedule.
//
// The serving-tier counterpart of the paper's workload models: 24 hours of
// the §IV-C diurnal website curve (workload/diurnal.h), with a §IV-B
// Slashdot-style flash crowd grafted onto the evening peak, compressed to
// N bench periods.  Each period carries a rate *fraction* relative to the
// schedule's peak, so the replayer picks the absolute peak rate (req/s)
// and the period length independently — the same schedule drives a 10 s
// smoke run and a minutes-long bench.
//
// Schedules are deterministic (the generator is a pure function of its
// arguments) and serializable to a line-oriented file — one fraction per
// line, '#' comments — so day runs can replay custom curves too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace scalia::capacity {

struct DayScheduleConfig {
  /// Periods the 24 h curve is compressed into.
  std::size_t periods = 24;
  /// Flash crowd: multiplies the diurnal fraction at the flash periods by
  /// ramping to `flash_multiple` over `flash_periods`, Slashdot-style
  /// (sharp ramp, slower decay).  0 periods disables the flash.
  std::size_t flash_start_period = 18;
  std::size_t flash_periods = 3;
  double flash_multiple = 1.8;
  /// Floor on every period's fraction (a real site never goes fully dark;
  /// 0 would also make rate pacing degenerate).
  double min_fraction = 0.05;
};

class DaySchedule {
 public:
  /// The default compressed diurnal+flash curve.
  [[nodiscard]] static DaySchedule Compressed(DayScheduleConfig config = {});

  /// Loads a schedule file: one fraction per line, '#' comments and blank
  /// lines ignored.  Fractions must be finite, in (0, 10]; errors carry
  /// the offending line number.
  [[nodiscard]] static common::Result<DaySchedule> Load(
      const std::string& path);

  [[nodiscard]] const std::vector<double>& fractions() const noexcept {
    return fractions_;
  }
  [[nodiscard]] std::size_t periods() const noexcept {
    return fractions_.size();
  }
  /// The peak period's fraction (normally 1.0 for generated schedules).
  [[nodiscard]] double PeakFraction() const;

  /// One line per period: "period 7: 0.43  ########".
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<double> fractions_;
};

/// Per-period SLO bookkeeping for a day replay: feed each request's
/// (period, latency, shed) outcome, then read attainment and the peak vs.
/// trough throughput.  Not thread-safe; replayers merge per-worker
/// trackers with Merge().
class SloTracker {
 public:
  SloTracker(std::size_t periods, double slo_p99_ms);

  void Record(std::size_t period, double latency_us, bool shed);
  void Merge(const SloTracker& other);

  struct PeriodReport {
    std::uint64_t requests = 0;  // admitted (shed excluded)
    std::uint64_t shed = 0;
    double p99_us = 0.0;
  };
  struct Report {
    std::vector<PeriodReport> periods;
    /// Fraction of nonempty periods whose p99 met the target.
    double slo_attainment = 0.0;
    std::uint64_t total_requests = 0;
    std::uint64_t total_shed = 0;
    /// Highest and lowest per-period admitted request counts (the bench
    /// divides by the period length for req/s).
    std::uint64_t peak_period_requests = 0;
    std::uint64_t trough_period_requests = 0;
  };
  [[nodiscard]] Report Finish() const;

  [[nodiscard]] std::size_t periods() const noexcept {
    return latencies_.size();
  }

 private:
  double slo_p99_ms_;
  std::vector<std::vector<double>> latencies_;  // per period, admitted only
  std::vector<std::uint64_t> shed_;
};

}  // namespace scalia::capacity
