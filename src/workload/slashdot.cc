#include "workload/slashdot.h"

namespace scalia::workload {

simx::ScenarioSpec SlashdotScenario(const SlashdotParams& params) {
  simx::ScenarioSpec scenario;
  scenario.name = "slashdot";
  scenario.sampling_period = common::kHour;
  scenario.num_periods = params.total_hours;

  simx::SimObject obj;
  obj.name = "article-asset";
  obj.size = params.object_size;
  obj.mime = "image/png";
  obj.rule = core::StorageRule{.name = "slashdot",
                               .durability = params.durability,
                               .availability = params.availability,
                               .allowed_zones = provider::ZoneSet::All(),
                               .lockin = 1.0,
                               .ttl_hint = std::nullopt};
  obj.created_period = 0;
  obj.reads.assign(params.total_hours, 0.0);

  // Ramp: 0 -> peak within ramp_hours.
  for (std::size_t i = 0; i < params.ramp_hours; ++i) {
    const std::size_t h = params.quiet_hours + i;
    if (h >= params.total_hours) break;
    obj.reads[h] = params.peak_reads_per_hour *
                   static_cast<double>(i + 1) /
                   static_cast<double>(params.ramp_hours);
  }
  // Decay: peak - k * decay until zero.
  double rate = params.peak_reads_per_hour;
  for (std::size_t h = params.quiet_hours + params.ramp_hours;
       h < params.total_hours && rate > 0.0; ++h) {
    rate -= params.decay_per_hour;
    if (rate <= 0.0) break;
    obj.reads[h] = rate;
  }
  scenario.objects.push_back(std::move(obj));
  return scenario;
}

}  // namespace scalia::workload
