// Backup scenarios (§IV-D "Adding Storage Resources", Fig. 17, and §IV-E
// "Active repair", Fig. 18).
//
// A new 40 MB object is stored every 5 hours.  The data owner's priority is
// avoiding vendor lock-in: each object must span at least two providers
// (lock-in factor 0.5), with high durability.  Fig. 17 runs 600 hours and
// registers CheapStor at hour 400; Fig. 18 runs 180 hours with S3(l)
// unreachable between hours 60 and 120.
#pragma once

#include "common/units.h"
#include "simx/environment.h"
#include "simx/scenario.h"

namespace scalia::workload {

struct BackupParams {
  std::size_t total_hours = 600;
  std::size_t interval_hours = 5;
  common::Bytes object_size = 40 * common::kMB;
  double lockin = 0.5;          // at least 2 distinct providers
  double durability = 0.999999; // 6 nines — backups are long-lived
  double availability = 0.9999;
};

[[nodiscard]] simx::ScenarioSpec BackupScenario(
    const BackupParams& params = {});

/// The Fig. 17 environment: the paper's five providers plus CheapStor
/// arriving at `cheapstor_hour` (default 400).
[[nodiscard]] simx::SimEnvironment AddProviderEnvironment(
    std::size_t cheapstor_hour = 400);

/// The Fig. 18 environment: the paper's five providers with S3(l)
/// unreachable during [failure_from, failure_to) hours.
[[nodiscard]] simx::SimEnvironment TransientFailureEnvironment(
    std::size_t failure_from = 60, std::size_t failure_to = 120);

}  // namespace scalia::workload
