#include "workload/gallery.h"

#include <algorithm>

#include "common/rng.h"
#include "workload/diurnal.h"

namespace scalia::workload {

simx::ScenarioSpec GalleryScenario(const GalleryParams& params) {
  simx::ScenarioSpec scenario;
  scenario.name = "gallery";
  scenario.sampling_period = common::kHour;
  scenario.num_periods = params.total_hours;

  common::Xoshiro256 rng(params.seed);

  // Popularity weights ~ truncated Pareto.
  std::vector<double> weights(params.num_pictures);
  double weight_sum = 0.0;
  for (auto& w : weights) {
    w = std::min(params.pareto_cap,
                 rng.NextPareto(params.pareto_shape, params.pareto_scale));
    weight_sum += w;
  }

  // Hourly site traffic (shared by all pictures).
  const DiurnalTrafficModel traffic(params.visits_per_day);
  const std::vector<double> visits =
      traffic.SampledSeries(params.total_hours, rng);

  const core::StorageRule rule{.name = "gallery",
                               .durability = params.durability,
                               .availability = params.availability,
                               .allowed_zones = provider::ZoneSet::All(),
                               .lockin = 1.0,
                               .ttl_hint = std::nullopt};

  for (std::size_t i = 0; i < params.num_pictures; ++i) {
    simx::SimObject obj;
    obj.name = "picture-" + std::to_string(i);
    obj.size = params.picture_size;
    obj.mime = "image/jpeg";
    obj.rule = rule;
    obj.created_period = 0;
    obj.reads.assign(params.total_hours, 0.0);
    const double share = weights[i] / weight_sum;
    for (std::size_t h = 0; h < params.total_hours; ++h) {
      const double mean = visits[h] * share * params.reads_per_visit;
      obj.reads[h] = static_cast<double>(rng.NextPoisson(mean));
    }
    scenario.objects.push_back(std::move(obj));
  }
  return scenario;
}

}  // namespace scalia::workload
