// Diurnal website traffic model.
//
// The Gallery scenario and the trend-detection figures use "the daily
// pattern of a real website which has around 2500 visitors per day mainly
// coming from Europe (62%), North America (27%) and Asia (6%)" (§IV-C).
// We synthesize that pattern as a mixture of per-region day/night profiles:
// each region contributes a von-Mises-shaped daily curve peaking in its
// local afternoon, weighted by its share of the visitors; the remaining 5 %
// arrive uniformly.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"

namespace scalia::workload {

struct RegionProfile {
  std::string name;
  double weight = 0.0;          // share of daily visitors
  double utc_offset_hours = 0;  // representative timezone of the region
  double peak_local_hour = 14.0;
  double concentration = 1.5;   // larger = sharper day/night contrast
};

/// EU 62 %, NA 27 %, Asia 6 %, plus a 5 % uniform remainder.
[[nodiscard]] std::vector<RegionProfile> PaperRegions();

class DiurnalTrafficModel {
 public:
  explicit DiurnalTrafficModel(double visits_per_day,
                               std::vector<RegionProfile> regions =
                                   PaperRegions());

  /// Expected visits during the hour starting at `utc_hour` (may exceed 24;
  /// only the hour-of-day matters).
  [[nodiscard]] double ExpectedVisitsInHour(double utc_hour) const;

  /// Expected hourly series of length `num_hours` starting at UTC hour 0.
  [[nodiscard]] std::vector<double> ExpectedSeries(
      std::size_t num_hours) const;

  /// Poisson-sampled hourly series (deterministic under `rng`'s seed).
  [[nodiscard]] std::vector<double> SampledSeries(
      std::size_t num_hours, common::Xoshiro256& rng) const;

  [[nodiscard]] double visits_per_day() const noexcept {
    return visits_per_day_;
  }

 private:
  double visits_per_day_;
  std::vector<RegionProfile> regions_;
  std::vector<double> region_norms_;  // per-region daily normalization
};

}  // namespace scalia::workload
