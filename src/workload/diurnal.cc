#include "workload/diurnal.h"

#include <cmath>

namespace scalia::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586;

double Profile(const RegionProfile& r, double utc_hour) {
  const double local = utc_hour + r.utc_offset_hours;
  const double phase = kTwoPi * (local - r.peak_local_hour) / 24.0;
  return std::exp(r.concentration * std::cos(phase));
}
}  // namespace

std::vector<RegionProfile> PaperRegions() {
  return {
      {.name = "EU", .weight = 0.62, .utc_offset_hours = 1.0,
       .peak_local_hour = 14.0, .concentration = 1.5},
      {.name = "NA", .weight = 0.27, .utc_offset_hours = -6.0,
       .peak_local_hour = 14.0, .concentration = 1.5},
      {.name = "Asia", .weight = 0.06, .utc_offset_hours = 8.0,
       .peak_local_hour = 14.0, .concentration = 1.5},
      {.name = "other", .weight = 0.05, .utc_offset_hours = 0.0,
       .peak_local_hour = 14.0, .concentration = 0.0},  // uniform
  };
}

DiurnalTrafficModel::DiurnalTrafficModel(double visits_per_day,
                                         std::vector<RegionProfile> regions)
    : visits_per_day_(visits_per_day), regions_(std::move(regions)) {
  region_norms_.reserve(regions_.size());
  for (const auto& r : regions_) {
    double daily = 0.0;
    for (int h = 0; h < 24; ++h) daily += Profile(r, static_cast<double>(h));
    region_norms_.push_back(daily > 0.0 ? daily : 1.0);
  }
}

double DiurnalTrafficModel::ExpectedVisitsInHour(double utc_hour) const {
  double visits = 0.0;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const auto& r = regions_[i];
    visits += visits_per_day_ * r.weight * Profile(r, utc_hour) /
              region_norms_[i];
  }
  return visits;
}

std::vector<double> DiurnalTrafficModel::ExpectedSeries(
    std::size_t num_hours) const {
  std::vector<double> out;
  out.reserve(num_hours);
  for (std::size_t h = 0; h < num_hours; ++h) {
    out.push_back(ExpectedVisitsInHour(static_cast<double>(h)));
  }
  return out;
}

std::vector<double> DiurnalTrafficModel::SampledSeries(
    std::size_t num_hours, common::Xoshiro256& rng) const {
  std::vector<double> out;
  out.reserve(num_hours);
  for (std::size_t h = 0; h < num_hours; ++h) {
    out.push_back(static_cast<double>(
        rng.NextPoisson(ExpectedVisitsInHour(static_cast<double>(h)))));
  }
  return out;
}

}  // namespace scalia::workload
