#include "workload/backup.h"

namespace scalia::workload {

simx::ScenarioSpec BackupScenario(const BackupParams& params) {
  simx::ScenarioSpec scenario;
  scenario.name = "backup";
  scenario.sampling_period = common::kHour;
  scenario.num_periods = params.total_hours;

  const core::StorageRule rule{.name = "backup",
                               .durability = params.durability,
                               .availability = params.availability,
                               .allowed_zones = provider::ZoneSet::All(),
                               .lockin = params.lockin,
                               .ttl_hint = std::nullopt};

  std::size_t index = 0;
  for (std::size_t h = 0; h < params.total_hours; h += params.interval_hours) {
    simx::SimObject obj;
    obj.name = "backup-" + std::to_string(index++);
    obj.size = params.object_size;
    obj.mime = "application/x-tar";
    obj.rule = rule;
    obj.created_period = h;
    scenario.objects.push_back(std::move(obj));
  }
  return scenario;
}

simx::SimEnvironment AddProviderEnvironment(std::size_t cheapstor_hour) {
  simx::SimEnvironment env = simx::SimEnvironment::Paper();
  env.Add(simx::ProviderTimeline{
      .spec = provider::CheapStorSpec(),
      .available_from =
          static_cast<common::SimTime>(cheapstor_hour) * common::kHour,
      .available_until = std::nullopt,
      .outages = {},
      .price_changes = {}});
  return env;
}

simx::SimEnvironment TransientFailureEnvironment(std::size_t failure_from,
                                                 std::size_t failure_to) {
  std::vector<simx::ProviderTimeline> timelines;
  for (auto& spec : provider::PaperCatalog()) {
    simx::ProviderTimeline t{.spec = std::move(spec),
                             .available_from = 0,
                             .available_until = std::nullopt,
                             .outages = {},
                             .price_changes = {}};
    if (t.spec.id == "S3(l)") {
      t.outages.AddOutage(
          static_cast<common::SimTime>(failure_from) * common::kHour,
          static_cast<common::SimTime>(failure_to) * common::kHour);
    }
    timelines.push_back(std::move(t));
  }
  return simx::SimEnvironment(std::move(timelines));
}

}  // namespace scalia::workload
