#include "workload/trace.h"

#include <cstdlib>
#include <fstream>
#include <map>

#include "common/string_util.h"

namespace scalia::workload {

common::Result<simx::ScenarioSpec> LoadTrace(std::istream& in,
                                             const core::StorageRule& rule,
                                             std::size_t num_periods) {
  std::map<std::string, simx::SimObject> objects;
  std::map<std::string, std::map<std::size_t, double>> reads;
  std::size_t max_period = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = common::Split(line, ',');
    if (fields.size() != 6) {
      if (line_no == 1) continue;  // header row
      return common::Status::InvalidArgument(
          "trace line " + std::to_string(line_no) + ": expected 6 fields");
    }
    const std::string& name = fields[0];
    char* end = nullptr;
    const auto size =
        static_cast<common::Bytes>(std::strtoull(fields[1].c_str(), &end, 10));
    if (end == fields[1].c_str()) {
      if (line_no == 1) continue;  // header row
      return common::Status::InvalidArgument(
          "trace line " + std::to_string(line_no) + ": bad size");
    }
    const std::string& mime = fields[2];
    const auto created =
        static_cast<std::size_t>(std::strtoull(fields[3].c_str(), nullptr, 10));
    const auto period =
        static_cast<std::size_t>(std::strtoull(fields[4].c_str(), nullptr, 10));
    const double count = std::strtod(fields[5].c_str(), nullptr);

    auto [it, inserted] = objects.try_emplace(name);
    if (inserted) {
      it->second.name = name;
      it->second.size = size;
      it->second.mime = mime;
      it->second.rule = rule;
      it->second.created_period = created;
    }
    if (count > 0.0) reads[name][period] += count;
    max_period = std::max(max_period, period);
  }
  if (objects.empty()) {
    return common::Status::InvalidArgument("empty trace");
  }

  simx::ScenarioSpec scenario;
  scenario.name = "trace";
  scenario.num_periods = num_periods > 0 ? num_periods : max_period + 1;
  for (auto& [name, obj] : objects) {
    obj.reads.assign(scenario.num_periods - obj.created_period, 0.0);
    if (auto it = reads.find(name); it != reads.end()) {
      for (const auto& [period, count] : it->second) {
        if (period >= obj.created_period &&
            period < scenario.num_periods) {
          obj.reads[period - obj.created_period] = count;
        }
      }
    }
    scenario.objects.push_back(std::move(obj));
  }
  return scenario;
}

common::Result<simx::ScenarioSpec> LoadTraceFile(const std::string& path,
                                                 const core::StorageRule& rule,
                                                 std::size_t num_periods) {
  std::ifstream in(path);
  if (!in) {
    return common::Status::NotFound("cannot open trace file " + path);
  }
  return LoadTrace(in, rule, num_periods);
}

}  // namespace scalia::workload
