// The Gallery scenario (§IV-C, Figs. 15 and 16).
//
// 200 pictures of 250 KB each, served to ~2500 visitors/day following the
// diurnal pattern of a real website (EU 62 % / NA 27 % / Asia 6 %); picture
// popularity is Pareto(1, 50)-distributed, so a few pictures draw most of
// the traffic while the long tail sits cold.  Minimum availability 99.99 %.
#pragma once

#include "common/units.h"
#include "simx/scenario.h"

namespace scalia::workload {

struct GalleryParams {
  std::size_t num_pictures = 200;
  common::Bytes picture_size = 250 * common::kKB;
  std::size_t total_hours = 180;  // 7.5 days
  double visits_per_day = 2500.0;
  /// "Pareto (1,50)": shape 1, truncated at weight 50 (keeps the heaviest
  /// head bounded, as a 200-sample draw from an untruncated Pareto(1) would
  /// be dominated by a single outlier).
  double pareto_shape = 1.0;
  double pareto_scale = 1.0;
  double pareto_cap = 50.0;
  double reads_per_visit = 1.0;
  double availability = 0.9999;
  double durability = 0.99999;
  std::uint64_t seed = 20120407;
};

[[nodiscard]] simx::ScenarioSpec GalleryScenario(
    const GalleryParams& params = {});

}  // namespace scalia::workload
