// The Slashdot-effect scenario (§IV-B, Figs. 12 and 14).
//
// One 1 MB object sits idle for 48 hours; read traffic then ramps from 0 to
// 150 requests/hour within 3 hours and decays at 2 requests/hour back to
// zero.  Total horizon 180 hours (7.5 days).  Constraints: availability
// 99.99 %, durability 99.999 %.
#pragma once

#include "common/units.h"
#include "simx/scenario.h"

namespace scalia::workload {

struct SlashdotParams {
  std::size_t total_hours = 180;
  std::size_t quiet_hours = 48;
  std::size_t ramp_hours = 3;
  double peak_reads_per_hour = 150.0;
  double decay_per_hour = 2.0;
  common::Bytes object_size = common::kMB;
  double availability = 0.9999;
  double durability = 0.99999;
};

[[nodiscard]] simx::ScenarioSpec SlashdotScenario(
    const SlashdotParams& params = {});

}  // namespace scalia::workload
