// Trace replay: build a scenario from a CSV access trace.
//
// Lets users replay their own workloads through the simulator.  Format
// (header optional, '#' comments ignored):
//
//     object,size_bytes,mime,created_period,period,reads
//
// Each (object, period) line adds `reads` read operations in that sampling
// period; the object row metadata (size/mime/created) is taken from the
// first line mentioning the object.
#pragma once

#include <istream>
#include <string>

#include "common/status.h"
#include "core/rule.h"
#include "simx/scenario.h"

namespace scalia::workload {

[[nodiscard]] common::Result<simx::ScenarioSpec> LoadTrace(
    std::istream& in, const core::StorageRule& rule,
    std::size_t num_periods = 0 /* 0 = max period in trace + 1 */);

[[nodiscard]] common::Result<simx::ScenarioSpec> LoadTraceFile(
    const std::string& path, const core::StorageRule& rule,
    std::size_t num_periods = 0);

}  // namespace scalia::workload
