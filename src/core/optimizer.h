// The periodic optimization procedure (§III-A.3, Fig. 7).
//
// Periodically, the elected leader retrieves from the statistics database
// the set A of object keys accessed or modified since the last procedure,
// splits A into |E| equal shards, and assigns one shard per engine.  Each
// engine applies the detect() gate — the SMA-momentum trend detector — and
// recomputes the placement (Algorithm 1 + migration cost-benefit) only for
// objects whose access pattern changed considerably.  Objects with no
// access or a stable pattern are never touched, which is what keeps the
// procedure cheap enough to run every few minutes.
//
// One refinement over the literal text: objects whose trend window is still
// "warm" (nonzero moving average) stay in the candidate set for a few
// periods after their last access, so a flash crowd's *end* also triggers a
// recomputation (cf. the post-peak recomputation points of Fig. 8).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/decision_period.h"
#include "core/engine.h"
#include "core/leader.h"
#include "stats/trend.h"

namespace scalia::durability {
class DurabilityManager;
}  // namespace scalia::durability

namespace scalia::core {

struct OptimizerConfig {
  stats::TrendConfig trend;
  DecisionPeriodConfig decision_period;
  /// Observed provider-health source — typically the chaos injector's
  /// error-rate EWMA (chaos::FaultInjector::UnhealthyProviders), but any
  /// health checker fits.  Returns the providers to re-place away from at
  /// `now`; when set and non-empty, each run sweeps its candidates for
  /// objects with stripes on unhealthy providers and repairs them through
  /// the CAS-commit migration path.  Null disables the sweep.
  std::function<std::vector<provider::ProviderId>(common::SimTime)>
      provider_health;
};

struct OptimizationReport {
  std::string leader;
  std::size_t candidates = 0;        // |A|
  std::size_t trend_changes = 0;     // detect() fired
  std::size_t recomputations = 0;    // Algorithm 1 runs
  std::size_t migrations = 0;        // chunk movements performed
  /// Migrations aborted because a concurrent Put/Delete of the same key won
  /// the CAS-on-version commit.  Nonzero under live write traffic is
  /// normal; the acked write always survives and the staged chunks are
  /// garbage-collected.
  std::size_t conflicts = 0;
  std::size_t errors = 0;            // migrations failed for other reasons
  /// Objects rebuilt away from unhealthy providers by the availability
  /// sweep (see OptimizerConfig::provider_health).
  std::size_t repairs = 0;
};

class PeriodicOptimizer {
 public:
  PeriodicOptimizer(OptimizerConfig config, stats::StatsDb* stats_db,
                    common::ThreadPool* pool)
      : config_(config), stats_db_(stats_db), pool_(pool) {}

  /// Engines register with the election on creation.
  void AddEngine(Engine* engine) {
    engines_.push_back(engine);
    election_.RegisterMember(engine->id());
  }

  [[nodiscard]] LeaderElection& election() noexcept { return election_; }

  /// Checkpoints engine state after each optimization run (the paper's
  /// decision-period boundary is the natural quiesce point).  Null (the
  /// default) disables checkpointing.
  void AttachDurability(durability::DurabilityManager* durability) noexcept {
    durability_ = durability;
  }

  /// Runs one optimization procedure at `now`, then lets the attached
  /// durability manager checkpoint if its cadence elapsed.
  OptimizationReport Run(common::SimTime now);

  /// Number of per-object control blocks currently tracked.
  [[nodiscard]] std::size_t TrackedObjects() const;

 private:
  struct ObjectControl {
    stats::TrendDetector trend;
    DecisionPeriodController decision;
    explicit ObjectControl(const OptimizerConfig& config)
        : trend(config.trend), decision(config.decision_period) {}
  };

  ObjectControl& ControlFor(const std::string& row_key);

  OptimizationReport RunInner(common::SimTime now);

  OptimizerConfig config_;
  stats::StatsDb* stats_db_;
  common::ThreadPool* pool_;
  durability::DurabilityManager* durability_ = nullptr;
  std::vector<Engine*> engines_;
  LeaderElection election_;

  mutable common::Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<ObjectControl>> controls_
      GUARDED_BY(mu_);
  // Nonzero SMA after last access.
  std::unordered_set<std::string> warm_ GUARDED_BY(mu_);
  common::SimTime last_run_ = 0;
};

}  // namespace scalia::core
