#include "core/sharded_engine.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"
#include "core/metadata.h"
#include "durability/journal.h"

namespace scalia::core {

ShardedEngine::ShardedEngine(ShardedEngineConfig config,
                             provider::ProviderRegistry* registry,
                             common::ThreadPool* pool)
    : config_(config), registry_(registry), pool_(pool) {
  if (config_.num_shards == 0) {
    throw std::invalid_argument("ShardedEngine needs >= 1 shard");
  }
  common::SplitMix64 seeder(config_.seed);
  const common::Bytes cache_per_shard =
      config_.cache_capacity / config_.num_shards;
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // One replica per shard: the shard *is* the partition, replication
    // across datacenters stays the ScaliaCluster's concern.
    shard->db = std::make_unique<store::ReplicatedStore>(1);
    shard->stats = std::make_unique<stats::StatsDb>(shard->db.get(), /*dc=*/0);
    shard->aggregator = std::make_unique<stats::LogAggregator>();
    shard->agent = std::make_unique<stats::LogAgent>(shard->aggregator.get());
    if (config_.enable_cache) {
      // No invalidation bus: keys partition, so a shard's writes only ever
      // concern its own cache.
      shard->cache =
          std::make_unique<cache::CacheLayer>(cache_per_shard, nullptr);
    }
    shard->engine = std::make_unique<Engine>(
        "shard" + std::to_string(s), registry_, shard->db.get(), /*dc=*/0,
        shard->cache.get(), shard->stats.get(), shard->agent.get(), pool_,
        config_.engine, seeder.Next());
    if (config_.filters) {
      shard->dedup = std::make_unique<filter::DedupIndex>();
      // Per-shard key/nonce streams: shards drawing from identical RNG
      // sequences would hand the same (data key, nonce) pair to different
      // objects — a two-time pad.
      filter::PipelineConfig fc = *config_.filters;
      fc.seed = common::SplitMix64(fc.seed ^ (0x9E3779B97F4A7C15ull * (s + 1)))
                    .Next();
      shard->filters = std::make_unique<filter::Pipeline>(
          fc, shard->dedup.get(), &keyring_);
      shard->engine->AttachFilters(shard->filters.get());
    }
    shard->optimizer = std::make_unique<PeriodicOptimizer>(
        config_.optimizer, shard->stats.get(), /*pool=*/nullptr);
    shard->optimizer->AddEngine(shard->engine.get());
    shards_.push_back(std::move(shard));
  }
}

ShardedEngine::~ShardedEngine() = default;

std::size_t ShardedEngine::ShardForRowKey(const std::string& row_key,
                                          std::size_t num_shards) {
  // FNV-1a 64: stable across builds and restarts (no per-process salt), and
  // uniform enough over MD5-hex row keys.  Keep in sync with the routing
  // section of docs/ARCHITECTURE.md.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : row_key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return num_shards <= 1 ? 0 : static_cast<std::size_t>(h % num_shards);
}

common::Status ShardedEngine::Put(common::SimTime now,
                                  const std::string& container,
                                  const std::string& key, std::string data,
                                  const std::string& mime,
                                  std::optional<StorageRule> rule) {
  const std::size_t s = ShardFor(MakeRowKey(container, key));
  return shards_[s]->engine->Put(now, container, key, std::move(data), mime,
                                 std::move(rule));
}

common::Result<std::string> ShardedEngine::Get(common::SimTime now,
                                               const std::string& container,
                                               const std::string& key) {
  const std::size_t s = ShardFor(MakeRowKey(container, key));
  return shards_[s]->engine->Get(now, container, key);
}

common::Status ShardedEngine::Delete(common::SimTime now,
                                     const std::string& container,
                                     const std::string& key) {
  const std::size_t s = ShardFor(MakeRowKey(container, key));
  return shards_[s]->engine->Delete(now, container, key);
}

common::Result<std::vector<std::string>> ShardedEngine::List(
    common::SimTime now, const std::string& container) {
  std::vector<std::string> merged;
  for (auto& shard : shards_) {
    auto keys = shard->engine->List(now, container);
    if (!keys.ok()) return keys.status();
    merged.insert(merged.end(), keys->begin(), keys->end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

common::Result<ObjectMetadata> ShardedEngine::LoadMetadata(
    common::SimTime now, const std::string& row_key) {
  return shards_[ShardFor(row_key)]->engine->LoadMetadata(now, row_key);
}

common::Result<bool> ShardedEngine::ReoptimizeObject(
    common::SimTime now, const std::string& row_key,
    std::size_t decision_periods) {
  return shards_[ShardFor(row_key)]->engine->ReoptimizeObject(
      now, row_key, decision_periods);
}

common::Status ShardedEngine::RepairObject(common::SimTime now,
                                           const std::string& row_key) {
  return shards_[ShardFor(row_key)]->engine->RepairObject(now, row_key);
}

void ShardedEngine::ForEachShard(
    const std::function<void(std::size_t)>& fn) {
  if (pool_ != nullptr && shards_.size() > 1) {
    pool_->ParallelFor(shards_.size(), fn);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) fn(s);
  }
}

void ShardedEngine::EndSamplingPeriod(common::SimTime now) {
  ForEachShard([&](std::size_t s) {
    Shard& shard = *shards_[s];
    shard.aggregator->Pump();
    // Durable shards journal every appended period row: the access
    // histories drive the adaptive scheme, so a crash between checkpoints
    // must not reset them to "silent object".
    durability::Journal* journal = shard.journal;
    shard.stats->AppendPeriodForAllObjects(
        shard.aggregator->Flush(), shard.period_counter, now,
        journal == nullptr
            ? std::function<void(const std::string&,
                                 const stats::PeriodStats&)>{}
            : [&](const std::string& row_key, const stats::PeriodStats& row) {
                (void)journal->LogPeriodStats(row_key, shard.period_counter,
                                              row.ToCsv(), now);
              });
    ++shard.period_counter;
    shard.engine->ProcessPendingDeletes(now);
    shard.db->SyncAll();
  });
}

OptimizationReport ShardedEngine::RunOptimizationProcedure(
    common::SimTime now) {
  std::vector<OptimizationReport> reports(shards_.size());
  ForEachShard([&](std::size_t s) {
    reports[s] = shards_[s]->optimizer->Run(now);
    shards_[s]->db->SyncAll();
  });
  OptimizationReport merged;
  for (const auto& report : reports) {
    if (merged.leader.empty()) merged.leader = report.leader;
    merged.candidates += report.candidates;
    merged.trend_changes += report.trend_changes;
    merged.recomputations += report.recomputations;
    merged.migrations += report.migrations;
    merged.conflicts += report.conflicts;
    merged.errors += report.errors;
    merged.repairs += report.repairs;
  }
  return merged;
}

std::size_t ShardedEngine::ProcessPendingDeletes(common::SimTime now) {
  std::size_t total = 0;
  for (auto& shard : shards_) {
    total += shard->engine->ProcessPendingDeletes(now);
  }
  return total;
}

void ShardedEngine::AttachJournals(
    const std::vector<durability::Journal*>& journals) {
  if (journals.size() != shards_.size()) {
    throw std::invalid_argument("AttachJournals: expected " +
                                std::to_string(shards_.size()) +
                                " journals, got " +
                                std::to_string(journals.size()));
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->engine->AttachJournal(journals[s]);
    shards_[s]->journal = journals[s];
  }
}

Engine& ShardedEngine::shard_engine(std::size_t shard) {
  return *shards_.at(shard)->engine;
}

stats::StatsDb& ShardedEngine::shard_stats(std::size_t shard) {
  return *shards_.at(shard)->stats;
}

store::ReplicatedStore& ShardedEngine::shard_store(std::size_t shard) {
  return *shards_.at(shard)->db;
}

PeriodicOptimizer& ShardedEngine::shard_optimizer(std::size_t shard) {
  return *shards_.at(shard)->optimizer;
}

filter::DedupIndex* ShardedEngine::shard_dedup_index(std::size_t shard) {
  return shards_.at(shard)->dedup.get();
}

cache::CacheStats ShardedEngine::CacheStats() const {
  cache::CacheStats total;
  for (const auto& shard : shards_) {
    if (shard->cache) total += shard->cache->Stats();
  }
  return total;
}

void ShardedEngine::SetCacheCapacity(common::Bytes total) {
  const common::Bytes per_shard = total / shards_.size();
  for (const auto& shard : shards_) {
    if (shard->cache) shard->cache->SetCapacity(per_shard);
  }
}

Engine::ReadPathCounters ShardedEngine::ReadCounters() const {
  Engine::ReadPathCounters total;
  for (const auto& shard : shards_) {
    const auto counters = shard->engine->read_counters();
    total.degraded_reads += counters.degraded_reads;
    total.reconstructions += counters.reconstructions;
  }
  return total;
}

filter::Pipeline::Totals ShardedEngine::FilterTotals() const {
  filter::Pipeline::Totals total;
  for (const auto& shard : shards_) {
    if (!shard->filters) continue;
    const auto t = shard->filters->totals();
    total.objects += t.objects;
    total.raw_bytes += t.raw_bytes;
    total.stored_bytes += t.stored_bytes;
    total.dedup_hits += t.dedup_hits;
  }
  return total;
}

std::size_t ShardedEngine::ObjectCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->stats->ObjectCount();
  return total;
}

}  // namespace scalia::core
