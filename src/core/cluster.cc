#include "core/cluster.h"

#include <stdexcept>

#include "common/rng.h"

namespace scalia::core {

ScaliaCluster::ScaliaCluster(ClusterConfig config) : config_(config) {
  if (config_.num_datacenters == 0 || config_.engines_per_dc == 0) {
    throw std::invalid_argument("cluster needs >= 1 datacenter and engine");
  }
  db_ = std::make_unique<store::ReplicatedStore>(config_.num_datacenters);
  stats_db_ = std::make_unique<stats::StatsDb>(db_.get(), /*dc=*/0);
  pool_ = std::make_unique<common::ThreadPool>(config_.worker_threads);
  optimizer_ = std::make_unique<PeriodicOptimizer>(config_.optimizer,
                                                   stats_db_.get(), pool_.get());

  common::SplitMix64 seeder(config_.seed);
  datacenters_.resize(config_.num_datacenters);
  for (std::size_t dc = 0; dc < config_.num_datacenters; ++dc) {
    Datacenter& d = datacenters_[dc];
    if (config_.enable_cache) {
      d.cache = std::make_unique<cache::CacheLayer>(config_.cache_capacity,
                                                    &bus_);
    }
    d.aggregator = std::make_unique<stats::LogAggregator>();
    for (std::size_t e = 0; e < config_.engines_per_dc; ++e) {
      d.agents.push_back(
          std::make_unique<stats::LogAgent>(d.aggregator.get()));
      const std::string id = "dc" + std::to_string(dc) + "-engine" +
                             std::to_string(e);
      engines_.push_back(std::make_unique<Engine>(
          id, &registry_, db_.get(), static_cast<store::ReplicaId>(dc),
          d.cache.get(), stats_db_.get(), d.agents.back().get(), pool_.get(),
          config_.engine, seeder.Next()));
      optimizer_->AddEngine(engines_.back().get());
    }
  }
}

ScaliaCluster::~ScaliaCluster() = default;

Engine& ScaliaCluster::EngineAt(std::size_t dc, std::size_t index) {
  return *engines_.at(dc * config_.engines_per_dc + index);
}

Engine& ScaliaCluster::RouteRequest() {
  // Round-robin across all engines of all datacenters, skipping engines in
  // down datacenters ("a client can send requests indifferently to each
  // datacenter").
  for (std::size_t attempts = 0; attempts < engines_.size(); ++attempts) {
    Engine& engine = *engines_[route_counter_++ % engines_.size()];
    if (db_->IsDatacenterUp(engine.datacenter())) return engine;
  }
  return *engines_[route_counter_++ % engines_.size()];
}

cache::CacheStats ScaliaCluster::CacheStats() const {
  cache::CacheStats total;
  for (const auto& dc : datacenters_) {
    if (dc.cache) total += dc.cache->Stats();
  }
  return total;
}

void ScaliaCluster::EndSamplingPeriod(common::SimTime now) {
  // Drain the log pipeline of every datacenter, merge the per-object
  // aggregates of the closing period and fold them into the histories
  // (silent objects accrue their storage-only row).
  std::unordered_map<std::string, stats::PeriodStats> merged;
  for (auto& dc : datacenters_) {
    dc.aggregator->Pump();
    for (auto& [row_key, s] : dc.aggregator->Flush()) {
      merged[row_key] += s;
    }
  }
  stats_db_->AppendPeriodForAllObjects(merged, period_counter_, now);
  ++period_counter_;

  // Housekeeping that rides the period boundary.
  for (auto& engine : engines_) engine->ProcessPendingDeletes(now);
  db_->SyncAll();
}

void ScaliaCluster::SetDatacenterUp(std::size_t dc, bool up) {
  db_->SetDatacenterUp(static_cast<store::ReplicaId>(dc), up);
  for (std::size_t e = 0; e < config_.engines_per_dc; ++e) {
    optimizer_->election().SetAlive(
        EngineAt(dc, e).id(), up);
  }
}

}  // namespace scalia::core
