// ShardedEngine: N key-hash-partitioned engine shards behind one facade.
//
// One Engine over one metadata replica serializes every request on the
// store's and statistics database's global mutexes; the serving path then
// cannot scale past one core no matter how many handler threads the network
// loop has.  This facade partitions the object space by a stable hash of
// the metadata row key (row_key = MD5(container|key), §III-D.1) across N
// self-contained shards.  Each shard owns a complete vertical slice:
//
//   * its own store::ReplicatedStore (one replica) — its slice of the
//     metadata KvTable, so metadata writes in different shards never share
//     a lock;
//   * its own stats::StatsDb + log agent/aggregator pair — the statistics
//     pipeline partitions with the keys it measures;
//   * its own cache::CacheLayer (keys partition, so per-shard caches are
//     trivially coherent and uncontended);
//   * its own Engine (sharing the global provider registry and thread
//     pool — the providers model the outside world and stay shared);
//   * its own PeriodicOptimizer — the optimization procedure (Fig. 7)
//     sweeps each shard's candidate set independently; per-shard CAS
//     commits compose because an object never leaves its shard;
//   * optionally its own durability journal, streaming into a per-shard
//     WAL segment directory (durability/sharded_manager.h) with the shard
//     id stamped in every record header (format v3).
//
// The facade implements EngineApi, so the gateway, the network daemon and
// the benches swap `ScaliaCluster` / `Engine` for `ShardedEngine` without
// call-site churn: every Put/Get/Delete routes to exactly one shard by key
// hash — no global lock on the request path — and List fans out and merges.
//
// Routing stability: ShardForRowKey is a pure function of (row_key,
// num_shards) with no process-local salt, so a restart with the same shard
// count routes every key to the shard that holds its metadata and WAL
// records.  Restarting with a *different* shard count would strand objects
// in the wrong shard; the durability manifest pins the count and makes the
// mismatch a refused-to-open error instead of silent data loss.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_layer.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/engine_api.h"
#include "core/optimizer.h"
#include "filter/pipeline.h"
#include "provider/registry.h"
#include "stats/pipeline.h"
#include "stats/stats_db.h"
#include "store/replicated_store.h"

namespace scalia::durability {
class Journal;
}  // namespace scalia::durability

namespace scalia::core {

struct ShardedEngineConfig {
  /// Number of engine shards.  1 reproduces the unsharded deployment.
  std::size_t num_shards = 1;
  EngineConfig engine;
  OptimizerConfig optimizer;
  bool enable_cache = true;
  /// Total cache budget, divided evenly across the shards.
  common::Bytes cache_capacity = 256 * common::kMiB;
  std::uint64_t seed = 42;
  /// Data-reduction filter pipeline (chunk/dedup/compress/encrypt).  When
  /// set, each shard constructs its own filter::Pipeline over its own
  /// DedupIndex (dedup scope is per-shard: objects route to shards by key
  /// hash, so identical chunks land in the same shard only when their
  /// objects do); the tenant keyring is shared across shards.  Unset (the
  /// default) stores bodies verbatim.
  std::optional<filter::PipelineConfig> filters;
};

class ShardedEngine : public EngineApi {
 public:
  /// `registry` (the shared provider set) and `pool` (chunk IO + shard
  /// sweeps) must outlive the facade; `pool` may be null for serial IO.
  ShardedEngine(ShardedEngineConfig config,
                provider::ProviderRegistry* registry, common::ThreadPool* pool);
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// The stable routing function: FNV-1a over the row key, mod the shard
  /// count.  Pure — no process salt — so routing survives restarts.
  [[nodiscard]] static std::size_t ShardForRowKey(const std::string& row_key,
                                                  std::size_t num_shards);
  [[nodiscard]] std::size_t ShardFor(const std::string& row_key) const {
    return ShardForRowKey(row_key, shards_.size());
  }

  // ---- EngineApi: each call routes to one shard by key hash -------------

  common::Status Put(common::SimTime now, const std::string& container,
                     const std::string& key, std::string data,
                     const std::string& mime,
                     std::optional<StorageRule> rule = std::nullopt) override;
  common::Result<std::string> Get(common::SimTime now,
                                  const std::string& container,
                                  const std::string& key) override;
  common::Status Delete(common::SimTime now, const std::string& container,
                        const std::string& key) override;
  /// Fans out to every shard and returns the merged, sorted key list.
  common::Result<std::vector<std::string>> List(
      common::SimTime now, const std::string& container) override;
  common::Result<ObjectMetadata> LoadMetadata(
      common::SimTime now, const std::string& row_key) override;

  // ---- Optimizer-facing passthroughs (routed by row_key) ----------------

  common::Result<bool> ReoptimizeObject(common::SimTime now,
                                        const std::string& row_key,
                                        std::size_t decision_periods);
  common::Status RepairObject(common::SimTime now, const std::string& row_key);

  // ---- Maintenance ------------------------------------------------------

  /// Closes the sampling period ending at `now` in every shard: drains the
  /// shard's log pipeline, folds aggregates + storage footprints into
  /// per-object histories, retries deferred deletes.  Shards close in
  /// parallel on the pool.
  void EndSamplingPeriod(common::SimTime now);

  /// One optimization procedure (Fig. 7) per shard, swept in parallel on
  /// the pool; reports are merged.  Shards never contend: each sweeps only
  /// keys its own statistics database observed.
  OptimizationReport RunOptimizationProcedure(common::SimTime now);

  /// Retries deferred chunk deletions in every shard.
  std::size_t ProcessPendingDeletes(common::SimTime now);

  // ---- Durability wiring ------------------------------------------------

  /// Attaches per-shard journals: `journals[k]` (which must carry shard id
  /// k and outlive the facade) receives shard k's mutations.  Must be sized
  /// num_shards(); entries may be null to disable journaling per shard.
  void AttachJournals(const std::vector<durability::Journal*>& journals);

  // ---- Introspection (tests, recovery, billing) -------------------------

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] Engine& shard_engine(std::size_t shard);
  [[nodiscard]] stats::StatsDb& shard_stats(std::size_t shard);
  [[nodiscard]] store::ReplicatedStore& shard_store(std::size_t shard);
  [[nodiscard]] PeriodicOptimizer& shard_optimizer(std::size_t shard);

  /// Shard k's dedup index, for durability wiring (EngineStateRefs
  /// .filter_index); null when the filter pipeline is off.
  [[nodiscard]] filter::DedupIndex* shard_dedup_index(std::size_t shard);

  /// The shared tenant keyring (null when the filter pipeline is off); the
  /// server seeds per-tenant secrets into it from the auth credential set.
  [[nodiscard]] filter::TenantKeyring* tenant_keyring() noexcept {
    return config_.filters ? &keyring_ : nullptr;
  }

  /// Aggregate cache statistics across shards.
  [[nodiscard]] cache::CacheStats CacheStats() const;

  /// Rebudgets the total cache capacity, divided evenly across shards
  /// (capacity-controller resize path; no-op when caching is disabled).
  void SetCacheCapacity(common::Bytes total);

  /// Degraded-read-path counters summed across shards.
  [[nodiscard]] Engine::ReadPathCounters ReadCounters() const;

  /// Filter-pipeline Encode() totals summed across shards; all zeros when
  /// the pipeline is off.  The benches derive `reduction_ratio`
  /// (stored/raw) and `dedup_hits` from these.
  [[nodiscard]] filter::Pipeline::Totals FilterTotals() const;

  /// Objects tracked across all shard statistics databases.
  [[nodiscard]] std::size_t ObjectCount() const;

 private:
  struct Shard {
    std::unique_ptr<store::ReplicatedStore> db;
    std::unique_ptr<stats::StatsDb> stats;
    std::unique_ptr<stats::LogAggregator> aggregator;
    std::unique_ptr<stats::LogAgent> agent;
    std::unique_ptr<cache::CacheLayer> cache;  // null when disabled
    std::unique_ptr<filter::DedupIndex> dedup;     // null when filters off
    std::unique_ptr<filter::Pipeline> filters;     // null when filters off
    std::unique_ptr<Engine> engine;
    std::unique_ptr<PeriodicOptimizer> optimizer;
    durability::Journal* journal = nullptr;  // set by AttachJournals
    std::uint64_t period_counter = 0;
  };

  /// Runs fn(shard_index) for every shard, on the pool when one is set.
  void ForEachShard(const std::function<void(std::size_t)>& fn);

  ShardedEngineConfig config_;
  provider::ProviderRegistry* registry_;
  common::ThreadPool* pool_;  // may be null => serial shard sweeps
  filter::TenantKeyring keyring_;  // shared by every shard's pipeline
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace scalia::core
