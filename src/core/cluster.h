// ScaliaCluster: the full multi-datacenter deployment of Fig. 4.
//
// Wires together every layer the paper describes: per-datacenter stateless
// engines, a per-datacenter cache joined by an invalidation bus, per-engine
// log agents feeding per-datacenter aggregators, the replicated metadata /
// statistics database, the provider registry, and the periodic optimizer
// with its leader election.  Clients route requests to any engine
// indifferently (RouteRequest()).
//
// Time advances in sampling periods: the embedding (example, test or
// simulation) calls EndSamplingPeriod() at each boundary, which drains the
// log pipeline into per-object histories, and RunOptimizationProcedure()
// for each optimization round.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_layer.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/optimizer.h"
#include "provider/registry.h"
#include "stats/pipeline.h"
#include "stats/stats_db.h"
#include "store/replicated_store.h"

namespace scalia::core {

struct ClusterConfig {
  std::size_t num_datacenters = 2;
  std::size_t engines_per_dc = 2;
  bool enable_cache = true;  // the caching layer "is not mandatory" (§III-B)
  common::Bytes cache_capacity = 256 * common::kMiB;
  EngineConfig engine;
  OptimizerConfig optimizer;
  std::size_t worker_threads = 4;
  std::uint64_t seed = 42;
};

class ScaliaCluster {
 public:
  explicit ScaliaCluster(ClusterConfig config = {});
  ~ScaliaCluster();

  ScaliaCluster(const ScaliaCluster&) = delete;
  ScaliaCluster& operator=(const ScaliaCluster&) = delete;

  [[nodiscard]] provider::ProviderRegistry& registry() noexcept {
    return registry_;
  }
  [[nodiscard]] store::ReplicatedStore& metadata_store() noexcept {
    return *db_;
  }
  [[nodiscard]] stats::StatsDb& stats_db() noexcept { return *stats_db_; }
  [[nodiscard]] PeriodicOptimizer& optimizer() noexcept { return *optimizer_; }
  [[nodiscard]] common::ThreadPool& pool() noexcept { return *pool_; }

  [[nodiscard]] std::size_t EngineCount() const noexcept {
    return engines_.size();
  }
  [[nodiscard]] Engine& EngineAt(std::size_t dc, std::size_t index);
  /// Client-side routing: requests go to every datacenter indifferently.
  [[nodiscard]] Engine& RouteRequest();

  /// Aggregate cache statistics across datacenters.
  [[nodiscard]] cache::CacheStats CacheStats() const;

  /// Closes the sampling period ending at `now`: drains log agents, folds
  /// aggregates + storage footprints into per-object histories, retries
  /// deferred deletes, and delivers pending database replication.
  void EndSamplingPeriod(common::SimTime now);

  /// One periodic optimization procedure (Fig. 7).  Replication is drained
  /// afterwards so migrations (which re-key chunks) become visible in every
  /// datacenter before the deleted chunks could be requested there.
  OptimizationReport RunOptimizationProcedure(common::SimTime now) {
    auto report = optimizer_->Run(now);
    db_->SyncAll();
    return report;
  }

  /// Simulates a datacenter outage: engines there leave the election and
  /// its database replica stops serving.
  void SetDatacenterUp(std::size_t dc, bool up);

 private:
  struct Datacenter {
    std::unique_ptr<cache::CacheLayer> cache;
    std::unique_ptr<stats::LogAggregator> aggregator;
    std::vector<std::unique_ptr<stats::LogAgent>> agents;
  };

  ClusterConfig config_;
  provider::ProviderRegistry registry_;
  std::unique_ptr<store::ReplicatedStore> db_;
  std::unique_ptr<stats::StatsDb> stats_db_;
  std::unique_ptr<common::ThreadPool> pool_;
  cache::InvalidationBus bus_;
  std::vector<Datacenter> datacenters_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::unique_ptr<PeriodicOptimizer> optimizer_;
  std::uint64_t period_counter_ = 0;
  // Atomic: RouteRequest() is called concurrently from the serving loop's
  // handler threads (net/server/), one per in-flight request.
  std::atomic<std::size_t> route_counter_{0};
};

}  // namespace scalia::core
