// Algorithm 1: the placement search.
//
// Enumerates provider subsets and returns the cheapest feasible one, where
// feasible means: lock-in factor 1/|pset| within the rule's bound, a
// positive durability threshold (Alg. 2), availability at that threshold
// meeting the rule, zone eligibility, per-provider chunk-size constraints
// and private-resource capacity limits.  Exact search is O(2^|P|) as the
// paper notes; a greedy heuristic covers larger provider markets.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/money.h"
#include "common/units.h"
#include "core/price_model.h"
#include "core/rule.h"
#include "provider/spec.h"
#include "stats/period_stats.h"

namespace scalia::core {

/// Optimization objectives beyond cost minimization (§I lists both:
/// "minimizing query latency by promoting the most high-performing
/// providers" is the latency objective here; budget maintenance is handled
/// by core/budget.h's rule relaxation).
enum class PlacementObjective {
  kMinimizeCost,     // the default: cheapest feasible set (Algorithm 1)
  kMinimizeLatency,  // fastest feasible set, optionally cost-capped
};

struct PlacementRequest {
  StorageRule rule;
  common::Bytes object_size = 0;
  /// Expected per-sampling-period usage (the forecast from H(obj) or, for a
  /// new object, from its class statistics, Fig. 6).
  stats::PeriodStats per_period;
  /// |D_obj| in sampling periods.
  std::size_t decision_periods = 24;
  /// Free capacity per provider, parallel to the provider span; empty means
  /// unlimited everywhere.  Private resources use this (§III-E).
  std::vector<common::Bytes> free_capacity;

  /// Expected stored-bytes-per-logical-byte after the data-reduction filter
  /// pipeline for this object's class (stats::ClassStats::
  /// MeanReductionRatio).  The cost model scales the per-GB terms (storage
  /// and bandwidth) by it while operation counts stay untouched, so a
  /// highly-dedupable class can afford a pricier-per-GB but cheaper-per-op
  /// provider and an incompressible class shifts to cheap cold storage.
  /// 1.0 = no reduction observed; per_period and object_size stay LOGICAL.
  double reduction_ratio = 1.0;

  PlacementObjective objective = PlacementObjective::kMinimizeCost;
  /// With kMinimizeLatency: only consider sets whose expected cost stays
  /// within `cost_cap_factor` times the cheapest feasible set's cost
  /// (1.0 = cost-optimal sets only; no value = latency at any price).
  std::optional<double> cost_cap_factor;
};

struct PlacementDecision {
  bool feasible = false;
  std::vector<provider::ProviderSpec> providers;  // chosen set, input order
  int m = 0;                                      // erasure threshold
  common::Money expected_cost;  // over the decision period
  /// Expected object read latency: max over the m chunk fetches, from the
  /// providers a read would actually use.
  double expected_read_latency_ms = 0.0;
  std::size_t sets_evaluated = 0;
  std::size_t sets_feasible = 0;

  /// Human-readable label, e.g. "S3(h)-S3(l)-Azu; m:2".
  [[nodiscard]] std::string Label() const;

  /// Sorted provider ids, for set comparisons.
  [[nodiscard]] std::vector<provider::ProviderId> ProviderIds() const;

  /// True when both decisions use the same provider set and threshold.
  [[nodiscard]] bool SamePlacement(const PlacementDecision& o) const;
};

class PlacementSearch {
 public:
  explicit PlacementSearch(PriceModel model) : model_(std::move(model)) {}

  [[nodiscard]] const PriceModel& model() const noexcept { return model_; }

  /// Evaluates one specific provider set against the request; used both by
  /// the exhaustive search and by the static baselines of the evaluation.
  /// With `reduce_m_for_availability`, a set whose availability falls short
  /// at the durability threshold is retried with smaller m (more redundancy
  /// raises availability); Algorithm 1 proper never does this — it simply
  /// skips the set — but the static baselines of Figs. 14/16 must stripe on
  /// *every* listed set, so they take the best m the set supports.
  [[nodiscard]] PlacementDecision EvaluateSet(
      std::span<const provider::ProviderSpec> pset,
      const PlacementRequest& request,
      std::span<const common::Bytes> free_capacity = {},
      bool reduce_m_for_availability = false) const;

  /// Algorithm 1: exhaustive search over all subsets of `providers`.
  [[nodiscard]] PlacementDecision FindBest(
      std::span<const provider::ProviderSpec> providers,
      const PlacementRequest& request) const;

  /// Greedy heuristic (the knapsack-style relaxation the paper sketches for
  /// large |P|): grows the set by the locally best provider; O(|P|^2)
  /// evaluations.
  [[nodiscard]] PlacementDecision FindBestGreedy(
      std::span<const provider::ProviderSpec> providers,
      const PlacementRequest& request) const;

  /// Deterministic preference order between two candidate decisions:
  /// cheaper wins; ties prefer the larger threshold (less lock-in and less
  /// storage overhead, §III-A.2), then the smaller set, then the
  /// lexicographically smaller label.
  [[nodiscard]] static bool Better(const PlacementDecision& a,
                                   const PlacementDecision& b);

  /// Objective-aware comparison: cost objective delegates to Better();
  /// latency objective prefers the lower expected read latency, with cost
  /// as the tie-break.
  [[nodiscard]] static bool BetterForObjective(const PlacementRequest& request,
                                               const PlacementDecision& a,
                                               const PlacementDecision& b);

 private:
  PriceModel model_;
};

}  // namespace scalia::core
