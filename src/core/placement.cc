#include "core/placement.h"

#include <algorithm>
#include <cmath>

#include "core/reliability.h"

namespace scalia::core {

std::string PlacementDecision::Label() const {
  std::string label;
  for (const auto& p : providers) {
    if (!label.empty()) label += "-";
    label += p.id;
  }
  if (label.empty()) label = "(none)";
  label += "; m:" + std::to_string(m);
  return label;
}

std::vector<provider::ProviderId> PlacementDecision::ProviderIds() const {
  std::vector<provider::ProviderId> ids;
  ids.reserve(providers.size());
  for (const auto& p : providers) ids.push_back(p.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool PlacementDecision::SamePlacement(const PlacementDecision& o) const {
  return m == o.m && ProviderIds() == o.ProviderIds();
}

bool PlacementSearch::Better(const PlacementDecision& a,
                             const PlacementDecision& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (!a.feasible) return false;
  // Relative epsilon keeps the choice stable under floating-point noise.
  const double tol =
      1e-12 * std::max(1.0, std::max(std::abs(a.expected_cost.usd()),
                                     std::abs(b.expected_cost.usd())));
  if (std::abs(a.expected_cost.usd() - b.expected_cost.usd()) > tol) {
    return a.expected_cost < b.expected_cost;
  }
  if (a.m != b.m) return a.m > b.m;
  if (a.providers.size() != b.providers.size()) {
    return a.providers.size() < b.providers.size();
  }
  return a.Label() < b.Label();
}

PlacementDecision PlacementSearch::EvaluateSet(
    std::span<const provider::ProviderSpec> pset,
    const PlacementRequest& request,
    std::span<const common::Bytes> free_capacity,
    bool reduce_m_for_availability) const {
  PlacementDecision decision;
  decision.sets_evaluated = 1;
  if (pset.empty()) return decision;

  // Lock-in: 1/|pset| must not exceed the rule's bound (Alg. 1 line 6).
  const double lockin = 1.0 / static_cast<double>(pset.size());
  if (lockin > request.rule.lockin + 1e-12) return decision;

  // Zone eligibility: every member must operate in an allowed zone.
  for (const auto& p : pset) {
    if (!request.rule.ZoneEligible(p.zones)) return decision;
  }

  // Durability threshold (Alg. 1 lines 7-8).
  std::vector<double> durabilities;
  durabilities.reserve(pset.size());
  for (const auto& p : pset) durabilities.push_back(p.sla.durability);
  int th = GetThreshold(durabilities, request.rule.durability);
  if (th <= 0) return decision;

  // Availability at that threshold (Alg. 1 lines 9-10).
  std::vector<double> availabilities;
  availabilities.reserve(pset.size());
  for (const auto& p : pset) availabilities.push_back(p.sla.availability);
  while (GetAvailability(availabilities, th) < request.rule.availability) {
    if (!reduce_m_for_availability || th <= 1) return decision;
    --th;  // static baselines accept extra redundancy to stay available
  }

  // Chunk-size and capacity constraints (§III-A.2, §III-E).
  const common::Bytes chunk = common::CeilDiv(
      request.object_size, static_cast<common::Bytes>(th));
  for (std::size_t i = 0; i < pset.size(); ++i) {
    if (pset[i].max_chunk_size && chunk > *pset[i].max_chunk_size) {
      return decision;
    }
    if (i < free_capacity.size() && chunk > free_capacity[i]) {
      return decision;
    }
  }

  decision.feasible = true;
  decision.sets_feasible = 1;
  decision.providers.assign(pset.begin(), pset.end());
  decision.m = th;
  // Reduction-aware pricing: what providers bill for is the *stored* bytes
  // the filter pipeline leaves, not the logical bytes the client wrote.
  // Scale the GB terms by the class's observed reduction ratio; ops are
  // per-request and never shrink.  Non-finite or non-positive ratios (no
  // signal) price at par.
  stats::PeriodStats billable = request.per_period;
  const double ratio = request.reduction_ratio;
  if (std::isfinite(ratio) && ratio > 0.0 && ratio != 1.0) {
    billable.storage_gb *= ratio;
    billable.bw_in_gb *= ratio;
    billable.bw_out_gb *= ratio;
  }
  decision.expected_cost =
      model_.ExpectedCost(pset, th, billable, request.decision_periods);
  // Best achievable read latency: reads can route to the m lowest-latency
  // members; the parallel chunk fetches complete when the slowest of those
  // m returns.
  std::vector<double> latencies;
  latencies.reserve(pset.size());
  for (const auto& p : pset) latencies.push_back(p.read_latency_ms);
  std::nth_element(latencies.begin(),
                   latencies.begin() + (th - 1), latencies.end());
  decision.expected_read_latency_ms =
      latencies[static_cast<std::size_t>(th - 1)];
  return decision;
}

bool PlacementSearch::BetterForObjective(const PlacementRequest& request,
                                         const PlacementDecision& a,
                                         const PlacementDecision& b) {
  if (request.objective == PlacementObjective::kMinimizeCost) {
    return Better(a, b);
  }
  if (a.feasible != b.feasible) return a.feasible;
  if (!a.feasible) return false;
  if (a.expected_read_latency_ms != b.expected_read_latency_ms) {
    return a.expected_read_latency_ms < b.expected_read_latency_ms;
  }
  return Better(a, b);  // cost breaks latency ties
}

PlacementDecision PlacementSearch::FindBest(
    std::span<const provider::ProviderSpec> providers,
    const PlacementRequest& request) const {
  PlacementDecision best;
  const std::size_t n = providers.size();
  std::size_t evaluated = 0;
  std::size_t feasible = 0;
  if (n == 0 || n > 63) return best;

  // The latency objective with a cost cap needs the cheapest feasible cost
  // first; resolve it with a cost-objective pre-pass.
  std::optional<double> cost_cap;
  if (request.objective == PlacementObjective::kMinimizeLatency &&
      request.cost_cap_factor) {
    PlacementRequest cost_request = request;
    cost_request.objective = PlacementObjective::kMinimizeCost;
    cost_request.cost_cap_factor = std::nullopt;
    const PlacementDecision cheapest = FindBest(providers, cost_request);
    if (cheapest.feasible) {
      cost_cap = cheapest.expected_cost.usd() * *request.cost_cap_factor;
    }
  }

  std::vector<provider::ProviderSpec> subset;
  std::vector<common::Bytes> subset_capacity;
  for (std::uint64_t mask = 1; mask < (1ull << n); ++mask) {
    subset.clear();
    subset_capacity.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) {
        subset.push_back(providers[i]);
        if (!request.free_capacity.empty()) {
          subset_capacity.push_back(request.free_capacity[i]);
        }
      }
    }
    PlacementDecision candidate =
        EvaluateSet(subset, request, subset_capacity);
    ++evaluated;
    feasible += candidate.sets_feasible;
    if (cost_cap && candidate.feasible &&
        candidate.expected_cost.usd() > *cost_cap + 1e-12) {
      continue;  // too expensive for the latency objective's budget
    }
    if (BetterForObjective(request, candidate, best)) {
      best = std::move(candidate);
    }
  }
  best.sets_evaluated = evaluated;
  best.sets_feasible = feasible;
  return best;
}

PlacementDecision PlacementSearch::FindBestGreedy(
    std::span<const provider::ProviderSpec> providers,
    const PlacementRequest& request) const {
  const std::size_t n = providers.size();
  PlacementDecision best;
  std::size_t evaluated = 0;
  if (n == 0) return best;

  std::vector<bool> in_set(n, false);
  std::vector<provider::ProviderSpec> current;
  std::vector<common::Bytes> current_capacity;

  // Greedily add the provider that yields the best (cheapest feasible, or
  // first feasible) decision; keep the best decision ever seen.
  for (std::size_t round = 0; round < n; ++round) {
    PlacementDecision round_best;
    std::size_t round_pick = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_set[i]) continue;
      current.push_back(providers[i]);
      if (!request.free_capacity.empty()) {
        current_capacity.push_back(request.free_capacity[i]);
      }
      PlacementDecision candidate =
          EvaluateSet(current, request, current_capacity);
      ++evaluated;
      current.pop_back();
      if (!request.free_capacity.empty()) current_capacity.pop_back();
      if (round_pick == n || Better(candidate, round_best)) {
        round_best = std::move(candidate);
        round_pick = i;
      }
    }
    if (round_pick == n) break;
    in_set[round_pick] = true;
    current.push_back(providers[round_pick]);
    if (!request.free_capacity.empty()) {
      current_capacity.push_back(request.free_capacity[round_pick]);
    }
    if (Better(round_best, best)) best = round_best;
  }
  best.sets_evaluated = evaluated;
  return best;
}

}  // namespace scalia::core
