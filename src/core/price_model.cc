#include "core/price_model.h"

#include <algorithm>
#include <numeric>

namespace scalia::core {

std::vector<std::size_t> PriceModel::CheapestReadProviders(
    std::span<const provider::ProviderSpec> pset, int m,
    double chunk_gb) const {
  std::vector<std::size_t> order(pset.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const auto& pa = pset[a].pricing;
                     const auto& pb = pset[b].pricing;
                     const double ca =
                         pa.bw_out_gb * chunk_gb + pa.ops_per_1000 / 1000.0;
                     const double cb =
                         pb.bw_out_gb * chunk_gb + pb.ops_per_1000 / 1000.0;
                     if (ca != cb) return ca < cb;
                     return pset[a].id < pset[b].id;  // deterministic ties
                   });
  order.resize(std::min<std::size_t>(order.size(),
                                     static_cast<std::size_t>(std::max(m, 0))));
  return order;
}

ExpandedUsage PriceModel::Expand(std::span<const provider::ProviderSpec> pset,
                                 int m, const stats::PeriodStats& period,
                                 const std::vector<bool>& reachable) const {
  ExpandedUsage usage;
  usage.per_provider.resize(pset.size());
  if (pset.empty() || m <= 0) return usage;
  const double inv_m = 1.0 / static_cast<double>(m);
  const double hours = common::ToHours(config_.sampling_period);

  // Storage and writes touch every provider in the set.
  const double chunk_storage_gb = period.storage_gb * inv_m;
  const double chunk_write_gb = period.bw_in_gb * inv_m;
  const double other_ops =
      std::max(0.0, period.ops - period.reads - period.writes);
  for (auto& u : usage.per_provider) {
    u.storage_gb_hours = chunk_storage_gb * hours;
    u.bw_in_gb = chunk_write_gb;
    u.ops = period.writes + other_ops;
  }

  // Reads are served by the m cheapest reachable providers.
  if (period.reads > 0.0 || period.bw_out_gb > 0.0) {
    std::vector<provider::ProviderSpec> readable;
    std::vector<std::size_t> readable_to_set;
    if (reachable.empty()) {
      readable.assign(pset.begin(), pset.end());
      readable_to_set.resize(pset.size());
      std::iota(readable_to_set.begin(), readable_to_set.end(), 0);
    } else {
      for (std::size_t i = 0; i < pset.size(); ++i) {
        if (i < reachable.size() && reachable[i]) {
          readable.push_back(pset[i]);
          readable_to_set.push_back(i);
        }
      }
    }
    if (readable.size() >= static_cast<std::size_t>(m)) {
      const double chunk_read_gb_per_read =
          period.reads > 0.0 ? (period.bw_out_gb / period.reads) * inv_m : 0.0;
      const auto readers =
          CheapestReadProviders(readable, m, chunk_read_gb_per_read);
      const double chunk_read_gb = period.bw_out_gb * inv_m;
      for (std::size_t r : readers) {
        const std::size_t idx = readable_to_set[r];
        usage.per_provider[idx].bw_out_gb += chunk_read_gb;
        usage.per_provider[idx].ops += period.reads;
      }
    }
  }
  return usage;
}

common::Money PriceModel::PeriodCost(
    std::span<const provider::ProviderSpec> pset, int m,
    const stats::PeriodStats& period,
    const std::vector<bool>& reachable) const {
  const ExpandedUsage usage = Expand(pset, m, period, reachable);
  common::Money total;
  for (std::size_t i = 0; i < pset.size(); ++i) {
    total += provider::CostOf(pset[i].pricing, usage.per_provider[i],
                              config_.sampling_period, config_.billing);
  }
  return total;
}

common::Money PriceModel::ExpectedCost(
    std::span<const provider::ProviderSpec> pset, int m,
    const stats::PeriodStats& per_period_avg,
    std::size_t decision_periods) const {
  const std::size_t periods = std::max<std::size_t>(1, decision_periods);
  return PeriodCost(pset, m, per_period_avg) *
         static_cast<double>(periods);
}

}  // namespace scalia::core
