#include "core/optimizer.h"

#include <algorithm>
#include <atomic>

#include "common/log.h"
#include "durability/manager.h"

namespace scalia::core {

PeriodicOptimizer::ObjectControl& PeriodicOptimizer::ControlFor(
    const std::string& row_key) {
  common::MutexLock lock(mu_);
  auto it = controls_.find(row_key);
  if (it == controls_.end()) {
    it = controls_
             .emplace(row_key, std::make_unique<ObjectControl>(config_))
             .first;
  }
  return *it->second;
}

std::size_t PeriodicOptimizer::TrackedObjects() const {
  common::MutexLock lock(mu_);
  return controls_.size();
}

OptimizationReport PeriodicOptimizer::Run(common::SimTime now) {
  OptimizationReport report = RunInner(now);
  // The run just finished: no placement mutation is in flight, which makes
  // this the quiesce point the checkpoint writer requires.
  if (durability_ != nullptr) {
    auto written = durability_->MaybeCheckpoint(now);
    if (!written.ok()) {
      SCALIA_LOG(common::LogLevel::kWarning, "optimizer")
          << "checkpoint failed: " << written.status().ToString();
    }
  }
  return report;
}

OptimizationReport PeriodicOptimizer::RunInner(common::SimTime now) {
  OptimizationReport report;
  const auto leader = election_.Leader();
  if (!leader) return report;  // no engine alive anywhere
  report.leader = *leader;

  // Alive engines are the worker set E.
  std::vector<Engine*> workers;
  for (Engine* e : engines_) {
    if (election_.IsAlive(e->id())) workers.push_back(e);
  }
  if (workers.empty()) return report;

  // Step 1-2: the leader retrieves A = accessed/modified since last run,
  // extended with still-warm objects (see header).
  std::vector<std::string> candidates = stats_db_->AccessedSince(last_run_);
  {
    common::MutexLock lock(mu_);
    for (const auto& key : warm_) {
      if (std::find(candidates.begin(), candidates.end(), key) ==
          candidates.end()) {
        candidates.push_back(key);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  report.candidates = candidates.size();
  last_run_ = now;
  if (candidates.empty()) return report;

  // Step 3-4: split A into |E| shards, one per engine.
  std::vector<std::vector<std::string>> shards(workers.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    shards[i % workers.size()].push_back(candidates[i]);
  }

  std::atomic<std::size_t> trend_changes{0};
  std::atomic<std::size_t> recomputations{0};
  std::atomic<std::size_t> migrations{0};
  std::atomic<std::size_t> conflicts{0};
  std::atomic<std::size_t> errors{0};

  // Step 5: each engine processes its shard; the fan-out runs on the pool
  // (each engine is an independent worker in the paper's deployment).
  auto process_shard = [&](std::size_t worker_idx) {
    Engine* engine = workers[worker_idx];
    for (const std::string& row_key : shards[worker_idx]) {
      const stats::AccessHistory history = stats_db_->GetHistory(row_key);
      if (history.empty()) continue;
      ObjectControl& control = ControlFor(row_key);
      const double activity = history.Latest().ops;
      const bool changed = control.trend.Observe(activity);
      {
        common::MutexLock lock(mu_);
        if (control.trend.CurrentSma() > 0.0) {
          warm_.insert(row_key);
        } else {
          warm_.erase(row_key);
        }
      }
      if (!changed) continue;
      trend_changes.fetch_add(1, std::memory_order_relaxed);

      // Expected remaining lifetime (in periods) bounds the coupling search.
      std::size_t ttl_periods = 0;
      if (auto rec = stats_db_->GetObject(row_key)) {
        if (const auto* cls = stats_db_->classes().Find(rec->class_id);
            cls != nullptr && cls->lifetime_samples() > 0) {
          const common::Duration ttl =
              cls->ExpectedTimeLeftToLive(now - rec->created_at);
          ttl_periods = static_cast<std::size_t>(
              std::max<common::Duration>(1, ttl / common::kHour));
        }
      }
      const std::size_t decision_periods = control.decision.OnOptimization(
          history.size(), ttl_periods, [&](std::size_t d) {
            auto evaluated = engine->EvaluatePlacement(now, row_key, d);
            return evaluated.ok() ? *evaluated : PlacementDecision{};
          });

      recomputations.fetch_add(1, std::memory_order_relaxed);
      auto migrated = engine->ReoptimizeObject(now, row_key, decision_periods);
      if (migrated.ok()) {
        if (*migrated) migrations.fetch_add(1, std::memory_order_relaxed);
      } else if (migrated.status().code() == common::StatusCode::kConflict) {
        // A concurrent write of the same key won the CAS commit: the
        // migration aborted, the staged chunks are gone, the write stands.
        conflicts.fetch_add(1, std::memory_order_relaxed);
      } else if (migrated.status().code() != common::StatusCode::kNotFound) {
        // NotFound just means the object was deleted since the candidate
        // list was drawn — benign, not an error.
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  if (pool_ != nullptr && workers.size() > 1) {
    pool_->ParallelFor(workers.size(), process_shard);
  } else {
    for (std::size_t i = 0; i < workers.size(); ++i) process_shard(i);
  }

  // Availability-driven re-placement (§III-D.3 under live faults): when a
  // health source is attached and reports unhealthy providers, sweep the
  // candidate set for objects with stripes there and rebuild them away via
  // the CAS-commit repair path.  Trend gating does not apply — a dark
  // provider is an emergency, not a workload drift.
  std::atomic<std::size_t> repairs{0};
  if (config_.provider_health) {
    const std::vector<provider::ProviderId> unhealthy =
        config_.provider_health(now);
    if (!unhealthy.empty()) {
      auto on_unhealthy = [&](const provider::ProviderId& id) {
        return std::find(unhealthy.begin(), unhealthy.end(), id) !=
               unhealthy.end();
      };
      auto repair_shard = [&](std::size_t worker_idx) {
        Engine* engine = workers[worker_idx];
        for (const std::string& row_key : shards[worker_idx]) {
          auto meta = engine->LoadMetadata(now, row_key);
          if (!meta.ok()) continue;
          bool affected = false;
          for (const auto& stripe : meta->stripes) {
            affected = affected || on_unhealthy(stripe.provider);
          }
          if (!affected) continue;
          const common::Status repaired = engine->RepairObject(now, row_key);
          if (repaired.ok()) {
            repairs.fetch_add(1, std::memory_order_relaxed);
          } else if (repaired.code() == common::StatusCode::kConflict) {
            conflicts.fetch_add(1, std::memory_order_relaxed);
          } else if (repaired.code() != common::StatusCode::kNotFound &&
                     repaired.code() != common::StatusCode::kUnavailable) {
            // Unavailable means too few chunks were reachable to rebuild
            // right now; the next sweep retries once the world heals a bit.
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      };
      if (pool_ != nullptr && workers.size() > 1) {
        pool_->ParallelFor(workers.size(), repair_shard);
      } else {
        for (std::size_t i = 0; i < workers.size(); ++i) repair_shard(i);
      }
    }
  }

  report.trend_changes = trend_changes.load();
  report.recomputations = recomputations.load();
  report.migrations = migrations.load();
  report.conflicts = conflicts.load();
  report.errors = errors.load();
  report.repairs = repairs.load();
  SCALIA_LOG(common::LogLevel::kInfo, "optimizer")
      << "leader=" << report.leader << " candidates=" << report.candidates
      << " trend_changes=" << report.trend_changes
      << " migrations=" << report.migrations
      << " conflicts=" << report.conflicts << " repairs=" << report.repairs
      << " errors=" << report.errors;
  return report;
}

}  // namespace scalia::core
