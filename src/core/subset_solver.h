// Scalable placement solvers beyond the exhaustive Algorithm 1.
//
// §III-A.2: "If the number of providers increases, then suboptimal
// solutions have to be considered.  Actually, this optimization problem
// resembles the multi-dimensional knapsack problem … For any fixed number
// of constraints, the knapsack problem does admit a pseudo-polynomial time
// algorithm … and a polynomial-time approximation scheme.  Such a heuristic
// would render Scalia highly scalable.  The presentation of this algorithm
// is omitted for brevity reasons."  This module supplies the omitted
// algorithms:
//
//  * FindBestBranchAndBound — exact (identical result to the exhaustive
//    search) but prunes with an additive lower bound: under the (m, n)
//    expansion of the price model, every member of any superset contributes
//    at least its cost at the maximum conceivable threshold (smallest
//    chunks, no read duty), so a partial selection whose bound already
//    exceeds the incumbent can discard its whole subtree.  Providers are
//    visited in ascending bound order, turning the prune into an early
//    `break`.
//
//  * FindBestDp — the knapsack-style polynomial heuristic.  For each fixed
//    (n, m) the expected cost is additive per member: every member pays its
//    storage/ingress/ops share, and the m members cheapest by per-read cost
//    additionally pay the read traffic (exactly the routing of
//    PriceModel::Expand).  Processing providers sorted by that read metric,
//    "the first m selected serve reads" holds for every subset, so a
//    classic O(|P| · n) choose-k DP finds the cost-optimal n-set per (n, m).
//    The reliability constraints (durability, availability) are *checked*
//    on the reconstructed set; a greedy durability-swap repair handles near
//    misses.  Total O(|P|^4) — polynomial, per the paper's remark — against
//    O(2^|P|) for the exact search.
#pragma once

#include <cstdint>
#include <span>

#include "core/placement.h"

namespace scalia::core {

struct SolverStats {
  std::size_t sets_evaluated = 0;  // full constraint+price evaluations
  std::size_t nodes_pruned = 0;    // subtrees discarded by the bound
};

class SubsetSolver {
 public:
  explicit SubsetSolver(PriceModel model)
      : model_(std::move(model)), search_(model_) {}

  /// Exact search, provably equal to PlacementSearch::FindBest (tests sweep
  /// the equivalence); `stats` (optional) reports the pruning behaviour.
  [[nodiscard]] PlacementDecision FindBestBranchAndBound(
      std::span<const provider::ProviderSpec> providers,
      const PlacementRequest& request, SolverStats* stats = nullptr) const;

  struct DpOptions {
    /// Algorithm 1 always stripes at the durability-maximal threshold.  With
    /// this flag the DP may also commit to a *smaller* m than the set could
    /// sustain — fewer read operations and all read egress routed to the
    /// cheapest members — a design-space extension that can undercut the
    /// paper's optimum on egress-heavy objects (measured by the ablation
    /// bench).  Off by default: the heuristic then answers the same question
    /// as the exhaustive search.
    bool allow_submaximal_threshold = false;
  };

  /// Polynomial-time heuristic; may return a slightly costlier set than the
  /// optimum (the bench measures the gap) or, rarely, miss feasibility when
  /// only reliability-exotic mixtures are feasible.
  [[nodiscard]] PlacementDecision FindBestDp(
      std::span<const provider::ProviderSpec> providers,
      const PlacementRequest& request, SolverStats* stats,
      DpOptions options) const;

  [[nodiscard]] PlacementDecision FindBestDp(
      std::span<const provider::ProviderSpec> providers,
      const PlacementRequest& request, SolverStats* stats = nullptr) const {
    return FindBestDp(providers, request, stats, DpOptions{});
  }

  /// Exact optimum over the *threshold-flexible* design space: every
  /// (subset, m) pair with m at or below the subset's durability-maximal
  /// threshold.  A superset of Algorithm 1's space (which pins m to the
  /// maximum), so the result costs at most FindBest's.  Runs one
  /// branch-and-bound per candidate m; with m fixed the per-member base
  /// cost is exact, so the bound is tight and the tree collapses — this is
  /// the scalable exact counterpart of the FindBestDp heuristic in
  /// submaximal-threshold mode.
  [[nodiscard]] PlacementDecision FindBestFlexible(
      std::span<const provider::ProviderSpec> providers,
      const PlacementRequest& request, SolverStats* stats = nullptr) const;

  /// Evaluates `pset` at an *imposed* threshold m (EvaluateSet always picks
  /// the durability-maximal threshold; the DP needs to price intermediate
  /// ones).  Feasible iff durability holds at (m, n), availability at m
  /// clears the rule, and chunk/capacity constraints fit.
  [[nodiscard]] PlacementDecision EvaluateAtThreshold(
      std::span<const provider::ProviderSpec> pset, int m,
      const PlacementRequest& request,
      std::span<const common::Bytes> free_capacity = {}) const;

 private:
  PriceModel model_;
  PlacementSearch search_;
};

}  // namespace scalia::core
