#include "core/subset_solver.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/reliability.h"

namespace scalia::core {
namespace {

/// Per-member cost floor: the member's bill at the largest conceivable
/// threshold (chunks cannot get smaller than size / |P|) with no read duty.
/// Any superset containing the member costs at least this much for it.
common::Money MemberFloor(const PriceModel& model,
                          const provider::ProviderSpec& spec,
                          const PlacementRequest& request,
                          std::size_t max_threshold) {
  stats::PeriodStats floor_usage = request.per_period;
  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(
                               1, max_threshold));
  floor_usage.storage_gb *= inv;
  floor_usage.bw_in_gb *= inv;
  floor_usage.bw_out_gb = 0.0;  // read duty is not guaranteed
  // Drop the read operations from the total too, or Expand would rebill
  // them as per-member "other ops" and overstate the floor.
  floor_usage.ops = std::max(0.0, floor_usage.ops - floor_usage.reads);
  floor_usage.reads = 0.0;
  const provider::ProviderSpec one[] = {spec};
  return model.ExpectedCost(one, 1, floor_usage, request.decision_periods);
}

struct IndexedProvider {
  std::size_t original_index = 0;
  common::Money floor;
};

}  // namespace

PlacementDecision SubsetSolver::EvaluateAtThreshold(
    std::span<const provider::ProviderSpec> pset, int m,
    const PlacementRequest& request,
    std::span<const common::Bytes> free_capacity) const {
  PlacementDecision decision;
  decision.sets_evaluated = 1;
  if (pset.empty() || m <= 0 || static_cast<std::size_t>(m) > pset.size()) {
    return decision;
  }

  const double lockin = 1.0 / static_cast<double>(pset.size());
  if (lockin > request.rule.lockin + 1e-12) return decision;

  for (const auto& p : pset) {
    if (!request.rule.ZoneEligible(p.zones)) return decision;
  }

  // Durability must hold with m as the stripe threshold: the maximal
  // feasible threshold of the set must be at least m.
  std::vector<double> durabilities;
  durabilities.reserve(pset.size());
  for (const auto& p : pset) durabilities.push_back(p.sla.durability);
  if (GetThreshold(durabilities, request.rule.durability) < m) {
    return decision;
  }

  std::vector<double> availabilities;
  availabilities.reserve(pset.size());
  for (const auto& p : pset) availabilities.push_back(p.sla.availability);
  if (GetAvailability(availabilities, m) < request.rule.availability) {
    return decision;
  }

  const common::Bytes chunk =
      common::CeilDiv(request.object_size, static_cast<common::Bytes>(m));
  for (std::size_t i = 0; i < pset.size(); ++i) {
    if (pset[i].max_chunk_size && chunk > *pset[i].max_chunk_size) {
      return decision;
    }
    if (i < free_capacity.size() && chunk > free_capacity[i]) {
      return decision;
    }
  }

  decision.feasible = true;
  decision.sets_feasible = 1;
  decision.providers.assign(pset.begin(), pset.end());
  decision.m = m;
  decision.expected_cost =
      model_.ExpectedCost(pset, m, request.per_period,
                          request.decision_periods);
  std::vector<double> latencies;
  latencies.reserve(pset.size());
  for (const auto& p : pset) latencies.push_back(p.read_latency_ms);
  std::nth_element(latencies.begin(),
                   latencies.begin() + (m - 1), latencies.end());
  decision.expected_read_latency_ms =
      latencies[static_cast<std::size_t>(m - 1)];
  return decision;
}

PlacementDecision SubsetSolver::FindBestBranchAndBound(
    std::span<const provider::ProviderSpec> providers,
    const PlacementRequest& request, SolverStats* stats) const {
  PlacementDecision best;
  SolverStats local;
  const std::size_t n = providers.size();
  if (n == 0) {
    if (stats != nullptr) *stats = local;
    return best;
  }

  // Zone-ineligible providers can never appear in a feasible set; dropping
  // them up front shrinks the tree (EvaluateSet would reject them anyway).
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < n; ++i) {
    if (request.rule.ZoneEligible(providers[i].zones)) eligible.push_back(i);
  }

  // The achievable threshold is monotone in set growth (an extra provider
  // can only raise P(>= m chunks survive)), so the full eligible pool's
  // threshold caps every subset's.  A cap of zero means no subset can meet
  // the durability rule at all.
  std::vector<double> pool_durabilities;
  pool_durabilities.reserve(eligible.size());
  for (std::size_t i : eligible) {
    pool_durabilities.push_back(providers[i].sla.durability);
  }
  const int m_cap = GetThreshold(pool_durabilities, request.rule.durability);
  if (m_cap <= 0) {
    if (stats != nullptr) *stats = local;
    return best;
  }

  std::vector<IndexedProvider> order;
  order.reserve(eligible.size());
  for (std::size_t i : eligible) {
    order.push_back(IndexedProvider{
        .original_index = i,
        .floor = MemberFloor(model_, providers[i], request,
                             static_cast<std::size_t>(m_cap))});
  }
  // Ascending floors make the prune an early break: once one sibling's
  // bound exceeds the incumbent, every later sibling's does too.
  std::sort(order.begin(), order.end(), [&](const IndexedProvider& a,
                                            const IndexedProvider& b) {
    if (a.floor.usd() != b.floor.usd()) return a.floor < b.floor;
    return providers[a.original_index].id < providers[b.original_index].id;
  });

  // Read traffic is disjoint from the member floors (those exclude read
  // duty), so a global read floor — the whole read volume billed at the
  // pool's cheapest egress/ops rates — adds to every bound soundly.
  common::Money read_floor;
  if (request.per_period.bw_out_gb > 0.0 || request.per_period.reads > 0.0) {
    double min_egress = std::numeric_limits<double>::infinity();
    double min_ops = std::numeric_limits<double>::infinity();
    for (std::size_t i : eligible) {
      min_egress = std::min(min_egress, providers[i].pricing.bw_out_gb);
      min_ops = std::min(min_ops, providers[i].pricing.ops_per_1000);
    }
    const double periods = static_cast<double>(
        std::max<std::size_t>(1, request.decision_periods));
    read_floor = common::Money(
        periods * (request.per_period.bw_out_gb * min_egress +
                   request.per_period.reads * min_ops / 1000.0));
  }

  std::vector<provider::ProviderSpec> chosen;
  std::vector<common::Bytes> chosen_capacity;
  const bool has_capacity = !request.free_capacity.empty();

  // DFS over subsets in canonical order: each subset is evaluated exactly
  // once, at the node that appends its highest-ranked member.
  auto visit = [&](auto&& self, std::size_t from,
                   common::Money bound) -> void {
    for (std::size_t j = from; j < order.size(); ++j) {
      const common::Money child_bound = bound + order[j].floor;
      // Strictly-greater prune keeps equal-cost candidates alive so the
      // tie-breaks of Better() resolve identically to the exhaustive search.
      if (best.feasible &&
          child_bound.usd() > best.expected_cost.usd() + 1e-12) {
        // Floors are sorted ascending, so every later sibling (and its
        // subtree) is bounded at least this high.
        local.nodes_pruned += order.size() - j;
        return;
      }
      const std::size_t oi = order[j].original_index;
      chosen.push_back(providers[oi]);
      if (has_capacity) chosen_capacity.push_back(request.free_capacity[oi]);

      PlacementDecision candidate =
          search_.EvaluateSet(chosen, request, chosen_capacity);
      ++local.sets_evaluated;
      if (PlacementSearch::Better(candidate, best)) {
        best = std::move(candidate);
      }
      self(self, j + 1, child_bound);

      chosen.pop_back();
      if (has_capacity) chosen_capacity.pop_back();
    }
  };
  visit(visit, 0, read_floor);

  best.sets_evaluated = local.sets_evaluated;
  if (stats != nullptr) *stats = local;
  return best;
}

PlacementDecision SubsetSolver::FindBestFlexible(
    std::span<const provider::ProviderSpec> providers,
    const PlacementRequest& request, SolverStats* stats) const {
  PlacementDecision best;
  SolverStats local;

  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < providers.size(); ++i) {
    if (request.rule.ZoneEligible(providers[i].zones)) eligible.push_back(i);
  }
  if (eligible.empty()) {
    if (stats != nullptr) *stats = local;
    return best;
  }

  std::vector<double> pool_durabilities, pool_availabilities;
  pool_durabilities.reserve(eligible.size());
  pool_availabilities.reserve(eligible.size());
  double min_egress = std::numeric_limits<double>::infinity();
  double min_ops = std::numeric_limits<double>::infinity();
  for (std::size_t i : eligible) {
    pool_durabilities.push_back(providers[i].sla.durability);
    pool_availabilities.push_back(providers[i].sla.availability);
    min_egress = std::min(min_egress, providers[i].pricing.bw_out_gb);
    min_ops = std::min(min_ops, providers[i].pricing.ops_per_1000);
  }
  // Both feasibility caps are monotone: growth raises the survivable
  // threshold and the reachability tail, so the full pool bounds every
  // subset's m from above.
  const int m_cap = GetThreshold(pool_durabilities, request.rule.durability);
  if (m_cap <= 0) {
    if (stats != nullptr) *stats = local;
    return best;
  }

  const auto& usage = request.per_period;
  const double periods = static_cast<double>(
      std::max<std::size_t>(1, request.decision_periods));
  const double hours = common::ToHours(model_.config().sampling_period);
  const double other_ops = std::max(0.0, usage.ops - usage.reads - usage.writes);
  const bool has_capacity = !request.free_capacity.empty();

  for (int m = 1; m <= m_cap; ++m) {
    // Availability shrinks as m grows; once the whole pool cannot reach
    // the rule at m, no subset can, at this or any larger m.
    if (GetAvailability(pool_availabilities, m) < request.rule.availability) {
      break;
    }
    const double inv_m = 1.0 / static_cast<double>(m);

    // Exact per-member base cost at this m (storage + ingress + write and
    // other ops); reads are bounded globally below.
    struct Member {
      std::size_t original_index;
      double base;
    };
    std::vector<Member> order;
    order.reserve(eligible.size());
    for (std::size_t i : eligible) {
      const auto& pricing = providers[i].pricing;
      const double storage_cost =
          model_.config().billing == provider::StorageBillingMode::kPerPeriod
              ? usage.storage_gb * inv_m * pricing.storage_gb_month
              : usage.storage_gb * inv_m * hours / 720.0 *
                    pricing.storage_gb_month;
      const double base =
          periods * (storage_cost + usage.bw_in_gb * inv_m * pricing.bw_in_gb +
                     (usage.writes + other_ops) * pricing.ops_per_1000 /
                         1000.0);
      order.push_back(Member{.original_index = i, .base = base});
    }
    std::sort(order.begin(), order.end(), [&](const Member& a,
                                              const Member& b) {
      if (a.base != b.base) return a.base < b.base;
      return providers[a.original_index].id < providers[b.original_index].id;
    });

    // Read floor for this m: the full read volume at the pool's cheapest
    // egress rate plus m operations per read at the cheapest ops rate.
    const common::Money read_floor(
        periods * (usage.bw_out_gb * min_egress +
                   usage.reads * static_cast<double>(m) * min_ops / 1000.0));

    std::vector<provider::ProviderSpec> chosen;
    std::vector<common::Bytes> chosen_capacity;
    auto visit = [&](auto&& self, std::size_t from,
                     common::Money bound) -> void {
      for (std::size_t j = from; j < order.size(); ++j) {
        const common::Money child_bound =
            bound + common::Money(order[j].base);
        if (best.feasible &&
            child_bound.usd() > best.expected_cost.usd() + 1e-12) {
          local.nodes_pruned += order.size() - j;
          return;
        }
        const std::size_t oi = order[j].original_index;
        chosen.push_back(providers[oi]);
        if (has_capacity) {
          chosen_capacity.push_back(request.free_capacity[oi]);
        }
        if (chosen.size() >= static_cast<std::size_t>(m)) {
          PlacementDecision candidate =
              EvaluateAtThreshold(chosen, m, request, chosen_capacity);
          ++local.sets_evaluated;
          if (PlacementSearch::Better(candidate, best)) {
            best = std::move(candidate);
          }
        }
        self(self, j + 1, child_bound);
        chosen.pop_back();
        if (has_capacity) chosen_capacity.pop_back();
      }
    };
    visit(visit, 0, read_floor);
  }

  best.sets_evaluated = local.sets_evaluated;
  if (stats != nullptr) *stats = local;
  return best;
}

PlacementDecision SubsetSolver::FindBestDp(
    std::span<const provider::ProviderSpec> providers,
    const PlacementRequest& request, SolverStats* stats,
    DpOptions options) const {
  PlacementDecision best;
  SolverStats local;
  const std::size_t total = providers.size();

  // Eligible pool (zone filter), remembering original indices for the
  // capacity span.
  std::vector<std::size_t> pool;
  for (std::size_t i = 0; i < total; ++i) {
    if (request.rule.ZoneEligible(providers[i].zones)) pool.push_back(i);
  }
  const std::size_t p = pool.size();
  if (p == 0) {
    if (stats != nullptr) *stats = local;
    return best;
  }

  const std::size_t min_n = std::max<std::size_t>(1, request.rule.MinProviders());
  const double periods =
      static_cast<double>(std::max<std::size_t>(1, request.decision_periods));
  const double hours = common::ToHours(model_.config().sampling_period);
  const auto& usage = request.per_period;
  const double other_ops = std::max(0.0, usage.ops - usage.reads - usage.writes);

  // Evaluates one reconstructed candidate (with optional durability-swap
  // repair) and folds it into `best`.  In parity mode the verification step
  // is Algorithm 1's own EvaluateSet (durability-maximal threshold), so the
  // heuristic answers the same question as the exhaustive search; the
  // extension mode commits to the DP's own m.
  auto consider = [&](std::vector<std::size_t> members, int m) {
    auto evaluate = [&](const std::vector<std::size_t>& idx) {
      std::vector<provider::ProviderSpec> pset;
      std::vector<common::Bytes> caps;
      pset.reserve(idx.size());
      for (std::size_t i : idx) {
        pset.push_back(providers[i]);
        if (!request.free_capacity.empty()) {
          caps.push_back(request.free_capacity[i]);
        }
      }
      ++local.sets_evaluated;
      if (options.allow_submaximal_threshold) {
        return EvaluateAtThreshold(pset, m, request, caps);
      }
      return search_.EvaluateSet(pset, request, caps);
    };

    PlacementDecision candidate = evaluate(members);
    if (!candidate.feasible) {
      // Greedy repair: swap the lowest-durability member for the
      // highest-durability outsider until feasible or out of swaps.
      std::vector<std::size_t> outside;
      for (std::size_t i : pool) {
        if (std::find(members.begin(), members.end(), i) == members.end()) {
          outside.push_back(i);
        }
      }
      std::sort(outside.begin(), outside.end(), [&](std::size_t a,
                                                    std::size_t b) {
        return providers[a].sla.durability > providers[b].sla.durability;
      });
      for (std::size_t swap = 0;
           swap < outside.size() && !candidate.feasible; ++swap) {
        auto weakest = std::min_element(
            members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
              return providers[a].sla.durability <
                     providers[b].sla.durability;
            });
        if (providers[outside[swap]].sla.durability <=
            providers[*weakest].sla.durability) {
          break;  // no stronger outsider left
        }
        *weakest = outside[swap];
        candidate = evaluate(members);
      }
    }
    if (candidate.feasible && PlacementSearch::Better(candidate, best)) {
      best = std::move(candidate);
    }
  };

  for (std::size_t n_sel = min_n; n_sel <= p; ++n_sel) {
    for (int m = 1; m <= static_cast<int>(n_sel); ++m) {
      const double inv_m = 1.0 / static_cast<double>(m);
      const double chunk_read_gb_per_read =
          usage.reads > 0.0 ? (usage.bw_out_gb / usage.reads) * inv_m : 0.0;

      // Additive member costs for this (n, m): base (storage + ingress +
      // write/other ops) and reader extra (egress + read ops), both over
      // the decision period.  Mirrors PriceModel::Expand.
      std::vector<double> base(p), extra(p), read_metric(p);
      for (std::size_t k = 0; k < p; ++k) {
        const auto& pricing = providers[pool[k]].pricing;
        const double storage_gb_hours = usage.storage_gb * inv_m * hours;
        const double storage_cost =
            model_.config().billing == provider::StorageBillingMode::kPerPeriod
                ? usage.storage_gb * inv_m * pricing.storage_gb_month
                : storage_gb_hours / 720.0 * pricing.storage_gb_month;
        base[k] = periods * (storage_cost +
                             usage.bw_in_gb * inv_m * pricing.bw_in_gb +
                             (usage.writes + other_ops) *
                                 pricing.ops_per_1000 / 1000.0);
        extra[k] = periods * (usage.bw_out_gb * inv_m * pricing.bw_out_gb +
                              usage.reads * pricing.ops_per_1000 / 1000.0);
        read_metric[k] = pricing.bw_out_gb * chunk_read_gb_per_read +
                         pricing.ops_per_1000 / 1000.0;
      }

      // Sorted by read metric, the first m selected members are exactly the
      // set's read servers (PriceModel::CheapestReadProviders ranking).
      std::vector<std::size_t> sorted(p);
      std::iota(sorted.begin(), sorted.end(), 0);
      std::stable_sort(sorted.begin(), sorted.end(),
                       [&](std::size_t a, std::size_t b) {
                         if (read_metric[a] != read_metric[b]) {
                           return read_metric[a] < read_metric[b];
                         }
                         return providers[pool[a]].id < providers[pool[b]].id;
                       });

      // dp[k] = cheapest cost of selecting k members among the prefix,
      // parent[] for reconstruction.
      constexpr double kInf = std::numeric_limits<double>::infinity();
      std::vector<double> dp(n_sel + 1, kInf);
      std::vector<std::vector<bool>> take(
          p, std::vector<bool>(n_sel + 1, false));
      dp[0] = 0.0;
      for (std::size_t i = 0; i < p; ++i) {
        const std::size_t k_idx = sorted[i];
        for (std::size_t k = std::min(n_sel, i + 1); k >= 1; --k) {
          if (dp[k - 1] == kInf) continue;
          const double reader_extra =
              (k - 1) < static_cast<std::size_t>(m) ? extra[k_idx] : 0.0;
          const double cost = dp[k - 1] + base[k_idx] + reader_extra;
          if (cost < dp[k]) {
            dp[k] = cost;
            take[i][k] = true;
          }
        }
      }
      if (dp[n_sel] == kInf) continue;

      // Reconstruct the chosen original indices.
      std::vector<std::size_t> members;
      {
        std::size_t k = n_sel;
        for (std::size_t i = p; i-- > 0 && k > 0;) {
          if (take[i][k]) {
            members.push_back(pool[sorted[i]]);
            --k;
          }
        }
        if (k != 0) continue;  // reconstruction failed (shouldn't happen)
      }
      consider(std::move(members), m);
    }
  }

  best.sets_evaluated = local.sets_evaluated;
  if (stats != nullptr) *stats = local;
  return best;
}

}  // namespace scalia::core
