#include "core/metadata.h"

#include <charconv>

#include "common/string_util.h"

namespace scalia::core {

std::string MakeRowKey(const std::string& container, const std::string& key) {
  return common::Md5::HexHash(container + "|" + key);
}

std::string MakeStorageKey(const std::string& container,
                           const std::string& key, const common::Uuid& uuid) {
  return common::Md5::HexHash(container + "|" + key + "|" + uuid.ToString());
}

std::string ObjectMetadata::Serialize() const {
  std::string out;
  auto emit = [&out](const std::string& k, const std::string& v) {
    out += k;
    out += '=';
    out += v;
    out += '\n';
  };
  emit("container", container);
  emit("key", key);
  emit("mime", mime);
  emit("size", std::to_string(size));
  emit("checksum", checksum_hex);
  emit("policy", rule_name);
  emit("class", class_id);
  emit("uuid", uuid.ToString());
  emit("skey", skey);
  emit("m", std::to_string(m));
  emit("created", std::to_string(created_at));
  emit("updated", std::to_string(updated_at));
  std::string stripe_str;
  for (const auto& s : stripes) {
    if (!stripe_str.empty()) stripe_str += ";";
    stripe_str += std::to_string(s.chunk_index) + ":" + s.provider;
  }
  emit("stripes", stripe_str);
  // Filter-pipeline fields (PR 10): omitted when the blob is verbatim, so
  // pre-filter rows and filter-free deployments serialize byte-identically
  // to the old format.
  if (filter_stage != 0) emit("filters", std::to_string(filter_stage));
  if (logical_size != 0) emit("logical_size", std::to_string(logical_size));
  if (!dedup_refs.empty()) {
    std::string refs_str;
    for (const auto& r : dedup_refs) {
      if (!refs_str.empty()) refs_str += ",";
      refs_str += r;
    }
    emit("dedup_refs", refs_str);
  }
  return out;
}

common::Result<ObjectMetadata> ObjectMetadata::Parse(
    const std::string& serialized) {
  ObjectMetadata meta;
  bool saw_skey = false;
  for (const auto& line : common::Split(serialized, '\n')) {
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return common::Status::InvalidArgument("bad metadata line: " + line);
    }
    const std::string k = line.substr(0, eq);
    const std::string v = line.substr(eq + 1);
    auto to_i64 = [](const std::string& s) {
      long long value = 0;
      std::from_chars(s.data(), s.data() + s.size(), value);
      return value;
    };
    if (k == "container") {
      meta.container = v;
    } else if (k == "key") {
      meta.key = v;
    } else if (k == "mime") {
      meta.mime = v;
    } else if (k == "size") {
      meta.size = static_cast<common::Bytes>(to_i64(v));
    } else if (k == "checksum") {
      meta.checksum_hex = v;
    } else if (k == "policy") {
      meta.rule_name = v;
    } else if (k == "class") {
      meta.class_id = v;
    } else if (k == "uuid") {
      // The UUID string form is informational; skey carries the identity.
    } else if (k == "skey") {
      meta.skey = v;
      saw_skey = true;
    } else if (k == "m") {
      meta.m = static_cast<int>(to_i64(v));
    } else if (k == "created") {
      meta.created_at = to_i64(v);
    } else if (k == "updated") {
      meta.updated_at = to_i64(v);
    } else if (k == "stripes") {
      for (const auto& part : common::Split(v, ';')) {
        if (part.empty()) continue;
        const auto colon = part.find(':');
        if (colon == std::string::npos) {
          return common::Status::InvalidArgument("bad stripe: " + part);
        }
        StripeEntry entry;
        entry.chunk_index =
            static_cast<std::uint32_t>(to_i64(part.substr(0, colon)));
        entry.provider = part.substr(colon + 1);
        meta.stripes.push_back(std::move(entry));
      }
    } else if (k == "filters") {
      meta.filter_stage = static_cast<int>(to_i64(v));
    } else if (k == "logical_size") {
      meta.logical_size = static_cast<common::Bytes>(to_i64(v));
    } else if (k == "dedup_refs") {
      for (const auto& part : common::Split(v, ',')) {
        if (!part.empty()) meta.dedup_refs.push_back(part);
      }
    }
  }
  if (!saw_skey || meta.m <= 0 || meta.stripes.empty()) {
    return common::Status::InvalidArgument("incomplete metadata record");
  }
  return meta;
}

}  // namespace scalia::core
