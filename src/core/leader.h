// Leader election among engines.
//
// The periodic optimization procedure is coordinated by "a leader, elected
// among all engines from all datacenters" (Fig. 7).  Engines are stateless
// and equivalent, so a deterministic bully-style election suffices: the
// alive member with the smallest id leads; any member's failure immediately
// yields a new leader on the next query.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace scalia::core {

class LeaderElection {
 public:
  void RegisterMember(const std::string& id) {
    common::MutexLock lock(mu_);
    for (const auto& m : members_) {
      if (m.id == id) return;
    }
    members_.push_back({id, true});
    std::sort(members_.begin(), members_.end(),
              [](const Member& a, const Member& b) { return a.id < b.id; });
  }

  void SetAlive(const std::string& id, bool alive) {
    common::MutexLock lock(mu_);
    for (auto& m : members_) {
      if (m.id == id) {
        m.alive = alive;
        return;
      }
    }
  }

  [[nodiscard]] bool IsAlive(const std::string& id) const {
    common::MutexLock lock(mu_);
    for (const auto& m : members_) {
      if (m.id == id) return m.alive;
    }
    return false;
  }

  /// The current leader: smallest-id alive member; nullopt if none alive.
  [[nodiscard]] std::optional<std::string> Leader() const {
    common::MutexLock lock(mu_);
    for (const auto& m : members_) {
      if (m.alive) return m.id;
    }
    return std::nullopt;
  }

  /// All alive members, in id order (the optimizer's worker set E).
  [[nodiscard]] std::vector<std::string> AliveMembers() const {
    common::MutexLock lock(mu_);
    std::vector<std::string> out;
    for (const auto& m : members_) {
      if (m.alive) out.push_back(m.id);
    }
    return out;
  }

 private:
  struct Member {
    std::string id;
    bool alive = true;
  };
  mutable common::Mutex mu_;
  std::vector<Member> members_ GUARDED_BY(mu_);
};

}  // namespace scalia::core
