#include "core/decision_period.h"

#include <algorithm>
#include <array>

namespace scalia::core {

std::size_t DecisionPeriodController::Clamp(std::size_t candidate,
                                            std::size_t history_periods,
                                            std::size_t ttl_periods) const {
  // The paper bounds the dichotomic search by min(TTL_obj, |H_obj|): a
  // placement should not be planned past the object's expected deletion,
  // nor on more history than exists.
  std::size_t hi = config_.max_periods;
  if (ttl_periods > 0) hi = std::min(hi, ttl_periods);
  if (history_periods > 0) hi = std::min(hi, history_periods);
  hi = std::max(hi, config_.min_periods);
  return std::clamp(candidate, config_.min_periods, hi);
}

std::size_t DecisionPeriodController::OnOptimization(
    std::size_t history_periods, std::size_t ttl_periods,
    const Evaluator& evaluate) {
  ++optimizations_since_coupling_;
  if (optimizations_since_coupling_ < coupling_interval_) {
    decision_periods_ = Clamp(decision_periods_, history_periods, ttl_periods);
    return decision_periods_;
  }
  optimizations_since_coupling_ = 0;
  ++couplings_run_;

  const std::size_t d = decision_periods_;
  const std::array<std::size_t, 3> raw = {std::max<std::size_t>(1, d / 2), d,
                                          2 * d};
  // Evaluate D/2, D and 2D in parallel ("coupling") and keep the length
  // whose best placement is cheapest per sampling period.
  std::size_t best_d = 0;
  double best_rate = 0.0;
  bool have_best = false;
  std::size_t previous_clamped = Clamp(d, history_periods, ttl_periods);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::size_t candidate = Clamp(raw[i], history_periods, ttl_periods);
    if (have_best && candidate == best_d) continue;
    const PlacementDecision decision = evaluate(candidate);
    if (!decision.feasible) continue;
    const double rate =
        decision.expected_cost.usd() / static_cast<double>(candidate);
    // Strictly-better wins; ties keep the earlier (smaller) candidate
    // except that the incumbent D is preferred on exact ties with it.
    if (!have_best || rate < best_rate - 1e-15 ||
        (std::abs(rate - best_rate) <= 1e-15 && candidate == previous_clamped)) {
      best_rate = rate;
      best_d = candidate;
      have_best = true;
    }
  }

  if (!have_best) {
    decision_periods_ = previous_clamped;
    coupling_interval_ = 1;
    return decision_periods_;
  }

  if (best_d == previous_clamped) {
    // D was adequate: double T (capped).
    coupling_interval_ =
        std::min(coupling_interval_ * 2, config_.max_coupling_interval);
  } else {
    decision_periods_ = best_d;
    coupling_interval_ = 1;
  }
  return decision_periods_;
}

}  // namespace scalia::core
