// The stateless Scalia engine (§III-A).
//
// An engine is a proxy between clients and the storage providers: it offers
// the S3-like put/get/list/delete interface, computes the best provider set
// per object, splits/reassembles objects with the erasure codec, serves
// reads through the cache, persists metadata in the replicated database and
// streams access logs into the statistics pipeline.  Engines keep no
// per-object state, so a deployment scales by adding engines.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_layer.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/engine_api.h"
#include "core/metadata.h"
#include "core/migration.h"
#include "core/placement.h"
#include "core/rule.h"
#include "provider/registry.h"
#include "stats/pipeline.h"
#include "stats/stats_db.h"
#include "store/replicated_store.h"

namespace scalia::durability {
class Journal;
}  // namespace scalia::durability

namespace scalia::filter {
class Pipeline;
}  // namespace scalia::filter

namespace scalia::core {

struct EngineConfig {
  StorageRule default_rule;
  common::Duration sampling_period = common::kHour;
  provider::StorageBillingMode billing =
      provider::StorageBillingMode::kPerPeriod;
  /// Decision-period length (sampling periods) assumed for brand-new
  /// objects with no class statistics.
  std::size_t default_decision_periods = 24;
  /// Chunk uploads/downloads per object issued concurrently.
  std::size_t parallel_chunk_io = 4;
};

/// A chunk delete that could not run because its provider was unreachable;
/// retried until the provider recovers (§III-D.3: "the deletion of the
/// chunk residing at a faulty provider is postponed").
struct PendingDelete {
  provider::ProviderId provider;
  std::string chunk_key;
};

class Engine : public EngineApi {
 public:
  Engine(std::string id, provider::ProviderRegistry* registry,
         store::ReplicatedStore* db, store::ReplicaId dc,
         cache::CacheLayer* cache, stats::StatsDb* stats_db,
         stats::LogAgent* log_agent, common::ThreadPool* pool,
         EngineConfig config, std::uint64_t seed);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] store::ReplicaId datacenter() const noexcept { return dc_; }

  /// Journals every committed metadata mutation (put/delete/migration/
  /// repair) to the durability write-ahead log.  Null (the default)
  /// disables journaling.  The journal must outlive the engine.
  void AttachJournal(durability::Journal* journal) noexcept {
    journal_ = journal;
  }

  /// Routes Put/Get bodies through the data-reduction filter pipeline
  /// (chunk/dedup/compress/encrypt per storage rule).  Null (the default)
  /// bypasses filtering entirely — bodies are stored verbatim, exactly the
  /// pre-pipeline behavior.  The pipeline (and its dedup index) must
  /// outlive the engine; in a sharded deployment each shard attaches its
  /// own pipeline over its own index.
  void AttachFilters(filter::Pipeline* filters) noexcept {
    filters_ = filters;
  }

  /// Stores (or updates) an object.  `rule` overrides the default; a
  /// per-object TTL hint may ride on the rule (§III-A).
  common::Status Put(common::SimTime now, const std::string& container,
                     const std::string& key, std::string data,
                     const std::string& mime,
                     std::optional<StorageRule> rule = std::nullopt) override;

  /// Reads an object (cache first, then m-of-n chunk reassembly).
  common::Result<std::string> Get(common::SimTime now,
                                  const std::string& container,
                                  const std::string& key) override;

  /// Deletes an object (metadata tombstone + chunk deletion, deferred at
  /// unreachable providers).
  common::Status Delete(common::SimTime now, const std::string& container,
                        const std::string& key) override;

  /// Keys currently stored in `container` (from the metadata layer).
  common::Result<std::vector<std::string>> List(
      common::SimTime now, const std::string& container) override;

  // ---- Optimizer-facing operations -------------------------------------

  /// Loads (and conflict-resolves) the object's metadata.
  common::Result<ObjectMetadata> LoadMetadata(
      common::SimTime now, const std::string& row_key) override;

  /// Metadata together with its row-version snapshot: the clock a
  /// migration/repair hands back to the store as the CAS expectation when
  /// committing a re-placement.
  struct VersionedMetadata {
    ObjectMetadata meta;
    store::VectorClock clock;
  };

  /// LoadMetadata plus the version snapshot the CAS commit needs.
  common::Result<VersionedMetadata> LoadMetadataVersioned(
      common::SimTime now, const std::string& row_key);

  /// Runs Algorithm 1 for `row_key` with a history window of
  /// `decision_periods` sampling periods, without migrating anything.  Used
  /// by the decision-period coupling search (D/2, D, 2D in parallel).
  common::Result<PlacementDecision> EvaluatePlacement(
      common::SimTime now, const std::string& row_key,
      std::size_t decision_periods);

  /// Mean reduction ratio of `class_id` from the stats db; 1.0 when the
  /// pipeline is off or the class has no reduction samples yet.
  [[nodiscard]] double ClassReductionRatio(const std::string& class_id) const;

  /// Recomputes the best placement for `row_key` from its access history
  /// and migrates if the cost-benefit analysis approves.  Returns true when
  /// a migration was performed.  The commit is optimistic: the new chunks
  /// are staged under a fresh storage key and the metadata is applied only
  /// via CAS-on-version; when a concurrent Put/Delete of the same key wins
  /// the race the migration aborts with kConflict, the *staged* chunks are
  /// garbage-collected, and the acked write stays untouched.
  common::Result<bool> ReoptimizeObject(common::SimTime now,
                                        const std::string& row_key,
                                        std::size_t decision_periods);

  /// Rebuilds chunks lost to a failed provider onto the best replacement
  /// while keeping the (m, n) structure — the active repair of §IV-E.
  /// Commits via the same CAS-on-version protocol as ReoptimizeObject;
  /// kConflict means a concurrent write won and the rebuilt chunks were
  /// garbage-collected.
  common::Status RepairObject(common::SimTime now, const std::string& row_key);

  /// Test hook: runs after a migration/repair has staged its chunks and
  /// immediately before the metadata CAS commit, so tests can interleave a
  /// racing Put deterministically.  Not for production use.
  void SetCommitRaceHook(std::function<void()> hook) {
    commit_race_hook_ = std::move(hook);
  }

  /// Retries deferred chunk deletions whose providers recovered.
  std::size_t ProcessPendingDeletes(common::SimTime now);

  [[nodiscard]] std::size_t PendingDeleteCount() const;

  /// Monotonic counters for the degraded read path.  `degraded_reads` counts
  /// GETs whose preferred chunk wave failed and that fell back to the k-of-n
  /// fan-out; `reconstructions` counts the subset that decoded through a
  /// parity chunk (a true Reed-Solomon rebuild, not just a re-route).
  struct ReadPathCounters {
    std::uint64_t degraded_reads = 0;
    std::uint64_t reconstructions = 0;
  };

  [[nodiscard]] ReadPathCounters read_counters() const {
    return {degraded_reads_.load(std::memory_order_relaxed),
            reconstructions_.load(std::memory_order_relaxed)};
  }

 private:
  /// Places a brand-new or re-placed object; honours class statistics for
  /// first placement (Fig. 6) and excludes `exclude` (faulty providers).
  /// `reduction_ratio` is the class's observed stored/raw ratio (1.0 = no
  /// signal); it scales the per-GB cost terms inside the search while
  /// `size` and `per_period` stay logical.
  [[nodiscard]] PlacementDecision ChoosePlacement(
      common::SimTime now, const StorageRule& rule, common::Bytes size,
      const stats::PeriodStats& per_period, std::size_t decision_periods,
      const std::vector<provider::ProviderId>& exclude,
      double reduction_ratio = 1.0) const;

  /// Writes the chunks of `data` per `decision`; returns stripe entries.
  /// When `failed_providers` is non-null, providers whose chunk write failed
  /// are appended to it (so Put's retry loop can exclude browned-out
  /// providers that still claim to be reachable).
  common::Result<std::vector<StripeEntry>> WriteChunks(
      common::SimTime now, const PlacementDecision& decision,
      const std::string& skey, const std::string& data,
      std::vector<provider::ProviderId>* failed_providers = nullptr);

  /// Fetches >= m chunks of `meta`, cheapest providers first: a parallel
  /// wave over the m preferred providers, then — on any miss — a degraded
  /// k-of-n fan-out to every remaining stripe, reconstructing inline.
  common::Result<std::string> ReadChunks(common::SimTime now,
                                         const ObjectMetadata& meta);

  /// Deletes the chunks of `meta`, deferring unreachable providers.
  void DeleteChunks(common::SimTime now, const ObjectMetadata& meta);

  /// Best-effort sweep after WriteChunks failed mid-stage: deletes every
  /// chunk key the stage *could* have written (chunk i at provider i of
  /// `target`, under `staged`'s storage key); missing ones answer NotFound.
  void SweepPartialStage(common::SimTime now, ObjectMetadata staged,
                         const PlacementDecision& target);

  /// Commits a staged re-placement via CAS against `expected`.  Returns Ok
  /// when the CAS applied and the success record journaled (the caller may
  /// GC the replaced chunks); kConflict when a concurrent write won the
  /// race (the abort is journaled and the chunks of `staged_gc` — the
  /// staged, never-committed writes — are garbage-collected); the journal
  /// error when the CAS applied but journaling failed (committed, but the
  /// caller must skip destructive GC); any other error when the commit
  /// could not be attempted (staged chunks GC'd).
  common::Status CommitReplacement(common::SimTime now,
                                   const std::string& row_key,
                                   const ObjectMetadata& staged,
                                   const ObjectMetadata& staged_gc,
                                   const store::VectorClock& expected,
                                   bool is_repair);

  /// Expected per-period usage for an object: history average when it has
  /// history, class mean for fresh objects, else a storage-only guess.
  [[nodiscard]] stats::PeriodStats ForecastUsage(
      const std::string& row_key, const std::string& class_id,
      common::Bytes size) const;

  [[nodiscard]] std::vector<common::Bytes> FreeCapacities(
      const std::vector<provider::ProviderSpec>& specs) const;

  std::string id_;
  provider::ProviderRegistry* registry_;
  store::ReplicatedStore* db_;
  store::ReplicaId dc_;
  cache::CacheLayer* cache_;      // may be null (cache layer is optional)
  stats::StatsDb* stats_db_;
  stats::LogAgent* log_agent_;    // may be null
  common::ThreadPool* pool_;      // may be null => serial chunk IO
  durability::Journal* journal_ = nullptr;  // may be null (no journaling)
  filter::Pipeline* filters_ = nullptr;     // may be null (no filtering)
  std::function<void()> commit_race_hook_;  // test-only, see SetCommitRaceHook
  EngineConfig config_;
  PlacementSearch search_;
  MigrationPlanner migration_;

  mutable common::Mutex uuid_mu_;
  common::Xoshiro256 uuid_rng_ GUARDED_BY(uuid_mu_);

  mutable common::Mutex pending_mu_;
  std::vector<PendingDelete> pending_deletes_ GUARDED_BY(pending_mu_);

  std::atomic<std::uint64_t> degraded_reads_{0};
  std::atomic<std::uint64_t> reconstructions_{0};
};

}  // namespace scalia::core
