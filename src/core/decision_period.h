// Adaptive decision period D_obj (§III-A).
//
// The decision period is the suffix of the access history used to forecast
// the next period's usage.  It is tuned by a dichotomic "coupling" search:
// every T optimization procedures, the placements computed with histories of
// length D/2, D and 2D are compared and D jumps to the length that produced
// the cheapest (per-period) placement.  When D was already the best, T
// doubles (up to a cap, "a period of weeks"); otherwise T resets to 1.
// Candidates are clamped to [1, min(TTL_obj, |H_obj|)].
#pragma once

#include <cstddef>
#include <functional>

#include "core/placement.h"

namespace scalia::core {

struct DecisionPeriodConfig {
  std::size_t initial_periods = 24;  // one day of hourly samples
  std::size_t min_periods = 1;
  std::size_t max_periods = 24 * 7 * 8;       // 8 weeks
  std::size_t max_coupling_interval = 64;     // cap on T
};

class DecisionPeriodController {
 public:
  explicit DecisionPeriodController(DecisionPeriodConfig config = {})
      : config_(config), decision_periods_(config.initial_periods) {}

  /// Evaluator: maps a candidate decision-period length (sampling periods)
  /// to the best placement found using that much history.
  using Evaluator = std::function<PlacementDecision(std::size_t)>;

  /// Called once per optimization procedure of the object.  Returns the
  /// decision period to use for this optimization (possibly just updated by
  /// the coupling search).
  std::size_t OnOptimization(std::size_t history_periods,
                             std::size_t ttl_periods,
                             const Evaluator& evaluate);

  /// Forces the coupling search to run at the next OnOptimization call.
  /// Callers invoke this when a trend change was detected: a changed access
  /// pattern is direct evidence that the current D may be inadequate.
  void ForceCouplingNext() noexcept {
    optimizations_since_coupling_ = coupling_interval_;
  }

  [[nodiscard]] std::size_t current() const noexcept {
    return decision_periods_;
  }
  [[nodiscard]] std::size_t coupling_interval() const noexcept {
    return coupling_interval_;
  }
  [[nodiscard]] std::size_t couplings_run() const noexcept {
    return couplings_run_;
  }

 private:
  [[nodiscard]] std::size_t Clamp(std::size_t candidate,
                                  std::size_t history_periods,
                                  std::size_t ttl_periods) const;

  DecisionPeriodConfig config_;
  std::size_t decision_periods_;
  std::size_t coupling_interval_ = 1;  // T, initially 1
  std::size_t optimizations_since_coupling_ = 0;
  std::size_t couplings_run_ = 0;
};

}  // namespace scalia::core
