// Durability thresholds and availability of provider sets.
//
// Implements Algorithm 2 of the paper (getThreshold) twice:
//  * GetThresholdCombinatorial — the literal pseudo-code, enumerating
//    failure combinations (exponential; kept as the executable spec);
//  * GetThreshold — an equivalent O(n²) Poisson-binomial dynamic program
//    (the distribution of the number of failed providers is computed by
//    convolution instead of subset enumeration).
// Tests assert the two agree on exhaustive sweeps.
//
// getAvailability computes P(object reassemblable) = P(at least m of the n
// providers reachable), from the per-provider SLA availabilities.
#pragma once

#include <span>
#include <vector>

namespace scalia::core {

/// The largest erasure threshold m such that the probability that at most
/// n - m providers fail (per their SLA durabilities) is >= `required`.
/// Returns 0 when the set cannot satisfy the constraint (Alg. 1 line 8
/// treats th <= 0 as infeasible).
[[nodiscard]] int GetThreshold(std::span<const double> durabilities,
                               double required);

/// Literal Algorithm 2 as printed in the paper.
[[nodiscard]] int GetThresholdCombinatorial(
    std::span<const double> durabilities, double required);

/// Probability that at least `k` of the providers are up, where
/// `p_up[i]` is provider i's availability (Poisson-binomial tail).
[[nodiscard]] double ProbAtLeastKUp(std::span<const double> p_up, int k);

/// getAvailability(pset, th): probability that the object can be
/// reassembled, i.e. at least m = th providers are reachable.
[[nodiscard]] double GetAvailability(std::span<const double> availabilities,
                                     int threshold_m);

/// Full probability mass function of the number of "up" providers
/// (index k = P(exactly k up)); exposed for tests and diagnostics.
[[nodiscard]] std::vector<double> PoissonBinomialPmf(
    std::span<const double> p_up);

}  // namespace scalia::core
