// computePrice(): expected cost of storing an object at a provider set.
//
// §III-A.2: "given the access history of an object, the function
// computePrice() returns the expected cost that a user may have to pay in
// the next decision period if the object is stored at the provider set
// taken as parameter."
//
// The cost model expands the object's *logical* per-period statistics into
// per-provider billing under an (m, n = |pset|) erasure coding:
//   * storage  — each of the n providers stores one chunk = 1/m of the
//                object's bytes;
//   * writes   — every write pushes all n chunks: ingress of 1/m of the
//                written bytes plus one operation at each provider;
//   * reads    — every read fetches the m chunks from the m providers that
//                are cheapest for reads ("retrieves the m out of |P(obj)|
//                chunks from the cheapest providers", §III-D.2): egress of
//                1/m of the read bytes plus one operation at each chosen
//                provider;
//   * deletes and other ops — one operation at every provider.
#pragma once

#include <span>
#include <vector>

#include "common/money.h"
#include "provider/pricing.h"
#include "stats/period_stats.h"

namespace scalia::core {

struct PriceModelConfig {
  common::Duration sampling_period = common::kHour;
  provider::StorageBillingMode billing =
      provider::StorageBillingMode::kPerPeriod;
};

/// Per-provider usage a given placement implies for one sampling period.
struct ExpandedUsage {
  std::vector<provider::PeriodUsage> per_provider;  // parallel to pset
};

class PriceModel {
 public:
  explicit PriceModel(PriceModelConfig config = {}) : config_(config) {}

  [[nodiscard]] const PriceModelConfig& config() const noexcept {
    return config_;
  }

  /// Expands logical per-period stats into per-provider billing usage for
  /// the set `pset` with threshold `m`.  `reachable` (parallel to pset;
  /// empty = all reachable) routes reads to the m cheapest *reachable*
  /// providers; storage and write traffic bill on the whole set.  When
  /// fewer than m providers are reachable, reads go unserved and unbilled.
  [[nodiscard]] ExpandedUsage Expand(
      std::span<const provider::ProviderSpec> pset, int m,
      const stats::PeriodStats& period,
      const std::vector<bool>& reachable = {}) const;

  /// Cost of one sampling period with the given logical usage.
  [[nodiscard]] common::Money PeriodCost(
      std::span<const provider::ProviderSpec> pset, int m,
      const stats::PeriodStats& period,
      const std::vector<bool>& reachable = {}) const;

  /// computePrice: expected cost over the next `decision_periods` sampling
  /// periods, assuming the per-period usage equals `per_period_avg` (the
  /// persistence forecast derived from H(obj)).
  [[nodiscard]] common::Money ExpectedCost(
      std::span<const provider::ProviderSpec> pset, int m,
      const stats::PeriodStats& per_period_avg,
      std::size_t decision_periods) const;

  /// Indices (into pset) of the m providers a read should fetch from,
  /// ranked by per-read cost (egress price x chunk + op price).
  [[nodiscard]] std::vector<std::size_t> CheapestReadProviders(
      std::span<const provider::ProviderSpec> pset, int m,
      double chunk_gb) const;

 private:
  PriceModelConfig config_;
};

}  // namespace scalia::core
