// Budget maintenance by constraint relaxation (§I, optimization goal a).
//
// "Other optimization goals for data placement are also conceivable, such
// as maintaining a certain monthly budget by relaxing some constraints,
// such as lock-in or availability."  The BudgetGuard tracks the projected
// monthly spend and, when it exceeds the budget, relaxes the storage rule
// one level at a time — lock-in first (fewer providers is cheaper), then
// availability, then durability — until the projected spend fits or no
// relaxation remains.
#pragma once

#include <optional>

#include "common/money.h"
#include "core/placement.h"
#include "core/rule.h"

namespace scalia::core {

/// One relaxation ladder step applied to a rule.  Level 0 is the rule
/// itself; each level loosens one more constraint.
[[nodiscard]] inline StorageRule RelaxRule(const StorageRule& rule,
                                           int level) {
  StorageRule relaxed = rule;
  if (level >= 1) relaxed.lockin = 1.0;          // drop the lock-in bound
  if (level >= 2) {
    // One nine less of availability (e.g. 0.9999 -> 0.999).
    relaxed.availability = 1.0 - (1.0 - relaxed.availability) * 10.0;
    if (relaxed.availability < 0.0) relaxed.availability = 0.0;
  }
  if (level >= 3) {
    // One nine less of durability.
    relaxed.durability = 1.0 - (1.0 - relaxed.durability) * 10.0;
    if (relaxed.durability < 0.0) relaxed.durability = 0.0;
  }
  return relaxed;
}

inline constexpr int kMaxRelaxationLevel = 3;

struct BudgetedPlacement {
  PlacementDecision decision;
  int relaxation_level = 0;   // 0 = original rule held
  bool within_budget = false;
};

class BudgetGuard {
 public:
  /// `monthly_budget` bounds the projected spend for the object(s) the
  /// guard watches; `sampling_period` converts per-period costs to monthly.
  BudgetGuard(common::Money monthly_budget, common::Duration sampling_period)
      : budget_(monthly_budget), sampling_period_(sampling_period) {}

  [[nodiscard]] common::Money monthly_budget() const noexcept {
    return budget_;
  }

  /// Projects a per-decision-period expected cost to a monthly rate.
  [[nodiscard]] common::Money ProjectMonthly(
      const PlacementDecision& decision,
      std::size_t decision_periods) const {
    if (!decision.feasible || decision_periods == 0) return {};
    const double periods_per_month =
        static_cast<double>(common::kMonth) /
        static_cast<double>(sampling_period_);
    return decision.expected_cost *
           (periods_per_month / static_cast<double>(decision_periods));
  }

  /// Finds the cheapest placement honouring the tightest rule whose
  /// projected monthly spend fits the budget, walking the relaxation
  /// ladder only as far as needed.  When even the loosest rule exceeds the
  /// budget, the loosest feasible placement is returned with
  /// `within_budget = false` so callers can alert the owner.
  [[nodiscard]] BudgetedPlacement PlaceWithinBudget(
      const PlacementSearch& search,
      std::span<const provider::ProviderSpec> providers,
      PlacementRequest request) const {
    BudgetedPlacement out;
    for (int level = 0; level <= kMaxRelaxationLevel; ++level) {
      PlacementRequest relaxed = request;
      relaxed.rule = RelaxRule(request.rule, level);
      const PlacementDecision decision = search.FindBest(providers, relaxed);
      if (!decision.feasible) continue;
      out.decision = decision;
      out.relaxation_level = level;
      out.within_budget =
          ProjectMonthly(decision, relaxed.decision_periods) <= budget_;
      if (out.within_budget) return out;
    }
    return out;  // best effort: loosest feasible, possibly over budget
  }

 private:
  common::Money budget_;
  common::Duration sampling_period_;
};

}  // namespace scalia::core
