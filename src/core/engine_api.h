// The engine layer's outward face, as an abstract interface.
//
// Everything that serves client traffic — the S3 gateway, the network
// daemon, the benches — programs against this interface instead of the
// concrete Engine, so a deployment can swap the engine topology without
// call-site churn:
//
//   * Engine             one engine over one metadata replica (the paper's
//                        stateless proxy, §III-A);
//   * ShardedEngine      N key-hash-partitioned engine shards behind one
//                        facade (sharded_engine.h), each owning its slice
//                        of the metadata table, statistics and WAL stream.
//
// The interface is exactly the paper's put/get/list/delete key-value model
// plus the metadata read the gateway's HEAD handler needs.  Optimizer-facing
// operations (EvaluatePlacement, ReoptimizeObject, RepairObject) are *not*
// part of it: the periodic optimizer always sweeps concrete engines — one
// per shard — because candidate sets are drawn from each shard's own
// statistics database.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/rule.h"

namespace scalia::core {

struct ObjectMetadata;

class EngineApi {
 public:
  virtual ~EngineApi() = default;

  /// Stores (or updates) an object.  `rule` overrides the default; a
  /// per-object TTL hint may ride on the rule (§III-A).
  virtual common::Status Put(common::SimTime now, const std::string& container,
                             const std::string& key, std::string data,
                             const std::string& mime,
                             std::optional<StorageRule> rule = std::nullopt) = 0;

  /// Reads an object (cache first, then m-of-n chunk reassembly).
  virtual common::Result<std::string> Get(common::SimTime now,
                                          const std::string& container,
                                          const std::string& key) = 0;

  /// Deletes an object (metadata tombstone + chunk deletion, deferred at
  /// unreachable providers).
  virtual common::Status Delete(common::SimTime now,
                                const std::string& container,
                                const std::string& key) = 0;

  /// Keys currently stored in `container` (from the metadata layer).
  virtual common::Result<std::vector<std::string>> List(
      common::SimTime now, const std::string& container) = 0;

  /// Loads (and conflict-resolves) the object's metadata; `row_key` is
  /// MakeRowKey(container, key).  Serves the gateway's HEAD handler.
  virtual common::Result<ObjectMetadata> LoadMetadata(
      common::SimTime now, const std::string& row_key) = 0;
};

}  // namespace scalia::core
