#include "core/migration.h"

#include <algorithm>
#include <set>

namespace scalia::core {

MigrationAssessment MigrationPlanner::CostOnly(
    std::span<const provider::ProviderSpec> current_set, int current_m,
    const PlacementDecision& target,
    std::span<const provider::ProviderSpec> readable,
    common::Bytes object_size) const {
  MigrationAssessment out;

  std::set<provider::ProviderId> old_ids;
  for (const auto& p : current_set) old_ids.insert(p.id);
  std::set<provider::ProviderId> new_ids;
  for (const auto& p : target.providers) new_ids.insert(p.id);

  if (current_m == target.m && old_ids == new_ids) {
    return out;  // nothing to do
  }
  out.structure_changed = current_m != target.m ||
                          current_set.size() != target.providers.size();

  const double old_chunk_gb =
      current_m > 0 ? common::ToGB(common::CeilDiv(
                          object_size, static_cast<common::Bytes>(current_m)))
                    : 0.0;
  const double new_chunk_gb = common::ToGB(common::CeilDiv(
      object_size, static_cast<common::Bytes>(std::max(1, target.m))));

  double cost = 0.0;

  // Read m chunks from the cheapest readable sources to reconstruct.
  const auto readers =
      model_.CheapestReadProviders(readable, current_m, old_chunk_gb);
  for (std::size_t idx : readers) {
    const auto& pricing = readable[idx].pricing;
    cost += pricing.bw_out_gb * old_chunk_gb + pricing.ops_per_1000 / 1000.0;
    ++out.chunks_read;
  }

  // Write chunks: all of them when the structure changed, else only the
  // providers that newly joined the set.
  for (const auto& p : target.providers) {
    const bool needs_write = out.structure_changed || !old_ids.contains(p.id);
    if (!needs_write) continue;
    cost += p.pricing.bw_in_gb * new_chunk_gb + p.pricing.ops_per_1000 / 1000.0;
    ++out.chunks_written;
  }

  // Delete obsolete chunks: all old ones on a re-encode, otherwise only at
  // providers leaving the set.  Deletes at currently unreachable providers
  // are postponed (§III-D.3) but will still be billed one op eventually.
  for (const auto& p : current_set) {
    const bool needs_delete = out.structure_changed || !new_ids.contains(p.id);
    if (!needs_delete) continue;
    cost += p.pricing.ops_per_1000 / 1000.0;
    ++out.chunks_deleted;
  }

  out.migration_cost = common::Money(cost);
  return out;
}

MigrationAssessment MigrationPlanner::Assess(
    std::span<const provider::ProviderSpec> current_set, int current_m,
    const PlacementDecision& target,
    std::span<const provider::ProviderSpec> readable,
    common::Bytes object_size, const stats::PeriodStats& per_period,
    std::size_t remaining_periods) const {
  MigrationAssessment out =
      CostOnly(current_set, current_m, target, readable, object_size);
  if (out.chunks_written == 0 && out.chunks_deleted == 0) {
    return out;  // same placement; never worthwhile
  }
  const common::Money current_rate =
      model_.PeriodCost(current_set, current_m, per_period);
  const common::Money target_rate =
      model_.PeriodCost(target.providers, target.m, per_period);
  out.benefit =
      (current_rate - target_rate) * static_cast<double>(remaining_periods);
  out.worthwhile = out.benefit > out.migration_cost;
  return out;
}

}  // namespace scalia::core
