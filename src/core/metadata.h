// Object metadata, as stored in the database layer (Fig. 11).
//
// One metadata record couples the file metadata (name, MIME, checksum,
// size, policy) with the striping metadata (chunk -> provider mapping, the
// threshold m, and the storage key skey).  Keys follow §III-D.1:
//   row_key = MD5(container | key)
//   skey    = MD5(container | key | UUID)
// and chunks live at the providers under "<skey>.<chunk_index>".
#pragma once

#include <string>
#include <vector>

#include "common/md5.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/units.h"
#include "common/uuid.h"
#include "provider/types.h"

namespace scalia::core {

struct StripeEntry {
  std::uint32_t chunk_index = 0;
  provider::ProviderId provider;
};

struct ObjectMetadata {
  std::string container;
  std::string key;
  std::string mime;
  common::Bytes size = 0;
  std::string checksum_hex;  // MD5 of the stored (post-filter) bytes
  std::string rule_name;
  std::string class_id;
  /// Size of the object as the client wrote it, before the data-reduction
  /// filter pipeline.  Zero on pre-filter rows (then size is logical too).
  common::Bytes logical_size = 0;
  /// Highest filter stage the stored blob was encoded with
  /// (filter::FilterStage as an int); 0 = stored verbatim.
  int filter_stage = 0;
  /// Dedup-index chunk hashes this version references (hex, duplicates
  /// kept); released when the version is superseded or deleted.
  std::vector<std::string> dedup_refs;
  common::Uuid uuid;
  std::string skey;
  int m = 0;
  std::vector<StripeEntry> stripes;
  common::SimTime created_at = 0;
  common::SimTime updated_at = 0;

  [[nodiscard]] std::size_t n() const noexcept { return stripes.size(); }

  /// Client-visible object size: the pre-filter byte count when the blob
  /// went through the pipeline, else the stored size.
  [[nodiscard]] common::Bytes LogicalSize() const noexcept {
    return logical_size > 0 ? logical_size : size;
  }

  /// Key of chunk `index` at its provider.
  [[nodiscard]] std::string ChunkKey(std::uint32_t index) const {
    return skey + "." + std::to_string(index);
  }

  /// Providers in stripe order.
  [[nodiscard]] std::vector<provider::ProviderId> Providers() const {
    std::vector<provider::ProviderId> out;
    out.reserve(stripes.size());
    for (const auto& s : stripes) out.push_back(s.provider);
    return out;
  }

  /// Line-oriented key=value serialization for the metadata table.
  [[nodiscard]] std::string Serialize() const;
  [[nodiscard]] static common::Result<ObjectMetadata> Parse(
      const std::string& serialized);
};

/// row_key = MD5(container | key).
[[nodiscard]] std::string MakeRowKey(const std::string& container,
                                     const std::string& key);

/// skey = MD5(container | key | UUID).
[[nodiscard]] std::string MakeStorageKey(const std::string& container,
                                         const std::string& key,
                                         const common::Uuid& uuid);

}  // namespace scalia::core
