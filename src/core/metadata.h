// Object metadata, as stored in the database layer (Fig. 11).
//
// One metadata record couples the file metadata (name, MIME, checksum,
// size, policy) with the striping metadata (chunk -> provider mapping, the
// threshold m, and the storage key skey).  Keys follow §III-D.1:
//   row_key = MD5(container | key)
//   skey    = MD5(container | key | UUID)
// and chunks live at the providers under "<skey>.<chunk_index>".
#pragma once

#include <string>
#include <vector>

#include "common/md5.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/units.h"
#include "common/uuid.h"
#include "provider/types.h"

namespace scalia::core {

struct StripeEntry {
  std::uint32_t chunk_index = 0;
  provider::ProviderId provider;
};

struct ObjectMetadata {
  std::string container;
  std::string key;
  std::string mime;
  common::Bytes size = 0;
  std::string checksum_hex;  // MD5 of the object bytes
  std::string rule_name;
  std::string class_id;
  common::Uuid uuid;
  std::string skey;
  int m = 0;
  std::vector<StripeEntry> stripes;
  common::SimTime created_at = 0;
  common::SimTime updated_at = 0;

  [[nodiscard]] std::size_t n() const noexcept { return stripes.size(); }

  /// Key of chunk `index` at its provider.
  [[nodiscard]] std::string ChunkKey(std::uint32_t index) const {
    return skey + "." + std::to_string(index);
  }

  /// Providers in stripe order.
  [[nodiscard]] std::vector<provider::ProviderId> Providers() const {
    std::vector<provider::ProviderId> out;
    out.reserve(stripes.size());
    for (const auto& s : stripes) out.push_back(s.provider);
    return out;
  }

  /// Line-oriented key=value serialization for the metadata table.
  [[nodiscard]] std::string Serialize() const;
  [[nodiscard]] static common::Result<ObjectMetadata> Parse(
      const std::string& serialized);
};

/// row_key = MD5(container | key).
[[nodiscard]] std::string MakeRowKey(const std::string& container,
                                     const std::string& key);

/// skey = MD5(container | key | UUID).
[[nodiscard]] std::string MakeStorageKey(const std::string& container,
                                         const std::string& key,
                                         const common::Uuid& uuid);

}  // namespace scalia::core
