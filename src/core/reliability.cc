#include "core/reliability.h"

#include <algorithm>
#include <cstdint>

namespace scalia::core {

std::vector<double> PoissonBinomialPmf(std::span<const double> p_up) {
  // pmf[k] = P(exactly k of the independent Bernoulli(p_up[i]) are 1).
  std::vector<double> pmf(p_up.size() + 1, 0.0);
  pmf[0] = 1.0;
  std::size_t considered = 0;
  for (double p : p_up) {
    ++considered;
    for (std::size_t k = considered; k-- > 0;) {
      pmf[k + 1] += pmf[k] * p;
      pmf[k] *= (1.0 - p);
    }
  }
  return pmf;
}

int GetThreshold(std::span<const double> durabilities, double required) {
  const int n = static_cast<int>(durabilities.size());
  if (n == 0) return 0;
  // No finite provider set delivers certainty; guard explicitly because the
  // accumulated CDF rounds to 1.0 in double precision.
  if (required >= 1.0) return 0;
  // Distribution of the number of *failed* providers: failure probability
  // of provider i is 1 - durability_i.
  std::vector<double> p_fail;
  p_fail.reserve(durabilities.size());
  for (double d : durabilities) p_fail.push_back(1.0 - d);
  const std::vector<double> pmf = PoissonBinomialPmf(p_fail);

  double cdf = 0.0;
  for (int failures_ok = 0; failures_ok < n; ++failures_ok) {
    cdf += pmf[static_cast<std::size_t>(failures_ok)];
    if (cdf >= required) return n - failures_ok;
  }
  return 0;  // even tolerating n-1 failures cannot reach the target
}

namespace {

/// Enumerates all k-subsets of {0..n-1}, invoking `fn` with each subset as
/// a membership bitmask.
template <typename Fn>
void ForEachCombination(int n, int k, Fn&& fn) {
  if (k > n) return;
  std::vector<int> idx(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (;;) {
    std::uint64_t mask = 0;
    for (int i : idx) mask |= (1ull << static_cast<unsigned>(i));
    fn(mask);
    // Advance to the next combination.
    int i = k - 1;
    while (i >= 0 &&
           idx[static_cast<std::size_t>(i)] == i + n - k) {
      --i;
    }
    if (i < 0) break;
    ++idx[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace

int GetThresholdCombinatorial(std::span<const double> durabilities,
                              double required) {
  // Direct transcription of Algorithm 2: `dura` accumulates the probability
  // that at most `failuresOK` providers fail; the loop stops once the
  // durability target is met or every provider is allowed to fail.
  const int n = static_cast<int>(durabilities.size());
  if (n == 0) return 0;
  if (required >= 1.0) return 0;
  double dura = 0.0;
  int failures_ok = -1;
  while (dura < required && failures_ok < n) {
    ++failures_ok;
    if (failures_ok == n) break;
    double up_p = 0.0;
    ForEachCombination(n, failures_ok, [&](std::uint64_t failed_mask) {
      double up_p_comb = 1.0;
      for (int p = 0; p < n; ++p) {
        const double d = durabilities[static_cast<std::size_t>(p)];
        if (failed_mask & (1ull << static_cast<unsigned>(p))) {
          up_p_comb *= (1.0 - d);
        } else {
          up_p_comb *= d;
        }
      }
      up_p += up_p_comb;
    });
    dura += up_p;
  }
  if (dura < required) return 0;
  return n - failures_ok;
}

double ProbAtLeastKUp(std::span<const double> p_up, int k) {
  if (k <= 0) return 1.0;
  if (static_cast<std::size_t>(k) > p_up.size()) return 0.0;
  const std::vector<double> pmf = PoissonBinomialPmf(p_up);
  double tail = 0.0;
  for (std::size_t i = static_cast<std::size_t>(k); i < pmf.size(); ++i) {
    tail += pmf[i];
  }
  return std::min(1.0, tail);
}

double GetAvailability(std::span<const double> availabilities,
                       int threshold_m) {
  return ProbAtLeastKUp(availabilities, threshold_m);
}

}  // namespace scalia::core
