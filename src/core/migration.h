// Migration cost-benefit analysis (§III-A.3, §IV-E).
//
// A better provider set is adopted only "if the cost of migration is
// covered by the benefits of migrating to the new provider".  The planner
// prices the chunk movements a migration implies:
//   * same (m, n) structure — only the chunks of providers leaving the set
//     are rebuilt: read m chunks from the cheapest readable sources, write
//     |new \ old| chunks (the cheap "active repair" path);
//   * changed structure — the object is re-encoded: read m chunks, write
//     all n' new chunks, delete the old ones;
// and compares that one-off cost with the per-period savings integrated
// over the object's expected remaining lifetime.
#pragma once

#include <span>
#include <vector>

#include "common/money.h"
#include "core/placement.h"
#include "core/price_model.h"

namespace scalia::core {

struct MigrationAssessment {
  bool worthwhile = false;          // benefit > cost
  bool structure_changed = false;   // m or n differ => full re-encode
  common::Money migration_cost;
  common::Money benefit;            // savings over remaining lifetime
  std::size_t chunks_written = 0;
  std::size_t chunks_read = 0;
  std::size_t chunks_deleted = 0;
};

class MigrationPlanner {
 public:
  explicit MigrationPlanner(PriceModel model) : model_(std::move(model)) {}

  /// Prices moving the object from (current_set, current_m) to `target`.
  /// `readable` lists the providers chunks can currently be fetched from
  /// (excludes failed providers); `per_period` and `remaining_periods`
  /// drive the benefit side.
  [[nodiscard]] MigrationAssessment Assess(
      std::span<const provider::ProviderSpec> current_set, int current_m,
      const PlacementDecision& target,
      std::span<const provider::ProviderSpec> readable,
      common::Bytes object_size, const stats::PeriodStats& per_period,
      std::size_t remaining_periods) const;

  /// Pure migration cost (the one-off part of Assess).
  [[nodiscard]] MigrationAssessment CostOnly(
      std::span<const provider::ProviderSpec> current_set, int current_m,
      const PlacementDecision& target,
      std::span<const provider::ProviderSpec> readable,
      common::Bytes object_size) const;

 private:
  PriceModel model_;
};

}  // namespace scalia::core
