// Storage rules: the customer-facing SLA knobs (§II-B, Fig. 2).
//
// A rule specifies the minimum durability and availability, the permitted
// geographic zones, and the lock-in factor obj[lockin] = 1/N_obj where
// N_obj is the minimum number of distinct providers the object must span
// (Eq. 1).  Rules can be attached as a default, per object class, or per
// object.
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "provider/types.h"

namespace scalia::core {

struct StorageRule {
  std::string name = "default";
  double durability = 0.9999;     // required fraction, e.g. 0.999999
  double availability = 0.999;    // required fraction
  provider::ZoneSet allowed_zones = provider::ZoneSet::All();
  double lockin = 1.0;            // max lock-in factor in (0, 1]

  /// Optional lifetime indication the user may provide at write time
  /// (§III-A: "An indication of the object lifetime may be provided by the
  /// end user at write time").
  std::optional<common::Duration> ttl_hint;

  /// Minimum number of distinct providers implied by the lock-in factor:
  /// the smallest N with 1/N <= lockin.
  [[nodiscard]] std::size_t MinProviders() const {
    if (lockin >= 1.0) return 1;
    return static_cast<std::size_t>(std::ceil(1.0 / lockin - 1e-12));
  }

  /// Whether `zones` (a provider's operating zones) satisfies this rule.
  /// A provider is eligible when it operates in at least one allowed zone.
  [[nodiscard]] bool ZoneEligible(provider::ZoneSet zones) const {
    return allowed_zones.Intersects(zones);
  }
};

/// The three example rules of Fig. 2.
[[nodiscard]] inline std::vector<StorageRule> PaperRules() {
  using provider::Zone;
  return {
      StorageRule{.name = "rule1",
                  .durability = 0.999999,
                  .availability = 0.9999,
                  .allowed_zones = {Zone::kEU, Zone::kUS},
                  .lockin = 0.3,
                  .ttl_hint = std::nullopt},
      StorageRule{.name = "rule2",
                  .durability = 0.99999,
                  .availability = 0.9999,
                  .allowed_zones = {Zone::kEU},
                  .lockin = 1.0,
                  .ttl_hint = std::nullopt},
      StorageRule{.name = "rule3",
                  .durability = 0.9999,
                  .availability = 0.9999,
                  .allowed_zones = provider::ZoneSet::All(),
                  .lockin = 0.2,
                  .ttl_hint = std::nullopt},
  };
}

}  // namespace scalia::core
