#include "core/engine.h"

#include <algorithm>
#include <set>

#include "common/log.h"
#include "durability/journal.h"
#include "erasure/chunker.h"
#include "filter/pipeline.h"

namespace scalia::core {

namespace {

PriceModel MakeModel(const EngineConfig& config) {
  return PriceModel(
      PriceModelConfig{.sampling_period = config.sampling_period,
                       .billing = config.billing});
}

/// The gateway scopes containers as "<tenant>:<container>"; the tenant
/// prefix keys the filter pipeline's per-tenant envelope encryption.  A
/// container without the separator (direct engine use) is its own tenant.
std::string TenantOf(const std::string& container) {
  return container.substr(0, container.find(':'));
}

}  // namespace

Engine::Engine(std::string id, provider::ProviderRegistry* registry,
               store::ReplicatedStore* db, store::ReplicaId dc,
               cache::CacheLayer* cache, stats::StatsDb* stats_db,
               stats::LogAgent* log_agent, common::ThreadPool* pool,
               EngineConfig config, std::uint64_t seed)
    : id_(std::move(id)),
      registry_(registry),
      db_(db),
      dc_(dc),
      cache_(cache),
      stats_db_(stats_db),
      log_agent_(log_agent),
      pool_(pool),
      config_(config),
      search_(MakeModel(config)),
      migration_(MakeModel(config)),
      uuid_rng_(seed) {}

std::vector<common::Bytes> Engine::FreeCapacities(
    const std::vector<provider::ProviderSpec>& specs) const {
  bool any_limited = false;
  std::vector<common::Bytes> free;
  free.reserve(specs.size());
  for (const auto& spec : specs) {
    if (!spec.capacity) {
      free.push_back(std::numeric_limits<common::Bytes>::max());
      continue;
    }
    any_limited = true;
    const auto* store = registry_->Find(spec.id);
    const common::Bytes used = store != nullptr ? store->StoredBytes() : 0;
    free.push_back(*spec.capacity > used ? *spec.capacity - used : 0);
  }
  return any_limited ? free : std::vector<common::Bytes>{};
}

stats::PeriodStats Engine::ForecastUsage(const std::string& row_key,
                                         const std::string& class_id,
                                         common::Bytes size) const {
  const stats::AccessHistory history = stats_db_->GetHistory(row_key);
  if (!history.empty()) {
    return history.AverageOver(config_.default_decision_periods);
  }
  // First placement: fall back to the class statistics (Fig. 6) so the
  // probability that the first placement is already optimal increases.
  if (const auto* cls = stats_db_->classes().Find(class_id)) {
    if (auto mean = cls->MeanUsage()) {
      stats::PeriodStats forecast = *mean;
      forecast.storage_gb = common::ToGB(size);  // this object's footprint
      return forecast;
    }
  }
  // No statistics at all: a storage-only guess (cold data until proven hot).
  stats::PeriodStats forecast;
  forecast.storage_gb = common::ToGB(size);
  return forecast;
}

PlacementDecision Engine::ChoosePlacement(
    common::SimTime now, const StorageRule& rule, common::Bytes size,
    const stats::PeriodStats& per_period, std::size_t decision_periods,
    const std::vector<provider::ProviderId>& exclude,
    double reduction_ratio) const {
  std::vector<provider::ProviderSpec> specs = registry_->AvailableSpecs(now);
  if (!exclude.empty()) {
    std::erase_if(specs, [&](const provider::ProviderSpec& s) {
      return std::find(exclude.begin(), exclude.end(), s.id) != exclude.end();
    });
  }
  PlacementRequest request;
  request.rule = rule;
  request.object_size = size;
  request.per_period = per_period;
  request.decision_periods = decision_periods;
  request.free_capacity = FreeCapacities(specs);
  request.reduction_ratio = reduction_ratio;
  return search_.FindBest(specs, request);
}

double Engine::ClassReductionRatio(const std::string& class_id) const {
  if (filters_ == nullptr) return 1.0;
  if (const auto* cls = stats_db_->classes().Find(class_id)) {
    if (auto ratio = cls->MeanReductionRatio()) return *ratio;
  }
  return 1.0;
}

common::Result<std::vector<StripeEntry>> Engine::WriteChunks(
    common::SimTime now, const PlacementDecision& decision,
    const std::string& skey, const std::string& data,
    std::vector<provider::ProviderId>* failed_providers) {
  auto chunks = erasure::Chunker::Split(
      data, static_cast<std::size_t>(decision.m), decision.providers.size());
  if (!chunks.ok()) return chunks.status();

  std::vector<StripeEntry> stripes(decision.providers.size());
  std::vector<common::Status> statuses(decision.providers.size());
  auto write_one = [&](std::size_t i) {
    const auto& spec = decision.providers[i];
    auto* store = registry_->Find(spec.id);
    if (store == nullptr) {
      statuses[i] = common::Status::NotFound("provider " + spec.id + " gone");
      return;
    }
    const std::string chunk_key =
        skey + "." + std::to_string((*chunks)[i].index);
    statuses[i] = store->Put(now, chunk_key, (*chunks)[i].Serialize());
    stripes[i] =
        StripeEntry{.chunk_index = (*chunks)[i].index, .provider = spec.id};
  };
  if (pool_ != nullptr && decision.providers.size() > 1) {
    pool_->ParallelFor(decision.providers.size(), write_one);
  } else {
    for (std::size_t i = 0; i < decision.providers.size(); ++i) write_one(i);
  }
  common::Status failure = common::Status::Ok();
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    if (statuses[i].ok()) continue;
    if (failure.ok()) failure = statuses[i];
    if (failed_providers != nullptr) {
      failed_providers->push_back(decision.providers[i].id);
    }
  }
  if (!failure.ok()) return failure;
  return stripes;
}

common::Status Engine::Put(common::SimTime now, const std::string& container,
                           const std::string& key, std::string data,
                           const std::string& mime,
                           std::optional<StorageRule> rule) {
  const std::string row_key = MakeRowKey(container, key);
  const StorageRule effective_rule = rule.value_or(config_.default_rule);
  const auto size = static_cast<common::Bytes>(data.size());
  const std::string class_id = stats::ClassifyObject(mime, size);

  // Filter pipeline: chunk/dedup/compress/encrypt the body per the rule's
  // configured stage.  `size` and everything statistics-facing stay
  // LOGICAL; only the stored body and meta.size become physical.  The
  // returned dedup refs are acquired — every failure path from here to the
  // metadata commit must release them.
  filter::EncodeResult encoded;
  encoded.blob = std::move(data);
  if (filters_ != nullptr) {
    auto enc = filters_->Encode(TenantOf(container), effective_rule.name,
                                encoded.blob);
    if (!enc.ok()) return enc.status();
    encoded = std::move(*enc);
  }
  const std::string& body = encoded.blob;
  const auto stored_size = static_cast<common::Bytes>(body.size());
  const bool filtered = encoded.stage != filter::FilterStage::kNone;
  auto release_refs = [&] {
    if (filters_ != nullptr && !encoded.refs.empty()) {
      filters_->ReleaseRefs(encoded.refs);
    }
  };

  // Decision horizon: the user's TTL hint, else the class's expected
  // lifetime, else the configured default.
  std::size_t decision_periods = config_.default_decision_periods;
  if (effective_rule.ttl_hint) {
    decision_periods = static_cast<std::size_t>(std::max<common::Duration>(
        1, *effective_rule.ttl_hint / config_.sampling_period));
  } else if (const auto* cls = stats_db_->classes().Find(class_id);
             cls != nullptr && cls->lifetime_samples() > 0) {
    decision_periods = static_cast<std::size_t>(std::max<common::Duration>(
        1, cls->ExpectedLifetime() / config_.sampling_period));
  }

  const stats::PeriodStats forecast = ForecastUsage(row_key, class_id, size);

  // Place, tolerating provider failures during the writes: on a failed
  // write, recompute the best placement without the faulty provider
  // (§III-D.3) and retry.
  std::vector<provider::ProviderId> exclude;
  PlacementDecision decision;
  std::vector<StripeEntry> stripes;
  common::Uuid uuid;
  std::string skey;
  for (;;) {
    decision = ChoosePlacement(now, effective_rule, size, forecast,
                               decision_periods, exclude,
                               ClassReductionRatio(class_id));
    if (!decision.feasible) {
      release_refs();
      return common::Status::FailedPrecondition(
          "no provider set satisfies rule '" + effective_rule.name +
          "' for object " + container + "/" + key);
    }
    {
      common::MutexLock lock(uuid_mu_);
      uuid = common::Uuid::Generate(uuid_rng_);
    }
    skey = MakeStorageKey(container, key, uuid);
    std::vector<provider::ProviderId> failed_writes;
    auto written = WriteChunks(now, decision, skey, body, &failed_writes);
    if (written.ok()) {
      stripes = std::move(*written);
      break;
    }
    // A failed attempt may have landed some chunks at healthy providers;
    // sweep them before retrying under a fresh storage key (or bailing),
    // or they leak as billed-but-unreferenced storage.
    {
      ObjectMetadata attempt;
      attempt.container = container;
      attempt.key = key;
      attempt.skey = skey;
      SweepPartialStage(now, std::move(attempt), decision);
    }
    if (written.status().code() != common::StatusCode::kUnavailable) {
      release_refs();
      return written.status();
    }
    // Identify newly faulty providers and retry without them.  A provider
    // counts as faulty when it is dark (IsAvailable false) *or* when its
    // chunk write failed even though it claims to be reachable — a brownout
    // dropping a fraction of ops looks exactly like that.
    bool excluded_any = false;
    auto exclude_id = [&](const provider::ProviderId& id) {
      if (std::find(exclude.begin(), exclude.end(), id) == exclude.end()) {
        exclude.push_back(id);
        excluded_any = true;
      }
    };
    for (const auto& spec : decision.providers) {
      auto* store = registry_->Find(spec.id);
      if (store != nullptr && !store->IsAvailable(now)) exclude_id(spec.id);
    }
    for (const auto& id : failed_writes) exclude_id(id);
    if (!excluded_any) {
      release_refs();
      return written.status();
    }
  }

  // The previous state only decides created_at and created-vs-updated
  // statistics; chunk GC below works off what the commit *actually*
  // superseded, because a migration may commit a fresher placement between
  // this load and the write below.
  auto previous = LoadMetadata(now, row_key);

  ObjectMetadata meta;
  meta.container = container;
  meta.key = key;
  meta.mime = mime;
  meta.size = stored_size;
  meta.checksum_hex = common::Md5::HexHash(body);
  meta.rule_name = effective_rule.name;
  meta.class_id = class_id;
  meta.uuid = uuid;
  meta.skey = skey;
  meta.m = decision.m;
  meta.stripes = std::move(stripes);
  meta.created_at = previous.ok() ? previous->created_at : now;
  meta.updated_at = now;
  if (filtered) {
    meta.logical_size = size;
    meta.filter_stage = static_cast<int>(encoded.stage);
    meta.dedup_refs = encoded.refs;
  }

  // Chunk payloads journal BEFORE the metadata row that references them:
  // the WAL's only failure mode is suffix loss, so a crash can lose a
  // reference to a surviving chunk but never a chunk under a surviving
  // reference.  A failed append aborts the put — the row was never
  // committed, so sweep the staged provider chunks and drop the refs.
  if (journal_ != nullptr) {
    for (auto& chunk : encoded.new_chunks) {
      if (auto s = journal_->LogFilterChunk(chunk.hash,
                                            std::move(chunk.payload), now);
          !s.ok()) {
        ObjectMetadata staged;
        staged.container = container;
        staged.key = key;
        staged.skey = skey;
        SweepPartialStage(now, std::move(staged), decision);
        release_refs();
        return s;
      }
    }
  }

  const std::string serialized = meta.Serialize();
  auto superseded = db_->Put(dc_, "metadata", row_key, serialized, now);
  if (!superseded.ok()) {
    release_refs();
    return superseded.status();
  }
  // Journal the committed mutation *before* the destructive side effect
  // below: were the old chunks deleted first and the record lost, recovery
  // would resurrect metadata pointing at chunks that no longer exist.  A
  // journal failure therefore skips only the old-chunk GC (a bounded leak);
  // the mutation is committed, so every other post-commit effect — stats,
  // cache invalidation, access logging — must still happen.
  common::Status journaled = common::Status::Ok();
  if (journal_ != nullptr) {
    journaled = journal_->LogUpsert(row_key, serialized, now,
                                    superseded->committed.clock);
  }

  if (journaled.ok()) {
    // Update: discard the chunks of exactly the placements this commit
    // superseded (§III-D.1) — not a pre-read snapshot, which a migration
    // committing in between would make stale (orphaning its chunks).  The
    // superseded versions' dedup refs die with them.
    for (const auto& old : superseded->superseded) {
      if (old.tombstone) continue;
      if (auto old_meta = ObjectMetadata::Parse(old.value); old_meta.ok()) {
        DeleteChunks(now, *old_meta);
        if (filters_ != nullptr) filters_->ReleaseRefs(old_meta->dedup_refs);
      }
    }
  }
  if (!previous.ok()) {
    stats_db_->RecordObjectCreated(row_key, class_id, size, now);
  }
  stats_db_->TouchObject(row_key, now);
  if (filtered) {
    // Close the loop: the achieved reduction feeds the class's mean ratio,
    // which the next placement of this class prices with (see
    // ChoosePlacement's reduction_ratio).
    stats_db_->classes().ForClass(class_id).RecordReduction(size, stored_size);
  }

  if (cache_ != nullptr) cache_->InvalidateEverywhere(row_key);
  if (log_agent_ != nullptr) {
    log_agent_->Log({.row_key = row_key,
                     .kind = stats::AccessKind::kWrite,
                     .bytes = size,
                     .timestamp = now});
  }
  SCALIA_LOG(common::LogLevel::kInfo, "engine")
      << id_ << " put " << container << "/" << key << " -> "
      << decision.Label();
  return journaled;
}

common::Result<ObjectMetadata> Engine::LoadMetadata(
    common::SimTime now, const std::string& row_key) {
  auto versioned = LoadMetadataVersioned(now, row_key);
  if (!versioned.ok()) return versioned.status();
  return std::move(versioned->meta);
}

common::Result<Engine::VersionedMetadata> Engine::LoadMetadataVersioned(
    common::SimTime now, const std::string& row_key) {
  auto read = db_->Get(dc_, "metadata", row_key);
  if (!read.ok()) return read.status();
  if (read->tombstone) {
    return common::Status::NotFound("object deleted");
  }
  if (read->conflict) {
    // Concurrent writes in different datacenters: resolve last-writer-wins
    // and GC the losing versions' chunks (Fig. 10).
    auto losers = db_->Resolve(dc_, "metadata", row_key);
    if (losers.ok()) {
      for (const auto& loser : *losers) {
        if (loser.tombstone) continue;
        if (auto meta = ObjectMetadata::Parse(loser.value); meta.ok()) {
          DeleteChunks(now, *meta);
          if (filters_ != nullptr) filters_->ReleaseRefs(meta->dedup_refs);
        }
      }
    }
    read = db_->Get(dc_, "metadata", row_key);
    if (!read.ok()) return read.status();
    if (read->tombstone) {
      return common::Status::NotFound("object deleted");
    }
  }
  auto meta = ObjectMetadata::Parse(read->value);
  if (!meta.ok()) return meta.status();
  return VersionedMetadata{std::move(*meta), std::move(read->clock)};
}

common::Result<std::string> Engine::ReadChunks(common::SimTime now,
                                               const ObjectMetadata& meta) {
  // Rank stripe providers by read cost and fetch the m cheapest in one
  // parallel wave ("other criteria can be considered").  Any miss — dark
  // provider, brownout error, corrupt blob — degrades the read: the
  // remaining n-m stripes are fanned out in parallel and the object is
  // reconstructed inline from any k = m chunks.
  std::vector<provider::ProviderSpec> specs;
  std::vector<std::uint32_t> chunk_indices;
  for (const auto& stripe : meta.stripes) {
    auto* store = registry_->Find(stripe.provider);
    if (store == nullptr) continue;
    specs.push_back(store->spec());
    chunk_indices.push_back(stripe.chunk_index);
  }
  const auto m = static_cast<std::size_t>(meta.m);
  if (specs.size() < m) {
    return common::Status::Unavailable("fewer than m providers known");
  }
  const double chunk_gb =
      common::ToGB(common::CeilDiv(meta.size, static_cast<common::Bytes>(
                                                  std::max(1, meta.m))));
  const PriceModel& model = search_.model();
  auto order = model.CheapestReadProviders(specs, static_cast<int>(specs.size()),
                                           chunk_gb);

  std::vector<std::optional<erasure::Chunk>> fetched(order.size());
  auto fetch_wave = [&](const std::vector<std::size_t>& wave) {
    auto fetch_one = [&](std::size_t w) {
      const std::size_t rank = wave[w];
      auto* store = registry_->Find(specs[rank].id);
      if (store == nullptr || !store->IsAvailable(now)) return;
      auto blob = store->Get(now, meta.ChunkKey(chunk_indices[rank]));
      if (!blob.ok()) return;
      auto chunk = erasure::Chunk::Deserialize(*blob);
      if (!chunk.ok()) return;
      fetched[rank] = std::move(*chunk);
    };
    if (pool_ != nullptr && wave.size() > 1) {
      pool_->ParallelFor(wave.size(), fetch_one);
    } else {
      for (std::size_t w = 0; w < wave.size(); ++w) fetch_one(w);
    }
  };

  // Preferred wave: the m cheapest stripes.
  std::vector<std::size_t> preferred(order.begin(),
                                     order.begin() + static_cast<long>(m));
  fetch_wave(preferred);

  std::size_t have = 0;
  for (const auto& c : fetched) have += c.has_value() ? 1 : 0;
  const bool degraded = have < m;
  if (degraded) {
    // Degraded read: fan out to every stripe not yet fetched.
    degraded_reads_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::size_t> fallback;
    for (std::size_t rank : order) {
      if (!fetched[rank].has_value()) fallback.push_back(rank);
    }
    fetch_wave(fallback);
    have = 0;
    for (const auto& c : fetched) have += c.has_value() ? 1 : 0;
    if (have < m) {
      return common::Status::Unavailable(
          "only " + std::to_string(have) + " of required " +
          std::to_string(m) + " chunks reachable");
    }
  }

  std::vector<erasure::Chunk> chunks;
  chunks.reserve(have);
  bool used_parity = false;
  for (auto& c : fetched) {
    if (!c.has_value()) continue;
    if (chunks.size() >= m) break;
    used_parity |= c->index >= static_cast<std::uint32_t>(meta.m);
    chunks.push_back(std::move(*c));
  }
  if (degraded && used_parity) {
    reconstructions_.fetch_add(1, std::memory_order_relaxed);
  }
  return erasure::Chunker::Join(chunks);
}

common::Result<std::string> Engine::Get(common::SimTime now,
                                        const std::string& container,
                                        const std::string& key) {
  const std::string row_key = MakeRowKey(container, key);
  if (cache_ != nullptr) {
    if (auto hit = cache_->Get(row_key)) {
      if (log_agent_ != nullptr) {
        log_agent_->Log({.row_key = row_key,
                         .kind = stats::AccessKind::kRead,
                         .bytes = static_cast<common::Bytes>(hit->size()),
                         .timestamp = now});
      }
      stats_db_->TouchObject(row_key, now);
      return *hit;
    }
  }
  auto meta = LoadMetadata(now, row_key);
  if (!meta.ok()) return meta.status();
  auto data = ReadChunks(now, *meta);
  if (!data.ok()) return data.status();
  if (meta->filter_stage != 0) {
    // The reassembled blob is filter-encoded; decode back to the logical
    // bytes before anything downstream (cache, access log, the client)
    // sees it.  The metadata row — not the blob's magic — is the source of
    // truth for whether decoding applies.
    if (filters_ == nullptr) {
      return common::Status::FailedPrecondition(
          "object " + container + "/" + key +
          " is filter-encoded but no filter pipeline is attached");
    }
    auto decoded = filters_->Decode(TenantOf(container), *data);
    if (!decoded.ok()) return decoded.status();
    data = std::move(decoded);
  }
  if (cache_ != nullptr) cache_->Fill(row_key, *data);
  if (log_agent_ != nullptr) {
    log_agent_->Log({.row_key = row_key,
                     .kind = stats::AccessKind::kRead,
                     .bytes = static_cast<common::Bytes>(data->size()),
                     .timestamp = now});
  }
  stats_db_->TouchObject(row_key, now);
  return data;
}

void Engine::DeleteChunks(common::SimTime now, const ObjectMetadata& meta) {
  for (const auto& stripe : meta.stripes) {
    auto* store = registry_->Find(stripe.provider);
    const std::string chunk_key = meta.ChunkKey(stripe.chunk_index);
    if (store == nullptr || !store->IsAvailable(now)) {
      common::MutexLock lock(pending_mu_);
      pending_deletes_.push_back({stripe.provider, chunk_key});
      continue;
    }
    const auto status = store->Delete(now, chunk_key);
    if (status.code() == common::StatusCode::kUnavailable) {
      common::MutexLock lock(pending_mu_);
      pending_deletes_.push_back({stripe.provider, chunk_key});
    }
  }
}

void Engine::SweepPartialStage(common::SimTime now, ObjectMetadata staged,
                               const PlacementDecision& target) {
  // Mirrors WriteChunks' convention: chunk index i goes to target provider
  // i (erasure::Chunker::Split numbers chunks by position).
  staged.stripes.clear();
  for (std::size_t i = 0; i < target.providers.size(); ++i) {
    staged.stripes.push_back(
        StripeEntry{.chunk_index = static_cast<std::uint32_t>(i),
                    .provider = target.providers[i].id});
  }
  DeleteChunks(now, staged);
}

common::Status Engine::CommitReplacement(common::SimTime now,
                                         const std::string& row_key,
                                         const ObjectMetadata& staged,
                                         const ObjectMetadata& staged_gc,
                                         const store::VectorClock& expected,
                                         bool is_repair) {
  if (commit_race_hook_) commit_race_hook_();
  const std::string serialized = staged.Serialize();
  auto cas =
      db_->PutIfLatest(dc_, "metadata", row_key, serialized, now, expected);
  if (!cas.ok()) {
    // The commit never reached the table (e.g. datacenter down): the staged
    // chunks are unreferenced — sweep them and surface the error.
    DeleteChunks(now, staged_gc);
    return cas.status();
  }
  if (!cas->applied) {
    // Lost the race: a causally-fresher Put/Delete of this key committed
    // after our snapshot.  Journal the abort before the sweep (a crash in
    // between leaves a record of what to sweep, and replay must never apply
    // the staged placement), then GC only the *staged* chunks — the acked
    // write's chunks are untouched.  The record carries `staged_gc`, the
    // exact sweep set: for a swap repair that is only the rebuilt stripes,
    // never the healthy chunks sharing the storage key.
    if (journal_ != nullptr) {
      (void)journal_->LogMigrateAbort(row_key, staged_gc.Serialize(), now);
    }
    DeleteChunks(now, staged_gc);
    SCALIA_LOG(common::LogLevel::kInfo, "engine")
        << id_ << (is_repair ? " repair of " : " migration of ") << row_key
        << " aborted: lost CAS commit to a concurrent write";
    return common::Status::Conflict(
        std::string(is_repair ? "repair" : "migration") +
        " lost the race to a concurrent write of " + row_key);
  }
  // Committed.  Journal before the caller's destructive old-chunk GC
  // (write-ahead of the destructive side effect); a journal failure keeps
  // the old chunks so an un-journaled re-placement stays recoverable.  The
  // committed clock rides along so replay stays causal even when a racing
  // writer's record reaches the WAL first.
  if (journal_ != nullptr) {
    const store::VectorClock& clock = cas->committed->clock;
    if (auto s =
            is_repair ? journal_->LogRepair(row_key, serialized, now, clock)
                      : journal_->LogMigrate(row_key, serialized, now, clock);
        !s.ok()) {
      return s;
    }
  }
  return common::Status::Ok();
}

common::Status Engine::Delete(common::SimTime now,
                              const std::string& container,
                              const std::string& key) {
  const std::string row_key = MakeRowKey(container, key);
  auto meta = LoadMetadata(now, row_key);
  if (!meta.ok()) return meta.status();
  // Tombstone and journal first, then delete chunks: the WAL must know the
  // object is gone before its chunks are (chunk deletion at unreachable
  // providers is deferred anyway).  On a journal failure the chunks stay (a
  // recovery without the tombstone record resurrects the object intact),
  // but the committed tombstone's other effects still apply.
  auto superseded = db_->Delete(dc_, "metadata", row_key, now);
  if (!superseded.ok()) return superseded.status();
  common::Status journaled = common::Status::Ok();
  if (journal_ != nullptr) {
    journaled =
        journal_->LogDelete(row_key, now, superseded->committed.clock);
  }
  if (journaled.ok()) {
    // GC what the tombstone actually superseded, which may be a placement
    // a migration committed after our load (see Put).  Dedup refs die with
    // the version; the index frees chunks whose last reference this was.
    for (const auto& old : superseded->superseded) {
      if (old.tombstone) continue;
      if (auto old_meta = ObjectMetadata::Parse(old.value); old_meta.ok()) {
        DeleteChunks(now, *old_meta);
        if (filters_ != nullptr) filters_->ReleaseRefs(old_meta->dedup_refs);
      }
    }
  }
  stats_db_->RecordObjectDeleted(row_key, now);
  if (cache_ != nullptr) cache_->InvalidateEverywhere(row_key);
  if (log_agent_ != nullptr) {
    log_agent_->Log({.row_key = row_key,
                     .kind = stats::AccessKind::kDelete,
                     .bytes = 0,
                     .timestamp = now});
  }
  return journaled;
}

common::Result<std::vector<std::string>> Engine::List(
    common::SimTime now, const std::string& container) {
  // The metadata table is keyed by MD5(container|key), so enumerate via the
  // stats index (objects carry their container in metadata).
  (void)now;
  const store::KvTable* table = db_->Table(dc_, "metadata");
  if (table == nullptr) return std::vector<std::string>{};
  std::vector<std::string> keys;
  for (std::size_t shard = 0; shard < store::KvTable::kShards; ++shard) {
    table->VisitShard(shard, [&](const std::string&, const store::Version& v) {
      auto meta = ObjectMetadata::Parse(v.value);
      if (meta.ok() && meta->container == container) {
        keys.push_back(meta->key);
      }
    });
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

common::Result<PlacementDecision> Engine::EvaluatePlacement(
    common::SimTime now, const std::string& row_key,
    std::size_t decision_periods) {
  auto meta = LoadMetadata(now, row_key);
  if (!meta.ok()) return meta.status();
  const stats::AccessHistory history = stats_db_->GetHistory(row_key);
  stats::PeriodStats per_period = history.AverageOver(decision_periods);
  if (history.empty()) {
    per_period = ForecastUsage(row_key, meta->class_id, meta->LogicalSize());
  }
  // Usage terms stay logical (the access log records logical bytes); the
  // class's reduction ratio scales them to billable inside the search.
  per_period.storage_gb = common::ToGB(meta->LogicalSize());
  StorageRule rule = config_.default_rule;
  for (const auto& candidate : PaperRules()) {
    if (candidate.name == meta->rule_name) {
      rule = candidate;
      break;
    }
  }
  return ChoosePlacement(now, rule, meta->size, per_period, decision_periods,
                         {}, ClassReductionRatio(meta->class_id));
}

common::Result<bool> Engine::ReoptimizeObject(common::SimTime now,
                                              const std::string& row_key,
                                              std::size_t decision_periods) {
  // Snapshot the metadata *and* its row version: the snapshot clock is the
  // CAS expectation everything below commits against.
  auto versioned = LoadMetadataVersioned(now, row_key);
  if (!versioned.ok()) return versioned.status();
  const ObjectMetadata& meta = versioned->meta;

  const stats::AccessHistory history = stats_db_->GetHistory(row_key);
  stats::PeriodStats per_period = history.AverageOver(decision_periods);
  if (history.empty()) {
    per_period = ForecastUsage(row_key, meta.class_id, meta.LogicalSize());
  }
  per_period.storage_gb = common::ToGB(meta.LogicalSize());

  // Rule reconstruction: the engine stores the rule name with the object;
  // the default rule applies unless a named paper rule matches.
  StorageRule rule = config_.default_rule;
  for (const auto& candidate : PaperRules()) {
    if (candidate.name == meta.rule_name) {
      rule = candidate;
      break;
    }
  }

  PlacementDecision target =
      ChoosePlacement(now, rule, meta.size, per_period, decision_periods, {},
                      ClassReductionRatio(meta.class_id));
  if (!target.feasible) {
    return common::Status::FailedPrecondition("no feasible placement");
  }

  // Current set's specs (as currently registered).
  std::vector<provider::ProviderSpec> current;
  for (const auto& stripe : meta.stripes) {
    if (auto* store = registry_->Find(stripe.provider)) {
      current.push_back(store->spec());
    }
  }
  PlacementDecision current_decision;
  current_decision.feasible = true;
  current_decision.providers = current;
  current_decision.m = meta.m;
  if (target.SamePlacement(current_decision)) return false;

  // Expected remaining lifetime from the class statistics.
  std::size_t remaining = decision_periods;
  if (const auto* cls = stats_db_->classes().Find(meta.class_id);
      cls != nullptr && cls->lifetime_samples() > 0) {
    const common::Duration ttl =
        cls->ExpectedTimeLeftToLive(now - meta.created_at);
    remaining = static_cast<std::size_t>(std::max<common::Duration>(
        1, ttl / config_.sampling_period));
  }

  std::vector<provider::ProviderSpec> readable;
  for (const auto& spec : current) {
    auto* store = registry_->Find(spec.id);
    if (store != nullptr && store->IsAvailable(now)) readable.push_back(spec);
  }
  const MigrationAssessment assessment =
      migration_.Assess(current, meta.m, target, readable, meta.size,
                        per_period, remaining);
  if (!assessment.worthwhile) return false;

  // Stage the migration: reassemble and write the chunks under a *fresh*
  // storage key.  Until the CAS below commits, nothing references them, so
  // an abort only ever garbage-collects staged data.
  auto data = ReadChunks(now, meta);
  if (!data.ok()) {
    // The snapshot's chunks may be gone because a concurrent Put/Delete
    // superseded the row and GC'd them between the snapshot and this read.
    // That is a lost race, not a fault: report it as the conflict the CAS
    // commit would have hit, so optimizer error counters stay meaningful.
    // Only *observed* supersession counts — a row re-read that fails for
    // any reason other than NotFound (replica down, say) must surface the
    // original error, not masquerade as a benign conflict.
    auto current = db_->Get(dc_, "metadata", row_key);
    const bool superseded =
        current.ok() ? (current->tombstone ||
                        !(current->clock == versioned->clock))
                     : current.status().code() == common::StatusCode::kNotFound;
    if (superseded) {
      return common::Status::Conflict(
          "placement superseded by a concurrent write while staging");
    }
    return data.status();
  }

  common::Uuid uuid;
  {
    common::MutexLock lock(uuid_mu_);
    uuid = common::Uuid::Generate(uuid_rng_);
  }
  const std::string skey = MakeStorageKey(meta.container, meta.key, uuid);
  ObjectMetadata updated = meta;
  updated.uuid = uuid;
  updated.skey = skey;
  updated.m = target.m;
  updated.updated_at = now;
  auto stripes = WriteChunks(now, target, skey, *data);
  if (!stripes.ok()) {
    SweepPartialStage(now, updated, target);
    return stripes.status();
  }
  updated.stripes = std::move(*stripes);

  // Commit via CAS-on-version; a lost race aborts the migration and GCs
  // the staged chunks (never the acked object's).
  if (auto s = CommitReplacement(now, row_key, updated, updated,
                                 versioned->clock, /*is_repair=*/false);
      !s.ok()) {
    return s;
  }
  DeleteChunks(now, meta);
  SCALIA_LOG(common::LogLevel::kInfo, "engine")
      << id_ << " migrated " << meta.container << "/" << meta.key << " to "
      << target.Label();
  return true;
}

common::Status Engine::RepairObject(common::SimTime now,
                                    const std::string& row_key) {
  auto versioned = LoadMetadataVersioned(now, row_key);
  if (!versioned.ok()) return versioned.status();
  const ObjectMetadata& meta = versioned->meta;

  // Which stripes are on failed providers?
  std::vector<std::size_t> broken;
  std::vector<erasure::Chunk> healthy;
  for (std::size_t i = 0; i < meta.stripes.size(); ++i) {
    auto* store = registry_->Find(meta.stripes[i].provider);
    if (store == nullptr || !store->IsAvailable(now)) {
      broken.push_back(i);
      continue;
    }
    if (healthy.size() <
        static_cast<std::size_t>(meta.m)) {  // fetch only what decode needs
      auto blob = store->Get(now, meta.ChunkKey(meta.stripes[i].chunk_index));
      if (blob.ok()) {
        if (auto chunk = erasure::Chunk::Deserialize(*blob); chunk.ok()) {
          healthy.push_back(std::move(*chunk));
        }
      }
    }
  }
  if (broken.empty()) return common::Status::Ok();
  if (healthy.size() < static_cast<std::size_t>(meta.m)) {
    return common::Status::Unavailable("not enough healthy chunks to repair");
  }

  // Candidate replacement providers: registered, reachable, not already in
  // the stripe set, rule-compatible by construction of the original set.
  std::set<provider::ProviderId> in_use;
  for (const auto& s : meta.stripes) in_use.insert(s.provider);
  std::vector<provider::ProviderSpec> candidates;
  for (const auto& spec : registry_->AvailableSpecs(now)) {
    if (!in_use.contains(spec.id)) candidates.push_back(spec);
  }
  // Cheapest-storage-first replacement choice keeps the repair cost low.
  std::sort(candidates.begin(), candidates.end(),
            [](const provider::ProviderSpec& a,
               const provider::ProviderSpec& b) {
              if (a.pricing.storage_gb_month != b.pricing.storage_gb_month) {
                return a.pricing.storage_gb_month < b.pricing.storage_gb_month;
              }
              return a.id < b.id;
            });
  if (candidates.size() < broken.size()) {
    // No spare providers for a same-structure swap: fall back to a full
    // re-placement over the reachable market (structure may change).  The
    // new chunks are staged under a fresh storage key and committed via
    // CAS, exactly like a migration.
    auto data = erasure::Chunker::Join(healthy);
    if (!data.ok()) return data.status();
    StorageRule rule = config_.default_rule;
    for (const auto& candidate_rule : PaperRules()) {
      if (candidate_rule.name == meta.rule_name) {
        rule = candidate_rule;
        break;
      }
    }
    const stats::PeriodStats forecast =
        ForecastUsage(row_key, meta.class_id, meta.LogicalSize());
    PlacementDecision target =
        ChoosePlacement(now, rule, meta.size, forecast,
                        config_.default_decision_periods, {},
                        ClassReductionRatio(meta.class_id));
    if (!target.feasible) {
      return common::Status::Unavailable(
          "no replacement providers and no feasible re-placement");
    }
    common::Uuid uuid;
    {
      common::MutexLock lock(uuid_mu_);
      uuid = common::Uuid::Generate(uuid_rng_);
    }
    const std::string skey = MakeStorageKey(meta.container, meta.key, uuid);
    ObjectMetadata replaced = meta;
    replaced.uuid = uuid;
    replaced.skey = skey;
    replaced.m = target.m;
    replaced.updated_at = now;
    auto stripes = WriteChunks(now, target, skey, *data);
    if (!stripes.ok()) {
      SweepPartialStage(now, replaced, target);
      return stripes.status();
    }
    replaced.stripes = std::move(*stripes);
    if (auto s = CommitReplacement(now, row_key, replaced, replaced,
                                   versioned->clock, /*is_repair=*/true);
        !s.ok()) {
      return s;
    }
    DeleteChunks(now, meta);
    if (cache_ != nullptr) cache_->InvalidateEverywhere(row_key);
    return common::Status::Ok();
  }

  ObjectMetadata updated = meta;
  // Old chunks at the faulty providers are deleted when those recover —
  // but only queued once the repair is journaled, so recovery can never
  // see pre-repair metadata whose chunks the queue already destroyed.
  std::vector<PendingDelete> deferred;
  // The swap keeps the storage key, so the staged writes are only the
  // rebuilt chunks at the replacement providers; a CAS abort must sweep
  // exactly those (the surviving object's chunks stay untouched).
  ObjectMetadata staged_gc = meta;
  staged_gc.stripes.clear();
  for (std::size_t b = 0; b < broken.size(); ++b) {
    const std::size_t stripe_idx = broken[b];
    const auto target_index = meta.stripes[stripe_idx].chunk_index;
    auto rebuilt = erasure::Chunker::Repair(healthy, target_index);
    if (!rebuilt.ok()) {
      DeleteChunks(now, staged_gc);  // partial stage: sweep what landed
      return rebuilt.status();
    }
    const auto& replacement = candidates[b];
    auto* store = registry_->Find(replacement.id);
    const std::string chunk_key = meta.ChunkKey(target_index);
    if (auto s = store->Put(now, chunk_key, rebuilt->Serialize()); !s.ok()) {
      DeleteChunks(now, staged_gc);  // partial stage: sweep what landed
      return s;
    }
    deferred.push_back({meta.stripes[stripe_idx].provider, chunk_key});
    updated.stripes[stripe_idx].provider = replacement.id;
    staged_gc.stripes.push_back(updated.stripes[stripe_idx]);
  }
  updated.updated_at = now;
  if (auto s = CommitReplacement(now, row_key, updated, staged_gc,
                                 versioned->clock, /*is_repair=*/true);
      !s.ok()) {
    return s;
  }
  {
    common::MutexLock lock(pending_mu_);
    for (auto& pd : deferred) pending_deletes_.push_back(std::move(pd));
  }
  SCALIA_LOG(common::LogLevel::kInfo, "engine")
      << id_ << " repaired " << broken.size() << " chunk(s) of "
      << meta.container << "/" << meta.key;
  return common::Status::Ok();
}

std::size_t Engine::ProcessPendingDeletes(common::SimTime now) {
  std::vector<PendingDelete> pending;
  {
    common::MutexLock lock(pending_mu_);
    pending.swap(pending_deletes_);
  }
  std::size_t completed = 0;
  std::vector<PendingDelete> still_pending;
  for (auto& pd : pending) {
    auto* store = registry_->Find(pd.provider);
    if (store == nullptr) {
      ++completed;  // provider gone for good; nothing left to delete
      continue;
    }
    if (!store->IsAvailable(now)) {
      still_pending.push_back(std::move(pd));
      continue;
    }
    const auto status = store->Delete(now, pd.chunk_key);
    if (status.ok() || status.code() == common::StatusCode::kNotFound) {
      ++completed;
    } else {
      still_pending.push_back(std::move(pd));
    }
  }
  common::MutexLock lock(pending_mu_);
  for (auto& pd : still_pending) pending_deletes_.push_back(std::move(pd));
  return completed;
}

std::size_t Engine::PendingDeleteCount() const {
  common::MutexLock lock(pending_mu_);
  return pending_deletes_.size();
}

}  // namespace scalia::core
