#include "common/md5.h"

#include <cstring>

namespace scalia::common {
namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu,
    0x4787c62au, 0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu,
    0xffff5bb1u, 0x895cd7beu, 0x6b901122u, 0xfd987193u, 0xa679438eu,
    0x49b40821u, 0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u, 0x21e1cde6u,
    0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u,
    0xfde5380cu, 0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u, 0xd9d4d039u,
    0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u, 0xf4292244u, 0x432aff97u,
    0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u, 0xffeff47du,
    0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u};

constexpr std::array<int, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr std::uint32_t Rotl(std::uint32_t x, int c) noexcept {
  return (x << c) | (x >> (32 - c));
}

}  // namespace

Md5::Md5() : state_{0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u} {}

void Md5::Update(std::string_view data) { Update(data.data(), data.size()); }

void Md5::Update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;
  while (len > 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
}

void Md5::ProcessBlock(const std::uint8_t* block) {
  std::array<std::uint32_t, 16> m;
  for (int i = 0; i < 16; ++i) {
    m[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>(block[4 * i]) |
        (static_cast<std::uint32_t>(block[4 * i + 1]) << 8) |
        (static_cast<std::uint32_t>(block[4 * i + 2]) << 16) |
        (static_cast<std::uint32_t>(block[4 * i + 3]) << 24);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (std::size_t i = 0; i < 64; ++i) {
    std::uint32_t f;
    std::size_t g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + Rotl(a + f + kK[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

Md5Digest Md5::Finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  Update(&pad, 1);
  const std::uint8_t zero = 0;
  while (buffer_len_ != 56) Update(&zero, 1);
  std::array<std::uint8_t, 8> len_bytes;
  for (int i = 0; i < 8; ++i) {
    len_bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((bit_len >> (8 * i)) & 0xff);
  }
  // Update() would recount these 8 bytes into total_len_, but total_len_ is
  // no longer read after this point.
  Update(len_bytes.data(), len_bytes.size());
  Md5Digest out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      out[static_cast<std::size_t>(4 * i + j)] = static_cast<std::uint8_t>(
          (state_[static_cast<std::size_t>(i)] >> (8 * j)) & 0xff);
    }
  }
  return out;
}

Md5Digest Md5::Hash(std::string_view data) {
  Md5 h;
  h.Update(data);
  return h.Finish();
}

std::string Md5::HexHash(std::string_view data) { return ToHex(Hash(data)); }

std::string ToHex(const Md5Digest& d) {
  static constexpr char kHexChars[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint8_t b : d) {
    out.push_back(kHexChars[b >> 4]);
    out.push_back(kHexChars[b & 0xf]);
  }
  return out;
}

std::uint64_t Digest64(const Md5Digest& d) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | d[static_cast<std::size_t>(i)];
  }
  return v;
}

}  // namespace scalia::common
