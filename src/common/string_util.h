// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace scalia::common {

/// Joins `parts` with `sep`.
[[nodiscard]] std::string Join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Splits `s` on `sep` (single character); keeps empty fields.
[[nodiscard]] std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lower-casing (HTTP header names, Connection tokens — locale-free).
[[nodiscard]] std::string AsciiLower(std::string_view s);

/// Fixed-width, right-aligned rendering of a double, for benchmark tables.
[[nodiscard]] std::string FormatDouble(double v, int decimals);

}  // namespace scalia::common
