#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/mutex.h"

namespace scalia::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  MutexLock lock(mu_);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) SpawnLocked();
  active_threads_.store(workers_.size(), std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  std::vector<Worker> workers;
  {
    MutexLock lock(mu_);
    stop_ = true;
    workers = std::move(workers_);
    workers_.clear();
  }
  cv_.NotifyAll();
  for (auto& w : workers) w.thread.join();
}

void ThreadPool::SpawnLocked() {
  auto retire = std::make_shared<std::atomic<bool>>(false);
  workers_.push_back(Worker{
      std::thread([this, retire] { WorkerLoop(retire); }), retire});
}

void ThreadPool::WorkerLoop(std::shared_ptr<std::atomic<bool>> retire) {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && !retire->load(std::memory_order_relaxed) &&
             queue_.empty()) {
        cv_.Wait(mu_);
      }
      // A retiring worker leaves even with work queued: the survivors own
      // the queue, and Resize() is joining us.
      if (retire->load(std::memory_order_relaxed)) return;
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Resize(std::size_t num_threads) {
  const std::size_t target = std::max<std::size_t>(1, num_threads);
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mu_);
    if (stop_) return;
    while (workers_.size() > target) {
      workers_.back().retire->store(true, std::memory_order_relaxed);
      to_join.push_back(std::move(workers_.back().thread));
      workers_.pop_back();
    }
    while (workers_.size() < target) SpawnLocked();
    active_threads_.store(workers_.size(), std::memory_order_relaxed);
  }
  cv_.NotifyAll();
  for (auto& t : to_join) t.join();
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // The calling thread participates and the workers merely help, so a
  // ParallelFor issued from *inside* a pool task (the optimizer's shard
  // fan-out nests the engines' parallel chunk IO) completes even when every
  // worker is busy — the classic nested fork-join deadlock cannot form.
  // Helpers hold the state via shared_ptr because they may be scheduled
  // after the caller has already finished every iteration and returned.
  struct State {
    explicit State(std::size_t total_items, std::function<void(std::size_t)> f)
        : total(total_items), body(std::move(f)) {}
    const std::size_t total;
    const std::function<void(std::size_t)> body;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    Mutex mu;
    CondVar cv;
    std::exception_ptr first_error GUARDED_BY(mu);
  };
  auto state = std::make_shared<State>(n, fn);

  auto run_items = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->total) return;
      try {
        s->body(i);
      } catch (...) {
        MutexLock lock(s->mu);
        if (!s->first_error) s->first_error = std::current_exception();
      }
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->total) {
        MutexLock lock(s->mu);
        s->cv.NotifyAll();
      }
    }
  };

  const std::size_t helpers = std::min(n - 1, num_threads());
  if (helpers > 0) {
    {
      MutexLock lock(mu_);
      for (std::size_t p = 0; p < helpers; ++p) {
        queue_.emplace_back([state, run_items] { run_items(state); });
      }
    }
    cv_.NotifyAll();
  }

  run_items(state);

  std::exception_ptr first_error;
  {
    MutexLock lock(state->mu);
    while (state->done.load() < state->total) state->cv.Wait(state->mu);
    first_error = state->first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace scalia::common
