// MD5 message digest (RFC 1321), implemented from scratch.
//
// Scalia uses MD5 for object-class identifiers C(obj) = MD5(mime |
// discretize(size)), for chunk storage keys skey = MD5(container | key |
// UUID), and for metadata row keys row_key = MD5(container | key)
// (§III-A.1, §III-D.1).  MD5 is used purely as a stable name-hashing
// function, never for security.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace scalia::common {

using Md5Digest = std::array<std::uint8_t, 16>;

class Md5 {
 public:
  Md5();

  /// Feeds `data` into the hash; may be called repeatedly.
  void Update(std::string_view data);
  void Update(const void* data, std::size_t len);

  /// Finalizes and returns the 16-byte digest.  The object must not be
  /// updated afterwards.
  [[nodiscard]] Md5Digest Finish();

  /// One-shot convenience.
  [[nodiscard]] static Md5Digest Hash(std::string_view data);
  /// One-shot digest rendered as 32 lowercase hex characters.
  [[nodiscard]] static std::string HexHash(std::string_view data);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// Renders a digest as lowercase hex.
[[nodiscard]] std::string ToHex(const Md5Digest& d);

/// First 8 bytes of the digest as a little-endian integer; used where a
/// compact numeric key is convenient (e.g. hashing class ids into shards).
[[nodiscard]] std::uint64_t Digest64(const Md5Digest& d);

}  // namespace scalia::common
