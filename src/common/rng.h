// Deterministic random number generation for workloads and simulations.
//
// All randomness in Scalia flows from explicitly seeded generators so that
// every scenario is reproducible bit-for-bit (DESIGN.md §7).  We implement
// SplitMix64 (seeding / hashing) and xoshiro256** (bulk generation) rather
// than relying on std::mt19937 so the streams are identical across standard
// library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace scalia::common {

/// SplitMix64: tiny, high-quality 64-bit mixer.  Used to expand seeds and as
/// a general-purpose integer hash.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mixing of a 64-bit value; handy for deriving per-object seeds.
[[nodiscard]] constexpr std::uint64_t Mix64(std::uint64_t x) noexcept {
  return SplitMix64(x).Next();
}

/// xoshiro256**: fast, high-quality PRNG (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound), mapped through the 53-bit double path;
  /// bias is negligible for the bounds simulations use (< 2^32).
  std::uint64_t NextBounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const auto idx =
        static_cast<std::uint64_t>(NextDouble() * static_cast<double>(bound));
    return idx >= bound ? bound - 1 : idx;
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard exponential with the given rate (mean 1/rate).
  double NextExponential(double rate) noexcept {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -std::log(u) / rate;
  }

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64 where Knuth's product underflows).
  std::uint64_t NextPoisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean < 64.0) {
      const double limit = std::exp(-mean);
      double prod = NextDouble();
      std::uint64_t n = 0;
      while (prod > limit) {
        ++n;
        prod *= NextDouble();
      }
      return n;
    }
    const double g = NextGaussian(mean, std::sqrt(mean));
    return g <= 0.0 ? 0 : static_cast<std::uint64_t>(g + 0.5);
  }

  /// Gaussian via Box–Muller.
  double NextGaussian(double mean, double stddev) noexcept {
    double u1 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Pareto(shape alpha, scale x_m): support [x_m, inf).  The Gallery
  /// scenario (§IV-C) draws picture popularity from Pareto(1, 50).
  double NextPareto(double alpha, double xm) noexcept {
    double u = NextDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace scalia::common
