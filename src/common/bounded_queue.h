// Bounded multi-producer / multi-consumer queue.
//
// Used by the statistics pipeline (§III-C.2): log agents at each engine push
// access records into bounded queues drained by aggregator threads, exactly
// the Flume/Scribe role in the paper.  Bounding provides back-pressure so a
// slow aggregator cannot exhaust memory.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace scalia::common {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks until space is available or the queue is closed.
  /// Returns false (and drops the item) if the queue was closed.
  bool Push(T item) {
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    MutexLock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Closes the queue: producers fail, consumers drain remaining items.
  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  [[nodiscard]] std::size_t Size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace scalia::common
