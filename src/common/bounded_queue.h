// Bounded multi-producer / multi-consumer queue.
//
// Used by the statistics pipeline (§III-C.2): log agents at each engine push
// access records into bounded queues drained by aggregator threads, exactly
// the Flume/Scribe role in the paper.  Bounding provides back-pressure so a
// slow aggregator cannot exhaust memory.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace scalia::common {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks until space is available or the queue is closed.
  /// Returns false (and drops the item) if the queue was closed.
  bool Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    std::lock_guard lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: producers fail, consumers drain remaining items.
  void Close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t Size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace scalia::common
