// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Frames every write-ahead-log record so replay can tell a torn tail (the
// partially flushed last record of a crashed process) from good data.  The
// incremental form lets a frame checksum cover header fields and payload
// without concatenating them first.
#pragma once

#include <cstdint>
#include <string_view>

namespace scalia::common {

/// CRC-32 of `data`, continuing from `crc` (pass 0 to start a new sum).
[[nodiscard]] std::uint32_t Crc32(std::string_view data, std::uint32_t crc = 0);

}  // namespace scalia::common
