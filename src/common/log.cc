#include "common/log.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace scalia::common {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
// Serialises whole lines onto stderr; no fields are guarded — the stream
// itself is the shared resource.
Mutex g_log_mu;

constexpr const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, std::string_view component,
                std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  MutexLock lock(g_log_mu);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", LevelName(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace scalia::common
