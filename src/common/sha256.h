// SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104), implemented from scratch.
//
// Private storage resources authenticate Scalia requests by signing them
// with an HMAC of the request parameters under a private token, plus a
// timestamp to prevent replay (§III-E).  This header provides the
// primitives; the request-signing protocol lives in
// provider/private_resource.h.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace scalia::common {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(std::string_view data);
  void Update(const void* data, std::size_t len);
  [[nodiscard]] Sha256Digest Finish();

  [[nodiscard]] static Sha256Digest Hash(std::string_view data);
  [[nodiscard]] static std::string HexHash(std::string_view data);

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

[[nodiscard]] std::string ToHex(const Sha256Digest& d);

/// HMAC-SHA256 of `message` under `key`.
[[nodiscard]] Sha256Digest HmacSha256(std::string_view key,
                                      std::string_view message);

/// Constant-time digest comparison (avoids timing side channels in the
/// private-resource authentication path).
[[nodiscard]] bool DigestEquals(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace scalia::common
