// Little-endian binary encode/decode helpers.
//
// The durability subsystem frames WAL records and checkpoint sections in a
// fixed-width little-endian binary format; these helpers keep the encoding
// identical across modules (stats, provider, durability) without each of
// them hand-rolling byte shuffling.  A BinaryReader never throws: any
// out-of-bounds read flips `ok()` to false and yields zero values, so
// parsers of possibly-torn bytes stay total.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace scalia::common {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void PutU8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }

  void PutDouble(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return ok_ ? data_.size() - pos_ : 0;
  }

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }

  double Double() {
    const std::uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string String() {
    const std::uint32_t len = U32();
    if (!Need(len)) return {};
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

 private:
  bool Need(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace scalia::common
