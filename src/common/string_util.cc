#include "common/string_util.h"

#include <cctype>
#include <cstdio>

#include "common/money.h"
#include "common/sim_time.h"
#include "common/units.h"

namespace scalia::common {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatBytes(Bytes b) {
  char buf[64];
  if (b >= kGB) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", ToGB(b));
  } else if (b >= kMB) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(b) / static_cast<double>(kMB));
  } else if (b >= kKB) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(b) / static_cast<double>(kKB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(b));
  }
  return buf;
}

std::string FormatSimTime(SimTime t) {
  char buf[64];
  const auto days = t / kDay;
  const auto hours = (t % kDay) / kHour;
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%lldd %lldh",
                  static_cast<long long>(days), static_cast<long long>(hours));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldh", static_cast<long long>(hours));
  }
  return buf;
}

std::string Money::ToString(int decimals) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "$%.*f", decimals, usd_);
  return buf;
}

}  // namespace scalia::common
