// Simulated wall-clock time.
//
// The whole system is driven by a discrete clock measured in seconds.  The
// paper's sampling period s is "typically 1 hour" (§III-A); the billing
// month follows the common cloud convention of 30 days (720 hours).
#pragma once

#include <cstdint>
#include <string>

namespace scalia::common {

/// Absolute simulated time, in seconds since the scenario epoch.
using SimTime = std::int64_t;
/// A span of simulated time, in seconds.
using Duration = std::int64_t;

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;
inline constexpr Duration kWeek = 7 * kDay;
/// Billing month: 30 days, i.e. 720 hours, the standard cloud proration base.
inline constexpr Duration kMonth = 30 * kDay;

[[nodiscard]] constexpr double ToHours(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kHour);
}
[[nodiscard]] constexpr Duration FromHours(double h) noexcept {
  return static_cast<Duration>(h * static_cast<double>(kHour) + 0.5);
}
/// Fraction of a billing month covered by `d`; used to pro-rate storage.
[[nodiscard]] constexpr double MonthFraction(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMonth);
}

/// Renders a time as "123h" / "5d 3h" for logs and benchmark output.
[[nodiscard]] std::string FormatSimTime(SimTime t);

}  // namespace scalia::common
