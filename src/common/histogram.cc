#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace scalia::common {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), bins_(num_bins, 0.0) {
  if (!(hi > lo) || num_bins == 0) {
    throw std::invalid_argument("Histogram: require hi > lo and bins > 0");
  }
  bin_width_ = (hi - lo) / static_cast<double>(num_bins);
}

std::size_t Histogram::BinIndex(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return bins_.size() - 1;
  const auto idx = static_cast<std::size_t>((value - lo_) / bin_width_);
  return std::min(idx, bins_.size() - 1);
}

void Histogram::Add(double value, double weight) {
  bins_[BinIndex(value)] += weight;
  total_weight_ += weight;
}

void Histogram::Merge(const Histogram& other) {
  if (other.bins_.size() != bins_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument("Histogram::Merge: shape mismatch");
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  total_weight_ += other.total_weight_;
}

void Histogram::Clear() {
  std::fill(bins_.begin(), bins_.end(), 0.0);
  total_weight_ = 0.0;
}

double Histogram::BinCenter(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width_;
}

double Histogram::Mean() const {
  if (total_weight_ <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    acc += bins_[i] * BinCenter(i);
  }
  return acc / total_weight_;
}

double Histogram::Quantile(double q) const {
  if (total_weight_ <= 0.0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_weight_;
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (cum + bins_[i] >= target) {
      const double within =
          bins_[i] > 0.0 ? (target - cum) / bins_[i] : 0.0;
      return lo_ + (static_cast<double>(i) + within) * bin_width_;
    }
    cum += bins_[i];
  }
  return hi_;
}

double Histogram::ExpectedResidualAbove(double a) const {
  double mass = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double c = BinCenter(i);
    if (c > a && bins_[i] > 0.0) {
      mass += bins_[i];
      acc += bins_[i] * (c - a);
    }
  }
  return mass > 0.0 ? acc / mass : 0.0;
}

double Histogram::FractionAbove(double a) const {
  if (total_weight_ <= 0.0) return 0.0;
  double mass = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (BinCenter(i) > a) mass += bins_[i];
  }
  return mass / total_weight_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] <= 0.0) continue;
    os << "[" << (lo_ + static_cast<double>(i) * bin_width_) << ","
       << (lo_ + static_cast<double>(i + 1) * bin_width_) << "): " << bins_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace scalia::common
