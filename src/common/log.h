// Minimal leveled logging.
//
// Scalia's components log placement decisions, migrations and failures;
// tests and benches run with the level raised to keep output clean.
#pragma once

#include <sstream>
#include <string>

namespace scalia::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
[[nodiscard]] LogLevel GetLogLevel();

/// Thread-safe write of one log line to stderr.
void LogMessage(LogLevel level, std::string_view component,
                std::string_view message);

/// Stream-style helper: LogStream(LogLevel::kInfo, "engine") << "msg";
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStream() { LogMessage(level_, component_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

#define SCALIA_LOG(level, component) \
  ::scalia::common::LogStream(level, component)

}  // namespace scalia::common
