#include "common/sha256.h"

#include <cstring>

namespace scalia::common {
namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u};

constexpr std::uint32_t Rotr(std::uint32_t x, int c) noexcept {
  return (x >> c) | (x << (32 - c));
}

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
             0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u} {}

void Sha256::Update(std::string_view data) {
  Update(data.data(), data.size());
}

void Sha256::Update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;
  while (len > 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
}

void Sha256::ProcessBlock(const std::uint8_t* block) {
  std::array<std::uint32_t, 64> w;
  for (std::size_t i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (std::size_t i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256Digest Sha256::Finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  Update(&pad, 1);
  const std::uint8_t zero = 0;
  while (buffer_len_ != 56) Update(&zero, 1);
  std::array<std::uint8_t, 8> len_bytes;
  for (int i = 0; i < 8; ++i) {
    len_bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((bit_len >> (8 * (7 - i))) & 0xff);
  }
  Update(len_bytes.data(), len_bytes.size());
  Sha256Digest out;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      out[4 * i + j] =
          static_cast<std::uint8_t>((state_[i] >> (8 * (3 - j))) & 0xff);
    }
  }
  return out;
}

Sha256Digest Sha256::Hash(std::string_view data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

std::string Sha256::HexHash(std::string_view data) { return ToHex(Hash(data)); }

std::string ToHex(const Sha256Digest& d) {
  static constexpr char kHexChars[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : d) {
    out.push_back(kHexChars[b >> 4]);
    out.push_back(kHexChars[b & 0xf]);
  }
  return out;
}

Sha256Digest HmacSha256(std::string_view key, std::string_view message) {
  std::array<std::uint8_t, 64> k_pad{};
  if (key.size() > 64) {
    const Sha256Digest kd = Sha256::Hash(key);
    std::memcpy(k_pad.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k_pad.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, 64> ipad, opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_pad[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_pad[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.Update(ipad.data(), ipad.size());
  inner.Update(message);
  const Sha256Digest inner_digest = inner.Finish();
  Sha256 outer;
  outer.Update(opad.data(), opad.size());
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

bool DigestEquals(const Sha256Digest& a, const Sha256Digest& b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

}  // namespace scalia::common
