// UUIDs for MVCC versioning.
//
// Every write operation allocates a fresh UUID; the chunk storage key is
// skey = MD5(container | key | UUID), so concurrent updates never collide
// at the providers (§III-D.1).  UUIDs here are version-4, drawn from an
// explicitly seeded generator to keep simulations reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/rng.h"

namespace scalia::common {

class Uuid {
 public:
  constexpr Uuid() = default;
  constexpr Uuid(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  /// Draws a fresh version-4 UUID from `rng`.
  static Uuid Generate(Xoshiro256& rng) {
    std::uint64_t hi = rng();
    std::uint64_t lo = rng();
    // Set version (4) and variant (10xx) bits per RFC 4122.
    hi = (hi & 0xffffffffffff0fffull) | 0x0000000000004000ull;
    lo = (lo & 0x3fffffffffffffffull) | 0x8000000000000000ull;
    return Uuid(hi, lo);
  }

  [[nodiscard]] constexpr std::uint64_t hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }
  [[nodiscard]] constexpr bool IsNil() const noexcept {
    return hi_ == 0 && lo_ == 0;
  }

  friend constexpr auto operator<=>(const Uuid&, const Uuid&) = default;

  /// Canonical 8-4-4-4-12 lowercase hex rendering.
  [[nodiscard]] std::string ToString() const {
    static constexpr char kHexChars[] = "0123456789abcdef";
    std::array<std::uint8_t, 16> bytes;
    for (int i = 0; i < 8; ++i) {
      bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((hi_ >> (8 * (7 - i))) & 0xff);
      bytes[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>((lo_ >> (8 * (7 - i))) & 0xff);
    }
    std::string out;
    out.reserve(36);
    for (std::size_t i = 0; i < 16; ++i) {
      if (i == 4 || i == 6 || i == 8 || i == 10) out.push_back('-');
      out.push_back(kHexChars[bytes[i] >> 4]);
      out.push_back(kHexChars[bytes[i] & 0xf]);
    }
    return out;
  }

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

struct UuidHash {
  std::size_t operator()(const Uuid& u) const noexcept {
    return static_cast<std::size_t>(Mix64(u.hi() ^ Mix64(u.lo())));
  }
};

}  // namespace scalia::common
