// Money: a strong type for USD amounts.
//
// Placement decisions in Scalia reduce to price comparisons between provider
// sets, so prices must accumulate deterministically and compare stably.  We
// keep amounts as double USD (the magnitudes involved — fractions of a cent
// up to a few hundred dollars — are far inside double's exact range for the
// arithmetic performed) and provide tolerant comparisons for tests.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace scalia::common {

class Money {
 public:
  constexpr Money() = default;
  constexpr explicit Money(double usd) : usd_(usd) {}

  [[nodiscard]] constexpr double usd() const noexcept { return usd_; }

  constexpr Money& operator+=(Money o) noexcept {
    usd_ += o.usd_;
    return *this;
  }
  constexpr Money& operator-=(Money o) noexcept {
    usd_ -= o.usd_;
    return *this;
  }
  constexpr Money& operator*=(double k) noexcept {
    usd_ *= k;
    return *this;
  }

  friend constexpr Money operator+(Money a, Money b) noexcept {
    return Money(a.usd_ + b.usd_);
  }
  friend constexpr Money operator-(Money a, Money b) noexcept {
    return Money(a.usd_ - b.usd_);
  }
  friend constexpr Money operator*(Money a, double k) noexcept {
    return Money(a.usd_ * k);
  }
  friend constexpr Money operator*(double k, Money a) noexcept {
    return Money(a.usd_ * k);
  }
  friend constexpr double operator/(Money a, Money b) noexcept {
    return a.usd_ / b.usd_;
  }
  friend constexpr auto operator<=>(Money a, Money b) noexcept = default;

  /// True when the two amounts differ by less than `tol` dollars.
  [[nodiscard]] constexpr bool AlmostEquals(Money o,
                                            double tol = 1e-9) const noexcept {
    return std::abs(usd_ - o.usd_) <= tol;
  }

  /// Renders as "$1.2345".
  [[nodiscard]] std::string ToString(int decimals = 4) const;

 private:
  double usd_ = 0.0;
};

inline constexpr Money kZeroMoney{};

}  // namespace scalia::common
