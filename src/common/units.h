// Byte-size and data-volume units used throughout Scalia.
//
// Cloud providers bill in decimal gigabytes (1 GB = 1e9 bytes); all
// conversions in this header follow that convention, matching the pricing
// catalog of the paper (Fig. 3).
#pragma once

#include <cstdint>
#include <string>

namespace scalia::common {

using Bytes = std::uint64_t;

inline constexpr Bytes kKB = 1000ull;
inline constexpr Bytes kMB = 1000ull * kKB;
inline constexpr Bytes kGB = 1000ull * kMB;
inline constexpr Bytes kTB = 1000ull * kGB;

// Binary units, used only for in-memory capacity accounting (cache sizes).
inline constexpr Bytes kKiB = 1024ull;
inline constexpr Bytes kMiB = 1024ull * kKiB;
inline constexpr Bytes kGiB = 1024ull * kMiB;

/// Converts a byte count to decimal gigabytes (the billing unit).
[[nodiscard]] constexpr double ToGB(Bytes b) noexcept {
  return static_cast<double>(b) / static_cast<double>(kGB);
}

/// Converts decimal gigabytes to bytes, rounding to the nearest byte.
[[nodiscard]] constexpr Bytes FromGB(double gb) noexcept {
  return static_cast<Bytes>(gb * static_cast<double>(kGB) + 0.5);
}

/// Integer division rounding up; used for chunk sizing (ceil(size / m)).
[[nodiscard]] constexpr Bytes CeilDiv(Bytes num, Bytes den) noexcept {
  return den == 0 ? 0 : (num + den - 1) / den;
}

/// Human-readable rendering, e.g. "1.50 MB".
[[nodiscard]] std::string FormatBytes(Bytes b);

namespace literals {
constexpr Bytes operator""_KB(unsigned long long v) { return v * kKB; }
constexpr Bytes operator""_MB(unsigned long long v) { return v * kMB; }
constexpr Bytes operator""_GB(unsigned long long v) { return v * kGB; }
}  // namespace literals

}  // namespace scalia::common
