// Lightweight Status / Result types for error propagation.
//
// Provider stores, engines and the metadata store return rich errors
// (unavailable provider, durability constraint unsatisfiable, conflict, …)
// without exceptions on the hot path.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace scalia::common {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kUnavailable,      // provider or datacenter unreachable
  kConflict,         // MVCC concurrent-update conflict
  kInvalidArgument,
  kFailedPrecondition,
  kResourceExhausted,  // private resource capacity, queue full
  kUnauthenticated,    // HMAC signature / replay check failed
  kInternal,
};

[[nodiscard]] constexpr std::string_view StatusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kConflict: return "CONFLICT";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnauthenticated: return "UNAUTHENTICATED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status Conflict(std::string m) {
    return {StatusCode::kConflict, std::move(m)};
  }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status ResourceExhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status Unauthenticated(std::string m) {
    return {StatusCode::kUnauthenticated, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }
  [[nodiscard]] std::string ToString() const {
    std::string s{StatusCodeName(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  [[nodiscard]] T* operator->() { return &*value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }
  [[nodiscard]] T& operator*() & { return *value_; }
  [[nodiscard]] const T& operator*() const& { return *value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace scalia::common
