// Resizable thread pool.
//
// Backs the parallel pieces of Scalia: the periodic optimizer fans per-engine
// key shards out to workers (Fig. 7), map-reduce statistics jobs aggregate
// class statistics in parallel (§III-C.2), and engines upload/download the n
// chunks of an object concurrently.  The capacity controller
// (capacity/predictor.h) resizes the chunk-I/O pool between sampling periods
// to track predicted load.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace scalia::common {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (min 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution; returns a future for its completion.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return fut;
  }

  /// Runs fn(i) for i in [0, n), partitioned across the pool, and blocks
  /// until all iterations complete.  Exceptions propagate from the first
  /// failing partition.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Grows or shrinks the pool to `num_threads` workers (min 1).  Safe to
  /// call while other threads Submit/ParallelFor; shrinking retires the
  /// youngest workers after they finish their in-flight task and joins them
  /// before returning.  Queued work is never dropped — the surviving
  /// workers drain it.  Must not be called from inside a pool task.
  void Resize(std::size_t num_threads);

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return active_threads_.load(std::memory_order_relaxed);
  }

  /// A process-wide pool sized to the hardware concurrency, for callers that
  /// do not manage their own.
  static ThreadPool& Shared();

 private:
  struct Worker {
    std::thread thread;
    /// Set (under mu_) to retire this worker on shrink; shared so the
    /// worker can keep checking it after Resize() released the slot.
    std::shared_ptr<std::atomic<bool>> retire;
  };

  void WorkerLoop(std::shared_ptr<std::atomic<bool>> retire);
  void SpawnLocked() REQUIRES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<Worker> workers_ GUARDED_BY(mu_);
  std::atomic<std::size_t> active_threads_{0};
};

}  // namespace scalia::common
