// Fixed-size thread pool.
//
// Backs the parallel pieces of Scalia: the periodic optimizer fans per-engine
// key shards out to workers (Fig. 7), map-reduce statistics jobs aggregate
// class statistics in parallel (§III-C.2), and engines upload/download the n
// chunks of an object concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace scalia::common {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (min 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution; returns a future for its completion.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n), partitioned across the pool, and blocks
  /// until all iterations complete.  Exceptions propagate from the first
  /// failing partition.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }

  /// A process-wide pool sized to the hardware concurrency, for callers that
  /// do not manage their own.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace scalia::common
