// Clang thread-safety annotation macros.
//
// The serving stack is genuinely concurrent — per-shard event loops, a
// resizable ThreadPool, fleet-wide fault-hook swaps — and every locking
// invariant used to live only in comments and in whatever interleavings
// TSan happened to witness.  These macros move the invariants into the
// type system: fields declare which lock guards them (GUARDED_BY),
// methods declare which locks they need (REQUIRES) or must not hold
// (EXCLUDES), and clang's `-Wthread-safety` analysis proves every access
// path consistent at compile time — including paths no test schedules.
//
// Under GCC (which has no thread-safety analysis) every macro expands to
// nothing, so the annotations cost nothing outside clang builds; see
// tests/common/thread_annotations_test.cc for the degradation proof.
// The `tidy` CMake preset + scripts/verify.sh --only tidy run the clang
// pass with -Wthread-safety -Wthread-safety-beta -Werror.
//
// Spelling follows the canonical mutex.h from the clang Thread Safety
// Analysis documentation (and Abseil's absl/base/thread_annotations.h).
#pragma once

#if defined(__clang__)
#define SCALIA_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SCALIA_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

// Declares a type to be a capability (a lock). Used on common::Mutex.
#define CAPABILITY(x) SCALIA_THREAD_ANNOTATION__(capability(x))

// Declares an RAII class that acquires a capability in its constructor and
// releases it in its destructor. Used on common::MutexLock.
#define SCOPED_CAPABILITY SCALIA_THREAD_ANNOTATION__(scoped_lockable)

// Declares that a field may only be read/written while holding `x`.
#define GUARDED_BY(x) SCALIA_THREAD_ANNOTATION__(guarded_by(x))

// Declares that the *pointee* of a pointer field is guarded by `x`.
#define PT_GUARDED_BY(x) SCALIA_THREAD_ANNOTATION__(pt_guarded_by(x))

// Declares that callers must hold the given capabilities (exclusively /
// shared) before calling, and that the function does not release them.
#define REQUIRES(...) \
  SCALIA_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SCALIA_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

// Declares that the function acquires / releases the given capabilities.
#define ACQUIRE(...) \
  SCALIA_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SCALIA_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  SCALIA_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SCALIA_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  SCALIA_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

// Declares a try-lock: acquires the capability iff the return value equals
// the first argument.
#define TRY_ACQUIRE(...) \
  SCALIA_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SCALIA_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

// Declares that callers must NOT hold the given capabilities (the function
// acquires them itself; calling with them held would self-deadlock on our
// non-recursive mutexes).
#define EXCLUDES(...) SCALIA_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Lock-ordering declarations (deadlock prevention, -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) \
  SCALIA_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SCALIA_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

// Declares that the function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SCALIA_THREAD_ANNOTATION__(lock_returned(x))

// Asserts at runtime that the calling thread holds the capability, telling
// the analysis so (for call sites the analysis cannot follow).
#define ASSERT_CAPABILITY(x) \
  SCALIA_THREAD_ANNOTATION__(assert_capability(x))

// Escape hatch: disables analysis inside one function. Every use must carry
// a comment explaining why the invariant holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  SCALIA_THREAD_ANNOTATION__(no_thread_safety_analysis)
