// Fixed-bin histogram with quantile and expectation queries.
//
// Backs the per-class lifetime distributions of §III-A.1 (Fig. 5): Scalia
// histograms object deletion times per class and answers "expected time left
// to live at age a" queries from the empirical distribution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace scalia::common {

class Histogram {
 public:
  /// Bins [lo, hi) into `num_bins` equal-width bins; samples outside the
  /// range are clamped into the first/last bin.
  Histogram(double lo, double hi, std::size_t num_bins);

  void Add(double value, double weight = 1.0);
  void Merge(const Histogram& other);
  void Clear();

  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }
  [[nodiscard]] std::size_t num_bins() const noexcept { return bins_.size(); }
  [[nodiscard]] double bin_weight(std::size_t i) const { return bins_.at(i); }
  /// Midpoint of bin i.
  [[nodiscard]] double BinCenter(std::size_t i) const;
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

  /// Weighted mean of the samples (by bin centers).
  [[nodiscard]] double Mean() const;

  /// q-quantile (q in [0,1]) with linear interpolation inside the bin.
  [[nodiscard]] double Quantile(double q) const;

  /// E[X - a | X > a]: the expected residual above threshold `a`, the exact
  /// quantity Fig. 5 (right) plots as "expected hours to live" at age a.
  /// Returns 0 when no mass lies above `a`.
  [[nodiscard]] double ExpectedResidualAbove(double a) const;

  /// P(X > a).
  [[nodiscard]] double FractionAbove(double a) const;

  /// Compact textual rendering ("lo..hi: n") for benchmark output.
  [[nodiscard]] std::string ToString() const;

 private:
  [[nodiscard]] std::size_t BinIndex(double value) const;

  double lo_;
  double hi_;
  double bin_width_;
  std::vector<double> bins_;
  double total_weight_ = 0.0;
};

}  // namespace scalia::common
