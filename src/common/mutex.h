// Annotation-aware mutex wrappers.
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
// annotations, so locking through them is invisible to clang's
// -Wthread-safety analysis.  These thin wrappers make every acquisition
// visible: `common::Mutex` is a CAPABILITY over std::mutex,
// `common::MutexLock` the SCOPED_CAPABILITY guard, `common::SharedMutex` /
// `ReaderMutexLock` the shared-capability pair over std::shared_mutex, and
// `common::CondVar` a condition variable whose Wait REQUIRES the mutex so
// guarded fields read in the wait loop are provably under the lock.
//
// Style note for wait loops: write the predicate as an explicit
//
//   common::MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);
//
// rather than passing a predicate lambda — the analysis cannot see that a
// lambda's body runs with the lock held, but it follows the while-loop
// form exactly.
//
// All wrappers are zero-overhead: CondVar::Wait adopts/releases the native
// handle around std::condition_variable::wait, no extra state, no extra
// atomics.  Under GCC the annotations vanish (thread_annotations.h) and
// these are plain forwarding wrappers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace scalia::common {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // Wait() adopts the native handle
  std::mutex mu_;
};

/// RAII exclusive lock over Mutex (the std::lock_guard analogue).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to common::Mutex.  Wait/WaitFor REQUIRES the
/// mutex, so the analysis proves the caller holds it — and the explicit
/// while-loop style keeps every guarded-field read inside the annotated
/// critical section.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups happen; always call in a `while (!predicate)` loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // the caller's scope still owns the lock
  }

  /// Wait with a timeout; returns std::cv_status::timeout if it elapsed.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace scalia::common
