#include "stats/trend.h"

#include <algorithm>
#include <cmath>

namespace scalia::stats {

bool TrendDetector::Observe(double activity) {
  ++observation_count_;
  window_.push_back(activity);
  if (window_.size() > config_.window) window_.pop_front();

  double sum = 0.0;
  for (double v : window_) sum += v;
  const double new_sma = sum / static_cast<double>(window_.size());

  const bool had_previous = has_previous_sma_;
  previous_sma_ = sma_;
  sma_ = new_sma;
  has_previous_sma_ = true;

  if (!had_previous) {
    // First observation: no momentum yet.  A nonzero start is itself a
    // trend (a brand-new object receiving traffic).
    return new_sma >= config_.min_activity;
  }

  // Going fully cold is a trend change when the object was genuinely active
  // before: the decayed tail of a flash crowd must trigger one final
  // recomputation (the post-peak points of Fig. 8) even though the absolute
  // momentum is tiny.  Trickle traffic pausing (SMA below the activity
  // floor) is not a trend.
  if (previous_sma_ >= config_.min_activity && sma_ == 0.0) return true;

  const double momentum = std::abs(sma_ - previous_sma_);
  // Both averages under the floor: the object is idle either way.
  if (sma_ < config_.min_activity && previous_sma_ < config_.min_activity) {
    return false;
  }
  const double base = std::max(previous_sma_, config_.min_activity);
  return momentum > config_.limit * base;
}

void TrendDetector::Reset() {
  window_.clear();
  sma_ = 0.0;
  previous_sma_ = 0.0;
  has_previous_sma_ = false;
  observation_count_ = 0;
}

}  // namespace scalia::stats
