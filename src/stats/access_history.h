// Bounded access history H(obj) of a data object.
//
// §III-A.2: H(obj) = {s_t, s_{t-1}, ..., s_{t-|D_obj|}} is the list of
// per-sampling-period statistics.  The ring keeps up to `max_periods`
// entries (the paper's H_obj); the decision period D_obj <= |H| selects the
// suffix used by the placement algorithm.
#pragma once

#include <deque>
#include <vector>

#include "stats/period_stats.h"

namespace scalia::stats {

class AccessHistory {
 public:
  explicit AccessHistory(std::size_t max_periods = 24 * 7 * 4)
      : max_periods_(max_periods) {}

  /// Appends the statistics of the just-finished sampling period.
  void Append(const PeriodStats& s) {
    periods_.push_back(s);
    if (periods_.size() > max_periods_) periods_.pop_front();
  }

  [[nodiscard]] std::size_t size() const noexcept { return periods_.size(); }
  [[nodiscard]] bool empty() const noexcept { return periods_.empty(); }

  /// The most recent period's stats, or zeros when empty.
  [[nodiscard]] PeriodStats Latest() const {
    return periods_.empty() ? PeriodStats{} : periods_.back();
  }

  /// Most recent `n` periods, oldest first (fewer if history is shorter).
  [[nodiscard]] std::vector<PeriodStats> LastPeriods(std::size_t n) const {
    const std::size_t take = std::min(n, periods_.size());
    return {periods_.end() - static_cast<std::ptrdiff_t>(take),
            periods_.end()};
  }

  /// Per-period average over the last `n` periods — the expected usage of
  /// the next period under the paper's persistence assumption ("we can
  /// reasonably suppose that the access pattern of the data in the near
  /// future will be similar to the current").
  [[nodiscard]] PeriodStats AverageOver(std::size_t n) const {
    PeriodStats sum;
    const std::size_t take = std::min(n, periods_.size());
    if (take == 0) return sum;
    for (std::size_t i = periods_.size() - take; i < periods_.size(); ++i) {
      sum += periods_[i];
    }
    sum.Scale(1.0 / static_cast<double>(take));
    return sum;
  }

  void Clear() { periods_.clear(); }

 private:
  std::size_t max_periods_;
  std::deque<PeriodStats> periods_;
};

}  // namespace scalia::stats
