#include "stats/object_class.h"

namespace scalia::stats {

namespace {
// Hourly bins over the configured lifetime horizon.
std::size_t BinCount(common::Duration max_lifetime) {
  const auto hours = static_cast<std::size_t>(max_lifetime / common::kHour);
  return std::max<std::size_t>(1, hours);
}
}  // namespace

ClassStats::ClassStats(common::Duration max_lifetime)
    : lifetimes_(0.0, common::ToHours(max_lifetime), BinCount(max_lifetime)) {}

void ClassStats::RecordLifetime(common::Duration lifetime) {
  common::MutexLock lock(mu_);
  lifetimes_.Add(common::ToHours(lifetime));
  ++lifetime_count_;
}

void ClassStats::RecordUsage(const PeriodStats& s) {
  common::MutexLock lock(mu_);
  usage_sum_ += s;
  ++usage_count_;
}

void ClassStats::RecordReduction(common::Bytes raw_bytes,
                                 common::Bytes stored_bytes) {
  if (raw_bytes == 0) return;  // empty objects carry no reduction signal
  common::MutexLock lock(mu_);
  raw_bytes_sum_ += static_cast<double>(raw_bytes);
  stored_bytes_sum_ += static_cast<double>(stored_bytes);
  ++reduction_count_;
}

std::optional<double> ClassStats::MeanReductionRatio() const {
  common::MutexLock lock(mu_);
  if (reduction_count_ == 0 || raw_bytes_sum_ <= 0.0) return std::nullopt;
  return stored_bytes_sum_ / raw_bytes_sum_;
}

std::uint64_t ClassStats::reduction_samples() const {
  common::MutexLock lock(mu_);
  return reduction_count_;
}

common::Duration ClassStats::ExpectedLifetime() const {
  common::MutexLock lock(mu_);
  if (lifetime_count_ == 0) return 0;
  return common::FromHours(lifetimes_.Mean());
}

common::Duration ClassStats::ExpectedTimeLeftToLive(
    common::Duration age) const {
  common::MutexLock lock(mu_);
  if (lifetime_count_ == 0) return 0;
  const double age_h = common::ToHours(age);
  const double residual = lifetimes_.ExpectedResidualAbove(age_h);
  if (residual > 0.0) return common::FromHours(residual);
  // No observed lifetime exceeds this age: the object has outlived its
  // class; fall back to the unconditional mean as a conservative estimate.
  return common::FromHours(lifetimes_.Mean());
}

std::optional<PeriodStats> ClassStats::MeanUsage() const {
  common::MutexLock lock(mu_);
  if (usage_count_ == 0) return std::nullopt;
  PeriodStats mean = usage_sum_;
  mean.Scale(1.0 / static_cast<double>(usage_count_));
  return mean;
}

void ClassStats::SerializeTo(common::BinaryWriter& out) const {
  common::MutexLock lock(mu_);
  out.PutU64(lifetime_count_);
  out.PutU64(usage_count_);
  out.PutDouble(usage_sum_.storage_gb);
  out.PutDouble(usage_sum_.bw_in_gb);
  out.PutDouble(usage_sum_.bw_out_gb);
  out.PutDouble(usage_sum_.ops);
  out.PutDouble(usage_sum_.reads);
  out.PutDouble(usage_sum_.writes);
  out.PutU64(reduction_count_);
  out.PutDouble(raw_bytes_sum_);
  out.PutDouble(stored_bytes_sum_);
  out.PutDouble(lifetimes_.lo());
  out.PutDouble(lifetimes_.hi());
  out.PutU32(static_cast<std::uint32_t>(lifetimes_.num_bins()));
  for (std::size_t i = 0; i < lifetimes_.num_bins(); ++i) {
    out.PutDouble(lifetimes_.bin_weight(i));
  }
}

common::Status ClassStats::RestoreFrom(common::BinaryReader& in,
                                       bool with_reduction) {
  common::MutexLock lock(mu_);
  lifetime_count_ = in.U64();
  usage_count_ = in.U64();
  usage_sum_.storage_gb = in.Double();
  usage_sum_.bw_in_gb = in.Double();
  usage_sum_.bw_out_gb = in.Double();
  usage_sum_.ops = in.Double();
  usage_sum_.reads = in.Double();
  usage_sum_.writes = in.Double();
  if (with_reduction) {
    reduction_count_ = in.U64();
    raw_bytes_sum_ = in.Double();
    stored_bytes_sum_ = in.Double();
  } else {
    reduction_count_ = 0;
    raw_bytes_sum_ = 0.0;
    stored_bytes_sum_ = 0.0;
  }
  // The serialized histogram may have different bounds than ours (the
  // max-lifetime knob can change between runs): replay each bin's mass at
  // its center, letting Add() clamp into our range.
  const double lo = in.Double();
  const double hi = in.Double();
  const std::uint32_t bins = in.U32();
  // The digest only proves integrity, not sanity: bound the loop by the
  // bytes actually present so a bogus bin count cannot spin for billions
  // of iterations.
  if (!in.ok() || hi <= lo || bins == 0 ||
      static_cast<std::uint64_t>(bins) * 8 > in.remaining()) {
    return common::Status::InvalidArgument("corrupt class-stats snapshot");
  }
  const double width = (hi - lo) / static_cast<double>(bins);
  lifetimes_.Clear();
  for (std::uint32_t i = 0; i < bins; ++i) {
    const double weight = in.Double();
    if (!in.ok()) break;
    if (weight > 0.0) {
      lifetimes_.Add(lo + (static_cast<double>(i) + 0.5) * width, weight);
    }
  }
  if (!in.ok()) {
    return common::Status::InvalidArgument("corrupt class-stats snapshot");
  }
  return common::Status::Ok();
}

std::uint64_t ClassStats::lifetime_samples() const {
  common::MutexLock lock(mu_);
  return lifetime_count_;
}

std::uint64_t ClassStats::usage_samples() const {
  common::MutexLock lock(mu_);
  return usage_count_;
}

ClassStats& ClassRegistry::ForClass(const ClassId& cls) {
  common::MutexLock lock(mu_);
  auto it = classes_.find(cls);
  if (it == classes_.end()) {
    it = classes_.emplace(cls, std::make_unique<ClassStats>(max_lifetime_))
             .first;
  }
  return *it->second;
}

const ClassStats* ClassRegistry::Find(const ClassId& cls) const {
  common::MutexLock lock(mu_);
  auto it = classes_.find(cls);
  return it == classes_.end() ? nullptr : it->second.get();
}

std::size_t ClassRegistry::ClassCount() const {
  common::MutexLock lock(mu_);
  return classes_.size();
}

void ClassRegistry::SerializeTo(common::BinaryWriter& out) const {
  common::MutexLock lock(mu_);
  out.PutU32(static_cast<std::uint32_t>(classes_.size()));
  for (const auto& [cls, stats] : classes_) {
    out.PutString(cls);
    stats->SerializeTo(out);
  }
}

common::Status ClassRegistry::RestoreFrom(common::BinaryReader& in,
                                          bool with_reduction) {
  common::MutexLock lock(mu_);
  classes_.clear();
  const std::uint32_t count = in.U32();
  for (std::uint32_t i = 0; i < count; ++i) {
    ClassId cls = in.String();
    auto stats = std::make_unique<ClassStats>(max_lifetime_);
    if (auto s = stats->RestoreFrom(in, with_reduction); !s.ok()) return s;
    classes_.emplace(std::move(cls), std::move(stats));
  }
  if (!in.ok()) {
    return common::Status::InvalidArgument("corrupt class-registry snapshot");
  }
  return common::Status::Ok();
}

}  // namespace scalia::stats
