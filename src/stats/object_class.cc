#include "stats/object_class.h"

namespace scalia::stats {

namespace {
// Hourly bins over the configured lifetime horizon.
std::size_t BinCount(common::Duration max_lifetime) {
  const auto hours = static_cast<std::size_t>(max_lifetime / common::kHour);
  return std::max<std::size_t>(1, hours);
}
}  // namespace

ClassStats::ClassStats(common::Duration max_lifetime)
    : lifetimes_(0.0, common::ToHours(max_lifetime), BinCount(max_lifetime)) {}

void ClassStats::RecordLifetime(common::Duration lifetime) {
  std::lock_guard lock(mu_);
  lifetimes_.Add(common::ToHours(lifetime));
  ++lifetime_count_;
}

void ClassStats::RecordUsage(const PeriodStats& s) {
  std::lock_guard lock(mu_);
  usage_sum_ += s;
  ++usage_count_;
}

common::Duration ClassStats::ExpectedLifetime() const {
  std::lock_guard lock(mu_);
  if (lifetime_count_ == 0) return 0;
  return common::FromHours(lifetimes_.Mean());
}

common::Duration ClassStats::ExpectedTimeLeftToLive(
    common::Duration age) const {
  std::lock_guard lock(mu_);
  if (lifetime_count_ == 0) return 0;
  const double age_h = common::ToHours(age);
  const double residual = lifetimes_.ExpectedResidualAbove(age_h);
  if (residual > 0.0) return common::FromHours(residual);
  // No observed lifetime exceeds this age: the object has outlived its
  // class; fall back to the unconditional mean as a conservative estimate.
  return common::FromHours(lifetimes_.Mean());
}

std::optional<PeriodStats> ClassStats::MeanUsage() const {
  std::lock_guard lock(mu_);
  if (usage_count_ == 0) return std::nullopt;
  PeriodStats mean = usage_sum_;
  mean.Scale(1.0 / static_cast<double>(usage_count_));
  return mean;
}

std::uint64_t ClassStats::lifetime_samples() const {
  std::lock_guard lock(mu_);
  return lifetime_count_;
}

std::uint64_t ClassStats::usage_samples() const {
  std::lock_guard lock(mu_);
  return usage_count_;
}

ClassStats& ClassRegistry::ForClass(const ClassId& cls) {
  std::lock_guard lock(mu_);
  auto it = classes_.find(cls);
  if (it == classes_.end()) {
    it = classes_.emplace(cls, std::make_unique<ClassStats>(max_lifetime_))
             .first;
  }
  return *it->second;
}

const ClassStats* ClassRegistry::Find(const ClassId& cls) const {
  std::lock_guard lock(mu_);
  auto it = classes_.find(cls);
  return it == classes_.end() ? nullptr : it->second.get();
}

std::size_t ClassRegistry::ClassCount() const {
  std::lock_guard lock(mu_);
  return classes_.size();
}

}  // namespace scalia::stats
