// The statistics database (the stats half of §III-C).
//
// Stores, per object: its access history (one row per sampling period, keyed
// "ostat|<row_key>|<period>"), its metadata timestamps, and the per-class
// aggregates (lifetime distribution, mean usage) that map-reduce jobs
// refresh periodically.  Rows are written through to the replicated NoSQL
// store — statistics writes use globally-unique keys so they never conflict
// (§III-D.1) — while an in-memory index keeps placement queries fast.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binary_codec.h"
#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "stats/access_history.h"
#include "stats/object_class.h"
#include "stats/period_stats.h"
#include "store/replicated_store.h"

namespace scalia::stats {

struct ObjectRecord {
  ClassId class_id;
  common::Bytes size = 0;
  common::SimTime created_at = 0;
  common::SimTime last_access = 0;
};

class StatsDb {
 public:
  /// `store` may be null for purely in-memory operation (simulations);
  /// when set, rows are written through to table "stats" at replica `dc`.
  StatsDb(store::ReplicatedStore* store, store::ReplicaId dc,
          std::size_t max_history_periods = 24 * 7 * 5)
      : store_(store), dc_(dc), max_history_(max_history_periods) {}

  /// Registers a new object (at first write).
  void RecordObjectCreated(const std::string& row_key, const ClassId& cls,
                           common::Bytes size, common::SimTime now);

  /// Removes the object and records its lifetime in its class's stats.
  void RecordObjectDeleted(const std::string& row_key, common::SimTime now);

  /// Appends one sampling period's stats to the object's history.
  void AppendPeriodStats(const std::string& row_key, std::uint64_t period,
                         const PeriodStats& stats, common::SimTime now);

  /// Closes sampling period `period` for *every* live object: objects with
  /// an entry in `merged` (the drained log-pipeline aggregates) accrue it,
  /// silent objects accrue a storage-only row — the storage dimension
  /// always reflects the object's current footprint.  The one place the
  /// period-accounting rule lives; both cluster and sharded-engine period
  /// closes call it.  `on_append` (may be empty) observes every appended
  /// (row_key, stats) pair — the hook durable deployments journal the
  /// period through, so histories survive a crash between checkpoints.
  void AppendPeriodForAllObjects(
      const std::unordered_map<std::string, PeriodStats>& merged,
      std::uint64_t period, common::SimTime now,
      const std::function<void(const std::string&, const PeriodStats&)>&
          on_append = {});

  /// Marks an access (updates last_access) without waiting for the period
  /// flush; used by the optimizer's changed-set query.
  void TouchObject(const std::string& row_key, common::SimTime now);

  [[nodiscard]] std::optional<ObjectRecord> GetObject(
      const std::string& row_key) const;

  /// The access history of an object (empty when unknown).
  [[nodiscard]] AccessHistory GetHistory(const std::string& row_key) const;

  /// Row keys of objects accessed or modified at or after `since` — the set
  /// A the optimization leader retrieves (Fig. 7).
  [[nodiscard]] std::vector<std::string> AccessedSince(
      common::SimTime since) const;

  [[nodiscard]] ClassRegistry& classes() noexcept { return classes_; }
  [[nodiscard]] const ClassRegistry& classes() const noexcept {
    return classes_;
  }

  /// Recomputes per-class mean usage from all per-object histories with a
  /// map-reduce job over the replicated stats table (§III-C.2).  Returns
  /// the number of classes refreshed.  Requires a backing store.
  std::size_t RefreshClassStatsMapReduce(common::ThreadPool& pool);

  [[nodiscard]] std::size_t ObjectCount() const;

  /// Checkpoint support: binary-appends the object index, every access
  /// history and the class registry / rebuilds them (replacing the current
  /// in-memory state; the replicated write-through rows are *not* restored
  /// here — they are derived data the next period flush regenerates).
  void SerializeTo(common::BinaryWriter& out) const;
  /// `with_reduction` mirrors ClassRegistry::RestoreFrom (false = the v1
  /// checkpoint layout without per-class reduction sums).
  common::Status RestoreFrom(common::BinaryReader& in,
                             bool with_reduction = true);

 private:
  void WriteThrough(const std::string& key, const std::string& value,
                    common::SimTime now);

  store::ReplicatedStore* store_;
  store::ReplicaId dc_;
  std::size_t max_history_;

  mutable common::Mutex mu_;
  std::unordered_map<std::string, ObjectRecord> objects_ GUARDED_BY(mu_);
  std::unordered_map<std::string, AccessHistory> histories_ GUARDED_BY(mu_);
  ClassRegistry classes_;
};

}  // namespace scalia::stats
