// Per-object, per-sampling-period access statistics.
//
// §III-A.2: "For a sampling period s_i at time i, statistics of a data
// object obj are collected, such as the used storage s_i[storage], the
// incoming bandwidth s_i[bwdin], the outgoing bandwidth s_i[bwdout] as well
// as the number of operations s_i[ops]."  These are *logical* quantities of
// the object itself (raw object bytes moved), independent of which provider
// set stores it; the price model expands them into per-provider billing for
// a candidate set.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace scalia::stats {

struct PeriodStats {
  double storage_gb = 0.0;  // average object bytes stored during the period
  double bw_in_gb = 0.0;    // object bytes written (ingress)
  double bw_out_gb = 0.0;   // object bytes read (egress)
  double ops = 0.0;         // total operations (reads + writes + deletes)
  double reads = 0.0;       // read operation count
  double writes = 0.0;      // write operation count

  PeriodStats& operator+=(const PeriodStats& o) noexcept {
    storage_gb += o.storage_gb;
    bw_in_gb += o.bw_in_gb;
    bw_out_gb += o.bw_out_gb;
    ops += o.ops;
    reads += o.reads;
    writes += o.writes;
    return *this;
  }

  PeriodStats& Scale(double k) noexcept {
    storage_gb *= k;
    bw_in_gb *= k;
    bw_out_gb *= k;
    ops *= k;
    reads *= k;
    writes *= k;
    return *this;
  }

  [[nodiscard]] bool IsZero() const noexcept {
    return storage_gb == 0.0 && bw_in_gb == 0.0 && bw_out_gb == 0.0 &&
           ops == 0.0;
  }

  /// CSV round trip for persistence in the statistics database.
  [[nodiscard]] std::string ToCsv() const;
  [[nodiscard]] static PeriodStats FromCsv(const std::string& csv);
};

}  // namespace scalia::stats
