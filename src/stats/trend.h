// Access-pattern trend detection (§III-A.3, Figs. 8-9).
//
// A statistics window of w = 3 sampling periods feeds a simple moving
// average of the object's activity; the *momentum* (change in the SMA) is
// compared against a threshold `limit` (10 % was "experimentally found to
// perform adequately").  Only objects whose momentum exceeds the limit get
// their placement recomputed — the key to running the optimization procedure
// frequently at scale.
#pragma once

#include <cstddef>
#include <deque>

namespace scalia::stats {

struct TrendConfig {
  std::size_t window = 3;   // "ma: 3"
  double limit = 0.1;       // "limit: 0.1" — relative momentum threshold
  /// Activity below this floor is treated as zero (avoids triggering on
  /// 1-vs-2-request noise for near-idle objects).
  double min_activity = 1.0;
};

class TrendDetector {
 public:
  explicit TrendDetector(TrendConfig config = {}) : config_(config) {}

  /// Feeds the activity (operation count) of the just-finished sampling
  /// period; returns true when a trend change is detected at this period.
  bool Observe(double activity);

  /// Dynamically adjusts the limit — the paper determines it per object
  /// class as the minimum momentum that would change the best provider set.
  void SetLimit(double limit) { config_.limit = limit; }
  [[nodiscard]] double limit() const noexcept { return config_.limit; }

  [[nodiscard]] double CurrentSma() const noexcept { return sma_; }
  [[nodiscard]] std::size_t Observations() const noexcept {
    return observation_count_;
  }

  void Reset();

 private:
  TrendConfig config_;
  std::deque<double> window_;
  double sma_ = 0.0;
  bool has_previous_sma_ = false;
  double previous_sma_ = 0.0;
  std::size_t observation_count_ = 0;
};

}  // namespace scalia::stats
