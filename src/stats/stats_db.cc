#include "stats/stats_db.h"

#include "common/string_util.h"
#include "store/mapreduce.h"

namespace scalia::stats {

void StatsDb::WriteThrough(const std::string& key, const std::string& value,
                           common::SimTime now) {
  if (store_ == nullptr) return;
  // Statistics rows use globally-unique keys, so these writes never
  // conflict in the database (§III-D.1).
  (void)store_->Put(dc_, "stats", key, value, now);
}

void StatsDb::RecordObjectCreated(const std::string& row_key,
                                  const ClassId& cls, common::Bytes size,
                                  common::SimTime now) {
  {
    common::MutexLock lock(mu_);
    ObjectRecord rec;
    rec.class_id = cls;
    rec.size = size;
    rec.created_at = now;
    rec.last_access = now;
    objects_[row_key] = rec;
    histories_.emplace(row_key, AccessHistory(max_history_));
  }
  WriteThrough("ometa|" + row_key,
               cls + "," + std::to_string(size) + "," + std::to_string(now),
               now);
}

void StatsDb::RecordObjectDeleted(const std::string& row_key,
                                  common::SimTime now) {
  ClassId cls;
  common::Duration lifetime = 0;
  {
    common::MutexLock lock(mu_);
    auto it = objects_.find(row_key);
    if (it == objects_.end()) return;
    cls = it->second.class_id;
    lifetime = now - it->second.created_at;
    objects_.erase(it);
    histories_.erase(row_key);
  }
  classes_.ForClass(cls).RecordLifetime(lifetime);
  WriteThrough("odel|" + row_key, cls + "," + std::to_string(lifetime), now);
}

void StatsDb::AppendPeriodStats(const std::string& row_key,
                                std::uint64_t period, const PeriodStats& stats,
                                common::SimTime now) {
  ClassId cls;
  {
    common::MutexLock lock(mu_);
    auto hit = histories_.find(row_key);
    if (hit == histories_.end()) return;  // deleted or unknown object
    hit->second.Append(stats);
    auto oit = objects_.find(row_key);
    if (oit != objects_.end()) {
      if (!stats.IsZero()) oit->second.last_access = now;
      cls = oit->second.class_id;
    }
  }
  if (!cls.empty() && !stats.IsZero()) {
    classes_.ForClass(cls).RecordUsage(stats);
  }
  WriteThrough("ostat|" + row_key + "|" + std::to_string(period),
               cls + ";" + stats.ToCsv(), now);
}

void StatsDb::AppendPeriodForAllObjects(
    const std::unordered_map<std::string, PeriodStats>& merged,
    std::uint64_t period, common::SimTime now,
    const std::function<void(const std::string&, const PeriodStats&)>&
        on_append) {
  for (const auto& row_key : AccessedSince(0)) {
    auto rec = GetObject(row_key);
    if (!rec) continue;
    PeriodStats stats;
    if (auto it = merged.find(row_key); it != merged.end()) {
      stats = it->second;
    }
    stats.storage_gb = common::ToGB(rec->size);
    AppendPeriodStats(row_key, period, stats, now);
    if (on_append) on_append(row_key, stats);
  }
}

void StatsDb::TouchObject(const std::string& row_key, common::SimTime now) {
  common::MutexLock lock(mu_);
  auto it = objects_.find(row_key);
  if (it != objects_.end()) it->second.last_access = now;
}

std::optional<ObjectRecord> StatsDb::GetObject(
    const std::string& row_key) const {
  common::MutexLock lock(mu_);
  auto it = objects_.find(row_key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

AccessHistory StatsDb::GetHistory(const std::string& row_key) const {
  common::MutexLock lock(mu_);
  auto it = histories_.find(row_key);
  if (it == histories_.end()) return AccessHistory(max_history_);
  return it->second;
}

std::vector<std::string> StatsDb::AccessedSince(common::SimTime since) const {
  common::MutexLock lock(mu_);
  std::vector<std::string> keys;
  for (const auto& [key, rec] : objects_) {
    if (rec.last_access >= since) keys.push_back(key);
  }
  return keys;
}

std::size_t StatsDb::ObjectCount() const {
  common::MutexLock lock(mu_);
  return objects_.size();
}

void StatsDb::SerializeTo(common::BinaryWriter& out) const {
  common::MutexLock lock(mu_);
  out.PutU32(static_cast<std::uint32_t>(objects_.size()));
  for (const auto& [row_key, rec] : objects_) {
    out.PutString(row_key);
    out.PutString(rec.class_id);
    out.PutU64(rec.size);
    out.PutI64(rec.created_at);
    out.PutI64(rec.last_access);
  }
  out.PutU32(static_cast<std::uint32_t>(histories_.size()));
  for (const auto& [row_key, history] : histories_) {
    out.PutString(row_key);
    const auto periods = history.LastPeriods(history.size());
    out.PutU32(static_cast<std::uint32_t>(periods.size()));
    for (const auto& s : periods) {
      out.PutDouble(s.storage_gb);
      out.PutDouble(s.bw_in_gb);
      out.PutDouble(s.bw_out_gb);
      out.PutDouble(s.ops);
      out.PutDouble(s.reads);
      out.PutDouble(s.writes);
    }
  }
  classes_.SerializeTo(out);
}

common::Status StatsDb::RestoreFrom(common::BinaryReader& in,
                                    bool with_reduction) {
  common::MutexLock lock(mu_);
  objects_.clear();
  histories_.clear();
  const std::uint32_t num_objects = in.U32();
  for (std::uint32_t i = 0; i < num_objects; ++i) {
    std::string row_key = in.String();
    ObjectRecord rec;
    rec.class_id = in.String();
    rec.size = in.U64();
    rec.created_at = in.I64();
    rec.last_access = in.I64();
    if (!in.ok()) {
      return common::Status::InvalidArgument("corrupt stats-db snapshot");
    }
    objects_.emplace(std::move(row_key), std::move(rec));
  }
  const std::uint32_t num_histories = in.U32();
  for (std::uint32_t i = 0; i < num_histories; ++i) {
    std::string row_key = in.String();
    AccessHistory history(max_history_);
    const std::uint32_t periods = in.U32();
    for (std::uint32_t p = 0; p < periods; ++p) {
      PeriodStats s;
      s.storage_gb = in.Double();
      s.bw_in_gb = in.Double();
      s.bw_out_gb = in.Double();
      s.ops = in.Double();
      s.reads = in.Double();
      s.writes = in.Double();
      history.Append(s);
    }
    if (!in.ok()) {
      return common::Status::InvalidArgument("corrupt stats-db snapshot");
    }
    histories_.emplace(std::move(row_key), std::move(history));
  }
  return classes_.RestoreFrom(in, with_reduction);
}

std::size_t StatsDb::RefreshClassStatsMapReduce(common::ThreadPool& pool) {
  if (store_ == nullptr) return 0;
  const store::KvTable* table = store_->Table(dc_, "stats");
  if (table == nullptr) return 0;

  // Map: every "ostat|..." row emits (class_id, stats); reduce: sum + count
  // into the class mean.
  struct Acc {
    PeriodStats sum;
    std::uint64_t count = 0;
  };
  store::MapReduceJob<ClassId, Acc> job(
      [](const std::string& key, const store::Version& v,
         const std::function<void(ClassId, Acc)>& emit) {
        if (key.rfind("ostat|", 0) != 0) return;
        const auto sep = v.value.find(';');
        if (sep == std::string::npos) return;
        ClassId cls = v.value.substr(0, sep);
        if (cls.empty()) return;
        Acc acc;
        acc.sum = PeriodStats::FromCsv(v.value.substr(sep + 1));
        acc.count = 1;
        emit(std::move(cls), std::move(acc));
      },
      [](const ClassId&, std::vector<Acc>& values) {
        Acc total;
        for (auto& a : values) {
          total.sum += a.sum;
          total.count += a.count;
        }
        return total;
      });

  const auto result = job.Run(*table, pool);
  for (const auto& [cls, acc] : result) {
    if (acc.count == 0) continue;
    PeriodStats mean = acc.sum;
    mean.Scale(1.0 / static_cast<double>(acc.count));
    // Re-seed the class usage aggregate with the freshly reduced mean.
    classes_.ForClass(cls).RecordUsage(mean);
  }
  return result.size();
}

}  // namespace scalia::stats
