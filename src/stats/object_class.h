// Object classification and per-class statistics.
//
// §III-A.1: an object's class is C(obj) = MD5(obj[mime] |
// discretize(obj[size])), where discretize rounds the size up to the closest
// megabyte.  Scalia aggregates, per class, the lifetime distribution and the
// mean per-period resource usage, and uses them to (a) seed the first
// placement of brand-new objects (Fig. 6) and (b) predict the time left to
// live for decision-period sizing (Fig. 5).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/binary_codec.h"
#include "common/histogram.h"
#include "common/md5.h"
#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "stats/period_stats.h"

namespace scalia::stats {

using ClassId = std::string;  // 32-char hex MD5

/// Rounds a size up to the closest megabyte (the paper's discretize()).
[[nodiscard]] inline common::Bytes DiscretizeSize(common::Bytes size) {
  return common::CeilDiv(size, common::kMB) * common::kMB;
}

/// C(obj) = MD5(mime | discretize(size)).
[[nodiscard]] inline ClassId ClassifyObject(const std::string& mime,
                                            common::Bytes size) {
  return common::Md5::HexHash(mime + "|" +
                              std::to_string(DiscretizeSize(size)));
}

/// Statistics of one object class.
class ClassStats {
 public:
  /// Lifetime histogram spans [0, max_lifetime) with hourly bins.
  explicit ClassStats(common::Duration max_lifetime = common::kDay * 90);

  /// Records the observed lifetime of a deleted object of this class.
  void RecordLifetime(common::Duration lifetime);

  /// Records one sampling period's usage of one object of this class.
  void RecordUsage(const PeriodStats& s);

  /// Records the achieved data reduction of one stored object of this
  /// class: `raw_bytes` as the client wrote it, `stored_bytes` after the
  /// filter pipeline (dedup + compression); feeds the reduction-aware
  /// per-GB cost terms of the placement optimizer.
  void RecordReduction(common::Bytes raw_bytes, common::Bytes stored_bytes);

  /// Expected lifetime of a brand-new object (Fig. 5 right, age 0).
  [[nodiscard]] common::Duration ExpectedLifetime() const;

  /// Expected remaining lifetime of an object aged `age` — E[L - a | L > a].
  /// Falls back to the unconditional mean when no observation exceeds `age`.
  [[nodiscard]] common::Duration ExpectedTimeLeftToLive(
      common::Duration age) const;

  /// Mean per-period usage of an object in this class; the statistically
  /// best guess for a new object with no history (Fig. 6).  nullopt until
  /// at least one usage sample was recorded.
  [[nodiscard]] std::optional<PeriodStats> MeanUsage() const;

  /// Mean stored-bytes-per-raw-byte over every reduction sample (< 1 when
  /// the class deduplicates/compresses well, slightly > 1 for
  /// incompressible data paying the filter framing overhead).  nullopt
  /// until a reduction was recorded.
  [[nodiscard]] std::optional<double> MeanReductionRatio() const;

  [[nodiscard]] std::uint64_t reduction_samples() const;

  [[nodiscard]] std::uint64_t lifetime_samples() const;
  [[nodiscard]] std::uint64_t usage_samples() const;
  [[nodiscard]] const common::Histogram& lifetime_histogram() const {
    return lifetimes_;
  }

  /// Checkpoint support: binary-appends this class's aggregates (lifetime
  /// histogram, usage sum, reduction sums and the sample counts) /
  /// restores them, replacing the current contents.  `with_reduction`
  /// selects the on-disk layout: checkpoint format v2 carries the
  /// reduction sums, v1 (written before the filter pipeline existed)
  /// does not — loaders pass false to read old files.
  void SerializeTo(common::BinaryWriter& out) const;
  common::Status RestoreFrom(common::BinaryReader& in,
                             bool with_reduction = true);

 private:
  mutable common::Mutex mu_;
  common::Histogram lifetimes_ GUARDED_BY(mu_);
  std::uint64_t lifetime_count_ GUARDED_BY(mu_) = 0;
  PeriodStats usage_sum_ GUARDED_BY(mu_);
  std::uint64_t usage_count_ GUARDED_BY(mu_) = 0;
  double raw_bytes_sum_ GUARDED_BY(mu_) = 0.0;
  double stored_bytes_sum_ GUARDED_BY(mu_) = 0.0;
  std::uint64_t reduction_count_ GUARDED_BY(mu_) = 0;
};

/// Registry of all known classes; thread-safe.
class ClassRegistry {
 public:
  explicit ClassRegistry(common::Duration max_lifetime = common::kDay * 90)
      : max_lifetime_(max_lifetime) {}

  /// Gets (creating on demand) the stats of `cls`.
  [[nodiscard]] ClassStats& ForClass(const ClassId& cls);

  /// Read-only lookup; nullptr when the class was never seen.
  [[nodiscard]] const ClassStats* Find(const ClassId& cls) const;

  [[nodiscard]] std::size_t ClassCount() const;

  /// Checkpoint support: binary-appends every class's aggregates / rebuilds
  /// the registry from them (dropping any current contents).
  /// `with_reduction` mirrors ClassStats::RestoreFrom (false = checkpoint
  /// format v1, before the reduction sums existed).
  void SerializeTo(common::BinaryWriter& out) const;
  common::Status RestoreFrom(common::BinaryReader& in,
                             bool with_reduction = true);

 private:
  common::Duration max_lifetime_;
  mutable common::Mutex mu_;
  std::unordered_map<ClassId, std::unique_ptr<ClassStats>> classes_
      GUARDED_BY(mu_);
};

}  // namespace scalia::stats
