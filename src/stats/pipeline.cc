#include "stats/pipeline.h"

namespace scalia::stats {

void LogAgent::Log(const AccessEvent& event) {
  if (!aggregator_->queue().TryPush(event)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

LogAggregator::LogAggregator(std::size_t queue_capacity)
    : queue_(queue_capacity) {}

LogAggregator::~LogAggregator() {
  stopping_.store(true);
  queue_.Close();
  if (background_.joinable()) background_.join();
}

void LogAggregator::StartBackground() {
  if (background_.joinable()) return;
  background_ = std::thread([this] { DrainLoop(); });
}

void LogAggregator::DrainLoop() {
  while (!stopping_.load()) {
    auto event = queue_.Pop();
    if (!event) return;  // queue closed and drained
    Fold(*event);
  }
}

void LogAggregator::Pump() {
  while (auto event = queue_.TryPop()) {
    Fold(*event);
  }
}

void LogAggregator::Fold(const AccessEvent& e) {
  common::MutexLock lock(mu_);
  PeriodStats& s = aggregates_[e.row_key];
  const double gb = common::ToGB(e.bytes);
  switch (e.kind) {
    case AccessKind::kRead:
      s.bw_out_gb += gb;
      s.reads += 1.0;
      s.ops += 1.0;
      break;
    case AccessKind::kWrite:
      s.bw_in_gb += gb;
      s.writes += 1.0;
      s.ops += 1.0;
      break;
    case AccessKind::kDelete:
    case AccessKind::kList:
      s.ops += 1.0;
      break;
  }
  touched_[e.row_key] = true;
}

std::unordered_map<std::string, PeriodStats> LogAggregator::Flush() {
  common::MutexLock lock(mu_);
  auto out = std::move(aggregates_);
  aggregates_.clear();
  return out;
}

std::vector<std::string> LogAggregator::TakeTouched() {
  common::MutexLock lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(touched_.size());
  for (const auto& [k, v] : touched_) keys.push_back(k);
  touched_.clear();
  return keys;
}

}  // namespace scalia::stats
