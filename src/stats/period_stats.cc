#include "stats/period_stats.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace scalia::stats {

std::string PeriodStats::ToCsv() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%.9g,%.9g,%.9g,%.9g,%.9g,%.9g", storage_gb,
                bw_in_gb, bw_out_gb, ops, reads, writes);
  return buf;
}

PeriodStats PeriodStats::FromCsv(const std::string& csv) {
  PeriodStats s;
  const auto fields = common::Split(csv, ',');
  auto get = [&fields](std::size_t i) {
    return i < fields.size() ? std::strtod(fields[i].c_str(), nullptr) : 0.0;
  };
  s.storage_gb = get(0);
  s.bw_in_gb = get(1);
  s.bw_out_gb = get(2);
  s.ops = get(3);
  s.reads = get(4);
  s.writes = get(5);
  return s;
}

}  // namespace scalia::stats
