// Distributed log collection pipeline (§III-C.2).
//
// "A log agent residing at each engine continuously reads the logs ... and
// sends them to one of the log aggregators.  The latter collect and
// aggregate the logs before writing them to the database."  Here: each
// engine owns a LogAgent that pushes AccessEvents into a bounded queue; a
// LogAggregator drains the queue (either on a background thread or pumped
// synchronously by deterministic simulations) and folds events into
// per-object PeriodStats, which Flush() hands to the statistics database at
// each sampling-period boundary.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "stats/period_stats.h"

namespace scalia::stats {

enum class AccessKind { kRead, kWrite, kDelete, kList };

struct AccessEvent {
  std::string row_key;
  AccessKind kind = AccessKind::kRead;
  common::Bytes bytes = 0;  // object bytes moved (0 for delete/list)
  common::SimTime timestamp = 0;
};

class LogAggregator;

/// Per-engine front end; cheap to call on the request path.
class LogAgent {
 public:
  explicit LogAgent(LogAggregator* aggregator) : aggregator_(aggregator) {}

  /// Enqueues one access record; drops (and counts) when the pipeline is
  /// saturated rather than blocking the request path.
  void Log(const AccessEvent& event);

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  LogAggregator* aggregator_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Aggregates events into per-object period statistics.
class LogAggregator {
 public:
  explicit LogAggregator(std::size_t queue_capacity = 65536);
  ~LogAggregator();

  LogAggregator(const LogAggregator&) = delete;
  LogAggregator& operator=(const LogAggregator&) = delete;

  /// Starts a background drain thread (live deployments).
  void StartBackground();
  /// Synchronously drains everything currently queued (simulations).
  void Pump();

  /// Snapshots and clears the per-object aggregates of the period that just
  /// ended.  Callers add the storage dimension (which the engine tracks)
  /// and persist into the statistics database.
  [[nodiscard]] std::unordered_map<std::string, PeriodStats> Flush();

  /// Row keys of objects touched since the last call to TakeTouched() —
  /// feeds the "accessed or modified since last optimization" set A of the
  /// periodic optimization (Fig. 7).
  [[nodiscard]] std::vector<std::string> TakeTouched();

  [[nodiscard]] common::BoundedQueue<AccessEvent>& queue() noexcept {
    return queue_;
  }

 private:
  void Fold(const AccessEvent& e);
  void DrainLoop();

  common::BoundedQueue<AccessEvent> queue_;
  common::Mutex mu_;
  std::unordered_map<std::string, PeriodStats> aggregates_ GUARDED_BY(mu_);
  std::unordered_map<std::string, bool> touched_ GUARDED_BY(mu_);
  std::thread background_;
  std::atomic<bool> stopping_{false};
};

}  // namespace scalia::stats
