// FaultInjector: drives a FaultPlan through the live provider substrate.
//
// Implements provider::FaultHook, so one `registry.SetFaultHook(&injector)`
// makes the engine, optimizer and billing all observe the same degraded
// world: outages/partitions turn providers dark (placement avoids them,
// degraded reads route around them), brownouts inject latency and Get/Put
// errors, price shocks scale the specs the cost model and invoices read.
//
// Beyond replaying the plan, the injector *observes*: every provider-op
// outcome feeds a per-provider error-rate EWMA.  When the EWMA crosses the
// quarantine threshold the provider is treated as dark for a fixed spell —
// the same signal a production health checker would emit — and
// UnhealthyProviders() hands the optimizer the set to re-place away from via
// the existing CAS-commit migration path.
#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "chaos/fault_plan.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "provider/fault_hook.h"

namespace scalia::chaos {

struct InjectorOptions {
  double ewma_alpha = 0.2;          // weight of the newest outcome
  double quarantine_error_rate = 0.5;  // EWMA level that triggers quarantine
  common::SimTime quarantine_s = 5;    // how long a quarantine spell lasts
  std::uint64_t rng_seed = 0;          // 0: derive from the plan's seed
};

/// Observed health of one provider, for logs and tests.
struct ProviderHealth {
  provider::ProviderId id;
  double error_ewma = 0.0;
  std::uint64_t ok_ops = 0;
  std::uint64_t failed_ops = 0;
  bool quarantined = false;
};

class FaultInjector final : public provider::FaultHook {
 public:
  explicit FaultInjector(FaultPlan plan, InjectorOptions options = {});

  // provider::FaultHook
  provider::FaultVerdict OnOp(const provider::ProviderId& id,
                              provider::OpKind op,
                              common::SimTime now) override;
  bool IsDark(const provider::ProviderId& id,
              common::SimTime now) const override;
  void RecordOutcome(const provider::ProviderId& id, provider::OpKind op,
                     bool ok) override;
  double PriceMultiplier(const provider::ProviderId& id,
                         common::SimTime now) const override;

  /// Providers to re-place away from at `now`: dark per plan or quarantined
  /// by observed health.  The optimizer polls this each run.
  [[nodiscard]] std::vector<provider::ProviderId> UnhealthyProviders(
      common::SimTime now) const;

  /// Health snapshot for every provider the injector has seen.
  [[nodiscard]] std::vector<ProviderHealth> Health() const;

  /// Total injected fault verdicts (darkness + brownout errors) so far.
  [[nodiscard]] std::uint64_t FaultsInjected() const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  struct HealthState {
    double ewma = 0.0;
    std::uint64_t ok_ops = 0;
    std::uint64_t failed_ops = 0;
    common::SimTime quarantined_until = 0;  // 0: not quarantined
  };

  /// Returns the state for `id`, creating it on first contact.
  HealthState& StateLocked(const provider::ProviderId& id) const
      REQUIRES(mu_);

  /// Expires a finished quarantine spell and resets the EWMA so the provider
  /// gets a fresh chance.
  void MaybeLiftQuarantineLocked(HealthState& state, common::SimTime now) const
      REQUIRES(mu_);

  const FaultPlan plan_;
  const InjectorOptions options_;

  mutable common::Mutex mu_;
  mutable std::map<provider::ProviderId, HealthState> health_ GUARDED_BY(mu_);
  mutable std::mt19937_64 rng_ GUARDED_BY(mu_);
  std::uint64_t faults_injected_ GUARDED_BY(mu_) = 0;
  // Clock high-water mark: RecordOutcome has no `now` param, so quarantine
  // spells are stamped with the latest time any query has seen.
  mutable common::SimTime last_seen_now_ GUARDED_BY(mu_) = 0;
};

}  // namespace scalia::chaos
