// FaultPlan: a declarative schedule of provider faults.
//
// Extends provider::FailureSchedule's binary outage windows with the fault
// classes multi-cloud deployments actually see (PAPERS.md, arXiv 1310.4919):
//
//   outage      — provider fully dark over [from, to)
//   brownout    — provider up but degraded: injected latency on every op and
//                 an error rate on Get/Put over [from, to)
//   partition   — a provider *subset* unreachable over [from, to) (a regional
//                 cut seen identically by every client of this process)
//   price_shock — pricing multiplied over [from, to) (spot-market spike or
//                 tariff change); placement and billing both see it
//
// Plans load from a flag-file (one directive per line, `key=value` operands,
// `#` comments — a deliberately TOML-free subset so the parser needs no new
// dependency) or are generated from a seed for randomized storms.  Times are
// SimTime seconds relative to run start, matching the bench/daemon clocks.
//
//   seed = 42
//   outage      provider=S3(l)      from=2 to=6
//   brownout    provider=Azu        from=1 to=7 latency_ms=3 error_rate=0.15
//   partition   providers=S3(h),RS  from=3 to=5
//   price_shock provider=Ggl        from=2 to=8 multiplier=4.0
//
// The plan itself is immutable once built; all queries are const and
// lock-free, so the hot provider-op path can consult it from any thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "provider/types.h"

namespace scalia::chaos {

enum class FaultKind { kOutage, kBrownout, kPartition, kPriceShock };

[[nodiscard]] constexpr std::string_view FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kOutage: return "outage";
    case FaultKind::kBrownout: return "brownout";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kPriceShock: return "price_shock";
  }
  return "?";
}

struct FaultEvent {
  FaultKind kind = FaultKind::kOutage;
  std::vector<provider::ProviderId> providers;  // one entry except partitions
  common::SimTime from = 0;
  common::SimTime to = 0;          // half-open [from, to)
  int latency_ms = 0;              // brownout: injected per-op latency
  double error_rate = 0.0;         // brownout: Get/Put failure probability
  double price_multiplier = 1.0;   // price_shock

  [[nodiscard]] bool ActiveAt(common::SimTime t) const noexcept {
    return t >= from && t < to;
  }
  [[nodiscard]] bool Covers(const provider::ProviderId& id) const;
};

/// Active brownout parameters for one provider at one instant.
struct BrownoutLevel {
  int latency_ms = 0;
  double error_rate = 0.0;
};

/// Knobs for the seeded random storm generator.  The generator carves the
/// horizon into `events` equal slots and drops one fault (kind, provider,
/// jittered start/length inside the slot) per slot, so at most one provider
/// is ever dark at a time — a storm the placement math can survive, which is
/// what a chaos run wants to assert.
struct RandomPlanConfig {
  std::uint64_t seed = 1;
  std::vector<provider::ProviderId> providers;
  common::SimTime horizon = 60;  // seconds
  int events = 8;
  int max_latency_ms = 5;
  double max_error_rate = 0.3;
  double max_price_multiplier = 5.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the flag-file format above.  Fails InvalidArgument with a
  /// line-numbered message on malformed input.
  static common::Result<FaultPlan> Parse(const std::string& text);

  /// Reads `path` and parses it.
  static common::Result<FaultPlan> Load(const std::string& path);

  /// Deterministic random storm from `config.seed`.
  static FaultPlan Generate(const RandomPlanConfig& config);

  void Add(FaultEvent event);

  /// True when an outage or partition covers `id` at `t`.
  [[nodiscard]] bool IsDarkAt(const provider::ProviderId& id,
                              common::SimTime t) const;

  /// Worst active brownout for `id` at `t` (max latency, max error rate
  /// across overlapping events); nullopt when none.
  [[nodiscard]] std::optional<BrownoutLevel> BrownoutAt(
      const provider::ProviderId& id, common::SimTime t) const;

  /// Product of active price-shock multipliers for `id` at `t`.
  [[nodiscard]] double PriceMultiplierAt(const provider::ProviderId& id,
                                         common::SimTime t) const;

  /// True when any fault of any kind is active at `t` — the bench uses this
  /// to split latency samples into calm vs. storm populations.
  [[nodiscard]] bool AnyFaultActiveAt(common::SimTime t) const;

  /// End of the last window; 0 for an empty plan.  After the horizon the
  /// world is fully healed.
  [[nodiscard]] common::SimTime Horizon() const;

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] bool Empty() const noexcept { return events_.empty(); }

  /// Copy with every window moved `delta` seconds later.  Plans are written
  /// relative to load start; the harness shifts them onto its absolute
  /// clock once seeding is done and the storm may begin.
  [[nodiscard]] FaultPlan Shifted(common::SimTime delta) const;

  /// One-line-per-event rendering in the input format (diagnostics, logs).
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<FaultEvent> events_;
  std::uint64_t seed_ = 0;
};

}  // namespace scalia::chaos
