#include "chaos/fault_injector.h"

#include <algorithm>

namespace scalia::chaos {

FaultInjector::FaultInjector(FaultPlan plan, InjectorOptions options)
    : plan_(std::move(plan)),
      options_(options),
      rng_(options.rng_seed != 0 ? options.rng_seed : plan_.seed() + 1) {}

FaultInjector::HealthState& FaultInjector::StateLocked(
    const provider::ProviderId& id) const {
  return health_[id];
}

void FaultInjector::MaybeLiftQuarantineLocked(HealthState& state,
                                              common::SimTime now) const {
  if (state.quarantined_until != 0 && now >= state.quarantined_until) {
    state.quarantined_until = 0;
    state.ewma = 0.0;  // fresh slate; persistent faults re-build it quickly
  }
}

provider::FaultVerdict FaultInjector::OnOp(const provider::ProviderId& id,
                                           provider::OpKind op,
                                           common::SimTime now) {
  provider::FaultVerdict verdict;
  common::MutexLock lock(mu_);
  last_seen_now_ = std::max(last_seen_now_, now);
  HealthState& state = StateLocked(id);
  MaybeLiftQuarantineLocked(state, now);
  if (plan_.IsDarkAt(id, now) || state.quarantined_until > now) {
    verdict.unavailable = true;
    ++faults_injected_;
    return verdict;
  }
  if (const auto brownout = plan_.BrownoutAt(id, now)) {
    verdict.latency_us = brownout->latency_ms * 1000;
    // Brownout errors target the data path; metadata-ish Delete/List keep
    // only the latency penalty.
    const bool data_op =
        op == provider::OpKind::kGet || op == provider::OpKind::kPut;
    if (data_op && brownout->error_rate > 0.0) {
      std::uniform_real_distribution<double> unit(0.0, 1.0);
      if (unit(rng_) < brownout->error_rate) {
        verdict.fail_op = true;
        ++faults_injected_;
      }
    }
  }
  return verdict;
}

bool FaultInjector::IsDark(const provider::ProviderId& id,
                           common::SimTime now) const {
  if (plan_.IsDarkAt(id, now)) return true;
  common::MutexLock lock(mu_);
  last_seen_now_ = std::max(last_seen_now_, now);
  HealthState& state = StateLocked(id);
  MaybeLiftQuarantineLocked(state, now);
  return state.quarantined_until > now;
}

void FaultInjector::RecordOutcome(const provider::ProviderId& id,
                                  provider::OpKind /*op*/, bool ok) {
  common::MutexLock lock(mu_);
  HealthState& state = StateLocked(id);
  if (state.quarantined_until > last_seen_now_) {
    // Ops refused because of the quarantine itself must not feed the EWMA,
    // or the provider could never recover.
    return;
  }
  state.ewma = options_.ewma_alpha * (ok ? 0.0 : 1.0) +
               (1.0 - options_.ewma_alpha) * state.ewma;
  if (ok) {
    ++state.ok_ops;
  } else {
    ++state.failed_ops;
  }
  if (!ok && state.ewma >= options_.quarantine_error_rate &&
      state.quarantined_until == 0) {
    state.quarantined_until = last_seen_now_ + options_.quarantine_s;
  }
}

double FaultInjector::PriceMultiplier(const provider::ProviderId& id,
                                      common::SimTime now) const {
  return plan_.PriceMultiplierAt(id, now);
}

std::vector<provider::ProviderId> FaultInjector::UnhealthyProviders(
    common::SimTime now) const {
  std::vector<provider::ProviderId> out;
  common::MutexLock lock(mu_);
  last_seen_now_ = std::max(last_seen_now_, now);
  for (auto& [id, state] : health_) {
    MaybeLiftQuarantineLocked(state, now);
    if (state.quarantined_until > now || plan_.IsDarkAt(id, now)) {
      out.push_back(id);
    }
  }
  // A provider the plan darkens may never have been contacted (no health
  // entry yet); it is unhealthy all the same.
  for (const auto& event : plan_.events()) {
    if ((event.kind != FaultKind::kOutage &&
         event.kind != FaultKind::kPartition) ||
        !event.ActiveAt(now)) {
      continue;
    }
    for (const auto& id : event.providers) {
      if (std::find(out.begin(), out.end(), id) == out.end()) {
        out.push_back(id);
      }
    }
  }
  return out;
}

std::vector<ProviderHealth> FaultInjector::Health() const {
  std::vector<ProviderHealth> out;
  common::MutexLock lock(mu_);
  out.reserve(health_.size());
  for (const auto& [id, state] : health_) {
    out.push_back({.id = id,
                   .error_ewma = state.ewma,
                   .ok_ops = state.ok_ops,
                   .failed_ops = state.failed_ops,
                   .quarantined = state.quarantined_until > last_seen_now_});
  }
  return out;
}

std::uint64_t FaultInjector::FaultsInjected() const {
  common::MutexLock lock(mu_);
  return faults_injected_;
}

}  // namespace scalia::chaos
