#include "chaos/fault_plan.h"

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>

namespace scalia::chaos {
namespace {

/// Splits "a,b,c" into parts; empty parts are dropped.
std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string part;
  std::stringstream stream(s);
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

struct LineContext {
  int number = 0;
  common::Status Error(const std::string& what) const {
    return common::Status::InvalidArgument("fault plan line " +
                                           std::to_string(number) + ": " +
                                           what);
  }
};

/// Parses `key=value` operands into the event fields it recognizes.
common::Status ApplyOperand(const LineContext& line, const std::string& token,
                            FaultEvent& event) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return line.Error("expected key=value, got '" + token + "'");
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  try {
    if (key == "provider") {
      event.providers = {value};
    } else if (key == "providers") {
      event.providers = SplitCommas(value);
    } else if (key == "from") {
      event.from = std::stoll(value);
    } else if (key == "to") {
      event.to = std::stoll(value);
    } else if (key == "latency_ms") {
      event.latency_ms = std::stoi(value);
    } else if (key == "error_rate") {
      event.error_rate = std::stod(value);
    } else if (key == "multiplier") {
      event.price_multiplier = std::stod(value);
    } else {
      return line.Error("unknown key '" + key + "'");
    }
  } catch (const std::exception&) {
    return line.Error("bad value for '" + key + "': '" + value + "'");
  }
  return common::Status::Ok();
}

common::Status Validate(const LineContext& line, const FaultEvent& event) {
  if (event.providers.empty()) return line.Error("no provider given");
  if (event.to <= event.from) {
    return line.Error("empty window [" + std::to_string(event.from) + ", " +
                      std::to_string(event.to) + ")");
  }
  if (event.error_rate < 0.0 || event.error_rate > 1.0) {
    return line.Error("error_rate outside [0, 1]");
  }
  if (event.latency_ms < 0) return line.Error("negative latency_ms");
  if (event.price_multiplier <= 0.0) {
    return line.Error("price multiplier must be positive");
  }
  return common::Status::Ok();
}

}  // namespace

bool FaultEvent::Covers(const provider::ProviderId& id) const {
  return std::find(providers.begin(), providers.end(), id) != providers.end();
}

common::Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::stringstream stream(text);
  std::string raw;
  LineContext line;
  while (std::getline(stream, raw)) {
    ++line.number;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    std::stringstream tokens(raw);
    std::string word;
    if (!(tokens >> word)) continue;  // blank or comment-only line

    if (word == "seed" || word.rfind("seed=", 0) == 0) {
      std::string value;
      if (word == "seed") {
        std::string eq;
        tokens >> eq;
        if (eq == "=") {
          tokens >> value;
        } else if (eq.rfind('=', 0) == 0 && eq.size() > 1) {
          value = eq.substr(1);  // `seed =N`
        }
      } else {
        value = word.substr(5);  // compact `seed=N`
      }
      if (value.empty()) return line.Error("expected 'seed = N'");
      try {
        plan.seed_ = std::stoull(value);
      } catch (const std::exception&) {
        return line.Error("bad seed '" + value + "'");
      }
      continue;
    }

    FaultEvent event;
    if (word == "outage") {
      event.kind = FaultKind::kOutage;
    } else if (word == "brownout") {
      event.kind = FaultKind::kBrownout;
    } else if (word == "partition") {
      event.kind = FaultKind::kPartition;
    } else if (word == "price_shock") {
      event.kind = FaultKind::kPriceShock;
    } else {
      return line.Error("unknown directive '" + word + "'");
    }
    std::string token;
    while (tokens >> token) {
      if (auto s = ApplyOperand(line, token, event); !s.ok()) return s;
    }
    if (auto s = Validate(line, event); !s.ok()) return s;
    plan.Add(std::move(event));
  }
  return plan;
}

common::Result<FaultPlan> FaultPlan::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return common::Status::InvalidArgument("cannot open fault plan: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

FaultPlan FaultPlan::Generate(const RandomPlanConfig& config) {
  FaultPlan plan;
  plan.seed_ = config.seed;
  if (config.providers.empty() || config.events <= 0 || config.horizon <= 0) {
    return plan;
  }
  std::mt19937_64 rng(config.seed);
  const common::SimTime slot =
      std::max<common::SimTime>(1, config.horizon / config.events);
  std::uniform_int_distribution<int> kind_die(0, 3);
  std::uniform_int_distribution<std::size_t> provider_die(
      0, config.providers.size() - 1);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int i = 0; i < config.events; ++i) {
    const common::SimTime slot_start = i * slot;
    if (slot_start >= config.horizon) break;
    FaultEvent event;
    event.kind = static_cast<FaultKind>(kind_die(rng));
    event.providers = {config.providers[provider_die(rng)]};
    // Jittered start and length, confined to the slot so outages never
    // overlap each other: at most one provider is dark at any instant.
    const auto jitter =
        static_cast<common::SimTime>(unit(rng) * static_cast<double>(slot) / 2);
    event.from = slot_start + jitter;
    event.to = std::min<common::SimTime>(config.horizon,
                                         event.from + std::max<common::SimTime>(
                                                          1, slot - jitter));
    switch (event.kind) {
      case FaultKind::kBrownout:
        event.latency_ms =
            1 + static_cast<int>(unit(rng) * config.max_latency_ms);
        event.error_rate = unit(rng) * config.max_error_rate;
        break;
      case FaultKind::kPriceShock:
        event.price_multiplier = 1.0 + unit(rng) *
                                           (config.max_price_multiplier - 1.0);
        break;
      case FaultKind::kPartition:
        // Single-provider partition: same reachability effect as an outage
        // but reported as its own kind for log realism.
        break;
      case FaultKind::kOutage:
        break;
    }
    plan.Add(std::move(event));
  }
  return plan;
}

void FaultPlan::Add(FaultEvent event) { events_.push_back(std::move(event)); }

bool FaultPlan::IsDarkAt(const provider::ProviderId& id,
                         common::SimTime t) const {
  for (const auto& e : events_) {
    if ((e.kind == FaultKind::kOutage || e.kind == FaultKind::kPartition) &&
        e.ActiveAt(t) && e.Covers(id)) {
      return true;
    }
  }
  return false;
}

std::optional<BrownoutLevel> FaultPlan::BrownoutAt(
    const provider::ProviderId& id, common::SimTime t) const {
  std::optional<BrownoutLevel> level;
  for (const auto& e : events_) {
    if (e.kind == FaultKind::kBrownout && e.ActiveAt(t) && e.Covers(id)) {
      if (!level) level.emplace();
      level->latency_ms = std::max(level->latency_ms, e.latency_ms);
      level->error_rate = std::max(level->error_rate, e.error_rate);
    }
  }
  return level;
}

double FaultPlan::PriceMultiplierAt(const provider::ProviderId& id,
                                    common::SimTime t) const {
  double mult = 1.0;
  for (const auto& e : events_) {
    if (e.kind == FaultKind::kPriceShock && e.ActiveAt(t) && e.Covers(id)) {
      mult *= e.price_multiplier;
    }
  }
  return mult;
}

bool FaultPlan::AnyFaultActiveAt(common::SimTime t) const {
  return std::any_of(events_.begin(), events_.end(),
                     [t](const FaultEvent& e) { return e.ActiveAt(t); });
}

FaultPlan FaultPlan::Shifted(common::SimTime delta) const {
  FaultPlan shifted = *this;
  for (auto& e : shifted.events_) {
    e.from += delta;
    e.to += delta;
  }
  return shifted;
}

common::SimTime FaultPlan::Horizon() const {
  common::SimTime horizon = 0;
  for (const auto& e : events_) horizon = std::max(horizon, e.to);
  return horizon;
}

std::string FaultPlan::ToString() const {
  std::stringstream out;
  if (seed_ != 0) out << "seed = " << seed_ << "\n";
  for (const auto& e : events_) {
    out << FaultKindName(e.kind);
    out << (e.providers.size() > 1 ? " providers=" : " provider=");
    for (std::size_t i = 0; i < e.providers.size(); ++i) {
      if (i > 0) out << ',';
      out << e.providers[i];
    }
    out << " from=" << e.from << " to=" << e.to;
    if (e.kind == FaultKind::kBrownout) {
      out << " latency_ms=" << e.latency_ms << " error_rate=" << e.error_rate;
    }
    if (e.kind == FaultKind::kPriceShock) {
      out << " multiplier=" << e.price_multiplier;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace scalia::chaos
