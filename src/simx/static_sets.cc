#include "simx/static_sets.h"

namespace scalia::simx {

namespace {

void Extend(const std::vector<provider::ProviderSpec>& catalog,
            std::size_t next, std::size_t min_size,
            std::vector<provider::ProviderId>& current,
            std::vector<std::vector<provider::ProviderId>>& out) {
  for (std::size_t i = next; i < catalog.size(); ++i) {
    current.push_back(catalog[i].id);
    if (current.size() >= min_size) out.push_back(current);
    Extend(catalog, i + 1, min_size, current, out);
    current.pop_back();
  }
}

}  // namespace

std::vector<std::vector<provider::ProviderId>> StaticSets(
    const std::vector<provider::ProviderSpec>& catalog, std::size_t min_size) {
  std::vector<std::vector<provider::ProviderId>> out;
  std::vector<provider::ProviderId> current;
  Extend(catalog, 0, min_size, current, out);
  return out;
}

std::string SetLabel(const std::vector<provider::ProviderId>& set) {
  std::string label;
  for (const auto& id : set) {
    if (!label.empty()) label += "-";
    label += id;
  }
  return label;
}

}  // namespace scalia::simx
