#include "simx/overcost.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace scalia::simx {

std::vector<provider::ProviderSpec> Fig13Order(
    const std::vector<provider::ProviderSpec>& catalog) {
  const std::vector<provider::ProviderId> order = {"S3(h)", "S3(l)", "Azu",
                                                   "Ggl", "RS"};
  std::vector<provider::ProviderSpec> out;
  for (const auto& id : order) {
    if (const auto* spec = provider::FindSpec(catalog, id)) {
      out.push_back(*spec);
    }
  }
  // Any provider outside the canonical five (e.g. CheapStor) appends in
  // catalog order.
  for (const auto& spec : catalog) {
    if (std::none_of(out.begin(), out.end(),
                     [&](const auto& s) { return s.id == spec.id; })) {
      out.push_back(spec);
    }
  }
  return out;
}

const OverCostRow& OverCostTable::BestStatic() const {
  // Prefer rule-compliant rows: a degraded static set may be cheap only
  // because it billed fewer chunks than the rule demands.
  const OverCostRow* best = nullptr;
  for (bool require_compliant : {true, false}) {
    for (const auto& row : rows) {
      if (row.label == "Scalia" || !row.feasible) continue;
      if (require_compliant && row.noncompliant_periods > 0) continue;
      if (best == nullptr || row.total < best->total) best = &row;
    }
    if (best != nullptr) break;
  }
  return best != nullptr ? *best : rows.front();
}

const OverCostRow& OverCostTable::WorstStatic() const {
  const OverCostRow* worst = nullptr;
  for (const auto& row : rows) {
    if (row.label == "Scalia" || !row.feasible) continue;
    if (worst == nullptr || row.total > worst->total) worst = &row;
  }
  return worst != nullptr ? *worst : rows.front();
}

OverCostTable ComputeOverCost(
    const CostSimulator& simulator, const ScenarioSpec& scenario,
    const std::vector<provider::ProviderSpec>& set_catalog,
    common::ThreadPool* pool) {
  OverCostTable table;
  table.scenario = scenario.name;
  table.ideal = simulator.RunIdeal(scenario);
  table.ideal_total = table.ideal.total;

  const auto sets = StaticSets(set_catalog);
  std::vector<RunResult> static_runs(sets.size());
  auto run_static = [&](std::size_t i) {
    static_runs[i] = simulator.RunStatic(scenario, sets[i]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(sets.size(), run_static);
  } else {
    for (std::size_t i = 0; i < sets.size(); ++i) run_static(i);
  }
  table.scalia = simulator.RunScalia(scenario);

  auto over_pct = [&](common::Money total) {
    return table.ideal_total.usd() > 0.0
               ? (total - table.ideal_total) / table.ideal_total * 100.0
               : 0.0;
  };
  for (std::size_t i = 0; i < sets.size(); ++i) {
    OverCostRow row;
    row.index = i + 1;
    row.label = SetLabel(sets[i]);
    row.feasible = static_runs[i].feasible;
    row.total = static_runs[i].total;
    row.over_pct = over_pct(row.total);
    row.noncompliant_periods = static_runs[i].noncompliant_object_periods;
    table.rows.push_back(std::move(row));
  }
  OverCostRow scalia_row;
  scalia_row.index = sets.size() + 1;
  scalia_row.label = "Scalia";
  scalia_row.feasible = table.scalia.feasible;
  scalia_row.total = table.scalia.total;
  scalia_row.over_pct = over_pct(scalia_row.total);
  scalia_row.noncompliant_periods = table.scalia.noncompliant_object_periods;
  table.rows.push_back(std::move(scalia_row));
  return table;
}

std::string FormatOverCostTable(const OverCostTable& table) {
  std::ostringstream os;
  os << "# " << table.scenario
     << " — % over cost vs ideal placement (ideal total = "
     << table.ideal_total.ToString() << ")\n";
  os << "#  set  label                          total($)    over-cost(%)\n";
  bool any_noncompliant = false;
  for (const auto& row : table.rows) {
    char buf[160];
    if (row.feasible) {
      const bool flagged = row.noncompliant_periods > 0;
      any_noncompliant |= flagged;
      std::snprintf(buf, sizeof(buf), "  %4zu  %-28s %11.4f   %9.2f%s\n",
                    row.index, row.label.c_str(), row.total.usd(),
                    row.over_pct, flagged ? " !" : "");
    } else {
      std::snprintf(buf, sizeof(buf), "  %4zu  %-28s %11s   %9s\n", row.index,
                    row.label.c_str(), "n/a", "infeasible");
    }
    os << buf;
  }
  if (any_noncompliant) {
    os << "#  ! = billed object-periods while rule-noncompliant (degraded "
          "by an outage or provider exit)\n";
  }
  const auto& best = table.BestStatic();
  const auto& worst = table.WorstStatic();
  os << "# Scalia: " << common::FormatDouble(table.ScaliaRow().over_pct, 2)
     << "% over ideal;  best static: " << best.label << " ("
     << common::FormatDouble(best.over_pct, 2)
     << "%);  worst static: " << worst.label << " ("
     << common::FormatDouble(worst.over_pct, 2) << "%)\n";
  return os.str();
}

}  // namespace scalia::simx
