#include "simx/environment.h"

#include <algorithm>

namespace scalia::simx {

SimEnvironment SimEnvironment::Paper() {
  std::vector<ProviderTimeline> timelines;
  for (auto& spec : provider::PaperCatalog()) {
    timelines.push_back(ProviderTimeline{.spec = std::move(spec),
                                         .available_from = 0,
                                         .available_until = std::nullopt,
                                         .outages = {},
                                         .price_changes = {}});
  }
  return SimEnvironment(std::move(timelines));
}

void SimEnvironment::Reprice(const provider::ProviderId& id,
                             common::SimTime at,
                             provider::PricingPolicy pricing) {
  for (auto& t : providers_) {
    if (t.spec.id != id) continue;
    t.price_changes.push_back(PricingChange{.at = at, .pricing = pricing});
    // Keep the schedule time-ordered so PricedAt can scan front to back.
    std::stable_sort(t.price_changes.begin(), t.price_changes.end(),
                     [](const PricingChange& a, const PricingChange& b) {
                       return a.at < b.at;
                     });
    return;
  }
}

void SimEnvironment::Bankrupt(const provider::ProviderId& id,
                              common::SimTime at) {
  for (auto& t : providers_) {
    if (t.spec.id != id) continue;
    t.available_until = at;
    return;
  }
}

provider::ProviderSpec SimEnvironment::PricedAt(const ProviderTimeline& t,
                                                common::SimTime now) {
  provider::ProviderSpec spec = t.spec;
  for (const auto& change : t.price_changes) {
    if (change.at > now) break;
    spec.pricing = change.pricing;
  }
  return spec;
}

std::vector<provider::ProviderSpec> SimEnvironment::SpecsAt(
    common::SimTime now) const {
  std::vector<provider::ProviderSpec> out;
  for (const auto& t : providers_) {
    if (InMarket(t, now)) out.push_back(PricedAt(t, now));
  }
  return out;
}

std::vector<provider::ProviderSpec> SimEnvironment::ReachableAt(
    common::SimTime now) const {
  std::vector<provider::ProviderSpec> out;
  for (const auto& t : providers_) {
    if (InMarket(t, now) && t.outages.IsAvailable(now)) {
      out.push_back(PricedAt(t, now));
    }
  }
  return out;
}

bool SimEnvironment::IsReachable(const provider::ProviderId& id,
                                 common::SimTime now) const {
  for (const auto& t : providers_) {
    if (t.spec.id == id) {
      return InMarket(t, now) && t.outages.IsAvailable(now);
    }
  }
  return false;
}

std::optional<provider::ProviderSpec> SimEnvironment::FindSpec(
    const provider::ProviderId& id, common::SimTime now) const {
  for (const auto& t : providers_) {
    if (t.spec.id == id && InMarket(t, now)) return PricedAt(t, now);
  }
  return std::nullopt;
}

}  // namespace scalia::simx
