#include "simx/simulator.h"

#include <algorithm>
#include <unordered_map>

#include "core/reliability.h"

namespace scalia::simx {

namespace {

/// Physical resource view of an expanded usage (sums over providers).
PeriodResources ResourcesOf(const core::ExpandedUsage& usage,
                            common::Duration period) {
  PeriodResources res;
  const double hours = common::ToHours(period);
  for (const auto& u : usage.per_provider) {
    res.storage_gb += hours > 0.0 ? u.storage_gb_hours / hours : 0.0;
    res.bw_in_gb += u.bw_in_gb;
    res.bw_out_gb += u.bw_out_gb;
  }
  return res;
}

std::vector<bool> ReachabilityMask(const SimEnvironment& env,
                                   const core::PlacementDecision& placement,
                                   common::SimTime now) {
  std::vector<bool> mask(placement.providers.size());
  for (std::size_t i = 0; i < placement.providers.size(); ++i) {
    mask[i] = env.IsReachable(placement.providers[i].id, now);
  }
  return mask;
}

}  // namespace

common::Money CostSimulator::ChargePeriod(
    const core::PlacementDecision& placement, const stats::PeriodStats& s,
    common::SimTime now, PeriodResources* res) const {
  if (!placement.feasible || placement.providers.empty()) {
    return common::kZeroMoney;
  }
  const std::vector<bool> mask = ReachabilityMask(env_, placement, now);
  const core::ExpandedUsage usage =
      model_.Expand(placement.providers, placement.m, s, mask);
  common::Money total;
  for (std::size_t i = 0; i < placement.providers.size(); ++i) {
    // Bill at the pricing in force *now*, not the pricing captured when the
    // placement was decided — repricing events (§I) hit stored objects too.
    // A provider that left the market permanently no longer stores the
    // chunk and no longer bills (unlike a transient outage, where storage
    // accrues throughout).
    const auto current =
        env_.FindSpec(placement.providers[i].id, now);
    if (!current) continue;
    total += provider::CostOf(current->pricing, usage.per_provider[i],
                              config_.price.sampling_period,
                              config_.price.billing);
  }
  if (res != nullptr) *res += ResourcesOf(usage, config_.price.sampling_period);
  return total;
}

common::Money CostSimulator::ChargeMigration(
    const core::MigrationAssessment& assessment,
    const core::PlacementDecision& from, const core::PlacementDecision& to,
    common::Bytes size, PeriodResources* res) const {
  if (res != nullptr) {
    const double old_chunk_gb =
        from.m > 0 ? common::ToGB(common::CeilDiv(
                         size, static_cast<common::Bytes>(from.m)))
                   : 0.0;
    const double new_chunk_gb = common::ToGB(
        common::CeilDiv(size, static_cast<common::Bytes>(std::max(1, to.m))));
    res->bw_out_gb += static_cast<double>(assessment.chunks_read) * old_chunk_gb;
    res->bw_in_gb +=
        static_cast<double>(assessment.chunks_written) * new_chunk_gb;
  }
  return assessment.migration_cost;
}

bool CostSimulator::PlacementCompliant(
    const core::PlacementDecision& placement, const core::StorageRule& rule,
    common::SimTime now) const {
  // Restrict the placement to reachable members; the surviving stripe must
  // still satisfy durability (with the existing threshold m) and
  // availability, and the lock-in bound must hold on the reachable spread.
  std::vector<double> durabilities;
  std::vector<double> availabilities;
  for (const auto& p : placement.providers) {
    if (!env_.IsReachable(p.id, now)) continue;
    durabilities.push_back(p.sla.durability);
    availabilities.push_back(p.sla.availability);
  }
  if (durabilities.size() < static_cast<std::size_t>(placement.m)) {
    return false;  // object not even reconstructible
  }
  if (durabilities.size() <
      static_cast<std::size_t>(rule.MinProviders())) {
    return false;
  }
  const int max_m = core::GetThreshold(durabilities, rule.durability);
  if (max_m < placement.m) return false;
  return core::GetAvailability(availabilities, placement.m) >=
         rule.availability;
}

core::PlacementDecision CostSimulator::RepairSwap(
    const core::PlacementDecision& placement, const core::StorageRule& rule,
    const stats::PeriodStats& forecast, std::size_t decision_periods,
    common::SimTime now) const {
  // Keep the (m, n) structure; replace each unreachable member with the
  // reachable non-member that minimizes the expected cost, then validate
  // the resulting set against the rule.
  core::PlacementDecision repaired = placement;
  std::vector<provider::ProviderSpec> candidates = env_.ReachableAt(now);
  std::erase_if(candidates, [&](const provider::ProviderSpec& c) {
    return !rule.ZoneEligible(c.zones) ||
           std::any_of(placement.providers.begin(), placement.providers.end(),
                       [&](const auto& p) { return p.id == c.id; });
  });
  for (auto& member : repaired.providers) {
    if (env_.IsReachable(member.id, now)) continue;
    std::size_t best = candidates.size();
    common::Money best_cost;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      provider::ProviderSpec saved = member;
      member = candidates[c];
      const common::Money cost = model_.ExpectedCost(
          repaired.providers, repaired.m, forecast, decision_periods);
      if (best == candidates.size() || cost < best_cost) {
        best = c;
        best_cost = cost;
      }
      member = saved;
    }
    if (best == candidates.size()) {
      repaired.feasible = false;
      return repaired;
    }
    member = candidates[best];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(best));
  }
  // Validate the swapped set.
  std::vector<double> durabilities, availabilities;
  for (const auto& p : repaired.providers) {
    durabilities.push_back(p.sla.durability);
    availabilities.push_back(p.sla.availability);
  }
  const int max_m = core::GetThreshold(durabilities, rule.durability);
  repaired.feasible =
      max_m >= repaired.m &&
      core::GetAvailability(availabilities, repaired.m) >= rule.availability;
  repaired.expected_cost = model_.ExpectedCost(
      repaired.providers, repaired.m, forecast, decision_periods);
  return repaired;
}

// ---------------------------------------------------------------------------
// Scalia policy
// ---------------------------------------------------------------------------

struct CostSimulator::ObjState {
  const SimObject* obj = nullptr;
  core::PlacementDecision placement;
  stats::AccessHistory history{24 * 7 * 8};
  stats::TrendDetector trend;
  core::DecisionPeriodController dctl;
  stats::ClassId class_id;
  bool placed = false;
  bool pending_reopt = false;
  /// Periods since the last detected trend change.  History older than the
  /// change point describes a pattern that no longer holds, so forecast
  /// windows are capped at this age ("we can reasonably suppose that the
  /// access pattern in the near future will be similar to the current").
  std::size_t periods_since_change = 0;

  [[nodiscard]] std::size_t Window(std::size_t d) const {
    return std::max<std::size_t>(1, std::min(d, periods_since_change));
  }

  ObjState(const SimObject* o, const SimPolicyConfig& config)
      : obj(o),
        trend(config.trend),
        dctl(config.decision_period),
        class_id(stats::ClassifyObject(o->mime, o->size)) {}
};

RunResult CostSimulator::RunScalia(const ScenarioSpec& scenario) const {
  RunResult result;
  result.policy = "Scalia";
  result.cost_per_period.assign(scenario.num_periods, common::kZeroMoney);
  result.resources.assign(scenario.num_periods, PeriodResources{});

  std::vector<ObjState> states;
  states.reserve(scenario.objects.size());
  for (const auto& obj : scenario.objects) {
    states.emplace_back(&obj, config_);
  }
  stats::ClassRegistry classes(
      static_cast<common::Duration>(scenario.num_periods + 1) *
      scenario.sampling_period);

  // Market signature: reachable provider ids *and* their pricing.  A
  // repricing event changes the economics exactly like a provider swap, so
  // it must trigger the provider-change reoptimization path too ("the
  // provider set of an object will change only if its access history varies
  // significantly or if the set of storage providers P(obj) changes",
  // §III-A.3 — with prices being part of what a provider *is* here).
  auto reachable_ids = [&](common::SimTime now) {
    std::vector<std::string> sig;
    for (const auto& p : env_.ReachableAt(now)) {
      sig.push_back(p.id + "|" + std::to_string(p.pricing.storage_gb_month) +
                    "," + std::to_string(p.pricing.bw_in_gb) + "," +
                    std::to_string(p.pricing.bw_out_gb) + "," +
                    std::to_string(p.pricing.ops_per_1000));
    }
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  std::vector<std::string> prev_reachable =
      reachable_ids(scenario.PeriodStart(0));

  for (std::size_t p = 0; p < scenario.num_periods; ++p) {
    const common::SimTime now = scenario.PeriodStart(p);
    const auto reachable_now = reachable_ids(now);
    const bool env_changed = reachable_now != prev_reachable;
    prev_reachable = reachable_now;
    const std::vector<provider::ProviderSpec> reachable =
        env_.ReachableAt(now);

    for (ObjState& st : states) {
      if (!st.obj->AliveAt(p)) continue;
      const stats::PeriodStats actual = st.obj->StatsAt(p);

      // --- Initial placement --------------------------------------------
      if (!st.placed) {
        // Forecast: this period's write, plus the class's mean usage when
        // class seeding is enabled and statistics exist (Fig. 6).
        stats::PeriodStats forecast = actual;
        if (config_.class_seed) {
          if (const auto* cls = classes.Find(st.class_id)) {
            if (auto mean = cls->MeanUsage()) {
              forecast = *mean;
              forecast.storage_gb = common::ToGB(st.obj->size);
              forecast.writes = std::max(forecast.writes, 1.0);
              forecast.bw_in_gb =
                  std::max(forecast.bw_in_gb, common::ToGB(st.obj->size));
              forecast.ops = forecast.reads + forecast.writes;
            }
          }
        }
        std::size_t d0 = config_.default_decision_periods;
        if (st.obj->rule.ttl_hint) {
          d0 = static_cast<std::size_t>(std::max<common::Duration>(
              1, *st.obj->rule.ttl_hint / scenario.sampling_period));
        } else if (const auto* cls = classes.Find(st.class_id);
                   cls != nullptr && cls->lifetime_samples() > 0) {
          d0 = static_cast<std::size_t>(std::max<common::Duration>(
              1, cls->ExpectedLifetime() / scenario.sampling_period));
        }
        core::PlacementRequest request;
        request.rule = st.obj->rule;
        request.object_size = st.obj->size;
        request.per_period = forecast;
        request.decision_periods = d0;
        st.placement = FindPlacement(reachable, request);
        st.placed = true;
        result.recomputations += 1;
        if (!st.placement.feasible) {
          result.feasible = false;
          continue;
        }
        result.events.push_back(
            {p, st.obj->name, st.placement.Label(), "initial"});
      } else {
        // --- Failure / provider-change handling -------------------------
        // The stored decision captured each member's pricing as of placement
        // time; migration economics must compare against the pricing in
        // force *now* (a gouging provider must not keep looking cheap).
        for (auto& member : st.placement.providers) {
          if (const auto current = env_.FindSpec(member.id, now)) {
            member.pricing = current->pricing;
          }
        }
        const bool member_down = std::any_of(
            st.placement.providers.begin(), st.placement.providers.end(),
            [&](const auto& m) { return !env_.IsReachable(m.id, now); });
        const bool compliant =
            !member_down || PlacementCompliant(st.placement, st.obj->rule, now);

        if (member_down || env_changed || st.pending_reopt) {
          stats::PeriodStats forecast =
              st.history.AverageOver(st.Window(st.dctl.current()));
          forecast.storage_gb = common::ToGB(st.obj->size);

          std::size_t ttl_periods = 0;
          if (const auto* cls = classes.Find(st.class_id);
              cls != nullptr && cls->lifetime_samples() > 0) {
            const common::Duration age =
                static_cast<common::Duration>(p - st.obj->created_period) *
                scenario.sampling_period;
            ttl_periods = static_cast<std::size_t>(std::max<common::Duration>(
                1, cls->ExpectedTimeLeftToLive(age) /
                       scenario.sampling_period));
          }

          std::size_t decision_periods = st.dctl.current();
          if (st.pending_reopt) {
            // The adaptive decision period couples D/2, D, 2D (§III-A).
            auto evaluator = [&](std::size_t d) {
              core::PlacementRequest r;
              r.rule = st.obj->rule;
              r.object_size = st.obj->size;
              r.per_period = st.history.AverageOver(st.Window(d));
              r.per_period.storage_gb = common::ToGB(st.obj->size);
              r.decision_periods = d;
              return FindPlacement(reachable, r);
            };
            decision_periods =
                config_.adapt_decision_period
                    ? st.dctl.OnOptimization(st.history.size(), ttl_periods,
                                             evaluator)
                    : config_.default_decision_periods;
          }
          // Benefit horizon: the class TTL estimate when one exists, else a
          // conservative default — with no deletion statistics the object is
          // presumed to live at least the default decision horizon.
          const std::size_t remaining =
              ttl_periods > 0
                  ? ttl_periods
                  : std::max(decision_periods,
                             config_.default_decision_periods);

          core::PlacementRequest request;
          request.rule = st.obj->rule;
          request.object_size = st.obj->size;
          request.per_period = forecast;
          request.decision_periods = decision_periods;
          core::PlacementDecision target =
              FindPlacement(reachable, request);
          result.recomputations += 1;

          std::vector<provider::ProviderSpec> readable;
          for (const auto& m : st.placement.providers) {
            if (env_.IsReachable(m.id, now)) readable.push_back(m);
          }

          if (!compliant) {
            // Constraint violated: active repair is mandatory; pick the
            // cheaper of swap-in-place and full re-placement (§IV-E).
            core::PlacementDecision swap =
                RepairSwap(st.placement, st.obj->rule, forecast,
                           decision_periods, now);
            core::PlacementDecision chosen;
            core::MigrationAssessment chosen_cost;
            bool have = false;
            for (const core::PlacementDecision* cand : {&swap, &target}) {
              if (!cand->feasible) continue;
              const auto assess = migration_.CostOnly(
                  st.placement.providers, st.placement.m, *cand, readable,
                  st.obj->size);
              const common::Money total =
                  assess.migration_cost +
                  model_.PeriodCost(cand->providers, cand->m, forecast) *
                      static_cast<double>(remaining);
              if (!have ||
                  total < chosen_cost.migration_cost +
                              model_.PeriodCost(chosen.providers, chosen.m,
                                                forecast) *
                                  static_cast<double>(remaining)) {
                chosen = *cand;
                chosen_cost = assess;
                have = true;
              }
            }
            if (have && readable.size() >=
                            static_cast<std::size_t>(st.placement.m)) {
              result.cost_per_period[p] += ChargeMigration(
                  chosen_cost, st.placement, chosen, st.obj->size,
                  &result.resources[p]);
              st.placement = chosen;
              result.repairs += 1;
              result.events.push_back(
                  {p, st.obj->name, st.placement.Label(), "repair"});
            }
            // else: fewer than m chunks reachable; wait for recovery.
          } else if (target.feasible &&
                     !target.SamePlacement(st.placement)) {
            const auto assessment = migration_.Assess(
                st.placement.providers, st.placement.m, target, readable,
                st.obj->size, forecast, remaining);
            // Hysteresis: cyclic patterns (diurnal swings) make the
            // recent-window forecast oscillate; require the move to also
            // pay off under the smoothed decision-period forecast unless
            // the recent benefit is overwhelming.
            bool approved = assessment.worthwhile;
            bool rejected_by_smoothing = false;
            if (approved && config_.migration_gate) {
              const double margin =
                  assessment.migration_cost.usd() > 0.0
                      ? assessment.benefit.usd() /
                            assessment.migration_cost.usd()
                      : std::numeric_limits<double>::infinity();
              if (margin < config_.migration_hysteresis) {
                stats::PeriodStats smoothed =
                    st.history.AverageOver(st.dctl.current());
                smoothed.storage_gb = common::ToGB(st.obj->size);
                const auto full_assessment = migration_.Assess(
                    st.placement.providers, st.placement.m, target, readable,
                    st.obj->size, smoothed, remaining);
                approved = full_assessment.worthwhile;
                rejected_by_smoothing = !approved;
              }
            }
            if ((!config_.migration_gate || approved) &&
                readable.size() >=
                    static_cast<std::size_t>(st.placement.m)) {
              result.cost_per_period[p] +=
                  ChargeMigration(assessment, st.placement, target,
                                  st.obj->size, &result.resources[p]);
              st.placement = target;
              result.migrations += 1;
              result.events.push_back(
                  {p, st.obj->name, st.placement.Label(),
                   st.pending_reopt ? "trend" : "provider-change"});
            }
            // A move the recent window wants but the smoothed forecast
            // still vetoes is re-examined next period: as the stale pattern
            // slides out of the decision window the two converge.
            st.pending_reopt = rejected_by_smoothing;
          } else {
            st.pending_reopt = false;
          }
        }
      }

      // --- Bill the period ----------------------------------------------
      result.cost_per_period[p] +=
          ChargePeriod(st.placement, actual, now, &result.resources[p]);
      if (st.placement.feasible &&
          !PlacementCompliant(st.placement, st.obj->rule, now)) {
        result.noncompliant_object_periods += 1;
      }

      // --- End-of-period bookkeeping -------------------------------------
      st.history.Append(actual);
      classes.ForClass(st.class_id).RecordUsage(actual);
      const bool fired = st.trend.Observe(actual.ops);
      ++st.periods_since_change;
      if (fired) {
        result.trend_changes += 1;
        st.periods_since_change = 1;  // this period is the new regime
        // A changed pattern is evidence the decision period is inadequate:
        // run the D/2-D-2D coupling at the next optimization.
        st.dctl.ForceCouplingNext();
      }
      if (fired || !config_.trend_gate) st.pending_reopt = true;
      if (st.obj->deleted_period && p + 1 == *st.obj->deleted_period) {
        classes.ForClass(st.class_id)
            .RecordLifetime(
                static_cast<common::Duration>(p + 1 - st.obj->created_period) *
                scenario.sampling_period);
      }
    }
  }
  for (const auto& c : result.cost_per_period) result.total += c;
  return result;
}

// ---------------------------------------------------------------------------
// Static policy
// ---------------------------------------------------------------------------

RunResult CostSimulator::RunStatic(
    const ScenarioSpec& scenario,
    const std::vector<provider::ProviderId>& set) const {
  RunResult result;
  result.policy = "static";
  result.cost_per_period.assign(scenario.num_periods, common::kZeroMoney);
  result.resources.assign(scenario.num_periods, PeriodResources{});

  struct StaticState {
    core::PlacementDecision placement;
    bool placed = false;
  };
  std::vector<StaticState> states(scenario.objects.size());

  auto specs_of = [&](common::SimTime now,
                      bool reachable_only) -> std::vector<provider::ProviderSpec> {
    std::vector<provider::ProviderSpec> out;
    for (const auto& id : set) {
      auto spec = env_.FindSpec(id, now);
      if (!spec) continue;
      if (reachable_only && !env_.IsReachable(id, now)) continue;
      out.push_back(*spec);
    }
    return out;
  };

  for (std::size_t p = 0; p < scenario.num_periods; ++p) {
    const common::SimTime now = scenario.PeriodStart(p);
    for (std::size_t o = 0; o < scenario.objects.size(); ++o) {
      const SimObject& obj = scenario.objects[o];
      if (!obj.AliveAt(p)) continue;
      StaticState& st = states[o];
      const stats::PeriodStats actual = obj.StatsAt(p);

      if (!st.placed) {
        // Stripe over the set's currently reachable members with the
        // maximal feasible threshold; never moves afterwards.
        const auto members = specs_of(now, /*reachable_only=*/true);
        core::PlacementRequest request;
        request.rule = obj.rule;
        request.object_size = obj.size;
        request.per_period = actual;
        request.decision_periods = 1;
        st.placement = search_.EvaluateSet(members, request, {},
                                           /*reduce_m_for_availability=*/true);
        st.placed = true;
        if (!st.placement.feasible) {
          // Distinguish "this set can never work" from "degraded by an
          // outage": validate the full set under perfect conditions.
          const auto full = specs_of(now, /*reachable_only=*/false);
          core::PlacementDecision check = search_.EvaluateSet(
              full, request, {}, /*reduce_m_for_availability=*/true);
          if (!check.feasible) {
            result.feasible = false;
            continue;
          }
          // Outage-degraded: store on what is reachable, RAID-1 style.
          st.placement.providers = members;
          st.placement.m = 1;
          st.placement.feasible = !members.empty();
          result.events.push_back(
              {p, obj.name, st.placement.Label(), "degraded"});
        } else {
          result.events.push_back(
              {p, obj.name, st.placement.Label(), "initial"});
        }
      }
      result.cost_per_period[p] +=
          ChargePeriod(st.placement, actual, now, &result.resources[p]);
      if (st.placement.feasible &&
          !PlacementCompliant(st.placement, obj.rule, now)) {
        result.noncompliant_object_periods += 1;
      }
    }
  }
  for (const auto& c : result.cost_per_period) result.total += c;
  return result;
}

// ---------------------------------------------------------------------------
// Ideal oracle
// ---------------------------------------------------------------------------

RunResult CostSimulator::RunIdeal(const ScenarioSpec& scenario) const {
  RunResult result;
  result.policy = "ideal";
  result.cost_per_period.assign(scenario.num_periods, common::kZeroMoney);
  result.resources.assign(scenario.num_periods, PeriodResources{});

  for (std::size_t p = 0; p < scenario.num_periods; ++p) {
    const common::SimTime now = scenario.PeriodStart(p);
    const auto reachable = env_.ReachableAt(now);
    for (const SimObject& obj : scenario.objects) {
      if (!obj.AliveAt(p)) continue;
      const stats::PeriodStats actual = obj.StatsAt(p);
      core::PlacementRequest request;
      request.rule = obj.rule;
      request.object_size = obj.size;
      request.per_period = actual;  // known a priori (§IV-A)
      request.decision_periods = 1;
      const core::PlacementDecision best =
          search_.FindBest(reachable, request);
      if (!best.feasible) continue;
      result.cost_per_period[p] +=
          ChargePeriod(best, actual, now, &result.resources[p]);
    }
  }
  for (const auto& c : result.cost_per_period) result.total += c;
  return result;
}

}  // namespace scalia::simx
