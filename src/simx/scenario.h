// Scenario specifications for the evaluation simulator.
//
// A scenario is a set of logical objects with per-sampling-period read
// timelines (writes happen once, at each object's creation period; §IV's
// scenarios never update objects in place).  The same ScenarioSpec drives
// the Scalia policy, every static baseline, and the ideal oracle, so all 27
// rows of Figs. 14/16 price exactly the same load.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/units.h"
#include "core/rule.h"
#include "stats/period_stats.h"

namespace scalia::simx {

struct SimObject {
  std::string name;
  common::Bytes size = 0;
  std::string mime = "application/octet-stream";
  core::StorageRule rule;
  std::size_t created_period = 0;
  std::optional<std::size_t> deleted_period;  // exclusive: gone from here on

  /// Reads per sampling period; indexed from created_period (index 0 is the
  /// creation period).  Missing entries mean zero reads.
  std::vector<double> reads;

  [[nodiscard]] bool AliveAt(std::size_t period) const {
    if (period < created_period) return false;
    return !deleted_period || period < *deleted_period;
  }

  [[nodiscard]] double ReadsAt(std::size_t period) const {
    if (!AliveAt(period)) return 0.0;
    const std::size_t idx = period - created_period;
    return idx < reads.size() ? reads[idx] : 0.0;
  }

  /// The logical usage of this object during `period`.
  [[nodiscard]] stats::PeriodStats StatsAt(std::size_t period) const {
    stats::PeriodStats s;
    if (!AliveAt(period)) return s;
    const double gb = common::ToGB(size);
    s.storage_gb = gb;
    s.reads = ReadsAt(period);
    s.bw_out_gb = s.reads * gb;
    if (period == created_period) {
      s.writes = 1.0;
      s.bw_in_gb = gb;
    }
    s.ops = s.reads + s.writes;
    return s;
  }
};

struct ScenarioSpec {
  std::string name;
  common::Duration sampling_period = common::kHour;
  std::size_t num_periods = 0;
  std::vector<SimObject> objects;

  [[nodiscard]] common::SimTime PeriodStart(std::size_t period) const {
    return static_cast<common::SimTime>(period) * sampling_period;
  }
};

}  // namespace scalia::simx
