// The static provider sets of Fig. 13.
//
// The evaluation compares Scalia (row 27) with every fixed provider subset
// of size >= 2 over the five-provider market — 26 sets, enumerated
// depth-first in catalog order, exactly reproducing Fig. 13's numbering.
#pragma once

#include <string>
#include <vector>

#include "provider/spec.h"

namespace scalia::simx {

/// All subsets of `catalog` (by id) with at least `min_size` members, in
/// Fig. 13's depth-first lexicographic order.
[[nodiscard]] std::vector<std::vector<provider::ProviderId>> StaticSets(
    const std::vector<provider::ProviderSpec>& catalog,
    std::size_t min_size = 2);

/// "S3(h)-S3(l)-Azu" style label.
[[nodiscard]] std::string SetLabel(
    const std::vector<provider::ProviderId>& set);

}  // namespace scalia::simx
