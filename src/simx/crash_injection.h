// Crash-injection scenario: kill the engine mid-run, recover, converge.
//
// Drives a *real* engine stack (providers, replicated metadata store,
// statistics database, periodic optimizer) through a ScenarioSpec with the
// durability subsystem attached, then simulates a process death: all
// engine-side state (metadata store, stats db) is discarded, the WAL's tail
// is truncated at a random byte offset (the torn write a crash leaves
// behind), and a fresh stack recovers from latest-checkpoint-plus-replay.
// The simulated provider stores survive — they model remote clouds whose
// data does not vanish with the engine process.
//
// After recovery the harness reconciles exactly as an operator would: any
// object whose committed put was lost with the torn tail is re-stored (the
// client never got an ack), lost tombstones are re-applied, and the
// deterministic workload supplies the missing per-period statistics.  The
// run then continues to the end.  A crash run *converges* when its final
// placement decisions (Algorithm 1 on the final statistics) and access
// histories match the uninterrupted baseline for the same RNG seed.
#pragma once

#include <map>
#include <string>

#include "durability/recovery.h"
#include "simx/scenario.h"

namespace scalia::simx {

struct CrashInjectionConfig {
  /// Durability root; each run uses its own subdirectory.
  std::string dir;
  /// Crash right after this period's optimizer run (must be < num_periods).
  std::size_t crash_after_period = 0;
  /// Seeds the torn-tail offset; the engine's UUID stream is fixed.
  std::uint64_t seed = 1;
  /// Checkpoint cadence handed to the DurabilityManager.
  common::Duration checkpoint_every = 4 * common::kHour;
  /// fsync on every group commit (off keeps the fuzzing loops fast; the
  /// files are still fully written since the process does not really die).
  bool sync_on_commit = false;
};

/// Final state of one run, reduced to what convergence is judged on.
struct CrashRunResult {
  bool crashed = false;
  durability::RecoveryReport recovery;  // meaningful when `crashed`
  /// Objects re-stored / re-deleted during post-recovery reconciliation.
  std::size_t reputs = 0;
  std::size_t redeletes = 0;
  /// Objects alive at the end whose Get() failed (must be 0).
  std::size_t unreadable = 0;
  /// object name -> Algorithm 1's placement label on the final statistics.
  std::map<std::string, std::string> placements;
  /// object name -> CSV of the decision-window average usage.
  std::map<std::string, std::string> histories;
};

class CrashInjectionHarness {
 public:
  CrashInjectionHarness(ScenarioSpec spec, CrashInjectionConfig config);

  /// The uninterrupted run (durability attached, never killed).
  common::Result<CrashRunResult> RunBaseline();

  /// The killed-and-recovered run.
  common::Result<CrashRunResult> RunWithCrash();

  /// Empty string when `crashed` converged with `baseline`; otherwise a
  /// human-readable description of the first few divergences.
  static std::string Compare(const CrashRunResult& baseline,
                             const CrashRunResult& crashed);

 private:
  struct World;

  common::Result<CrashRunResult> Run(bool crash);

  ScenarioSpec spec_;
  CrashInjectionConfig config_;
};

}  // namespace scalia::simx
