// The evaluation cost simulator (§IV-A).
//
// Drives a ScenarioSpec through three policies over the same provider
// environment and the same sampling-period clock:
//
//   * RunScalia  — the full adaptive scheme: class-seeded first placement,
//     per-period trend detection gating Algorithm-1 recomputations, the
//     adaptive decision period (coupled D/2, D, 2D), migration cost-benefit
//     analysis, and constraint-driven active repair when providers fail.
//     Migration chunk movements are billed in the period they happen — the
//     small premium that keeps Scalia slightly above the ideal (Fig. 14).
//
//   * RunStatic  — a fixed provider set (one of Fig. 13's 26): each object
//     is striped at creation over the set's reachable members with the
//     maximal feasible threshold, and never moves.
//
//   * RunIdeal   — the oracle baseline: for every sampling period, the
//     cheapest feasible set for that period's *actual* usage, known a
//     priori, with free reconfiguration.
//
// All three report total and per-period cost plus per-period resource
// consumption (storage / bandwidth-in / bandwidth-out; Figs. 12, 15, 17).
#pragma once

#include <string>
#include <vector>

#include "core/decision_period.h"
#include "core/migration.h"
#include "core/placement.h"
#include "core/subset_solver.h"
#include "simx/environment.h"
#include "simx/scenario.h"
#include "stats/access_history.h"
#include "stats/object_class.h"
#include "stats/trend.h"

namespace scalia::simx {

struct SimPolicyConfig {
  core::PriceModelConfig price;
  stats::TrendConfig trend;
  core::DecisionPeriodConfig decision_period;
  /// Decision horizon (sampling periods) for objects whose class gives no
  /// lifetime estimate.
  std::size_t default_decision_periods = 24;
  /// A migration driven by a *recent* pattern change is approved when it is
  /// also worthwhile under the full decision-period forecast, or when the
  /// recent-window benefit exceeds `migration_hysteresis` times the
  /// migration cost (an unambiguous regime shift, e.g. a flash crowd).
  /// This keeps periodic (diurnal) swings from thrashing chunks back and
  /// forth while reacting to real shifts within one period.
  double migration_hysteresis = 5.0;
  // ---- Ablation switches (DESIGN.md §5) --------------------------------
  bool trend_gate = true;        // false: recompute placement every period
  bool migration_gate = true;    // false: always migrate to the best set
  bool class_seed = true;        // false: naive first placement
  bool adapt_decision_period = true;  // false: fixed D
  /// true: place with the threshold-flexible exact solver (any m at or
  /// below a set's durability-maximal threshold) instead of Algorithm 1's
  /// max-threshold rule — the DESIGN.md §8 extension.  The ideal baseline
  /// stays Algorithm 1, so this variant can land *below* 0 % over-cost on
  /// egress-heavy workloads.
  bool threshold_flexible = false;
};

struct PeriodResources {
  double storage_gb = 0.0;  // physical chunk bytes stored (avg over period)
  double bw_in_gb = 0.0;
  double bw_out_gb = 0.0;

  PeriodResources& operator+=(const PeriodResources& o) {
    storage_gb += o.storage_gb;
    bw_in_gb += o.bw_in_gb;
    bw_out_gb += o.bw_out_gb;
    return *this;
  }
};

struct PlacementEvent {
  std::size_t period = 0;
  std::string object;
  std::string label;  // e.g. "S3(h)-S3(l); m:1"
  std::string reason;  // "initial" | "trend" | "repair" | "provider-change"
};

struct RunResult {
  std::string policy;
  bool feasible = true;
  common::Money total;
  std::vector<common::Money> cost_per_period;
  std::vector<PeriodResources> resources;
  std::size_t trend_changes = 0;
  std::size_t recomputations = 0;
  std::size_t migrations = 0;
  std::size_t repairs = 0;
  /// Object-periods billed while the live placement no longer satisfied the
  /// object's rule (static sets degraded by outages or provider exits run —
  /// and bill — in this state; Scalia repairs out of it).  A cheap but
  /// noncompliant run is not a fair cost comparison, so the over-cost
  /// tables flag it.
  std::size_t noncompliant_object_periods = 0;
  std::vector<PlacementEvent> events;
};

class CostSimulator {
 public:
  CostSimulator(SimPolicyConfig config, SimEnvironment env)
      : config_(config),
        env_(std::move(env)),
        model_(config.price),
        search_(core::PriceModel(config.price)),
        solver_(core::PriceModel(config.price)),
        migration_(core::PriceModel(config.price)) {}

  [[nodiscard]] const SimEnvironment& environment() const { return env_; }
  [[nodiscard]] const SimPolicyConfig& config() const { return config_; }

  [[nodiscard]] RunResult RunScalia(const ScenarioSpec& scenario) const;
  [[nodiscard]] RunResult RunStatic(
      const ScenarioSpec& scenario,
      const std::vector<provider::ProviderId>& set) const;
  [[nodiscard]] RunResult RunIdeal(const ScenarioSpec& scenario) const;

 private:
  struct ObjState;

  /// Bills one object-period on `placement`, routing reads around outages,
  /// and accumulates the physical resource usage.
  common::Money ChargePeriod(const core::PlacementDecision& placement,
                             const stats::PeriodStats& s, common::SimTime now,
                             PeriodResources* res) const;

  /// Bills a migration's chunk movements and accumulates resources.
  common::Money ChargeMigration(const core::MigrationAssessment& assessment,
                                const core::PlacementDecision& from,
                                const core::PlacementDecision& to,
                                common::Bytes size,
                                PeriodResources* res) const;

  /// True when `placement`, restricted to reachable providers, still meets
  /// the object's rule (drives active repair, §IV-E).
  [[nodiscard]] bool PlacementCompliant(
      const core::PlacementDecision& placement, const core::StorageRule& rule,
      common::SimTime now) const;

  /// Best same-structure repair: unreachable members replaced by the
  /// cheapest feasible substitutes.  Infeasible decision when impossible.
  [[nodiscard]] core::PlacementDecision RepairSwap(
      const core::PlacementDecision& placement, const core::StorageRule& rule,
      const stats::PeriodStats& forecast, std::size_t decision_periods,
      common::SimTime now) const;

  /// The Scalia policy's placement engine: Algorithm 1's exhaustive search,
  /// or the threshold-flexible exact solver under that ablation.
  [[nodiscard]] core::PlacementDecision FindPlacement(
      std::span<const provider::ProviderSpec> providers,
      const core::PlacementRequest& request) const {
    return config_.threshold_flexible ? solver_.FindBestFlexible(providers,
                                                                 request)
                                      : search_.FindBest(providers, request);
  }

  SimPolicyConfig config_;
  SimEnvironment env_;
  core::PriceModel model_;
  core::PlacementSearch search_;
  core::SubsetSolver solver_;
  core::MigrationPlanner migration_;
};

}  // namespace scalia::simx
