#include "simx/crash_injection.h"

#include <filesystem>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/optimizer.h"
#include "durability/manager.h"
#include "provider/registry.h"
#include "provider/spec.h"
#include "stats/stats_db.h"
#include "store/replicated_store.h"

namespace scalia::simx {

namespace fs = std::filesystem;

namespace {

constexpr const char* kContainer = "sim";

/// Deterministic object payload: both runs must store identical bytes.
std::string PayloadFor(const SimObject& obj) {
  const char fill =
      static_cast<char>('a' + (common::Mix64(std::hash<std::string>{}(
                                   obj.name)) %
                               26));
  return std::string(static_cast<std::size_t>(obj.size), fill);
}

}  // namespace

/// One incarnation of the engine process: everything here dies with a
/// crash.  The provider registry lives *outside* (remote clouds survive).
struct CrashInjectionHarness::World {
  World(provider::ProviderRegistry* registry_in, const std::string& dir,
        const CrashInjectionConfig& config)
      : registry(registry_in), db(1), stats(&db, 0) {
    durability::DurabilityConfig dconfig;
    dconfig.dir = dir;
    dconfig.checkpoint_every = config.checkpoint_every;
    dconfig.wal.sync_on_commit = config.sync_on_commit;
    // Meters live with the (surviving) provider stores, so they are not a
    // recovery target here; registry == nullptr skips their restore.
    auto opened = durability::DurabilityManager::Open(
        dconfig, durability::EngineStateRefs{.db = &db,
                                             .dc = 0,
                                             .stats = &stats,
                                             .registry = nullptr});
    open_status = opened.ok() ? common::Status::Ok() : opened.status();
    if (!opened.ok()) return;
    durability = std::move(*opened);

    core::EngineConfig engine_config;
    engine = std::make_unique<core::Engine>(
        "e0", registry, &db, 0, /*cache=*/nullptr, &stats,
        /*log_agent=*/nullptr, /*pool=*/nullptr, engine_config, /*seed=*/7);
    engine->AttachJournal(durability->journal());

    optimizer = std::make_unique<core::PeriodicOptimizer>(
        core::OptimizerConfig{}, &stats, /*pool=*/nullptr);
    optimizer->AddEngine(engine.get());
    optimizer->AttachDurability(durability.get());
  }

  provider::ProviderRegistry* registry;
  store::ReplicatedStore db;
  stats::StatsDb stats;
  std::unique_ptr<durability::DurabilityManager> durability;
  std::unique_ptr<core::Engine> engine;
  std::unique_ptr<core::PeriodicOptimizer> optimizer;
  common::Status open_status = common::Status::Ok();
};

CrashInjectionHarness::CrashInjectionHarness(ScenarioSpec spec,
                                             CrashInjectionConfig config)
    : spec_(std::move(spec)), config_(std::move(config)) {}

common::Result<CrashRunResult> CrashInjectionHarness::RunBaseline() {
  return Run(/*crash=*/false);
}

common::Result<CrashRunResult> CrashInjectionHarness::RunWithCrash() {
  return Run(/*crash=*/true);
}

common::Result<CrashRunResult> CrashInjectionHarness::Run(bool crash) {
  const std::string dir =
      (fs::path(config_.dir) / (crash ? "crash" : "baseline")).string();
  std::error_code ec;
  fs::remove_all(dir, ec);  // each run starts from an empty durability dir

  provider::ProviderRegistry registry;
  for (auto& spec : provider::PaperCatalog()) {
    if (auto s = registry.Register(std::move(spec)); !s.ok()) return s;
  }

  CrashRunResult result;
  auto world = std::make_unique<World>(&registry, dir, config_);
  if (!world->open_status.ok()) return world->open_status;
  if (auto r = world->durability->Recover(0); !r.ok()) return r.status();

  auto drive_period = [&](World& w, std::size_t p) -> common::Status {
    const common::SimTime now = spec_.PeriodStart(p);
    for (const auto& obj : spec_.objects) {
      if (obj.created_period == p && obj.AliveAt(p)) {
        if (auto s = w.engine->Put(now, kContainer, obj.name, PayloadFor(obj),
                                   obj.mime, obj.rule);
            !s.ok()) {
          return s;
        }
      }
      if (obj.deleted_period && *obj.deleted_period == p) {
        if (auto s = w.engine->Delete(now, kContainer, obj.name); !s.ok()) {
          return s;
        }
      }
    }
    // Period-end statistics flush: the deterministic workload is the single
    // source of per-period stats, journaled like any other state mutation.
    const common::SimTime flush = spec_.PeriodStart(p + 1) - 1;
    for (const auto& obj : spec_.objects) {
      if (!obj.AliveAt(p)) continue;
      const std::string row = core::MakeRowKey(kContainer, obj.name);
      const stats::PeriodStats s = obj.StatsAt(p);
      w.stats.AppendPeriodStats(row, p, s, flush);
      if (auto js = w.durability->journal()->LogPeriodStats(row, p, s.ToCsv(),
                                                            flush);
          !js.ok()) {
        return js;
      }
    }
    // Decision-period boundary: trend gate + reoptimization + checkpoint.
    w.optimizer->Run(spec_.PeriodStart(p + 1));
    return common::Status::Ok();
  };

  for (std::size_t p = 0; p < spec_.num_periods; ++p) {
    if (auto s = drive_period(*world, p); !s.ok()) return s;

    if (crash && p == config_.crash_after_period) {
      // ---- Simulated process death -----------------------------------
      // The destructor closes the WAL cleanly, so every record reached
      // disk; the torn write is then injected by truncating the active
      // segment at a random offset, exactly what an OS-level kill in the
      // middle of a batched write leaves behind.
      world.reset();
      const std::string wal_dir = (fs::path(dir) / "wal").string();
      std::vector<fs::path> segments;
      for (const auto& entry : fs::directory_iterator(wal_dir)) {
        if (entry.path().extension() == ".seg" &&
            entry.file_size() > 0) {
          segments.push_back(entry.path());
        }
      }
      std::sort(segments.begin(), segments.end());
      if (!segments.empty()) {
        common::Xoshiro256 rng(config_.seed);
        const auto size = fs::file_size(segments.back());
        const std::uintmax_t keep = rng() % size;  // [0, size-1]
        fs::resize_file(segments.back(), keep);
      }
      result.crashed = true;

      // ---- Recovery ---------------------------------------------------
      world = std::make_unique<World>(&registry, dir, config_);
      if (!world->open_status.ok()) return world->open_status;
      const common::SimTime now = spec_.PeriodStart(p + 1);
      auto recovered = world->durability->Recover(now);
      if (!recovered.ok()) return recovered.status();
      result.recovery = *recovered;

      // ---- Reconciliation --------------------------------------------
      // Mutations lost with the torn tail were never acknowledged; the
      // deterministic workload (standing in for the client) re-issues
      // them: lost puts, lost deletes, and the missing stats appends.
      for (const auto& obj : spec_.objects) {
        if (obj.created_period > p) continue;  // not born yet
        const std::string row = core::MakeRowKey(kContainer, obj.name);
        auto meta = world->engine->LoadMetadata(now, row);
        if (obj.AliveAt(p)) {
          bool need_put = !meta.ok();
          if (!need_put) {
            // A lost migration/repair record can leave recovered metadata
            // pointing at chunks the pre-crash run already GC'ed.
            need_put = !world->engine->Get(now, kContainer, obj.name).ok();
          }
          if (need_put) {
            if (auto s = world->engine->Put(
                    spec_.PeriodStart(obj.created_period), kContainer,
                    obj.name, PayloadFor(obj), obj.mime, obj.rule);
                !s.ok()) {
              return s;
            }
            ++result.reputs;
          }
          const std::size_t have = world->stats.GetHistory(row).size();
          for (std::size_t q = obj.created_period + have; q <= p; ++q) {
            const stats::PeriodStats s = obj.StatsAt(q);
            const common::SimTime flush = spec_.PeriodStart(q + 1) - 1;
            world->stats.AppendPeriodStats(row, q, s, flush);
            if (auto js = world->durability->journal()->LogPeriodStats(
                    row, q, s.ToCsv(), flush);
                !js.ok()) {
              return js;
            }
          }
        } else if (meta.ok()) {
          // Deleted before the crash, but the tombstone was torn away.
          if (auto s = world->engine->Delete(
                  spec_.PeriodStart(*obj.deleted_period), kContainer,
                  obj.name);
              !s.ok()) {
            return s;
          }
          ++result.redeletes;
        }
      }
    }
  }

  // ---- Final state ----------------------------------------------------
  const common::SimTime end = spec_.PeriodStart(spec_.num_periods);
  for (const auto& obj : spec_.objects) {
    if (!obj.AliveAt(spec_.num_periods - 1)) continue;
    const std::string row = core::MakeRowKey(kContainer, obj.name);
    if (!world->engine->Get(end, kContainer, obj.name).ok()) {
      ++result.unreadable;
    }
    auto eval = world->engine->EvaluatePlacement(
        end, row, core::EngineConfig{}.default_decision_periods);
    result.placements[obj.name] =
        eval.ok() ? eval->Label() : "<" + eval.status().ToString() + ">";
    result.histories[obj.name] =
        world->stats.GetHistory(row)
            .AverageOver(core::EngineConfig{}.default_decision_periods)
            .ToCsv();
  }
  return result;
}

std::string CrashInjectionHarness::Compare(const CrashRunResult& baseline,
                                           const CrashRunResult& crashed) {
  std::string diff;
  auto note = [&diff](const std::string& line) {
    if (diff.size() < 2000) diff += line + "\n";
  };
  if (baseline.unreadable != 0) {
    note("baseline has " + std::to_string(baseline.unreadable) +
         " unreadable object(s)");
  }
  if (crashed.unreadable != 0) {
    note("crash run has " + std::to_string(crashed.unreadable) +
         " unreadable object(s)");
  }
  if (baseline.placements.size() != crashed.placements.size()) {
    note("object count diverged: " +
         std::to_string(baseline.placements.size()) + " vs " +
         std::to_string(crashed.placements.size()));
  }
  for (const auto& [name, label] : baseline.placements) {
    auto it = crashed.placements.find(name);
    if (it == crashed.placements.end()) {
      note("missing after recovery: " + name);
    } else if (it->second != label) {
      note("placement diverged for " + name + ": " + label + " vs " +
           it->second);
    }
  }
  for (const auto& [name, csv] : baseline.histories) {
    auto it = crashed.histories.find(name);
    if (it != crashed.histories.end() && it->second != csv) {
      note("history diverged for " + name + ": " + csv + " vs " + it->second);
    }
  }
  return diff;
}

}  // namespace scalia::simx
