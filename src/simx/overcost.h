// Over-cost tables (Figs. 14, 16, and the §IV-D/§IV-E percentages).
//
// For a scenario, runs the ideal oracle, the 26 static sets of Fig. 13 and
// Scalia over identical load, and reports each policy's percent over-cost
// relative to the ideal placement:
//     over% = (cost_policy - cost_ideal) / cost_ideal * 100.
#pragma once

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "simx/simulator.h"
#include "simx/static_sets.h"

namespace scalia::simx {

/// The Fig. 13 enumeration order of the paper's catalog:
/// S3(h), S3(l), Azu, Ggl, RS.
[[nodiscard]] std::vector<provider::ProviderSpec> Fig13Order(
    const std::vector<provider::ProviderSpec>& catalog);

struct OverCostRow {
  std::size_t index = 0;    // Fig. 13 row number (1-26; 27 = Scalia)
  std::string label;
  bool feasible = true;
  common::Money total;
  double over_pct = 0.0;
  /// Object-periods billed while rule-noncompliant (degraded static sets);
  /// such rows are flagged in the table and excluded from the "best static"
  /// headline when a compliant alternative exists.
  std::size_t noncompliant_periods = 0;
};

struct OverCostTable {
  std::string scenario;
  common::Money ideal_total;
  std::vector<OverCostRow> rows;  // statics in Fig. 13 order, then Scalia
  RunResult ideal;
  RunResult scalia;

  [[nodiscard]] const OverCostRow& ScaliaRow() const { return rows.back(); }
  /// Cheapest / costliest feasible *static* rows.
  [[nodiscard]] const OverCostRow& BestStatic() const;
  [[nodiscard]] const OverCostRow& WorstStatic() const;
};

/// Runs all 27 policies; static baselines fan out on `pool` when given.
[[nodiscard]] OverCostTable ComputeOverCost(
    const CostSimulator& simulator, const ScenarioSpec& scenario,
    const std::vector<provider::ProviderSpec>& set_catalog,
    common::ThreadPool* pool = nullptr);

/// Renders the table in the layout of Figs. 14/16 (one row per set).
[[nodiscard]] std::string FormatOverCostTable(const OverCostTable& table);

}  // namespace scalia::simx
