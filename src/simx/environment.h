// The simulated provider market over time.
//
// §IV's scenarios change the provider world mid-run: CheapStor registers at
// hour 400 (§IV-D), S3(l) is unreachable between hours 60 and 120 (§IV-E).
// The introduction motivates two further dynamics this module also models:
// pricing policies "may change over time to adapt to the market" (a
// provider may "suddenly increase its pricing policy") and "a provider may
// end its business".  A SimEnvironment is therefore the provider catalog
// plus, per provider: an arrival time, an optional permanent exit time
// (bankruptcy), a schedule of transient outages, and a schedule of pricing
// changes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "provider/failure.h"
#include "provider/spec.h"

namespace scalia::simx {

/// A repricing event: `pricing` takes effect at time `at`.
struct PricingChange {
  common::SimTime at = 0;
  provider::PricingPolicy pricing;
};

struct ProviderTimeline {
  provider::ProviderSpec spec;
  common::SimTime available_from = 0;  // registration time
  /// Permanent market exit (bankruptcy, §I): from this time on the provider
  /// is neither reachable nor offered to the placement algorithm, and never
  /// recovers.  Unlike a transient outage, chunks left there are lost.
  std::optional<common::SimTime> available_until;
  provider::FailureSchedule outages;
  /// Pricing changes, applied in time order on top of spec.pricing.
  std::vector<PricingChange> price_changes;
};

class SimEnvironment {
 public:
  SimEnvironment() = default;
  explicit SimEnvironment(std::vector<ProviderTimeline> providers)
      : providers_(std::move(providers)) {}

  /// The paper's five-provider market (Fig. 3), all present from t = 0.
  [[nodiscard]] static SimEnvironment Paper();

  void Add(ProviderTimeline timeline) {
    providers_.push_back(std::move(timeline));
  }

  /// Registers a pricing change for `id`; no-op if the provider is unknown.
  void Reprice(const provider::ProviderId& id, common::SimTime at,
               provider::PricingPolicy pricing);

  /// Schedules a permanent exit for `id` at `at`.
  void Bankrupt(const provider::ProviderId& id, common::SimTime at);

  [[nodiscard]] const std::vector<ProviderTimeline>& providers() const {
    return providers_;
  }

  /// Providers registered and not exited at `now` (regardless of transient
  /// outages), with the pricing in force at `now`.
  [[nodiscard]] std::vector<provider::ProviderSpec> SpecsAt(
      common::SimTime now) const;

  /// Providers registered *and* reachable at `now` — P(obj) during failures.
  [[nodiscard]] std::vector<provider::ProviderSpec> ReachableAt(
      common::SimTime now) const;

  [[nodiscard]] bool IsReachable(const provider::ProviderId& id,
                                 common::SimTime now) const;

  /// The provider's spec with the pricing in force at `now`; nullopt when
  /// unknown or exited by `now`.
  [[nodiscard]] std::optional<provider::ProviderSpec> FindSpec(
      const provider::ProviderId& id, common::SimTime now) const;

 private:
  [[nodiscard]] bool InMarket(const ProviderTimeline& t,
                              common::SimTime now) const {
    return t.available_from <= now &&
           (!t.available_until || now < *t.available_until);
  }

  /// spec with the latest price change at or before `now` applied.
  [[nodiscard]] static provider::ProviderSpec PricedAt(
      const ProviderTimeline& t, common::SimTime now);

  std::vector<ProviderTimeline> providers_;
};

}  // namespace scalia::simx
