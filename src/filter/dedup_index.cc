#include "filter/dedup_index.h"

#include <algorithm>

namespace scalia::filter {

bool DedupIndex::Acquire(const ChunkHashHex& hash, std::string_view payload) {
  common::MutexLock lock(mu_);
  auto [it, inserted] = chunks_.try_emplace(hash);
  if (inserted) {
    it->second.payload.assign(payload);
    stored_bytes_ += payload.size();
  }
  ++it->second.refs;
  return inserted;
}

void DedupIndex::Release(const ChunkHashHex& hash) {
  common::MutexLock lock(mu_);
  auto it = chunks_.find(hash);
  if (it == chunks_.end()) return;
  if (it->second.refs > 0) --it->second.refs;
  if (it->second.refs == 0) {
    stored_bytes_ -= it->second.payload.size();
    chunks_.erase(it);
  }
}

bool DedupIndex::Contains(const ChunkHashHex& hash) const {
  common::MutexLock lock(mu_);
  return chunks_.contains(hash);
}

std::optional<std::string> DedupIndex::Lookup(const ChunkHashHex& hash) const {
  common::MutexLock lock(mu_);
  auto it = chunks_.find(hash);
  if (it == chunks_.end()) return std::nullopt;
  return it->second.payload;
}

std::uint64_t DedupIndex::RefCount(const ChunkHashHex& hash) const {
  common::MutexLock lock(mu_);
  auto it = chunks_.find(hash);
  return it == chunks_.end() ? 0 : it->second.refs;
}

std::size_t DedupIndex::ChunkCount() const {
  common::MutexLock lock(mu_);
  return chunks_.size();
}

common::Bytes DedupIndex::StoredBytes() const {
  common::MutexLock lock(mu_);
  return stored_bytes_;
}

void DedupIndex::RestoreChunk(const ChunkHashHex& hash, std::string payload) {
  common::MutexLock lock(mu_);
  auto [it, inserted] = chunks_.try_emplace(hash);
  if (!inserted) return;  // checkpoint already carried it; WAL re-insert
  stored_bytes_ += payload.size();
  it->second.payload = std::move(payload);
  it->second.refs = 0;
}

void DedupIndex::RebuildRefsBegin() {
  common::MutexLock lock(mu_);
  for (auto& [hash, entry] : chunks_) entry.refs = 0;
}

bool DedupIndex::AddRef(const ChunkHashHex& hash) {
  common::MutexLock lock(mu_);
  auto it = chunks_.find(hash);
  if (it == chunks_.end()) return false;
  ++it->second.refs;
  return true;
}

std::size_t DedupIndex::SweepUnreferenced() {
  common::MutexLock lock(mu_);
  std::size_t swept = 0;
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (it->second.refs == 0) {
      stored_bytes_ -= it->second.payload.size();
      it = chunks_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  return swept;
}

void DedupIndex::SerializeTo(common::BinaryWriter& out) const {
  common::MutexLock lock(mu_);
  // Deterministic order for byte-identical checkpoints.
  std::vector<const std::pair<const ChunkHashHex, Entry>*> sorted;
  sorted.reserve(chunks_.size());
  for (const auto& kv : chunks_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  out.PutU32(static_cast<std::uint32_t>(sorted.size()));
  for (const auto* kv : sorted) {
    out.PutString(kv->first);
    out.PutU64(kv->second.refs);
    out.PutString(kv->second.payload);
  }
}

common::Status DedupIndex::RestoreFrom(common::BinaryReader& in) {
  common::MutexLock lock(mu_);
  chunks_.clear();
  stored_bytes_ = 0;
  const std::uint32_t count = in.U32();
  for (std::uint32_t i = 0; i < count; ++i) {
    ChunkHashHex hash = in.String();
    Entry entry;
    entry.refs = in.U64();
    entry.payload = in.String();
    if (!in.ok()) break;
    stored_bytes_ += entry.payload.size();
    chunks_.emplace(std::move(hash), std::move(entry));
  }
  if (!in.ok()) {
    return common::Status::InvalidArgument("corrupt dedup-index snapshot");
  }
  return common::Status::Ok();
}

}  // namespace scalia::filter
