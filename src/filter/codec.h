// Pluggable per-chunk compression codecs for the filter pipeline.
//
// A codec is a pure, stateless transform: Encode() may return the input
// unchanged (with CodecId::kNone) when compression would not shrink it, so
// stored payloads are never larger than their raw bytes plus the one codec
// byte the pipeline spends per chunk.  Decode() is hardened against hostile
// inputs — every length and distance is bounds-checked and a malformed
// stream yields an error, never an out-of-bounds access or unbounded
// allocation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace scalia::filter {

enum class CodecId : std::uint8_t {
  kNone = 0,  // payload stored verbatim
  kLz = 1,    // greedy LZ77, 64 KiB window (see codec.cc)
};

/// Compresses `raw` with the house LZ codec; falls back to kNone when the
/// compressed form is not strictly smaller.  Returns the chosen codec and
/// writes the payload into `out`.
CodecId CompressChunk(std::string_view raw, std::string* out);

/// Inverse of CompressChunk.  `raw_size` is the expected decoded size from
/// the chunk header; the decode fails rather than exceeding it.
common::Result<std::string> DecompressChunk(CodecId codec,
                                            std::string_view payload,
                                            std::size_t raw_size);

}  // namespace scalia::filter
