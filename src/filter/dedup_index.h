// The SHA-256 dedup index: chunk hash -> {payload, refcount}.
//
// The index is the engine-local chunk store deduplication resolves against:
// the first object to store a chunk registers its raw bytes here, and every
// later object whose CDC split produces the same hash stores a 33-byte
// reference instead of re-uploading the chunk to the providers.  Refcounts
// track how many *live object versions* reference each chunk; a chunk's
// payload is dropped when its last reference dies.
//
// Durability: chunk payload inserts are journaled as WAL kFilterChunk
// records *before* the metadata upsert that references them (so a torn WAL
// tail can lose a reference to a chunk, never a chunk under a reference),
// and the whole index rides in checkpoint format v2.  Refcounts themselves
// are never journaled — recovery rebuilds them by scanning the restored
// metadata rows' dedup_refs lists (durability/recovery.cc), which makes
// them correct by construction after any crash, then sweeps chunks no live
// row references.
//
// Like the in-memory provider stores and the cache, payloads live in the
// trusted engine tier in plaintext; only provider-bound bytes are
// encrypted (see crypto.h).  In a sharded engine each shard owns its own
// index (objects route to shards by row-key hash, so dedup scope is
// per-shard).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binary_codec.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/units.h"

namespace scalia::filter {

/// A chunk hash as a 64-char lowercase hex string — the form metadata rows
/// and WAL records carry.
using ChunkHashHex = std::string;

class DedupIndex {
 public:
  /// Registers one reference to `hash`, inserting `payload` when the chunk
  /// is new.  Returns true when this call inserted the payload (the caller
  /// must then journal a kFilterChunk record before any row references it).
  bool Acquire(const ChunkHashHex& hash, std::string_view payload);

  /// Drops one reference; the payload is freed when the count reaches zero.
  /// Unknown hashes are ignored (a recovery sweep may already have run).
  void Release(const ChunkHashHex& hash);

  [[nodiscard]] bool Contains(const ChunkHashHex& hash) const;
  [[nodiscard]] std::optional<std::string> Lookup(
      const ChunkHashHex& hash) const;
  [[nodiscard]] std::uint64_t RefCount(const ChunkHashHex& hash) const;

  [[nodiscard]] std::size_t ChunkCount() const;
  [[nodiscard]] common::Bytes StoredBytes() const;

  // ---- Recovery hooks (durability/recovery.cc) --------------------------

  /// WAL replay: (re)inserts a chunk payload with refcount zero.  The
  /// post-replay RebuildRefsBegin/AddRef/SweepUnreferenced pass assigns the
  /// true counts.
  void RestoreChunk(const ChunkHashHex& hash, std::string payload);

  /// Zeroes every refcount (payloads stay) ahead of a rebuild scan.
  void RebuildRefsBegin();

  /// Counts one live metadata reference during the rebuild scan.  A
  /// reference to an unknown hash is reported back (returns false): it
  /// means a row survived whose chunk did not — recovery treats that as
  /// the corruption it is.
  bool AddRef(const ChunkHashHex& hash);

  /// Drops every chunk the rebuild scan found no references to; returns
  /// how many were swept.
  std::size_t SweepUnreferenced();

  // ---- Checkpoint hooks (durability/checkpoint.cc, format v2) -----------

  void SerializeTo(common::BinaryWriter& out) const;
  common::Status RestoreFrom(common::BinaryReader& in);

 private:
  struct Entry {
    std::string payload;
    std::uint64_t refs = 0;
  };

  mutable common::Mutex mu_;
  std::unordered_map<ChunkHashHex, Entry> chunks_ GUARDED_BY(mu_);
  common::Bytes stored_bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace scalia::filter
