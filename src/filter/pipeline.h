// The data-reduction filter pipeline: chunk -> dedup -> compress -> encrypt.
//
// Sits between the gateway and the erasure chunker (Engine::Put encodes the
// object body through it before placement; Engine::Get decodes after chunk
// reassembly).  The four stages compose in a fixed order and any *prefix*
// may be enabled per storage rule:
//
//   kNone     the body passes through untouched (legacy behavior)
//   kChunk    content-defined chunking + a self-describing header; every
//             chunk is stored inline (enables later stages' format)
//   kDedup    chunks already in the DedupIndex store as 33-byte references
//             instead of payloads; first-seen chunks register their bytes
//   kCompress inline payloads are LZ-compressed when that shrinks them
//   kEncrypt  inline payloads are encrypted under a per-object data key
//             wrapped by the tenant key; an HMAC tag seals the blob
//
// The blob is self-describing (magic, version, stage byte, per-chunk
// entries), so Decode needs no out-of-band stage information and a reader
// can always tell which filters produced a blob.  Migrations and repairs
// move the encoded blob byte-for-byte; only Put/Get cross the pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "filter/cdc.h"
#include "filter/crypto.h"
#include "filter/dedup_index.h"

namespace scalia::filter {

/// Highest enabled stage; each level implies all earlier ones.
enum class FilterStage : std::uint8_t {
  kNone = 0,
  kChunk = 1,
  kDedup = 2,
  kCompress = 3,
  kEncrypt = 4,
};

[[nodiscard]] constexpr std::string_view FilterStageName(FilterStage s) {
  switch (s) {
    case FilterStage::kNone: return "none";
    case FilterStage::kChunk: return "chunk";
    case FilterStage::kDedup: return "dedup";
    case FilterStage::kCompress: return "compress";
    case FilterStage::kEncrypt: return "encrypt";
  }
  return "unknown";
}

/// Which stage prefix applies to which storage rule (storage classes are
/// keyed by rule name throughout the engine).
struct FilterPolicy {
  FilterStage default_stage = FilterStage::kNone;
  std::unordered_map<std::string, FilterStage> per_rule;

  [[nodiscard]] FilterStage StageFor(const std::string& rule_name) const {
    auto it = per_rule.find(rule_name);
    return it == per_rule.end() ? default_stage : it->second;
  }
};

/// A chunk payload Encode() newly registered in the dedup index; the engine
/// journals one kFilterChunk WAL record per entry *before* the metadata
/// upsert that references it.
struct NewChunk {
  ChunkHashHex hash;
  std::string payload;  // raw chunk bytes, as the index stores them
};

struct EncodeResult {
  std::string blob;            // what gets erasure-coded and placed
  FilterStage stage = FilterStage::kNone;
  common::Bytes raw_bytes = 0;     // logical (pre-filter) size
  common::Bytes stored_bytes = 0;  // blob size
  std::uint64_t chunk_count = 0;
  std::uint64_t dedup_hits = 0;    // chunks stored as references
  /// Dedup references this object now holds (one per chunk, duplicates
  /// kept); persisted in the metadata row as `dedup_refs` and released when
  /// the version dies.  Empty below kDedup.
  std::vector<ChunkHashHex> refs;
  std::vector<NewChunk> new_chunks;
};

struct PipelineConfig {
  FilterPolicy policy;
  CdcConfig cdc;
  /// Seed for data keys and nonces (deterministic tests inject one).
  std::uint64_t seed = 0x5343464C54ull;  // "SCFLT"
};

class Pipeline {
 public:
  /// `index` may be null only if no rule ever enables kDedup or beyond.
  Pipeline(PipelineConfig config, DedupIndex* index, TenantKeyring* keyring);

  [[nodiscard]] const FilterPolicy& policy() const noexcept {
    return config_.policy;
  }
  [[nodiscard]] FilterStage StageFor(const std::string& rule_name) const {
    return config_.policy.StageFor(rule_name);
  }
  [[nodiscard]] DedupIndex* index() const noexcept { return index_; }

  /// Encodes `data` under the stage configured for `rule_name`.  Stage
  /// kNone returns the input unchanged with no index side effects.  On
  /// success the returned refs are *acquired* — a caller abandoning the
  /// write must ReleaseRefs() them or they leak.
  common::Result<EncodeResult> Encode(const std::string& tenant,
                                      const std::string& rule_name,
                                      std::string_view data);

  /// Decodes a blob produced by Encode back to the original bytes.  Blobs
  /// whose header says kNone-era (no magic) pass through unchanged, so
  /// objects stored before the pipeline existed still read correctly.
  common::Result<std::string> Decode(const std::string& tenant,
                                     std::string_view blob) const;

  /// True when `blob` starts with the pipeline magic (i.e. Decode will do
  /// more than pass it through).
  [[nodiscard]] static bool IsEncoded(std::string_view blob);

  /// Releases one reference per listed hash (failed puts, superseded or
  /// deleted versions).
  void ReleaseRefs(const std::vector<ChunkHashHex>& refs);

  /// Cumulative Encode() totals since construction; the benches derive the
  /// aggregate reduction ratio (stored/raw) and dedup hit count from these.
  struct Totals {
    std::uint64_t objects = 0;
    std::uint64_t raw_bytes = 0;
    std::uint64_t stored_bytes = 0;
    std::uint64_t dedup_hits = 0;
  };
  [[nodiscard]] Totals totals() const {
    return {objects_.load(std::memory_order_relaxed),
            raw_bytes_.load(std::memory_order_relaxed),
            stored_bytes_.load(std::memory_order_relaxed),
            dedup_hits_.load(std::memory_order_relaxed)};
  }

 private:
  void RecordTotals(const EncodeResult& result);

  PipelineConfig config_;
  DedupIndex* index_;
  TenantKeyring* keyring_;

  mutable common::Mutex rng_mu_;
  common::Xoshiro256 rng_ GUARDED_BY(rng_mu_);

  std::atomic<std::uint64_t> objects_{0};
  std::atomic<std::uint64_t> raw_bytes_{0};
  std::atomic<std::uint64_t> stored_bytes_{0};
  std::atomic<std::uint64_t> dedup_hits_{0};
};

/// Parses a comma-separated dedup_refs metadata field ("h1,h2,...").
[[nodiscard]] std::vector<ChunkHashHex> ParseDedupRefs(std::string_view csv);

/// Inverse of ParseDedupRefs.
[[nodiscard]] std::string JoinDedupRefs(const std::vector<ChunkHashHex>& refs);

}  // namespace scalia::filter
