#include "filter/cdc.h"

#include <array>

#include "common/rng.h"

namespace scalia::filter {

namespace {

/// 256-entry gear table from a fixed seed: boundaries (and therefore dedup
/// hashes) must be identical on every host and in every run.
std::array<std::uint64_t, 256> MakeGearTable() {
  std::array<std::uint64_t, 256> table{};
  common::SplitMix64 seq(0x5343414C49414744ull);  // "SCALIAGD"
  for (auto& entry : table) entry = seq.Next();
  return table;
}

}  // namespace

std::vector<ChunkSpan> ContentDefinedChunks(std::string_view data,
                                            const CdcConfig& config) {
  static const std::array<std::uint64_t, 256> kGear = MakeGearTable();
  std::vector<ChunkSpan> spans;
  if (data.empty()) return spans;
  const std::size_t min_chunk = config.min_chunk > 0 ? config.min_chunk : 1;
  const std::size_t max_chunk =
      config.max_chunk > min_chunk ? config.max_chunk : min_chunk;

  std::size_t start = 0;
  std::uint64_t hash = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    hash = (hash << 1) + kGear[static_cast<std::uint8_t>(data[i])];
    const std::size_t length = i - start + 1;
    if (length < min_chunk) continue;
    if ((hash & config.mask) == 0 || length >= max_chunk) {
      spans.push_back({start, length});
      start = i + 1;
      hash = 0;
    }
  }
  if (start < data.size()) {
    spans.push_back({start, data.size() - start});
  }
  return spans;
}

}  // namespace scalia::filter
