#include "filter/pipeline.h"

#include <algorithm>
#include <optional>

#include "common/sha256.h"
#include "filter/codec.h"

namespace scalia::filter {

namespace {

constexpr std::uint32_t kMagic = 0x544C4653;  // "SFLT" little-endian
constexpr std::uint8_t kVersion = 1;
/// Hostile-input allocation bound: no honest encoder emits chunks beyond
/// CdcConfig::max_chunk, so a header claiming more than this is corrupt.
constexpr std::uint64_t kMaxChunkRawLen = 256ull * 1024 * 1024;

std::string_view DigestView(const common::Sha256Digest& d) {
  return {reinterpret_cast<const char*>(d.data()), d.size()};
}

}  // namespace

Pipeline::Pipeline(PipelineConfig config, DedupIndex* index,
                   TenantKeyring* keyring)
    : config_(std::move(config)),
      index_(index),
      keyring_(keyring),
      rng_(config_.seed) {}

bool Pipeline::IsEncoded(std::string_view blob) {
  if (blob.size() < 4) return false;
  std::uint32_t magic = 0;
  for (int i = 3; i >= 0; --i) {
    magic = (magic << 8) | static_cast<std::uint8_t>(blob[i]);
  }
  return magic == kMagic;
}

common::Result<EncodeResult> Pipeline::Encode(const std::string& tenant,
                                              const std::string& rule_name,
                                              std::string_view data) {
  EncodeResult result;
  result.stage = StageFor(rule_name);
  result.raw_bytes = static_cast<common::Bytes>(data.size());
  if (result.stage == FilterStage::kNone) {
    result.blob.assign(data);
    result.stored_bytes = result.raw_bytes;
    RecordTotals(result);
    return result;
  }
  if (result.stage >= FilterStage::kDedup && index_ == nullptr) {
    return common::Status::FailedPrecondition(
        "filter policy enables dedup but no index is attached");
  }
  if (result.stage >= FilterStage::kEncrypt && keyring_ == nullptr) {
    return common::Status::FailedPrecondition(
        "filter policy enables encryption but no keyring is attached");
  }

  const std::vector<ChunkSpan> spans = ContentDefinedChunks(data, config_.cdc);

  std::optional<ObjectCipher> cipher;
  if (result.stage >= FilterStage::kEncrypt) {
    const TenantKey tenant_key = keyring_->KeyFor(tenant);
    common::MutexLock lock(rng_mu_);
    cipher = ObjectCipher::NewObject(tenant_key, rng_);
  }

  common::BinaryWriter w(&result.blob);
  w.PutU32(kMagic);
  w.PutU8(kVersion);
  w.PutU8(static_cast<std::uint8_t>(result.stage));
  w.PutU64(data.size());
  if (cipher) {
    const KeyEnvelope& env = cipher->envelope();
    w.PutString(std::string_view(
        reinterpret_cast<const char*>(env.nonce.data()), env.nonce.size()));
    w.PutString(std::string_view(
        reinterpret_cast<const char*>(env.wrapped_key.data()),
        env.wrapped_key.size()));
  }
  w.PutU32(static_cast<std::uint32_t>(spans.size()));

  std::string payload;
  for (std::size_t ordinal = 0; ordinal < spans.size(); ++ordinal) {
    const std::string_view chunk =
        data.substr(spans[ordinal].offset, spans[ordinal].length);
    const common::Sha256Digest digest = common::Sha256::Hash(chunk);
    const ChunkHashHex hex = common::ToHex(digest);

    bool as_ref = false;
    if (result.stage >= FilterStage::kDedup) {
      const bool inserted = index_->Acquire(hex, chunk);
      result.refs.push_back(hex);
      if (inserted) {
        result.new_chunks.push_back({hex, std::string(chunk)});
      } else {
        as_ref = true;
        ++result.dedup_hits;
      }
    }

    w.PutU8(as_ref ? 1 : 0);
    w.PutString(DigestView(digest));
    w.PutU32(static_cast<std::uint32_t>(chunk.size()));
    if (!as_ref) {
      CodecId codec = CodecId::kNone;
      if (result.stage >= FilterStage::kCompress) {
        codec = CompressChunk(chunk, &payload);
      } else {
        payload.assign(chunk);
      }
      if (cipher) payload = cipher->Crypt(ordinal, payload);
      w.PutU8(static_cast<std::uint8_t>(codec));
      w.PutString(payload);
    }
  }

  if (cipher) {
    const common::Sha256Digest tag = cipher->Seal(result.blob);
    result.blob.append(DigestView(tag));
  }
  result.chunk_count = spans.size();
  result.stored_bytes = static_cast<common::Bytes>(result.blob.size());
  RecordTotals(result);
  return result;
}

void Pipeline::RecordTotals(const EncodeResult& result) {
  objects_.fetch_add(1, std::memory_order_relaxed);
  raw_bytes_.fetch_add(result.raw_bytes, std::memory_order_relaxed);
  stored_bytes_.fetch_add(result.stored_bytes, std::memory_order_relaxed);
  dedup_hits_.fetch_add(result.dedup_hits, std::memory_order_relaxed);
}

common::Result<std::string> Pipeline::Decode(const std::string& tenant,
                                             std::string_view blob) const {
  if (!IsEncoded(blob)) return std::string(blob);

  // Header pass: stage + envelope, to know where the entry stream ends.
  common::BinaryReader header(blob);
  header.U32();  // magic, checked by IsEncoded
  const std::uint8_t version = header.U8();
  if (version != kVersion) {
    return common::Status::InvalidArgument("unsupported filter blob version " +
                                           std::to_string(version));
  }
  const auto stage = static_cast<FilterStage>(header.U8());
  if (stage < FilterStage::kChunk || stage > FilterStage::kEncrypt) {
    return common::Status::InvalidArgument("filter blob with invalid stage");
  }
  const std::uint64_t raw_size = header.U64();

  std::optional<ObjectCipher> cipher;
  std::string_view body = blob;
  if (stage >= FilterStage::kEncrypt) {
    if (keyring_ == nullptr) {
      return common::Status::FailedPrecondition(
          "encrypted blob but no keyring is attached");
    }
    const std::string nonce = header.String();
    const std::string wrapped = header.String();
    KeyEnvelope env;
    if (!header.ok() || nonce.size() != env.nonce.size() ||
        wrapped.size() != env.wrapped_key.size() ||
        blob.size() < kTagBytes) {
      return common::Status::InvalidArgument("corrupt filter blob envelope");
    }
    std::copy(nonce.begin(), nonce.end(), env.nonce.begin());
    std::copy(wrapped.begin(), wrapped.end(), env.wrapped_key.begin());
    cipher = ObjectCipher::Open(keyring_->KeyFor(tenant), env);
    body = blob.substr(0, blob.size() - kTagBytes);
    common::Sha256Digest tag;
    std::copy(blob.end() - static_cast<long>(kTagBytes), blob.end(),
              tag.begin());
    if (!cipher->VerifyTag(body, tag)) {
      return common::Status::InvalidArgument(
          "filter blob authentication failed (wrong tenant key or tampered "
          "ciphertext)");
    }
  }
  if (!header.ok()) {
    return common::Status::InvalidArgument("truncated filter blob header");
  }

  // Entry pass over the authenticated body.
  common::BinaryReader r(body);
  r.U32();  // magic
  r.U8();   // version
  r.U8();   // stage
  r.U64();  // raw size
  if (stage >= FilterStage::kEncrypt) {
    r.String();  // nonce
    r.String();  // wrapped key
  }
  const std::uint32_t chunk_count = r.U32();

  std::string out;
  for (std::uint32_t ordinal = 0; ordinal < chunk_count; ++ordinal) {
    const std::uint8_t kind = r.U8();
    const std::string digest_bytes = r.String();
    const std::uint64_t raw_len = r.U32();
    if (!r.ok() || kind > 1 || digest_bytes.size() != 32 ||
        raw_len > kMaxChunkRawLen || out.size() + raw_len > raw_size) {
      return common::Status::InvalidArgument("corrupt filter chunk entry");
    }
    common::Sha256Digest digest;
    std::copy(digest_bytes.begin(), digest_bytes.end(), digest.begin());

    std::string chunk;
    if (kind == 1) {
      if (index_ == nullptr) {
        return common::Status::FailedPrecondition(
            "deduplicated blob but no index is attached");
      }
      auto payload = index_->Lookup(common::ToHex(digest));
      if (!payload) {
        return common::Status::Internal("dedup chunk " +
                                        common::ToHex(digest) +
                                        " missing from the index");
      }
      chunk = std::move(*payload);
      if (chunk.size() != raw_len) {
        return common::Status::Internal("dedup chunk size mismatch");
      }
    } else {
      const auto codec = static_cast<CodecId>(r.U8());
      std::string payload = r.String();
      if (!r.ok()) {
        return common::Status::InvalidArgument("truncated filter chunk");
      }
      if (cipher) payload = cipher->Crypt(ordinal, payload);
      auto decoded = DecompressChunk(codec, payload,
                                     static_cast<std::size_t>(raw_len));
      if (!decoded.ok()) return decoded.status();
      chunk = std::move(*decoded);
    }
    if (!common::DigestEquals(common::Sha256::Hash(chunk), digest)) {
      return common::Status::Internal("filter chunk hash mismatch");
    }
    out.append(chunk);
  }
  if (!r.ok() || r.remaining() != 0 || out.size() != raw_size) {
    return common::Status::InvalidArgument(
        "filter blob did not decode to its declared size");
  }
  return out;
}

void Pipeline::ReleaseRefs(const std::vector<ChunkHashHex>& refs) {
  if (index_ == nullptr) return;
  for (const auto& hash : refs) index_->Release(hash);
}

std::vector<ChunkHashHex> ParseDedupRefs(std::string_view csv) {
  std::vector<ChunkHashHex> refs;
  std::size_t start = 0;
  while (start < csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string_view::npos) end = csv.size();
    if (end > start) refs.emplace_back(csv.substr(start, end - start));
    start = end + 1;
  }
  return refs;
}

std::string JoinDedupRefs(const std::vector<ChunkHashHex>& refs) {
  std::string out;
  for (const auto& r : refs) {
    if (!out.empty()) out += ',';
    out += r;
  }
  return out;
}

}  // namespace scalia::filter
