#include "filter/crypto.h"

#include <cstring>

namespace scalia::filter {

namespace {

// ---- Raw cipher primitives ------------------------------------------------
// Only this file may reference these (lint rule `cipher-seam`); everything
// else goes through ObjectCipher.

/// XORs `data` with a SHA-256 CTR keystream: block i is
/// SHA256(key | nonce | stream_id | i).  XOR makes it its own inverse.
std::string CtrKeystreamXor(const common::Sha256Digest& key,
                            const std::array<std::uint8_t, 16>& nonce,
                            std::uint64_t stream_id, std::string_view data) {
  std::string out(data);
  std::uint64_t counter = 0;
  for (std::size_t off = 0; off < out.size(); off += 32, ++counter) {
    common::Sha256 block;
    block.Update(key.data(), key.size());
    block.Update(nonce.data(), nonce.size());
    std::uint8_t trailer[16];
    for (int b = 0; b < 8; ++b) {
      trailer[b] = static_cast<std::uint8_t>(stream_id >> (8 * b));
      trailer[8 + b] = static_cast<std::uint8_t>(counter >> (8 * b));
    }
    block.Update(trailer, sizeof(trailer));
    const common::Sha256Digest keystream = block.Finish();
    const std::size_t n = std::min<std::size_t>(32, out.size() - off);
    for (std::size_t b = 0; b < n; ++b) {
      out[off + b] = static_cast<char>(
          static_cast<std::uint8_t>(out[off + b]) ^ keystream[b]);
    }
  }
  return out;
}

/// Wraps/unwraps a data key under the tenant key: XOR with
/// HMAC(tenant_key, "scalia-key-wrap" | nonce).  Self-inverse.
std::array<std::uint8_t, 32> WrapDataKey(
    const TenantKey& tenant_key, const std::array<std::uint8_t, 16>& nonce,
    const std::array<std::uint8_t, 32>& key) {
  std::string msg = "scalia-key-wrap";
  msg.append(reinterpret_cast<const char*>(nonce.data()), nonce.size());
  const common::Sha256Digest pad = common::HmacSha256(
      std::string_view(reinterpret_cast<const char*>(tenant_key.data()),
                       tenant_key.size()),
      msg);
  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = key[i] ^ pad[i];
  return out;
}

std::string_view KeyView(const common::Sha256Digest& key) {
  return {reinterpret_cast<const char*>(key.data()), key.size()};
}

}  // namespace

TenantKey DeriveTenantKey(std::string_view secret_material,
                          std::string_view tenant) {
  return common::HmacSha256(secret_material,
                            "scalia-tenant-key|" + std::string(tenant));
}

TenantKeyring::TenantKeyring(std::string master_secret)
    : master_secret_(std::move(master_secret)) {}

void TenantKeyring::SetTenantSecret(const std::string& tenant,
                                    std::string_view secret) {
  common::MutexLock lock(mu_);
  keys_[tenant] = DeriveTenantKey(secret, tenant);
}

TenantKey TenantKeyring::KeyFor(const std::string& tenant) const {
  {
    common::MutexLock lock(mu_);
    if (auto it = keys_.find(tenant); it != keys_.end()) return it->second;
  }
  return DeriveTenantKey(master_secret_, tenant);
}

ObjectCipher ObjectCipher::NewObject(const TenantKey& tenant_key,
                                     common::Xoshiro256& rng) {
  ObjectCipher cipher;
  for (std::size_t i = 0; i < cipher.data_key_.size(); i += 8) {
    const std::uint64_t word = rng();
    for (std::size_t b = 0; b < 8; ++b) {
      cipher.data_key_[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  for (std::size_t i = 0; i < cipher.envelope_.nonce.size(); i += 8) {
    const std::uint64_t word = rng();
    for (std::size_t b = 0; b < 8; ++b) {
      cipher.envelope_.nonce[i + b] =
          static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  std::array<std::uint8_t, 32> key_bytes{};
  std::memcpy(key_bytes.data(), cipher.data_key_.data(), key_bytes.size());
  cipher.envelope_.wrapped_key =
      WrapDataKey(tenant_key, cipher.envelope_.nonce, key_bytes);
  return cipher;
}

ObjectCipher ObjectCipher::Open(const TenantKey& tenant_key,
                                const KeyEnvelope& envelope) {
  ObjectCipher cipher;
  cipher.envelope_ = envelope;
  const std::array<std::uint8_t, 32> key_bytes =
      WrapDataKey(tenant_key, envelope.nonce, envelope.wrapped_key);
  std::memcpy(cipher.data_key_.data(), key_bytes.data(), key_bytes.size());
  return cipher;
}

std::string ObjectCipher::Crypt(std::uint64_t ordinal,
                                std::string_view payload) const {
  return CtrKeystreamXor(data_key_, envelope_.nonce, ordinal, payload);
}

common::Sha256Digest ObjectCipher::Seal(std::string_view blob_prefix) const {
  return common::HmacSha256(KeyView(data_key_), blob_prefix);
}

bool ObjectCipher::VerifyTag(std::string_view blob_prefix,
                             const common::Sha256Digest& tag) const {
  return common::DigestEquals(Seal(blob_prefix), tag);
}

}  // namespace scalia::filter
