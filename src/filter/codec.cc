#include "filter/codec.h"

#include <array>
#include <cstring>

namespace scalia::filter {

// Token stream: a control byte selects a literal run or a back-reference.
//   0xxxxxxx                 -> literal run of (x + 1) bytes follows (1..128)
//   1xxxxxxx dist_lo dist_hi -> copy (x + kMinMatch) bytes from `dist` bytes
//                               back (dist 1..65535, little-endian)
// Matches shorter than kMinMatch never pay for themselves (3 token bytes).
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 127 + kMinMatch;
constexpr std::size_t kWindow = 64 * 1024 - 1;
constexpr std::size_t kHashBits = 14;

std::uint32_t HashQuad(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(std::string_view raw, std::size_t from, std::size_t to,
                  std::string* out) {
  while (from < to) {
    const std::size_t run = std::min<std::size_t>(128, to - from);
    out->push_back(static_cast<char>(run - 1));
    out->append(raw.data() + from, run);
    from += run;
  }
}

}  // namespace

CodecId CompressChunk(std::string_view raw, std::string* out) {
  out->clear();
  if (raw.size() < kMinMatch + 1) {
    out->assign(raw);
    return CodecId::kNone;
  }
  std::string packed;
  packed.reserve(raw.size());
  // Single-slot hash table of the last position each 4-byte prefix hash was
  // seen at; greedy extension, no lazy matching — speed over ratio.
  std::array<std::size_t, 1u << kHashBits> last_pos;
  last_pos.fill(raw.size());  // sentinel: "never seen"

  std::size_t literal_start = 0;
  std::size_t i = 0;
  while (i + kMinMatch <= raw.size()) {
    const std::uint32_t h = HashQuad(raw.data() + i);
    const std::size_t candidate = last_pos[h];
    last_pos[h] = i;
    std::size_t match_len = 0;
    if (candidate < i && i - candidate <= kWindow) {
      const std::size_t limit = std::min(kMaxMatch, raw.size() - i);
      while (match_len < limit &&
             raw[candidate + match_len] == raw[i + match_len]) {
        ++match_len;
      }
    }
    if (match_len >= kMinMatch) {
      EmitLiterals(raw, literal_start, i, &packed);
      const std::size_t dist = i - candidate;
      packed.push_back(
          static_cast<char>(0x80 | (match_len - kMinMatch)));
      packed.push_back(static_cast<char>(dist & 0xff));
      packed.push_back(static_cast<char>((dist >> 8) & 0xff));
      i += match_len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  EmitLiterals(raw, literal_start, raw.size(), &packed);

  if (packed.size() < raw.size()) {
    *out = std::move(packed);
    return CodecId::kLz;
  }
  out->assign(raw);
  return CodecId::kNone;
}

common::Result<std::string> DecompressChunk(CodecId codec,
                                            std::string_view payload,
                                            std::size_t raw_size) {
  if (codec == CodecId::kNone) {
    if (payload.size() != raw_size) {
      return common::Status::InvalidArgument(
          "stored chunk size disagrees with its header");
    }
    return std::string(payload);
  }
  if (codec != CodecId::kLz) {
    return common::Status::InvalidArgument("unknown codec id " +
                                           std::to_string(static_cast<int>(
                                               codec)));
  }
  std::string out;
  out.reserve(raw_size);
  std::size_t i = 0;
  while (i < payload.size()) {
    const auto control = static_cast<std::uint8_t>(payload[i++]);
    if ((control & 0x80) == 0) {
      const std::size_t run = static_cast<std::size_t>(control) + 1;
      if (i + run > payload.size() || out.size() + run > raw_size) {
        return common::Status::InvalidArgument("corrupt LZ literal run");
      }
      out.append(payload.data() + i, run);
      i += run;
    } else {
      const std::size_t len = (control & 0x7f) + kMinMatch;
      if (i + 2 > payload.size()) {
        return common::Status::InvalidArgument("truncated LZ match token");
      }
      const std::size_t dist =
          static_cast<std::uint8_t>(payload[i]) |
          (static_cast<std::size_t>(static_cast<std::uint8_t>(payload[i + 1]))
           << 8);
      i += 2;
      if (dist == 0 || dist > out.size() || out.size() + len > raw_size) {
        return common::Status::InvalidArgument("corrupt LZ match");
      }
      // Byte-at-a-time copy: overlapping matches (dist < len) are the RLE
      // idiom and must see the bytes the copy itself appends.
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[out.size() - dist]);
      }
    }
  }
  if (out.size() != raw_size) {
    return common::Status::InvalidArgument(
        "LZ stream decoded to the wrong size");
  }
  return out;
}

}  // namespace scalia::filter
