// Per-tenant envelope encryption for the filter pipeline — the repo's ONE
// encryption seam.
//
// Scheme: every filtered object gets a fresh random 256-bit data key; the
// chunk payloads are encrypted under it with a SHA-256-based CTR stream
// (one keystream per chunk ordinal), and the data key itself travels inside
// the blob *wrapped* (XORed with a keystream derived from the tenant key
// and the object nonce).  An HMAC-SHA256 tag over the whole blob, keyed by
// the data key, authenticates the ciphertext before anything is decoded.
// Tenant keys are derived from the tenant's api/auth secret material via
// TenantKeyring, so possession of the gateway credential config is what
// unlocks a tenant's data.
//
// House rule (scripts/lint_rules.sh, rule `cipher-seam`): the raw cipher
// primitives CtrKeystreamXor()/WrapDataKey() may only be referenced from
// src/filter/crypto.{h,cc}.  Everything else uses the ObjectCipher /
// TenantKeyring envelope API below, so key handling cannot fork.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/sha256.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace scalia::filter {

using TenantKey = common::Sha256Digest;

/// The per-object key material that rides inside the blob header.
struct KeyEnvelope {
  std::array<std::uint8_t, 16> nonce{};
  std::array<std::uint8_t, 32> wrapped_key{};
};
inline constexpr std::size_t kEnvelopeBytes = 16 + 32;
inline constexpr std::size_t kTagBytes = 32;

/// Derives a tenant's root key from secret material (an api/auth credential
/// secret, or the keyring's master secret for tenants without one).
[[nodiscard]] TenantKey DeriveTenantKey(std::string_view secret_material,
                                        std::string_view tenant);

/// Thread-safe tenant -> key map the server fills from the same credential
/// config that feeds api::Authenticator.  Tenants without an explicit
/// secret fall back to a key derived from the master secret, so encryption
/// works (with a deployment-wide key) even before per-tenant secrets are
/// provisioned.
class TenantKeyring {
 public:
  explicit TenantKeyring(std::string master_secret = "scalia-dev-master");

  /// Registers (or replaces) `tenant`'s secret material.
  void SetTenantSecret(const std::string& tenant, std::string_view secret);

  [[nodiscard]] TenantKey KeyFor(const std::string& tenant) const;

 private:
  std::string master_secret_;
  mutable common::Mutex mu_;
  std::unordered_map<std::string, TenantKey> keys_ GUARDED_BY(mu_);
};

/// One object's encrypt/decrypt context: data key + nonce, bound to a
/// tenant key through the wrapped envelope.
class ObjectCipher {
 public:
  /// Fresh data key + nonce for a new object, drawn from `rng` (seeded,
  /// like all randomness in the repo).
  [[nodiscard]] static ObjectCipher NewObject(const TenantKey& tenant_key,
                                              common::Xoshiro256& rng);

  /// Reconstructs the cipher of an existing object from its envelope.
  /// Unwrapping cannot fail on its own (XOR is total); the HMAC check in
  /// VerifyTag is what rejects a wrong tenant key or a tampered blob.
  [[nodiscard]] static ObjectCipher Open(const TenantKey& tenant_key,
                                         const KeyEnvelope& envelope);

  [[nodiscard]] const KeyEnvelope& envelope() const noexcept {
    return envelope_;
  }

  /// XORs `payload` with the keystream of chunk `ordinal`; its own inverse.
  [[nodiscard]] std::string Crypt(std::uint64_t ordinal,
                                  std::string_view payload) const;

  /// HMAC-SHA256 over `blob_prefix` (every blob byte before the tag),
  /// keyed by the data key.
  [[nodiscard]] common::Sha256Digest Seal(std::string_view blob_prefix) const;

  /// Constant-time tag check.
  [[nodiscard]] bool VerifyTag(std::string_view blob_prefix,
                               const common::Sha256Digest& tag) const;

 private:
  ObjectCipher() = default;

  common::Sha256Digest data_key_{};
  KeyEnvelope envelope_;
};

}  // namespace scalia::filter
