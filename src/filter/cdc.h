// Content-defined chunking for the data-reduction filter pipeline.
//
// Splits an object into variable-size chunks whose boundaries depend only
// on the *content* (a gear rolling hash), not on byte offsets: inserting a
// few bytes near the front of a file shifts every fixed-size block but
// leaves most content-defined chunks — and therefore their SHA-256 dedup
// identities — untouched.  The gear table is derived from a fixed seed, so
// chunk boundaries are stable across processes and restarts (dedup hashes
// must never depend on when the process started).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace scalia::filter {

struct CdcConfig {
  /// No cut point before this many bytes (bounds per-chunk overhead).
  std::size_t min_chunk = 4 * 1024;
  /// A chunk is force-cut at this size even without a content boundary.
  std::size_t max_chunk = 64 * 1024;
  /// Boundary test: cut when (hash & mask) == 0; a mask with k low bits
  /// set yields an expected chunk size near min_chunk + 2^k bytes.
  std::uint64_t mask = (1ull << 13) - 1;  // ~12 KiB expected
};

/// Byte ranges [offset, offset + length) of each chunk, in order.  The
/// ranges partition the input exactly; an empty input yields no chunks.
struct ChunkSpan {
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// Deterministic content-defined split of `data` under `config`.
[[nodiscard]] std::vector<ChunkSpan> ContentDefinedChunks(
    std::string_view data, const CdcConfig& config = {});

}  // namespace scalia::filter
