// Object <-> chunk conversion on top of the Reed–Solomon codec.
//
// The engine stores each object as n self-describing chunks (§III-A): a
// chunk carries its encoding index, the (m, n) parameters, the original
// object size, and integrity checksums, so reassembly needs nothing but any
// m chunks.  Chunk payloads are padded to ceil(size / m) bytes, matching the
// cost model's chunk size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/md5.h"
#include "common/status.h"
#include "common/units.h"

namespace scalia::erasure {

struct Chunk {
  std::uint32_t index = 0;  // encoding index in [0, n)
  std::uint32_t m = 0;      // threshold
  std::uint32_t n = 0;      // total chunks
  common::Bytes object_size = 0;
  common::Md5Digest object_checksum{};  // MD5 of the original object bytes
  common::Md5Digest shard_checksum{};   // MD5 of `payload`
  std::vector<std::uint8_t> payload;

  /// Billable size of this chunk (payload only; headers ride for free in the
  /// simulation, as metadata does in real providers).
  [[nodiscard]] common::Bytes size() const noexcept {
    return static_cast<common::Bytes>(payload.size());
  }

  /// Binary serialization, e.g. for handing to a provider as an opaque blob.
  [[nodiscard]] std::string Serialize() const;
  [[nodiscard]] static common::Result<Chunk> Deserialize(
      std::string_view bytes);
};

class Chunker {
 public:
  /// Splits `object` into n chunks, any m of which reconstruct it.
  [[nodiscard]] static common::Result<std::vector<Chunk>> Split(
      std::string_view object, std::size_t m, std::size_t n);

  /// Reassembles the object from any >= m chunks (chunks may arrive in any
  /// order; integrity is verified per shard and for the whole object).
  [[nodiscard]] static common::Result<std::string> Join(
      const std::vector<Chunk>& chunks);

  /// Rebuilds the single chunk `target_index` from any >= m surviving
  /// chunks (active repair, §IV-E).
  [[nodiscard]] static common::Result<Chunk> Repair(
      const std::vector<Chunk>& chunks, std::size_t target_index);

  /// Size of each chunk payload for an (m,n) encoding of `object_size`
  /// bytes; this is what providers bill for.
  [[nodiscard]] static common::Bytes ChunkPayloadSize(
      common::Bytes object_size, std::size_t m) {
    return common::CeilDiv(object_size, static_cast<common::Bytes>(m));
  }
};

}  // namespace scalia::erasure
