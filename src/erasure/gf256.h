// Arithmetic over GF(2^8), the base field of Scalia's erasure code.
//
// The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1) (polynomial 0x11d),
// the conventional choice for Reed–Solomon storage codes.  Multiplication
// and inversion run through exp/log tables computed once at namespace-scope
// constant initialization.
#pragma once

#include <array>
#include <cstdint>

namespace scalia::erasure {

namespace detail {

inline constexpr std::uint16_t kPrimitivePoly = 0x11d;

struct GfTables {
  // exp_ is doubled so Mul can skip a modulo: exp[log[a] + log[b]] is always
  // in range.
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint8_t, 256> log{};
};

consteval GfTables BuildTables() {
  GfTables t{};
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPrimitivePoly;
  }
  for (int i = 255; i < 512; ++i) {
    t.exp[static_cast<std::size_t>(i)] =
        t.exp[static_cast<std::size_t>(i - 255)];
  }
  t.log[0] = 0;  // log(0) is undefined; callers must special-case zero.
  return t;
}

inline constexpr GfTables kTables = BuildTables();

}  // namespace detail

/// a + b and a - b coincide in characteristic 2.
[[nodiscard]] constexpr std::uint8_t GfAdd(std::uint8_t a,
                                           std::uint8_t b) noexcept {
  return a ^ b;
}

[[nodiscard]] constexpr std::uint8_t GfMul(std::uint8_t a,
                                           std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  return detail::kTables
      .exp[static_cast<std::size_t>(detail::kTables.log[a]) +
           static_cast<std::size_t>(detail::kTables.log[b])];
}

/// Multiplicative inverse; precondition a != 0.
[[nodiscard]] constexpr std::uint8_t GfInv(std::uint8_t a) noexcept {
  return detail::kTables.exp[255 - detail::kTables.log[a]];
}

/// a / b; precondition b != 0.
[[nodiscard]] constexpr std::uint8_t GfDiv(std::uint8_t a,
                                           std::uint8_t b) noexcept {
  if (a == 0) return 0;
  return detail::kTables.exp[static_cast<std::size_t>(
                                 detail::kTables.log[a]) +
                             255 - detail::kTables.log[b]];
}

/// a^power (power >= 0).
[[nodiscard]] constexpr std::uint8_t GfPow(std::uint8_t a,
                                           unsigned power) noexcept {
  if (power == 0) return 1;
  if (a == 0) return 0;
  const unsigned l =
      (static_cast<unsigned>(detail::kTables.log[a]) * power) % 255;
  return detail::kTables.exp[l];
}

/// Row of the 256x256 multiplication table for `a`; lets bulk encoders do
/// one table lookup per byte.
[[nodiscard]] inline const std::uint8_t* GfMulRow(std::uint8_t a) noexcept {
  // Table built lazily on first use; 64 KiB, read-only afterwards.
  static const auto* table = [] {
    auto* t = new std::array<std::array<std::uint8_t, 256>, 256>();
    for (int i = 0; i < 256; ++i) {
      for (int j = 0; j < 256; ++j) {
        (*t)[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            GfMul(static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j));
      }
    }
    return t;
  }();
  return (*table)[a].data();
}

}  // namespace scalia::erasure
