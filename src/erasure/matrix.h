// Dense matrices over GF(2^8) with Gauss–Jordan inversion.
//
// Reed–Solomon decoding inverts the m×m submatrix of the encoding matrix
// that corresponds to the surviving chunks; the MDS (Cauchy) construction
// guarantees that submatrix is invertible for any m-subset.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace scalia::erasure {

class GfMatrix {
 public:
  GfMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] std::uint8_t& At(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::uint8_t At(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const std::uint8_t* Row(std::size_t r) const {
    return &data_[r * cols_];
  }

  [[nodiscard]] static GfMatrix Identity(std::size_t n);

  /// this * other.
  [[nodiscard]] GfMatrix Multiply(const GfMatrix& other) const;

  /// Returns a matrix consisting of the given rows of this matrix.
  [[nodiscard]] GfMatrix SelectRows(const std::vector<std::size_t>& rows) const;

  /// Gauss–Jordan inverse; fails with InvalidArgument for singular or
  /// non-square matrices.
  [[nodiscard]] common::Result<GfMatrix> Inverted() const;

  [[nodiscard]] bool operator==(const GfMatrix& other) const = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint8_t> data_;
};

/// Builds the n×m systematic encoding matrix used by the (m, n) code: the
/// top m rows are the identity (data chunks are plain data shards) and the
/// n−m parity rows form a Cauchy matrix a[i][j] = 1/(x_i ⊕ y_j) with
/// x_i = m + i and y_j = j.  Any m rows of the result are linearly
/// independent, which is exactly the paper's requirement that "any m-subset
/// of the n chunks contains a complete copy of the data" (Fig. 1).
[[nodiscard]] GfMatrix BuildCauchyEncodingMatrix(std::size_t m, std::size_t n);

}  // namespace scalia::erasure
