#include "erasure/chunker.h"

#include <cstring>

#include "erasure/reed_solomon.h"

namespace scalia::erasure {
namespace {

constexpr std::uint32_t kChunkMagic = 0x53434c43;  // "SCLC"

void AppendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t ReadU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t ReadU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::string Chunk::Serialize() const {
  std::string out;
  out.reserve(4 * 4 + 8 + 16 + 16 + payload.size());
  AppendU32(out, kChunkMagic);
  AppendU32(out, index);
  AppendU32(out, m);
  AppendU32(out, n);
  AppendU64(out, object_size);
  out.append(reinterpret_cast<const char*>(object_checksum.data()),
             object_checksum.size());
  out.append(reinterpret_cast<const char*>(shard_checksum.data()),
             shard_checksum.size());
  out.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  return out;
}

common::Result<Chunk> Chunk::Deserialize(std::string_view bytes) {
  constexpr std::size_t kHeader = 4 * 4 + 8 + 16 + 16;
  if (bytes.size() < kHeader) {
    return common::Status::InvalidArgument("chunk too short");
  }
  const auto* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  if (ReadU32(p) != kChunkMagic) {
    return common::Status::InvalidArgument("bad chunk magic");
  }
  Chunk c;
  c.index = ReadU32(p + 4);
  c.m = ReadU32(p + 8);
  c.n = ReadU32(p + 12);
  c.object_size = ReadU64(p + 16);
  std::memcpy(c.object_checksum.data(), p + 24, 16);
  std::memcpy(c.shard_checksum.data(), p + 40, 16);
  c.payload.assign(p + kHeader, p + bytes.size());
  return c;
}

common::Result<std::vector<Chunk>> Chunker::Split(std::string_view object,
                                                  std::size_t m,
                                                  std::size_t n) {
  auto codec = ReedSolomon::Create(m, n);
  if (!codec.ok()) return codec.status();

  const auto object_size = static_cast<common::Bytes>(object.size());
  const common::Bytes shard_len = ChunkPayloadSize(object_size, m);
  // Degenerate empty object: keep one byte of padding so shards are non-empty.
  const std::size_t len = std::max<std::size_t>(1, shard_len);

  std::vector<Shard> data(m, Shard(len, 0));
  for (std::size_t i = 0; i < object.size(); ++i) {
    data[i / len][i % len] = static_cast<std::uint8_t>(object[i]);
  }
  auto shards = codec->Encode(data);
  if (!shards.ok()) return shards.status();

  const common::Md5Digest object_checksum = common::Md5::Hash(object);
  std::vector<Chunk> chunks;
  chunks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Chunk c;
    c.index = static_cast<std::uint32_t>(i);
    c.m = static_cast<std::uint32_t>(m);
    c.n = static_cast<std::uint32_t>(n);
    c.object_size = object_size;
    c.object_checksum = object_checksum;
    c.payload = std::move((*shards)[i]);
    c.shard_checksum = common::Md5::Hash(std::string_view(
        reinterpret_cast<const char*>(c.payload.data()), c.payload.size()));
    chunks.push_back(std::move(c));
  }
  return chunks;
}

common::Result<std::string> Chunker::Join(const std::vector<Chunk>& chunks) {
  if (chunks.empty()) {
    return common::Status::InvalidArgument("no chunks");
  }
  const std::uint32_t m = chunks[0].m;
  const std::uint32_t n = chunks[0].n;
  const common::Bytes object_size = chunks[0].object_size;
  std::vector<Shard> shards;
  std::vector<std::size_t> indices;
  for (const Chunk& c : chunks) {
    if (c.m != m || c.n != n || c.object_size != object_size) {
      return common::Status::InvalidArgument("chunks from different objects");
    }
    const auto digest = common::Md5::Hash(std::string_view(
        reinterpret_cast<const char*>(c.payload.data()), c.payload.size()));
    if (digest != c.shard_checksum) {
      return common::Status::Internal("chunk payload corrupted");
    }
    shards.push_back(c.payload);
    indices.push_back(c.index);
  }
  auto codec = ReedSolomon::Create(m, n);
  if (!codec.ok()) return codec.status();
  auto data = codec->Decode(shards, indices);
  if (!data.ok()) return data.status();

  std::string object;
  object.reserve(object_size);
  const std::size_t len = (*data)[0].size();
  for (common::Bytes i = 0; i < object_size; ++i) {
    object.push_back(static_cast<char>((*data)[i / len][i % len]));
  }
  if (common::Md5::Hash(object) != chunks[0].object_checksum) {
    return common::Status::Internal("object checksum mismatch after decode");
  }
  return object;
}

common::Result<Chunk> Chunker::Repair(const std::vector<Chunk>& chunks,
                                      std::size_t target_index) {
  if (chunks.empty()) {
    return common::Status::InvalidArgument("no chunks");
  }
  const std::uint32_t m = chunks[0].m;
  const std::uint32_t n = chunks[0].n;
  auto codec = ReedSolomon::Create(m, n);
  if (!codec.ok()) return codec.status();
  std::vector<Shard> shards;
  std::vector<std::size_t> indices;
  for (const Chunk& c : chunks) {
    shards.push_back(c.payload);
    indices.push_back(c.index);
  }
  auto shard = codec->RepairShard(shards, indices, target_index);
  if (!shard.ok()) return shard.status();

  Chunk out;
  out.index = static_cast<std::uint32_t>(target_index);
  out.m = m;
  out.n = n;
  out.object_size = chunks[0].object_size;
  out.object_checksum = chunks[0].object_checksum;
  out.payload = std::move(*shard);
  out.shard_checksum = common::Md5::Hash(std::string_view(
      reinterpret_cast<const char*>(out.payload.data()), out.payload.size()));
  return out;
}

}  // namespace scalia::erasure
