// Systematic (m, n) Reed–Solomon codec over GF(2^8).
//
// This is the erasure code of §II-A.1: an object is split into m data
// shards; n−m parity shards are computed so that *any* m of the n shards
// reconstruct the object.  The rate r = m/n and the storage blow-up 1/r
// follow directly.  RAID-1 is (m=1), RAID-5 is (m=k, n=k+1).
//
// The code is MDS by construction (Cauchy parity rows, see matrix.h), for
// any 1 <= m <= n <= 128.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "erasure/matrix.h"

namespace scalia::erasure {

using Shard = std::vector<std::uint8_t>;

class ReedSolomon {
 public:
  /// Creates a codec with m data shards and n total shards.
  /// Requires 1 <= m <= n <= 128 (x and y coordinate spaces of the Cauchy
  /// construction must stay disjoint inside GF(256)).
  static common::Result<ReedSolomon> Create(std::size_t m, std::size_t n);

  [[nodiscard]] std::size_t data_shards() const noexcept { return m_; }
  [[nodiscard]] std::size_t total_shards() const noexcept { return n_; }

  /// Encodes m equally-sized data shards into n shards (the first m are the
  /// data shards themselves, the rest parity).
  [[nodiscard]] common::Result<std::vector<Shard>> Encode(
      const std::vector<Shard>& data) const;

  /// Reconstructs the m data shards from any m (or more) surviving shards.
  /// `shards[i]` must be the shard with encoding index `indices[i]`.
  [[nodiscard]] common::Result<std::vector<Shard>> Decode(
      const std::vector<Shard>& shards,
      const std::vector<std::size_t>& indices) const;

  /// Re-creates the single shard with encoding index `target` from any m
  /// surviving shards — the "active repair" fast path of §IV-E, where only
  /// the chunk of the failed provider is rebuilt and re-written.
  [[nodiscard]] common::Result<Shard> RepairShard(
      const std::vector<Shard>& shards,
      const std::vector<std::size_t>& indices, std::size_t target) const;

  [[nodiscard]] const GfMatrix& encoding_matrix() const noexcept {
    return matrix_;
  }

 private:
  ReedSolomon(std::size_t m, std::size_t n, GfMatrix matrix)
      : m_(m), n_(n), matrix_(std::move(matrix)) {}

  /// out[r] = sum_j rows.At(r, j) * inputs[j], bytewise over shard length.
  static void MatMulShards(const GfMatrix& rows,
                           const std::vector<const Shard*>& inputs,
                           std::vector<Shard>& out);

  std::size_t m_;
  std::size_t n_;
  GfMatrix matrix_;  // n x m systematic encoding matrix
};

}  // namespace scalia::erasure
