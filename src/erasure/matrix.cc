#include "erasure/matrix.h"

#include "erasure/gf256.h"

namespace scalia::erasure {

GfMatrix GfMatrix::Identity(std::size_t n) {
  GfMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1;
  return m;
}

GfMatrix GfMatrix::Multiply(const GfMatrix& other) const {
  GfMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t v = At(r, k);
      if (v == 0) continue;
      const std::uint8_t* mul_row = GfMulRow(v);
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) = GfAdd(out.At(r, c), mul_row[other.At(k, c)]);
      }
    }
  }
  return out;
}

GfMatrix GfMatrix::SelectRows(const std::vector<std::size_t>& rows) const {
  GfMatrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out.At(i, c) = At(rows[i], c);
    }
  }
  return out;
}

common::Result<GfMatrix> GfMatrix::Inverted() const {
  if (rows_ != cols_) {
    return common::Status::InvalidArgument("matrix not square");
  }
  const std::size_t n = rows_;
  GfMatrix work = *this;
  GfMatrix inv = Identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot at or below the diagonal.
    std::size_t pivot = col;
    while (pivot < n && work.At(pivot, col) == 0) ++pivot;
    if (pivot == n) {
      return common::Status::InvalidArgument("singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.At(pivot, c), work.At(col, c));
        std::swap(inv.At(pivot, c), inv.At(col, c));
      }
    }
    // Normalize the pivot row.
    const std::uint8_t inv_pivot = GfInv(work.At(col, col));
    const std::uint8_t* norm_row = GfMulRow(inv_pivot);
    for (std::size_t c = 0; c < n; ++c) {
      work.At(col, c) = norm_row[work.At(col, c)];
      inv.At(col, c) = norm_row[inv.At(col, c)];
    }
    // Eliminate the column from every other row.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.At(r, col);
      if (factor == 0) continue;
      const std::uint8_t* mul_row = GfMulRow(factor);
      for (std::size_t c = 0; c < n; ++c) {
        work.At(r, c) = GfAdd(work.At(r, c), mul_row[work.At(col, c)]);
        inv.At(r, c) = GfAdd(inv.At(r, c), mul_row[inv.At(col, c)]);
      }
    }
  }
  return inv;
}

GfMatrix BuildCauchyEncodingMatrix(std::size_t m, std::size_t n) {
  GfMatrix mat(n, m);
  for (std::size_t i = 0; i < m; ++i) mat.At(i, i) = 1;
  for (std::size_t r = m; r < n; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const auto x = static_cast<std::uint8_t>(r);
      const auto y = static_cast<std::uint8_t>(c);
      mat.At(r, c) = GfInv(GfAdd(x, y));
    }
  }
  return mat;
}

}  // namespace scalia::erasure
