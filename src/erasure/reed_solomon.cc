#include "erasure/reed_solomon.h"

#include <algorithm>

#include "erasure/gf256.h"

namespace scalia::erasure {

common::Result<ReedSolomon> ReedSolomon::Create(std::size_t m, std::size_t n) {
  if (m == 0 || n < m || n > 128) {
    return common::Status::InvalidArgument(
        "ReedSolomon requires 1 <= m <= n <= 128");
  }
  return ReedSolomon(m, n, BuildCauchyEncodingMatrix(m, n));
}

void ReedSolomon::MatMulShards(const GfMatrix& rows,
                               const std::vector<const Shard*>& inputs,
                               std::vector<Shard>& out) {
  const std::size_t shard_len = inputs.empty() ? 0 : inputs[0]->size();
  out.assign(rows.rows(), Shard(shard_len, 0));
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    Shard& dst = out[r];
    for (std::size_t j = 0; j < rows.cols(); ++j) {
      const std::uint8_t coef = rows.At(r, j);
      if (coef == 0) continue;
      const std::uint8_t* mul_row = GfMulRow(coef);
      const Shard& src = *inputs[j];
      if (coef == 1) {
        for (std::size_t b = 0; b < shard_len; ++b) dst[b] ^= src[b];
      } else {
        for (std::size_t b = 0; b < shard_len; ++b) dst[b] ^= mul_row[src[b]];
      }
    }
  }
}

common::Result<std::vector<Shard>> ReedSolomon::Encode(
    const std::vector<Shard>& data) const {
  if (data.size() != m_) {
    return common::Status::InvalidArgument("expected m data shards");
  }
  const std::size_t shard_len = data[0].size();
  for (const Shard& s : data) {
    if (s.size() != shard_len) {
      return common::Status::InvalidArgument("unequal shard sizes");
    }
  }
  std::vector<Shard> out;
  out.reserve(n_);
  // Systematic part: the data shards pass through unchanged.
  for (const Shard& s : data) out.push_back(s);
  if (n_ == m_) return out;

  std::vector<std::size_t> parity_rows;
  for (std::size_t r = m_; r < n_; ++r) parity_rows.push_back(r);
  const GfMatrix parity = matrix_.SelectRows(parity_rows);
  std::vector<const Shard*> inputs;
  inputs.reserve(m_);
  for (const Shard& s : data) inputs.push_back(&s);
  std::vector<Shard> parity_shards;
  MatMulShards(parity, inputs, parity_shards);
  for (Shard& s : parity_shards) out.push_back(std::move(s));
  return out;
}

common::Result<std::vector<Shard>> ReedSolomon::Decode(
    const std::vector<Shard>& shards,
    const std::vector<std::size_t>& indices) const {
  if (shards.size() != indices.size()) {
    return common::Status::InvalidArgument("shards/indices size mismatch");
  }
  if (shards.size() < m_) {
    return common::Status::FailedPrecondition(
        "need at least m shards to reconstruct");
  }
  // Use the first m shards with distinct, valid indices.
  std::vector<std::size_t> rows;
  std::vector<const Shard*> inputs;
  const std::size_t shard_len = shards[0].size();
  for (std::size_t i = 0; i < shards.size() && rows.size() < m_; ++i) {
    if (indices[i] >= n_) {
      return common::Status::InvalidArgument("shard index out of range");
    }
    if (shards[i].size() != shard_len) {
      return common::Status::InvalidArgument("unequal shard sizes");
    }
    if (std::find(rows.begin(), rows.end(), indices[i]) != rows.end()) {
      continue;  // duplicate index
    }
    rows.push_back(indices[i]);
    inputs.push_back(&shards[i]);
  }
  if (rows.size() < m_) {
    return common::Status::FailedPrecondition("fewer than m distinct shards");
  }
  auto inverse = matrix_.SelectRows(rows).Inverted();
  if (!inverse.ok()) return inverse.status();
  std::vector<Shard> data;
  MatMulShards(*inverse, inputs, data);
  return data;
}

common::Result<Shard> ReedSolomon::RepairShard(
    const std::vector<Shard>& shards, const std::vector<std::size_t>& indices,
    std::size_t target) const {
  if (target >= n_) {
    return common::Status::InvalidArgument("target index out of range");
  }
  auto data = Decode(shards, indices);
  if (!data.ok()) return data.status();
  if (target < m_) return std::move((*data)[target]);
  const GfMatrix row = matrix_.SelectRows({target});
  std::vector<const Shard*> inputs;
  inputs.reserve(m_);
  for (const Shard& s : *data) inputs.push_back(&s);
  std::vector<Shard> out;
  MatMulShards(row, inputs, out);
  return std::move(out[0]);
}

}  // namespace scalia::erasure
