#include "cache/cdn.h"

#include <utility>

namespace scalia::cache {

// ---------------------------------------------------------------------------
// EdgeCache
// ---------------------------------------------------------------------------

std::optional<std::string> EdgeCache::Get(common::SimTime now,
                                          const std::string& key) {
  common::MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.edge_misses;
    return std::nullopt;
  }
  Entry& entry = *it->second;
  if (ttl_ > 0 && now - entry.filled_at >= ttl_) {
    bytes_ -= entry.body.size();
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.expirations;
    ++stats_.edge_misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  ++stats_.edge_hits;
  return entry.body;
}

void EdgeCache::Fill(common::SimTime now, const std::string& key,
                     std::string body) {
  if (body.size() > capacity_) return;  // never cacheable
  common::MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->body.size();
    bytes_ += body.size();
    it->second->body = std::move(body);
    it->second->filled_at = now;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(body), now});
    bytes_ += lru_.front().body.size();
    index_[key] = lru_.begin();
  }
  EvictToFitLocked();
}

void EdgeCache::EvictToFitLocked() {
  while (bytes_ > capacity_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    bytes_ -= victim.body.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void EdgeCache::Purge(const std::string& key) {
  common::MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  bytes_ -= it->second->body.size();
  lru_.erase(it->second);
  index_.erase(it);
  ++stats_.purges;
}

void EdgeCache::Clear() {
  common::MutexLock lock(mu_);
  stats_.purges += lru_.size();
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

CdnStats EdgeCache::Stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

common::Bytes EdgeCache::SizeBytes() const {
  common::MutexLock lock(mu_);
  return bytes_;
}

std::size_t EdgeCache::EntryCount() const {
  common::MutexLock lock(mu_);
  return lru_.size();
}

// ---------------------------------------------------------------------------
// Cdn
// ---------------------------------------------------------------------------

Cdn::Cdn(CdnConfig config, OriginFn origin)
    : config_(config), origin_(std::move(origin)) {
  for (auto& edge : edges_) {
    edge = std::make_unique<EdgeCache>(config_.edge_capacity, config_.ttl);
  }
}

CdnFetch Cdn::Get(common::SimTime now, net::Region region,
                  const std::string& key) {
  EdgeCache& edge = *edges_[static_cast<std::size_t>(region)];
  if (auto body = edge.Get(now, key)) {
    return CdnFetch{.found = true,
                    .edge_hit = true,
                    .latency_ms = config_.edge_rtt_ms,
                    .body = std::move(*body)};
  }
  OriginReply reply = origin_(region, key);
  if (!reply.body) {
    return CdnFetch{.found = false,
                    .edge_hit = false,
                    .latency_ms = config_.edge_rtt_ms + reply.latency_ms,
                    .body = {}};
  }
  edge.Fill(now, key, *reply.body);
  return CdnFetch{.found = true,
                  .edge_hit = false,
                  .latency_ms = config_.edge_rtt_ms + reply.latency_ms,
                  .body = std::move(*reply.body)};
}

void Cdn::Purge(const std::string& key) {
  for (auto& edge : edges_) edge->Purge(key);
}

void Cdn::PurgeAll() {
  for (auto& edge : edges_) edge->Clear();
}

CdnStats Cdn::TotalStats() const {
  CdnStats total;
  for (const auto& edge : edges_) total += edge->Stats();
  return total;
}

}  // namespace scalia::cache
