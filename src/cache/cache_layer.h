// Per-datacenter cache layers joined by an invalidation bus.
//
// §III-B: "In a multi-datacenter setup, the cache has to be invalidated in
// all datacenters in order to guarantee the consistency of the read
// operations."  A write in any datacenter broadcasts the object's row key on
// the bus; every layer drops its copy.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/lru_cache.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace scalia::cache {

class CacheLayer;

/// Broadcast channel connecting the datacenters' cache layers.
class InvalidationBus {
 public:
  void Subscribe(CacheLayer* layer);
  /// Invalidates `key` in every subscribed layer (including the caller's —
  /// idempotent and simpler than excluding it).
  void Broadcast(const std::string& key);

 private:
  common::Mutex mu_;
  std::vector<CacheLayer*> layers_ GUARDED_BY(mu_);
};

class CacheLayer {
 public:
  CacheLayer(common::Bytes capacity, InvalidationBus* bus);

  /// Local lookup.
  [[nodiscard]] std::optional<std::string> Get(const std::string& key) {
    return cache_.Get(key);
  }
  /// Local fill after a read reassembled the object (§III-D.2).
  void Fill(const std::string& key, std::string value) {
    cache_.Put(key, std::move(value));
  }
  /// Called on writes/deletes: drop the object everywhere.
  void InvalidateEverywhere(const std::string& key);
  /// Bus-delivered invalidation.
  void InvalidateLocal(const std::string& key) { cache_.Invalidate(key); }

  /// Rebudgets the underlying cache (capacity-controller resize path).
  void SetCapacity(common::Bytes capacity) { cache_.SetCapacity(capacity); }

  [[nodiscard]] CacheStats Stats() const { return cache_.Stats(); }
  [[nodiscard]] LruCache& cache() noexcept { return cache_; }

 private:
  LruCache cache_;
  InvalidationBus* bus_;  // not owned; may be null for single-DC setups
};

}  // namespace scalia::cache
