// Sharded byte-bounded LRU cache.
//
// §III-B: each datacenter runs a distributed cache in front of the storage
// providers; hits avoid chunk fetches entirely, cutting both latency and the
// providers' egress/ops bills.  Sharding bounds lock contention when many
// stateless engines hit the cache concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/units.h"

namespace scalia::cache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  [[nodiscard]] double HitRate() const noexcept {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }

  CacheStats& operator+=(const CacheStats& o) noexcept {
    hits += o.hits;
    misses += o.misses;
    insertions += o.insertions;
    evictions += o.evictions;
    invalidations += o.invalidations;
    return *this;
  }
};

class LruCache {
 public:
  /// `capacity_bytes` bounds the summed value sizes per shard group.
  explicit LruCache(common::Bytes capacity_bytes, std::size_t shards = 8);

  /// Returns the cached value or nullopt (counting a hit/miss).
  [[nodiscard]] std::optional<std::string> Get(const std::string& key);

  /// Inserts/overwrites; evicts LRU entries until the shard fits.  Values
  /// larger than the shard capacity are not cached.
  void Put(const std::string& key, std::string value);

  /// Removes the key if present (the invalidation path).
  void Invalidate(const std::string& key);

  void Clear();

  /// Rebudgets the cache to `capacity_bytes` total, evicting LRU entries
  /// from each shard until it fits the new per-shard slice.  Safe to call
  /// while readers/writers run (the capacity controller resizes live).
  void SetCapacity(common::Bytes capacity_bytes);

  [[nodiscard]] common::Bytes CapacityBytes() const noexcept {
    return shard_capacity_.load(std::memory_order_relaxed) * shards_.size();
  }

  [[nodiscard]] CacheStats Stats() const;
  [[nodiscard]] common::Bytes SizeBytes() const;
  [[nodiscard]] std::size_t EntryCount() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  struct Shard {
    mutable common::Mutex mu;
    std::list<Entry> lru GUARDED_BY(mu);  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        GUARDED_BY(mu);
    common::Bytes bytes GUARDED_BY(mu) = 0;
    CacheStats stats GUARDED_BY(mu);
  };

  [[nodiscard]] Shard& ShardFor(const std::string& key);
  static void EvictToFitLocked(Shard& s, common::Bytes capacity)
      REQUIRES(s.mu);

  /// Per-shard byte budget; atomic because SetCapacity may race Put/Get.
  std::atomic<common::Bytes> shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace scalia::cache
