#include "cache/lru_cache.h"

namespace scalia::cache {

LruCache::LruCache(common::Bytes capacity_bytes, std::size_t shards) {
  const std::size_t n = shards == 0 ? 1 : shards;
  common::Bytes per_shard = capacity_bytes / n;
  if (per_shard == 0) per_shard = capacity_bytes;
  shard_capacity_.store(per_shard, std::memory_order_relaxed);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

LruCache::Shard& LruCache::ShardFor(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return *shards_[static_cast<std::size_t>(h % shards_.size())];
}

std::optional<std::string> LruCache::Get(const std::string& key) {
  Shard& s = ShardFor(key);
  common::MutexLock lock(s.mu);
  auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.stats.misses;
    return std::nullopt;
  }
  // Move to MRU position.
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  ++s.stats.hits;
  return it->second->value;
}

void LruCache::Put(const std::string& key, std::string value) {
  Shard& s = ShardFor(key);
  const auto value_size = static_cast<common::Bytes>(value.size());
  const common::Bytes capacity =
      shard_capacity_.load(std::memory_order_relaxed);
  if (value_size > capacity) return;  // too large to cache
  common::MutexLock lock(s.mu);
  auto it = s.index.find(key);
  if (it != s.index.end()) {
    s.bytes -= static_cast<common::Bytes>(it->second->value.size());
    it->second->value = std::move(value);
    s.bytes += value_size;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
  } else {
    s.lru.push_front(Entry{key, std::move(value)});
    s.index[key] = s.lru.begin();
    s.bytes += value_size;
    ++s.stats.insertions;
  }
  EvictToFitLocked(s, capacity);
}

void LruCache::EvictToFitLocked(Shard& s, common::Bytes capacity) {
  while (s.bytes > capacity && !s.lru.empty()) {
    const Entry& victim = s.lru.back();
    s.bytes -= static_cast<common::Bytes>(victim.value.size());
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.stats.evictions;
  }
}

void LruCache::SetCapacity(common::Bytes capacity_bytes) {
  common::Bytes per_shard = capacity_bytes / shards_.size();
  if (per_shard == 0) per_shard = capacity_bytes;
  shard_capacity_.store(per_shard, std::memory_order_relaxed);
  // Shrink each shard down to the new budget; concurrent Puts that loaded
  // the old capacity may overshoot one value, the next Put corrects it.
  for (auto& s : shards_) {
    common::MutexLock lock(s->mu);
    EvictToFitLocked(*s, per_shard);
  }
}

void LruCache::Invalidate(const std::string& key) {
  Shard& s = ShardFor(key);
  common::MutexLock lock(s.mu);
  auto it = s.index.find(key);
  if (it == s.index.end()) return;
  s.bytes -= static_cast<common::Bytes>(it->second->value.size());
  s.lru.erase(it->second);
  s.index.erase(it);
  ++s.stats.invalidations;
}

void LruCache::Clear() {
  for (auto& s : shards_) {
    common::MutexLock lock(s->mu);
    s->lru.clear();
    s->index.clear();
    s->bytes = 0;
  }
}

CacheStats LruCache::Stats() const {
  CacheStats total;
  for (const auto& s : shards_) {
    common::MutexLock lock(s->mu);
    total += s->stats;
  }
  return total;
}

common::Bytes LruCache::SizeBytes() const {
  common::Bytes total = 0;
  for (const auto& s : shards_) {
    common::MutexLock lock(s->mu);
    total += s->bytes;
  }
  return total;
}

std::size_t LruCache::EntryCount() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    common::MutexLock lock(s->mu);
    total += s->index.size();
  }
  return total;
}

}  // namespace scalia::cache
