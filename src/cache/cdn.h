// CDN extension of the caching layer (§III-B).
//
// "The caching layer can be combined and extended by a CDN to reach even
// better read performance."  A Cdn fronts the datacenters with one edge
// cache per client region; reads hit the local edge first (regional RTT),
// fall back to the origin — the broker's own cache layer or an m-of-n
// chunk reassembly — on a miss, and fill the edge on the way out.  Edge
// entries carry a TTL so stale content ages out even without explicit
// purges; writes purge the object from every edge, mirroring the
// multi-datacenter invalidation of the cache layer underneath.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "net/geo.h"

namespace scalia::cache {

struct CdnConfig {
  /// Capacity of each regional edge cache.
  common::Bytes edge_capacity = 256 * common::kMiB;
  /// Edge entries expire this long after the fill (0 = never expire).
  common::Duration ttl = common::kHour;
  /// RTT from a client to its regional edge node (the CDN's whole point is
  /// that this is small and distance-independent).
  double edge_rtt_ms = 8.0;
};

/// Outcome of one CDN read, for tests and the latency benches.
struct CdnFetch {
  bool found = false;
  bool edge_hit = false;
  double latency_ms = 0.0;
  std::string body;
};

/// Per-region counters for the latency benches.
struct CdnStats {
  std::uint64_t edge_hits = 0;
  std::uint64_t edge_misses = 0;
  std::uint64_t expirations = 0;
  std::uint64_t evictions = 0;
  std::uint64_t purges = 0;

  [[nodiscard]] double HitRate() const noexcept {
    const auto total = edge_hits + edge_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(edge_hits) /
                            static_cast<double>(total);
  }

  CdnStats& operator+=(const CdnStats& o) noexcept {
    edge_hits += o.edge_hits;
    edge_misses += o.edge_misses;
    expirations += o.expirations;
    evictions += o.evictions;
    purges += o.purges;
    return *this;
  }
};

/// A single edge node: byte-bounded LRU with per-entry fill timestamps.
class EdgeCache {
 public:
  explicit EdgeCache(common::Bytes capacity, common::Duration ttl)
      : capacity_(capacity), ttl_(ttl) {}

  /// Returns the body when present and fresh at `now`; expired entries are
  /// dropped and counted.
  [[nodiscard]] std::optional<std::string> Get(common::SimTime now,
                                               const std::string& key);

  /// Fills `key`; oversized bodies are not cached.
  void Fill(common::SimTime now, const std::string& key, std::string body);

  /// Removes the entry if present.
  void Purge(const std::string& key);

  void Clear();

  [[nodiscard]] CdnStats Stats() const;
  [[nodiscard]] common::Bytes SizeBytes() const;
  [[nodiscard]] std::size_t EntryCount() const;

 private:
  struct Entry {
    std::string key;
    std::string body;
    common::SimTime filled_at = 0;
  };

  void EvictToFitLocked() REQUIRES(mu_);

  common::Bytes capacity_;
  common::Duration ttl_;
  mutable common::Mutex mu_;
  std::list<Entry> lru_ GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mu_);
  common::Bytes bytes_ GUARDED_BY(mu_) = 0;
  CdnStats stats_ GUARDED_BY(mu_);
};

class Cdn {
 public:
  /// The origin: fetches the object body (from the broker cache or by
  /// chunk reassembly) and reports the origin-side latency for the
  /// requesting region.  A null body means the object does not exist.
  struct OriginReply {
    std::optional<std::string> body;
    double latency_ms = 0.0;
  };
  using OriginFn =
      std::function<OriginReply(net::Region, const std::string& key)>;

  Cdn(CdnConfig config, OriginFn origin);

  /// Serves `key` for a client in `region` at time `now`.
  [[nodiscard]] CdnFetch Get(common::SimTime now, net::Region region,
                             const std::string& key);

  /// Purges `key` from every edge (the write/delete invalidation path).
  void Purge(const std::string& key);

  /// Drops everything from every edge.
  void PurgeAll();

  [[nodiscard]] const EdgeCache& EdgeFor(net::Region region) const {
    return *edges_[static_cast<std::size_t>(region)];
  }
  [[nodiscard]] CdnStats TotalStats() const;

 private:
  CdnConfig config_;
  OriginFn origin_;
  std::array<std::unique_ptr<EdgeCache>, 3> edges_;
};

}  // namespace scalia::cache
