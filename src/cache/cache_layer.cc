#include "cache/cache_layer.h"

namespace scalia::cache {

void InvalidationBus::Subscribe(CacheLayer* layer) {
  common::MutexLock lock(mu_);
  layers_.push_back(layer);
}

void InvalidationBus::Broadcast(const std::string& key) {
  std::vector<CacheLayer*> layers;
  {
    common::MutexLock lock(mu_);
    layers = layers_;
  }
  for (CacheLayer* l : layers) l->InvalidateLocal(key);
}

CacheLayer::CacheLayer(common::Bytes capacity, InvalidationBus* bus)
    : cache_(capacity), bus_(bus) {
  if (bus_ != nullptr) bus_->Subscribe(this);
}

void CacheLayer::InvalidateEverywhere(const std::string& key) {
  if (bus_ != nullptr) {
    bus_->Broadcast(key);
  } else {
    InvalidateLocal(key);
  }
}

}  // namespace scalia::cache
