// DurabilityManager: one handle for the whole durability subsystem.
//
// Owns the WAL (plus the single-thread commit pool backing its group
// commits), the journal facade engines write through, the checkpoint
// writer, and the checkpoint cadence.  Layout under `config.dir`:
//
//   <dir>/checkpoint-<lsn>.ckpt   versioned snapshots, newest wins
//   <dir>/wal/wal-<lsn>.seg       CRC32-framed log segments
//
// Lifecycle: Open() -> Recover() once, before serving -> attach journal()
// to the engines -> MaybeCheckpoint() at decision-period boundaries (the
// PeriodicOptimizer calls it after each run when attached).  Checkpointing
// rolls the WAL to a fresh segment, snapshots the state, publishes the
// checkpoint atomically and truncates the log behind it.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "durability/checkpoint.h"
#include "durability/journal.h"
#include "durability/recovery.h"
#include "durability/wal.h"

namespace scalia::durability {

struct DurabilityConfig {
  /// Durability root directory (created on demand).
  std::string dir;
  /// WAL tuning; `wal.dir` is derived from `dir` and ignored if set.
  WalConfig wal;
  /// Checkpoint when this much simulated time passed since the last one.
  /// The default matches the paper's daily decision period.
  common::Duration checkpoint_every = common::kDay;
  /// Run group commits on an internal single-thread pool.  When false,
  /// appends are synchronous (one fsync each) — simpler for tests.
  bool group_commit = true;
  /// Engine shard this durability stream belongs to.  When set, the journal
  /// stamps the id into every record header (format v3) and recovery
  /// refuses records carrying a different id — the guard against WAL
  /// segment files migrating between shard directories.  Unsharded
  /// deployments leave it unset (records stamped shard 0, no enforcement,
  /// v1/v2 logs replay unchanged).
  std::optional<std::uint32_t> shard;
};

class DurabilityManager {
 public:
  /// Opens (creating if needed) the durability directory and the WAL.
  /// `state` references the live engine state to checkpoint and recover;
  /// all pointers must outlive the manager.
  static common::Result<std::unique_ptr<DurabilityManager>> Open(
      DurabilityConfig config, EngineStateRefs state);

  ~DurabilityManager();

  /// Restores `state` from the latest checkpoint + WAL replay.  Call once,
  /// before the engines serve traffic.  Folds the torn-tail bytes the WAL
  /// truncated at Open() into the report.
  common::Result<RecoveryReport> Recover(common::SimTime now);

  /// The journal engines append their mutations through.
  [[nodiscard]] Journal* journal() noexcept { return journal_.get(); }
  [[nodiscard]] Wal* wal() noexcept { return wal_.get(); }

  /// Writes a checkpoint when the cadence elapsed; returns whether one was
  /// written.  Must be called quiesced (decision-period boundary).
  common::Result<bool> MaybeCheckpoint(common::SimTime now);

  /// Unconditional checkpoint + WAL truncation behind it.
  common::Status Checkpoint(common::SimTime now);

  [[nodiscard]] common::SimTime last_checkpoint_at() const noexcept {
    return last_checkpoint_at_;
  }
  [[nodiscard]] const DurabilityConfig& config() const noexcept {
    return config_;
  }

 private:
  DurabilityManager(DurabilityConfig config, EngineStateRefs state);

  DurabilityConfig config_;
  EngineStateRefs state_;
  // Declaration order doubles as teardown order in reverse: the WAL (and
  // its blocked committer task) must close before the pool joins.
  std::unique_ptr<common::ThreadPool> commit_pool_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<CheckpointWriter> checkpoint_writer_;
  common::SimTime last_checkpoint_at_ = 0;
};

}  // namespace scalia::durability
