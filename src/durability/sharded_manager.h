// ShardedDurabilityManager: one durability stream per engine shard.
//
// A ShardedEngine (core/sharded_engine.h) partitions the object space by
// key hash; this manager partitions its durability the same way, so shards
// never contend on a WAL lock or serialize behind one group-commit fsync.
// Layout under `config.dir`:
//
//   <dir>/MANIFEST                       shard-count manifest (see below)
//   <dir>/shard-<k>/checkpoint-*.ckpt    shard k's versioned snapshots
//   <dir>/shard-<k>/wal/wal-*.seg        shard k's CRC32-framed WAL stream
//
// Each shard-<k> directory is a complete, self-describing DurabilityManager
// layout: shard k's journal stamps k into every record header (format v3),
// and shard k's recovery refuses records carrying a different id, so a
// segment file that migrates between shard directories is skipped and
// counted, never misapplied.
//
// The MANIFEST pins the shard count.  Routing is a pure function of
// (row_key, num_shards); reopening an N-shard directory with M != N shards
// would strand every object whose hash moves, so Open() refuses the
// mismatch instead of silently splitting the keyspace.  Format (text):
//
//   scalia-durability-manifest/1
//   shards=<N>
//   record_format=3
//
// Recovery replays the per-shard journals in parallel on the caller's
// ThreadPool — shard streams are disjoint by construction, so the replay
// needs no cross-shard ordering.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "durability/manager.h"

namespace scalia::durability {

struct ShardedDurabilityConfig {
  /// Durability root directory (created on demand).
  std::string dir;
  /// Engine shard count; must match the ShardedEngine's and, once written,
  /// the MANIFEST's.
  std::size_t num_shards = 1;
  /// Per-shard WAL tuning; `wal.dir` is derived per shard and ignored.
  WalConfig wal;
  /// Per-shard checkpoint cadence.
  common::Duration checkpoint_every = common::kDay;
  /// Group-commit appends per shard (each shard gets its own committer).
  bool group_commit = true;
};

/// Aggregate outcome of a sharded recovery, plus the per-shard reports.
struct ShardedRecoveryReport {
  std::uint64_t shards = 0;
  std::uint64_t checkpoints_loaded = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t records_skipped = 0;
  std::uint64_t records_wrong_shard = 0;
  common::Bytes wal_bytes_discarded = 0;
  std::vector<RecoveryReport> per_shard;
};

class ShardedDurabilityManager {
 public:
  /// Opens (creating if needed) the manifest and every shard's stream.
  /// `state[k]` references shard k's live engine state: its store and
  /// stats db; the shared provider `registry` only on shard 0 (restoring
  /// the global meters once per shard would multiply them) but
  /// `sweep_registry` on *every* shard (aborted-migration sweeps target
  /// globally-unique chunk keys).  `state.size()` must equal
  /// `config.num_shards`.  Fails when an existing MANIFEST pins a
  /// different shard count.
  static common::Result<std::unique_ptr<ShardedDurabilityManager>> Open(
      ShardedDurabilityConfig config, std::vector<EngineStateRefs> state);

  /// Restores every shard from its latest checkpoint + WAL replay.  Shards
  /// recover in parallel on `pool` (serially when null).  Call once, before
  /// the shards serve traffic.
  common::Result<ShardedRecoveryReport> Recover(common::SimTime now,
                                                common::ThreadPool* pool);

  /// The per-shard journals, in shard order — exactly the vector
  /// core::ShardedEngine::AttachJournals() expects.
  [[nodiscard]] std::vector<Journal*> journals() const;

  /// Checkpoints every shard whose cadence elapsed; returns how many wrote.
  common::Result<std::size_t> MaybeCheckpoint(common::SimTime now);

  /// Unconditional checkpoint of every shard (quiesced callers only).
  common::Status Checkpoint(common::SimTime now);

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] DurabilityManager& shard_manager(std::size_t shard) {
    return *shards_.at(shard);
  }
  [[nodiscard]] const ShardedDurabilityConfig& config() const noexcept {
    return config_;
  }

  /// The manifest path under `dir` ("<dir>/MANIFEST").
  [[nodiscard]] static std::string ManifestPath(const std::string& dir);

  /// The shard count an existing durability directory pins, or 0 when no
  /// (readable) manifest exists.  Lets a daemon adopt the persisted
  /// topology instead of defaulting to a machine-dependent value: a data
  /// dir written on an 8-core host must reopen as 8 shards on any host.
  [[nodiscard]] static std::size_t PinnedShards(const std::string& dir);

 private:
  explicit ShardedDurabilityManager(ShardedDurabilityConfig config)
      : config_(std::move(config)) {}

  ShardedDurabilityConfig config_;
  std::vector<std::unique_ptr<DurabilityManager>> shards_;
};

}  // namespace scalia::durability
