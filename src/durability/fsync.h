// The one copy of the crash-safe file-publish protocol.
//
// Everything durable in this module publishes files the same way: write a
// temp file, fsync its contents, rename onto the final name, fsync the
// parent directory (a rename is not durable until the directory entry is).
// Checkpoints, WAL segments and the sharded manifest all call these
// helpers, so a fix to the protocol (EINTR handling, exotic filesystems)
// lands everywhere at once.
#pragma once

#include <string>

#include "common/status.h"

namespace scalia::durability {

/// fsyncs an already-open descriptor (`what` names it in error messages).
/// The WAL's group-commit hot path holds its segment open and syncs through
/// this seam instead of reopening by name on every commit.
common::Status FsyncFd(int fd, const std::string& what);

/// fsyncs a regular file's contents.
common::Status FsyncFile(const std::string& path);

/// fsyncs a directory so freshly created/renamed entries survive power
/// loss; file-content fsync alone does not persist the directory entry.
common::Status FsyncDir(const std::string& dir);

/// The full publish: fsync `tmp`, rename it onto `final_path`, fsync the
/// parent directory.  After an Ok() return the file is durable under its
/// final name; after a crash at any earlier point the final name is either
/// absent or still the complete previous version — never a torn file.
common::Status PublishAtomically(const std::string& tmp,
                                 const std::string& final_path);

}  // namespace scalia::durability
