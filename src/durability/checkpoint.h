// Checkpoint/snapshot writer and loader for engine state.
//
// A checkpoint captures, at one WAL position, everything the adaptive
// scheme needs to survive a restart warm: the metadata table of the
// replicated store (object -> stripes), the statistics database (object
// index, per-object access histories, per-class aggregates) and the
// per-provider billing meters.  The file is a versioned little-endian
// binary blob with a SHA-256 trailer over every preceding byte; a loader
// rejects any file whose digest does not match, so recovery can fall back
// to an older checkpoint instead of restoring silently corrupted state.
// After a checkpoint is durable the WAL is truncated behind it.
//
// File name: "checkpoint-<wal_lsn>.ckpt"; written to a temp file and
// renamed so a crash mid-write never leaves a half-checkpoint under the
// final name.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "durability/wal.h"
#include "provider/registry.h"
#include "stats/stats_db.h"
#include "store/replicated_store.h"

namespace scalia::filter {
class DedupIndex;
}  // namespace scalia::filter

namespace scalia::durability {

/// The engine-state components a checkpoint covers; also the targets a
/// recovery restores into.  `registry` may be null when billing meters are
/// provider-side (simulations where the provider stores survive a crash).
struct EngineStateRefs {
  store::ReplicatedStore* db = nullptr;
  store::ReplicaId dc = 0;
  stats::StatsDb* stats = nullptr;
  /// Meter snapshot/restore target.  In a sharded deployment only shard
  /// 0's refs carry it — the meters are global and restoring them once per
  /// shard would multiply the counters.
  provider::ProviderRegistry* registry = nullptr;
  /// Registry replay uses to sweep the staged chunks of an aborted
  /// migration (kMigrateAbort records).  Chunk keys are globally unique,
  /// so unlike `registry` this is safe — and needed — on *every* shard;
  /// falls back to `registry` when unset.
  provider::ProviderRegistry* sweep_registry = nullptr;

  /// The filter pipeline's dedup index (null when filtering is off).
  /// Checkpoints serialize it as format-v2 section 4; recovery restores it,
  /// replays kFilterChunk records into it, then rebuilds its refcounts from
  /// the restored metadata rows' dedup_refs lists.  Per-shard, like the
  /// index itself.
  filter::DedupIndex* filter_index = nullptr;

  /// The registry aborted-migration sweeps go to (see sweep_registry).
  [[nodiscard]] provider::ProviderRegistry* SweepRegistry() const noexcept {
    return sweep_registry != nullptr ? sweep_registry : registry;
  }
};

struct CheckpointInfo {
  std::string path;
  Lsn wal_lsn = 0;
  common::SimTime created_at = 0;
};

class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string dir) : dir_(std::move(dir)) {}

  /// Serializes `state` as of WAL position `wal_lsn` and atomically
  /// publishes it.  The caller must quiesce mutations for the duration
  /// (checkpoints run at decision-period boundaries, between workloads).
  common::Result<CheckpointInfo> Write(const EngineStateRefs& state,
                                       Lsn wal_lsn, common::SimTime now) const;

 private:
  std::string dir_;
};

/// The WAL LSN encoded in a checkpoint file name; nullopt when `path` is
/// not a checkpoint file.
[[nodiscard]] std::optional<Lsn> CheckpointLsnFromPath(const std::string& path);

class CheckpointLoader {
 public:
  explicit CheckpointLoader(std::string dir) : dir_(std::move(dir)) {}

  /// Checkpoint files present in the directory, newest (highest LSN) first.
  [[nodiscard]] std::vector<std::string> List() const;

  /// Verifies `path`'s digest and restores its contents into `state`.
  common::Result<CheckpointInfo> LoadInto(const std::string& path,
                                          const EngineStateRefs& state) const;

 private:
  std::string dir_;
};

}  // namespace scalia::durability
