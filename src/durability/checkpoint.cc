#include "durability/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/binary_codec.h"
#include "common/log.h"
#include "common/sha256.h"
#include "durability/fsync.h"
#include "filter/dedup_index.h"

namespace scalia::durability {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x504B4353;  // "SCKP"
// v1: metadata rows + stats + billing meters.
// v2 (PR 10): per-class stats gain the data-reduction sums, and a fourth
// section snapshots the filter pipeline's dedup index.  v1 files stay
// loadable (their stats decode without the reduction fields and the index
// starts empty — WAL replay and the refcount rebuild repopulate it).
constexpr std::uint32_t kCheckpointVersion = 2;
constexpr const char* kCheckpointPrefix = "checkpoint-";
constexpr const char* kCheckpointSuffix = ".ckpt";

std::string CheckpointName(Lsn wal_lsn) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%020" PRIu64 "%s", kCheckpointPrefix,
                wal_lsn, kCheckpointSuffix);
  return buf;
}

/// One metadata-table row as captured from the replicated store.
struct MetadataRow {
  std::string key;
  std::string value;
  common::SimTime timestamp = 0;
  bool tombstone = false;
};

std::vector<MetadataRow> CaptureMetadata(const store::ReplicatedStore& db,
                                         store::ReplicaId dc) {
  std::vector<MetadataRow> rows;
  const store::KvTable* table = db.Table(dc, "metadata");
  if (table == nullptr) return rows;
  for (std::size_t shard = 0; shard < store::KvTable::kShards; ++shard) {
    table->VisitShard(shard,
                      [&](const std::string& key, const store::Version& v) {
                        rows.push_back({key, v.value, v.timestamp,
                                        v.tombstone});
                      });
  }
  // Shard iteration order is hash order; sort for a deterministic file.
  std::sort(rows.begin(), rows.end(),
            [](const MetadataRow& a, const MetadataRow& b) {
              return a.key < b.key;
            });
  return rows;
}

}  // namespace

common::Result<CheckpointInfo> CheckpointWriter::Write(
    const EngineStateRefs& state, Lsn wal_lsn, common::SimTime now) const {
  if (state.db == nullptr || state.stats == nullptr) {
    return common::Status::InvalidArgument(
        "checkpoint requires a replicated store and a stats db");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return common::Status::Internal("cannot create checkpoint dir " + dir_ +
                                    ": " + ec.message());
  }

  std::string body;
  common::BinaryWriter w(&body);
  w.PutU32(kCheckpointMagic);
  w.PutU32(kCheckpointVersion);
  w.PutU64(wal_lsn);
  w.PutI64(now);

  // Section 1: the metadata table.  Tombstoned rows are simply absent
  // (VisitShard skips them): the WAL is truncated at the checkpoint, so no
  // earlier record survives that could resurrect a deleted object.  The
  // tombstone flag stays in the format for loaders of future snapshots
  // that may capture them.
  const auto rows = CaptureMetadata(*state.db, state.dc);
  w.PutU32(static_cast<std::uint32_t>(rows.size()));
  for (const auto& row : rows) {
    w.PutString(row.key);
    w.PutString(row.value);
    w.PutI64(row.timestamp);
    w.PutU8(row.tombstone ? 1 : 0);
  }

  // Section 2: the statistics database.
  state.stats->SerializeTo(w);

  // Section 3: per-provider billing meters (absent registry => zero).
  if (state.registry != nullptr) {
    const auto specs = state.registry->Specs();
    w.PutU32(static_cast<std::uint32_t>(specs.size()));
    for (const auto& spec : specs) {
      auto* store = state.registry->Find(spec.id);
      const provider::UsageMeterSnapshot snap =
          store != nullptr ? store->meter().Snapshot()
                           : provider::UsageMeterSnapshot{};
      w.PutString(spec.id);
      w.PutI64(snap.period_start);
      w.PutI64(snap.last_storage_change);
      w.PutU64(snap.stored);
      w.PutDouble(snap.period_byte_hours);
      w.PutDouble(snap.total_byte_hours);
      w.PutDouble(snap.period.storage_gb_hours);
      w.PutDouble(snap.period.bw_in_gb);
      w.PutDouble(snap.period.bw_out_gb);
      w.PutDouble(snap.period.ops);
      w.PutDouble(snap.totals.storage_gb_hours);
      w.PutDouble(snap.totals.bw_in_gb);
      w.PutDouble(snap.totals.bw_out_gb);
      w.PutDouble(snap.totals.ops);
    }
  } else {
    w.PutU32(0);
  }

  // Section 4 (v2): the dedup index — payloads AND refcounts.  A checkpoint
  // is a consistent cut, so unlike the WAL (which never journals refcounts)
  // the counts here are authoritative for rows the checkpoint covers;
  // post-replay recovery still rebuilds them when WAL records follow.
  if (state.filter_index != nullptr) {
    state.filter_index->SerializeTo(w);
  } else {
    w.PutU32(0);  // empty index in the same encoding
  }

  // Integrity trailer over everything above.
  const common::Sha256Digest digest = common::Sha256::Hash(body);
  body.append(reinterpret_cast<const char*>(digest.data()), digest.size());

  const fs::path final_path = fs::path(dir_) / CheckpointName(wal_lsn);
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    if (!out) {
      return common::Status::Internal("cannot write checkpoint " +
                                      tmp_path.string());
    }
  }
  // Crash-safe publish (durability/fsync.h): the published name can never
  // point at unflushed bytes after a power loss — the WAL behind this
  // snapshot is truncated on the strength of it.
  if (auto s = PublishAtomically(tmp_path.string(), final_path.string());
      !s.ok()) {
    return s;
  }
  SCALIA_LOG(common::LogLevel::kInfo, "checkpoint")
      << "wrote " << final_path.filename().string() << " (" << body.size()
      << " bytes, " << rows.size() << " metadata rows, lsn " << wal_lsn << ")";
  return CheckpointInfo{final_path.string(), wal_lsn, now};
}

std::optional<Lsn> CheckpointLsnFromPath(const std::string& path) {
  const std::string name = fs::path(path).filename().string();
  if (name.rfind(kCheckpointPrefix, 0) != 0) return std::nullopt;
  Lsn lsn = 0;
  if (std::sscanf(name.c_str() + std::strlen(kCheckpointPrefix),
                  "%" SCNu64, &lsn) != 1) {
    return std::nullopt;
  }
  return lsn;
}

std::vector<std::string> CheckpointLoader::List() const {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kCheckpointPrefix, 0) == 0 &&
        name.size() > std::strlen(kCheckpointSuffix) &&
        name.substr(name.size() - std::strlen(kCheckpointSuffix)) ==
            kCheckpointSuffix) {
      files.push_back(entry.path().string());
    }
  }
  // Names embed the zero-padded LSN, so lexicographic descending order is
  // newest first.
  std::sort(files.rbegin(), files.rend());
  return files;
}

common::Result<CheckpointInfo> CheckpointLoader::LoadInto(
    const std::string& path, const EngineStateRefs& state) const {
  if (state.db == nullptr || state.stats == nullptr) {
    return common::Status::InvalidArgument(
        "recovery requires a replicated store and a stats db");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::Status::NotFound("cannot open checkpoint " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  constexpr std::size_t kDigestBytes = 32;
  if (bytes.size() < kDigestBytes + 24) {
    return common::Status::InvalidArgument("checkpoint too small: " + path);
  }
  const std::string_view body(bytes.data(), bytes.size() - kDigestBytes);
  common::Sha256Digest want;
  std::memcpy(want.data(), bytes.data() + body.size(), kDigestBytes);
  if (!common::DigestEquals(common::Sha256::Hash(body), want)) {
    return common::Status::InvalidArgument("checkpoint digest mismatch: " +
                                           path);
  }

  common::BinaryReader r(body);
  if (r.U32() != kCheckpointMagic) {
    return common::Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  const std::uint32_t version = r.U32();
  if (version < 1 || version > kCheckpointVersion) {
    return common::Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version));
  }
  CheckpointInfo info;
  info.path = path;
  info.wal_lsn = r.U64();
  info.created_at = r.I64();

  // Section 1: metadata rows.
  const std::uint32_t num_rows = r.U32();
  for (std::uint32_t i = 0; i < num_rows; ++i) {
    const std::string key = r.String();
    const std::string value = r.String();
    const common::SimTime timestamp = r.I64();
    const bool tombstone = r.U8() != 0;
    if (!r.ok()) {
      return common::Status::InvalidArgument("truncated checkpoint: " + path);
    }
    const auto applied =
        tombstone
            ? state.db->Delete(state.dc, "metadata", key, timestamp)
            : state.db->Put(state.dc, "metadata", key, value, timestamp);
    if (!applied.ok()) return applied.status();
  }

  // Section 2: the statistics database.  v1 predates the per-class
  // reduction sums; its layout decodes without them.
  if (auto s = state.stats->RestoreFrom(r, /*with_reduction=*/version >= 2);
      !s.ok()) {
    return s;
  }

  // Section 3: billing meters (ignored when no registry was supplied —
  // e.g. when the simulated providers, and thus their meters, survived).
  const std::uint32_t num_meters = r.U32();
  for (std::uint32_t i = 0; i < num_meters; ++i) {
    const std::string id = r.String();
    provider::UsageMeterSnapshot snap;
    snap.period_start = r.I64();
    snap.last_storage_change = r.I64();
    snap.stored = r.U64();
    snap.period_byte_hours = r.Double();
    snap.total_byte_hours = r.Double();
    snap.period.storage_gb_hours = r.Double();
    snap.period.bw_in_gb = r.Double();
    snap.period.bw_out_gb = r.Double();
    snap.period.ops = r.Double();
    snap.totals.storage_gb_hours = r.Double();
    snap.totals.bw_in_gb = r.Double();
    snap.totals.bw_out_gb = r.Double();
    snap.totals.ops = r.Double();
    if (!r.ok()) {
      return common::Status::InvalidArgument("truncated checkpoint: " + path);
    }
    if (state.registry != nullptr) {
      if (auto* store = state.registry->Find(id)) {
        store->meter().Restore(snap);
      }
    }
  }

  // Section 4 (v2): the dedup index.  Without an index to restore into the
  // section is left unconsumed — it is the last section before the (already
  // verified) digest trailer, so nothing downstream misparses.
  if (version >= 2 && state.filter_index != nullptr) {
    if (auto s = state.filter_index->RestoreFrom(r); !s.ok()) return s;
  }
  return info;
}

}  // namespace scalia::durability
