// Crash recovery: latest checkpoint + WAL replay.
//
// Recovery restores the newest checkpoint whose SHA-256 trailer verifies
// (falling back to older ones past corrupted files), then replays every WAL
// record with an LSN beyond the checkpoint, re-applying metadata upserts,
// tombstones, migrations, repairs and per-period statistics appends.  The
// returned RecoveryReport quantifies the outcome: records replayed, bytes
// discarded at the torn tail, and the age of the checkpoint the warm state
// came from.
#pragma once

#include <optional>
#include <string>

#include "durability/checkpoint.h"
#include "durability/wal.h"

namespace scalia::durability {

struct RecoveryReport {
  /// True when a verified checkpoint was restored (false on a cold start —
  /// valid when the deployment is younger than its first checkpoint).
  bool checkpoint_loaded = false;
  std::string checkpoint_path;
  Lsn checkpoint_lsn = 0;
  common::SimTime checkpoint_created_at = 0;
  /// now - checkpoint_created_at (0 without a checkpoint).
  common::Duration checkpoint_age = 0;
  /// Corrupt checkpoint files skipped before one verified.
  std::uint64_t checkpoints_rejected = 0;
  std::uint64_t records_replayed = 0;
  /// Records ignored: already covered by the checkpoint, or unknown kind.
  std::uint64_t records_skipped = 0;
  /// Records refused because their header named a different engine shard
  /// than this journal stream belongs to (a segment file moved between
  /// shard directories); only counted when shard enforcement is on.
  std::uint64_t records_wrong_shard = 0;
  /// Bytes dropped at the WAL's torn tail.
  common::Bytes wal_bytes_discarded = 0;
  Lsn wal_last_lsn = 0;
  /// Dedup chunks dropped by the post-replay refcount rebuild because no
  /// live metadata row references them — the expected signature of a crash
  /// between a kFilterChunk append and its referencing upsert.
  std::uint64_t dedup_chunks_swept = 0;
};

class RecoveryManager {
 public:
  /// `dir` is the durability root: checkpoints live in it, WAL segments in
  /// `dir`/wal (the DurabilityManager layout).
  explicit RecoveryManager(std::string dir);

  /// Restores `state` to latest-checkpoint-plus-WAL-replay.  Never fails on
  /// a torn WAL tail (that is the expected crash signature); fails only on
  /// unreadable directories or when a record cannot be applied.  When
  /// `expected_shard` is set, records whose v3 header names a different
  /// engine shard are skipped (counted in records_wrong_shard) instead of
  /// applied — the guard against a WAL segment file landing in the wrong
  /// shard's stream directory.
  common::Result<RecoveryReport> Recover(
      const EngineStateRefs& state, common::SimTime now,
      std::optional<std::uint32_t> expected_shard = std::nullopt) const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::string wal_dir() const;

 private:
  std::string dir_;
};

}  // namespace scalia::durability
