// Segmented, CRC32-framed write-ahead log.
//
// The engine journals every committed metadata mutation here before it
// performs destructive side effects (old-chunk deletion), so a process death
// never silently resets the adaptive state the paper's scheme depends on.
//
// Layout: a directory of segment files "wal-<first_lsn>.seg", each a
// sequence of frames
//
//   [magic u32][lsn u64][payload_len u32][crc32 u32][payload bytes]
//
// where the CRC covers lsn, payload_len and the payload.  Replay scans
// segments in LSN order and stops at the first bad frame: an incomplete or
// checksum-failing tail is a *torn write* (the normal aftermath of a crash)
// and is reported as discarded bytes, never an error.
//
// Appends group-commit: concurrent Append() calls enqueue onto a
// common::BoundedQueue drained by a committer task on a common::ThreadPool;
// the committer batches whatever is queued, writes one contiguous run of
// frames, issues a single fsync, and only then releases the blocked
// appenders.  Without a pool, appends are synchronous (one fsync each).
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace scalia::durability {

/// Log sequence number: 1-based, strictly increasing across segments.
using Lsn = std::uint64_t;

struct WalConfig {
  std::string dir;
  /// Roll to a new segment once the active one reaches this size.
  common::Bytes segment_bytes = 4ull * 1024 * 1024;
  /// Pending-append queue capacity (back-pressure bound).
  std::size_t queue_capacity = 1024;
  /// Max records folded into one group commit.
  std::size_t group_commit_max = 64;
  /// fsync after every commit batch.  Tests may disable for speed; the
  /// production default is on.
  bool sync_on_commit = true;
};

struct WalReplayReport {
  std::uint64_t records = 0;
  std::uint64_t segments = 0;
  /// Bytes dropped at the torn tail (and anything unreadable after it).
  common::Bytes discarded_bytes = 0;
  /// Highest LSN successfully replayed (0 when the log is empty).
  Lsn last_lsn = 0;
  /// Where the torn tail starts: the offending segment (empty when the log
  /// is clean), the count of good bytes before the tear, and any later
  /// segments that are untrusted because they follow it.
  std::string torn_segment;
  common::Bytes torn_offset = 0;
  std::vector<std::string> untrusted_segments;
};

class Wal;

/// Batched durability acknowledgements — the group-commit ack cohort.
///
/// While a cohort is alive on a thread, every Wal::Append() made *from that
/// thread* (to any Wal) writes its frame but defers the fsync: the append
/// returns immediately with its LSN, enrolling the touched Wal in the
/// cohort.  Commit() then fsyncs each touched Wal exactly once, making the
/// whole cohort durable together — K pipelined PUTs handled in one event-
/// loop tick cost one fsync, not K.
///
/// The contract the serving path must honour: a deferred append is NOT
/// durable until Commit() returns OK, so nothing may be acknowledged to a
/// client before then (the per-shard event loop holds responses in its out
/// queues and flushes them only after the tick's cohort commits).  On a
/// Commit() failure the records may be torn; the Wal latches itself failed
/// (like any sync failure) and the caller must drop the unacknowledged
/// responses.
///
/// Cohorts are strictly thread-local and may nest (the inner cohort wins
/// until destroyed).  The destructor commits a still-open cohort as a
/// safety net; error-aware callers invoke Commit() themselves.
class AckCohort {
 public:
  AckCohort();
  ~AckCohort();

  AckCohort(const AckCohort&) = delete;
  AckCohort& operator=(const AckCohort&) = delete;

  /// One fsync per touched Wal; idempotent (the second call is a no-op
  /// unless new appends joined in between).
  common::Status Commit();

  /// Appends deferred since construction (or the last Commit()).
  [[nodiscard]] std::size_t deferred_records() const noexcept {
    return deferred_;
  }

  /// The innermost cohort open on this thread, or nullptr.
  [[nodiscard]] static AckCohort* Current() noexcept;

 private:
  friend class Wal;
  void Enroll(Wal* wal);

  std::vector<Wal*> touched_;
  std::size_t deferred_ = 0;
  AckCohort* outer_ = nullptr;
};

class Wal {
 public:
  /// Frame header: magic + lsn + payload_len + crc32.
  static constexpr std::size_t kFrameHeaderBytes = 4 + 8 + 4 + 4;
  static constexpr std::uint32_t kFrameMagic = 0x314C4157;  // "WAL1"

  /// Opens (creating if needed) the log in `config.dir`.  Existing segments
  /// are scanned to find the next LSN, and a torn tail from a previous
  /// incarnation is truncated away (were it left in place, a later replay
  /// would stop at the tear and discard every record appended after it).
  /// The pre-truncation scan — including the discarded byte count — stays
  /// available via open_report().  `commit_pool` hosts the group-commit
  /// loop; pass nullptr for synchronous appends.  The pool must outlive
  /// Close()/destruction.
  static common::Result<std::unique_ptr<Wal>> Open(
      WalConfig config, common::ThreadPool* commit_pool = nullptr);

  /// The scan performed by Open(), before the torn tail was truncated.
  [[nodiscard]] const WalReplayReport& open_report() const noexcept {
    return open_report_;
  }

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record; blocks until it is durable (group-committed with
  /// any concurrent appends).  Returns the record's LSN.  When an AckCohort
  /// is open on the calling thread, the frame is written but the fsync is
  /// deferred to the cohort's Commit() — the record is then durable only
  /// once that commit succeeds.
  common::Result<Lsn> Append(std::string payload);

  /// LSN of the last durable record (0 when none).
  [[nodiscard]] Lsn last_lsn() const;

  /// Actual ::fsync calls issued so far (group commit and cohort batching
  /// both show up here: K acknowledged appends per fsync, not 1).
  [[nodiscard]] std::uint64_t fsyncs() const noexcept {
    return fsyncs_.load(std::memory_order_relaxed);
  }

  /// Closes the active segment and starts a new one; the old segment
  /// becomes eligible for TruncateThrough.  Called before a checkpoint.
  common::Status RollSegment();

  /// Raises the next LSN to at least `next_min` (no-op when already
  /// there).  Recovery calls this with checkpoint_lsn + 1 so freshly
  /// journaled records can never be numbered at or below the checkpoint —
  /// even if the log directory was wiped while checkpoints survived.
  common::Status EnsureNextLsnAtLeast(Lsn next_min);

  /// Deletes whole segments whose records all have LSN <= `through` (the
  /// checkpoint's LSN).  The active segment is never deleted.
  common::Status TruncateThrough(Lsn through);

  /// Stops the committer and closes the active segment.  Idempotent.
  void Close();

  /// Scans the log in `dir`, invoking `fn(lsn, payload)` per good record in
  /// LSN order.  Detects and quantifies the torn tail.  `fn` may be empty.
  static common::Result<WalReplayReport> Replay(
      const std::string& dir,
      const std::function<void(Lsn, std::string_view)>& fn);

  [[nodiscard]] const WalConfig& config() const noexcept { return config_; }

 private:
  friend class AckCohort;
  struct PendingAppend;

  explicit Wal(WalConfig config);

  common::Status OpenSegmentLocked(Lsn first_lsn) REQUIRES(io_mu_);
  common::Status WriteFrameLocked(Lsn lsn, std::string_view payload)
      REQUIRES(io_mu_);
  common::Status SyncLocked() REQUIRES(io_mu_);
  void CommitterLoop();
  common::Result<Lsn> AppendSync(std::string payload);
  /// Cohort path: writes the frame, defers the fsync to SyncCohort().
  common::Result<Lsn> AppendDeferred(std::string payload, AckCohort* cohort);
  /// One fsync covering every deferred frame (AckCohort::Commit).
  common::Status SyncCohort();

  WalConfig config_;
  WalReplayReport open_report_;
  common::ThreadPool* commit_pool_ = nullptr;
  std::unique_ptr<common::BoundedQueue<std::shared_ptr<PendingAppend>>> queue_;
  std::future<void> committer_done_;

  mutable common::Mutex io_mu_;  // guards the active segment + next_lsn_
  std::FILE* active_ GUARDED_BY(io_mu_) = nullptr;
  std::string active_path_ GUARDED_BY(io_mu_);
  common::Bytes active_bytes_ GUARDED_BY(io_mu_) = 0;
  Lsn next_lsn_ GUARDED_BY(io_mu_) = 1;
  std::atomic<std::uint64_t> fsyncs_{0};
  bool closed_ GUARDED_BY(io_mu_) = false;
  /// Latched on the first frame-write/sync error: a torn frame mid-segment
  /// would shadow every later append at replay, so the log refuses further
  /// appends until reopened (which truncates the tear).
  bool failed_ GUARDED_BY(io_mu_) = false;
};

}  // namespace scalia::durability
