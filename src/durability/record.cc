#include "durability/record.h"

#include "common/binary_codec.h"

namespace scalia::durability {

namespace {
// Bumped when the record layout changes; replay skips newer versions rather
// than misparsing them.  v2 (PR 4) appended the committed row version's
// vector clock so replay is causal; v3 (PR 5) appended the engine shard id
// for per-shard WAL streams.  v1/v2 records still decode (empty clock,
// shard 0).
constexpr std::uint8_t kRecordVersion = 3;
}  // namespace

std::string WalRecord::Encode() const {
  std::string out;
  common::BinaryWriter w(&out);
  w.PutU8(kRecordVersion);
  w.PutU8(static_cast<std::uint8_t>(kind));
  w.PutI64(at);
  w.PutU64(aux);
  w.PutString(row_key);
  w.PutString(payload);
  w.PutU32(static_cast<std::uint32_t>(clock.entries().size()));
  for (const auto& [replica, value] : clock.entries()) {
    w.PutU32(replica);
    w.PutU64(value);
  }
  w.PutU32(shard);
  return out;
}

common::Result<WalRecord> WalRecord::Decode(std::string_view bytes) {
  common::BinaryReader r(bytes);
  const std::uint8_t version = r.U8();
  if (version == 0 || version > kRecordVersion) {
    return common::Status::InvalidArgument(
        "unsupported WAL record version " + std::to_string(version));
  }
  WalRecord rec;
  rec.kind = static_cast<WalRecordKind>(r.U8());
  rec.at = r.I64();
  rec.aux = r.U64();
  rec.row_key = r.String();
  rec.payload = r.String();
  if (version >= 2) {
    const std::uint32_t entries = r.U32();
    for (std::uint32_t i = 0; i < entries && r.ok(); ++i) {
      const std::uint32_t replica = r.U32();
      const std::uint64_t value = r.U64();
      rec.clock.Set(replica, value);
    }
  }
  if (version >= 3) {
    rec.shard = r.U32();
  }
  if (!r.ok()) {
    return common::Status::InvalidArgument("truncated WAL record");
  }
  return rec;
}

}  // namespace scalia::durability
