// The engine's journaling facade over the WAL.
//
// Engines call these helpers at each commit point (right after the
// replicated-store write succeeds, and *before* destructive side effects
// such as old-chunk deletion), so the log is a faithful redo stream of
// engine-state mutations.  The facade owns no state beyond the Wal pointer;
// a null Wal turns every call into a no-op, which keeps durability strictly
// opt-in for simulations that do not want disk IO.
#pragma once

#include <string>

#include "durability/record.h"
#include "durability/wal.h"

namespace scalia::durability {

class Journal {
 public:
  /// `shard` is stamped into every record header (format v3): a
  /// ShardedEngine gives shard k's engine a journal with shard id k over
  /// shard k's own WAL stream; unsharded deployments keep the default 0.
  explicit Journal(Wal* wal, std::uint32_t shard = 0)
      : wal_(wal), shard_(shard) {}

  [[nodiscard]] Wal* wal() const noexcept { return wal_; }
  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }

  common::Status Append(WalRecord record) {
    if (wal_ == nullptr) return common::Status::Ok();
    record.shard = shard_;
    auto lsn = wal_->Append(record.Encode());
    return lsn.ok() ? common::Status::Ok() : lsn.status();
  }

  /// `clock` is the committed row version's vector clock: replay applies
  /// the record causally with it, so two commits racing to the WAL in
  /// either append order still converge on the causally-fresher one.
  common::Status LogUpsert(const std::string& row_key,
                           std::string serialized_meta, common::SimTime at,
                           store::VectorClock clock) {
    return Append({.kind = WalRecordKind::kUpsert,
                   .at = at,
                   .row_key = row_key,
                   .aux = 0,
                   .payload = std::move(serialized_meta),
                   .clock = std::move(clock)});
  }

  common::Status LogDelete(const std::string& row_key, common::SimTime at,
                           store::VectorClock clock) {
    return Append({.kind = WalRecordKind::kDelete,
                   .at = at,
                   .row_key = row_key,
                   .aux = 0,
                   .payload = {},
                   .clock = std::move(clock)});
  }

  common::Status LogMigrate(const std::string& row_key,
                            std::string serialized_meta, common::SimTime at,
                            store::VectorClock clock) {
    return Append({.kind = WalRecordKind::kMigrate,
                   .at = at,
                   .row_key = row_key,
                   .aux = 0,
                   .payload = std::move(serialized_meta),
                   .clock = std::move(clock)});
  }

  /// A migration/repair lost its CAS commit to a concurrent write: the
  /// staged placement (`staged_meta`) was never applied and its chunks are
  /// garbage.  Logged *before* the staged-chunk GC so a crash between abort
  /// and GC leaves a record of what to sweep, and so replay knows this
  /// placement must never reach the metadata table.
  common::Status LogMigrateAbort(const std::string& row_key,
                                 std::string staged_meta, common::SimTime at) {
    return Append({.kind = WalRecordKind::kMigrateAbort,
                   .at = at,
                   .row_key = row_key,
                   .aux = 0,
                   .payload = std::move(staged_meta),
                   .clock = {}});
  }

  common::Status LogRepair(const std::string& row_key,
                           std::string serialized_meta, common::SimTime at,
                           store::VectorClock clock) {
    return Append({.kind = WalRecordKind::kRepair,
                   .at = at,
                   .row_key = row_key,
                   .aux = 0,
                   .payload = std::move(serialized_meta),
                   .clock = std::move(clock)});
  }

  /// The filter pipeline admitted `hash_hex` as a brand-new dedup chunk with
  /// raw bytes `payload`.  Must be logged BEFORE the metadata upsert that
  /// references the chunk: the WAL's suffix-loss failure mode then only ever
  /// drops a reference to a surviving chunk, never a chunk under a surviving
  /// reference (refcounts themselves are not journaled — recovery rebuilds
  /// them from the live metadata table's dedup_refs).
  common::Status LogFilterChunk(const std::string& hash_hex,
                                std::string payload, common::SimTime at) {
    return Append({.kind = WalRecordKind::kFilterChunk,
                   .at = at,
                   .row_key = hash_hex,
                   .aux = 0,
                   .payload = std::move(payload),
                   .clock = {}});
  }

  common::Status LogPeriodStats(const std::string& row_key,
                                std::uint64_t period, std::string stats_csv,
                                common::SimTime at) {
    return Append({.kind = WalRecordKind::kPeriodStats,
                   .at = at,
                   .row_key = row_key,
                   .aux = period,
                   .payload = std::move(stats_csv),
                   .clock = {}});
  }

 private:
  Wal* wal_;
  std::uint32_t shard_;
};

}  // namespace scalia::durability
