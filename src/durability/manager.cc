#include "durability/manager.h"

#include <filesystem>

namespace scalia::durability {

DurabilityManager::DurabilityManager(DurabilityConfig config,
                                     EngineStateRefs state)
    : config_(std::move(config)), state_(state) {}

DurabilityManager::~DurabilityManager() {
  if (wal_ != nullptr) wal_->Close();
}

common::Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    DurabilityConfig config, EngineStateRefs state) {
  if (config.dir.empty()) {
    return common::Status::InvalidArgument("DurabilityConfig.dir is empty");
  }
  std::unique_ptr<DurabilityManager> mgr(
      new DurabilityManager(std::move(config), state));
  if (mgr->config_.group_commit) {
    // A dedicated pool: the committer loop parks on the queue for the
    // manager's whole lifetime, which must not starve a shared pool.
    mgr->commit_pool_ = std::make_unique<common::ThreadPool>(1);
  }
  WalConfig wal_config = mgr->config_.wal;
  wal_config.dir =
      (std::filesystem::path(mgr->config_.dir) / "wal").string();
  auto wal = Wal::Open(std::move(wal_config), mgr->commit_pool_.get());
  if (!wal.ok()) return wal.status();
  mgr->wal_ = std::move(*wal);
  mgr->journal_ = std::make_unique<Journal>(mgr->wal_.get(),
                                            mgr->config_.shard.value_or(0));
  mgr->checkpoint_writer_ = std::make_unique<CheckpointWriter>(mgr->config_.dir);
  return mgr;
}

common::Result<RecoveryReport> DurabilityManager::Recover(common::SimTime now) {
  const RecoveryManager recovery(config_.dir);
  auto report = recovery.Recover(state_, now, config_.shard);
  if (!report.ok()) return report;
  // Wal::Open() already truncated the torn tail off disk; surface what it
  // dropped, since the post-truncation replay above saw a clean log.
  report->wal_bytes_discarded += wal_->open_report().discarded_bytes;
  if (report->checkpoint_loaded) {
    last_checkpoint_at_ = report->checkpoint_created_at;
    // New records must be numbered past the checkpoint, or the next
    // recovery would skip them as already-covered.
    if (auto s = wal_->EnsureNextLsnAtLeast(report->checkpoint_lsn + 1);
        !s.ok()) {
      return s;
    }
  }
  return report;
}

common::Result<bool> DurabilityManager::MaybeCheckpoint(common::SimTime now) {
  // Pure cadence from the epoch (or from the recovered checkpoint): the
  // first checkpoint lands one full period in, not on the first call.
  if (now - last_checkpoint_at_ < config_.checkpoint_every) return false;
  if (auto s = Checkpoint(now); !s.ok()) return s;
  return true;
}

common::Status DurabilityManager::Checkpoint(common::SimTime now) {
  // Roll first: the snapshot then covers every record in the closed
  // segments, and the whole pre-checkpoint log becomes truncatable.
  if (auto s = wal_->RollSegment(); !s.ok()) return s;
  const Lsn lsn = wal_->last_lsn();
  auto info = checkpoint_writer_->Write(state_, lsn, now);
  if (!info.ok()) return info.status();
  last_checkpoint_at_ = now;
  // Keep the newest two checkpoints: one live, one fallback in case the
  // live one turns out corrupt at the next recovery.
  const auto files = CheckpointLoader(config_.dir).List();
  for (std::size_t i = 2; i < files.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(files[i], ec);
  }
  // Truncate only through the *fallback* (second-newest) checkpoint: the
  // records between the two checkpoints are exactly what a fall-back
  // recovery replays on top of the older snapshot.  Truncating through the
  // snapshot just written would make its retained fallback useless.
  if (files.size() >= 2) {
    if (const auto fallback_lsn = CheckpointLsnFromPath(files[1])) {
      return wal_->TruncateThrough(*fallback_lsn);
    }
  }
  return common::Status::Ok();
}

}  // namespace scalia::durability
