#include "durability/fsync.h"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>

namespace scalia::durability {

common::Status FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return common::Status::Internal("fsync failed on " + what);
  }
  return common::Status::Ok();
}

common::Status FsyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return common::Status::Internal("cannot open " + path + " for fsync");
  }
  auto status = FsyncFd(fd, path);
  ::close(fd);
  return status;
}

common::Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return common::Status::Internal("cannot open dir " + dir + " for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return common::Status::Internal("fsync failed on dir " + dir);
  }
  return common::Status::Ok();
}

common::Status PublishAtomically(const std::string& tmp,
                                 const std::string& final_path) {
  if (auto s = FsyncFile(tmp); !s.ok()) return s;
  std::error_code ec;
  std::filesystem::rename(tmp, final_path, ec);
  if (ec) {
    return common::Status::Internal("cannot publish " + final_path + ": " +
                                    ec.message());
  }
  return FsyncDir(
      std::filesystem::path(final_path).parent_path().string());
}

}  // namespace scalia::durability
