#include "durability/sharded_manager.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "durability/fsync.h"

namespace scalia::durability {

namespace {

constexpr std::string_view kManifestMagic = "scalia-durability-manifest/1";

/// Parses "<magic>\nshards=<N>\n..." and returns N; errors on anything else.
common::Result<std::size_t> ReadManifestShards(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return common::Status::Internal("cannot read manifest " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    return common::Status::InvalidArgument(
        "bad manifest magic in " + path + ": \"" + line + "\"");
  }
  while (std::getline(in, line)) {
    if (line.rfind("shards=", 0) == 0) {
      const std::string value = line.substr(7);
      std::size_t shards = 0;
      std::istringstream(value) >> shards;
      if (shards == 0) {
        return common::Status::InvalidArgument(
            "bad shard count in manifest " + path + ": \"" + value + "\"");
      }
      return shards;
    }
  }
  return common::Status::InvalidArgument("manifest " + path +
                                         " lacks a shards= line");
}

common::Status WriteManifest(const std::string& path, std::size_t shards) {
  // Crash-safe publish (durability/fsync.h): a power loss at any point
  // leaves either no MANIFEST (next Open rewrites it) or a complete one,
  // never a torn file that would make the directory permanently refuse to
  // open.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return common::Status::Internal("cannot write manifest " + tmp);
    }
    out << kManifestMagic << "\n"
        << "shards=" << shards << "\n"
        << "record_format=3\n";
    if (!out.flush()) {
      return common::Status::Internal("cannot flush manifest " + tmp);
    }
  }
  return PublishAtomically(tmp, path);
}

}  // namespace

std::string ShardedDurabilityManager::ManifestPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "MANIFEST").string();
}

std::size_t ShardedDurabilityManager::PinnedShards(const std::string& dir) {
  const std::string manifest = ManifestPath(dir);
  if (!std::filesystem::exists(manifest)) return 0;
  auto pinned = ReadManifestShards(manifest);
  return pinned.ok() ? *pinned : 0;
}

common::Result<std::unique_ptr<ShardedDurabilityManager>>
ShardedDurabilityManager::Open(ShardedDurabilityConfig config,
                               std::vector<EngineStateRefs> state) {
  if (config.dir.empty()) {
    return common::Status::InvalidArgument(
        "ShardedDurabilityConfig.dir is empty");
  }
  if (config.num_shards == 0) {
    return common::Status::InvalidArgument("num_shards must be >= 1");
  }
  if (state.size() != config.num_shards) {
    return common::Status::InvalidArgument(
        "expected " + std::to_string(config.num_shards) +
        " EngineStateRefs, got " + std::to_string(state.size()));
  }
  std::error_code ec;
  std::filesystem::create_directories(config.dir, ec);
  if (ec) {
    return common::Status::Internal("cannot create " + config.dir + ": " +
                                    ec.message());
  }

  // The manifest pins the shard count: key routing is hash(row_key) mod N,
  // so reopening with a different N would strand objects in shards that no
  // longer receive their keys.
  const std::string manifest = ManifestPath(config.dir);
  if (std::filesystem::exists(manifest)) {
    auto pinned = ReadManifestShards(manifest);
    if (!pinned.ok()) return pinned.status();
    if (*pinned != config.num_shards) {
      return common::Status::FailedPrecondition(
          "durability dir " + config.dir + " was written with " +
          std::to_string(*pinned) + " shard(s); refusing to open with " +
          std::to_string(config.num_shards) +
          " (key routing would change and strand objects)");
    }
  } else {
    if (auto s = WriteManifest(manifest, config.num_shards); !s.ok()) {
      return s;
    }
  }

  std::unique_ptr<ShardedDurabilityManager> mgr(
      new ShardedDurabilityManager(std::move(config)));
  mgr->shards_.reserve(mgr->config_.num_shards);
  for (std::size_t k = 0; k < mgr->config_.num_shards; ++k) {
    DurabilityConfig per_shard;
    per_shard.dir = (std::filesystem::path(mgr->config_.dir) /
                     ("shard-" + std::to_string(k)))
                        .string();
    per_shard.wal = mgr->config_.wal;
    per_shard.checkpoint_every = mgr->config_.checkpoint_every;
    per_shard.group_commit = mgr->config_.group_commit;
    per_shard.shard = static_cast<std::uint32_t>(k);
    auto shard_mgr = DurabilityManager::Open(std::move(per_shard), state[k]);
    if (!shard_mgr.ok()) return shard_mgr.status();
    mgr->shards_.push_back(std::move(*shard_mgr));
  }
  return mgr;
}

common::Result<ShardedRecoveryReport> ShardedDurabilityManager::Recover(
    common::SimTime now, common::ThreadPool* pool) {
  ShardedRecoveryReport report;
  report.shards = shards_.size();
  report.per_shard.resize(shards_.size());
  std::vector<common::Status> failures(shards_.size(), common::Status::Ok());

  // Shard streams are disjoint (each record names its shard, each shard
  // owns its keys), so the replays are embarrassingly parallel.
  auto recover_shard = [&](std::size_t k) {
    auto shard_report = shards_[k]->Recover(now);
    if (shard_report.ok()) {
      report.per_shard[k] = *shard_report;
    } else {
      failures[k] = shard_report.status();
    }
  };
  if (pool != nullptr && shards_.size() > 1) {
    pool->ParallelFor(shards_.size(), recover_shard);
  } else {
    for (std::size_t k = 0; k < shards_.size(); ++k) recover_shard(k);
  }

  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (!failures[k].ok()) return failures[k];
    const RecoveryReport& r = report.per_shard[k];
    if (r.checkpoint_loaded) ++report.checkpoints_loaded;
    report.records_replayed += r.records_replayed;
    report.records_skipped += r.records_skipped;
    report.records_wrong_shard += r.records_wrong_shard;
    report.wal_bytes_discarded += r.wal_bytes_discarded;
  }
  return report;
}

std::vector<Journal*> ShardedDurabilityManager::journals() const {
  std::vector<Journal*> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->journal());
  return out;
}

common::Result<std::size_t> ShardedDurabilityManager::MaybeCheckpoint(
    common::SimTime now) {
  std::size_t written = 0;
  for (auto& shard : shards_) {
    auto wrote = shard->MaybeCheckpoint(now);
    if (!wrote.ok()) return wrote.status();
    if (*wrote) ++written;
  }
  return written;
}

common::Status ShardedDurabilityManager::Checkpoint(common::SimTime now) {
  for (auto& shard : shards_) {
    if (auto s = shard->Checkpoint(now); !s.ok()) return s;
  }
  return common::Status::Ok();
}

}  // namespace scalia::durability
