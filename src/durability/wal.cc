#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/binary_codec.h"
#include "durability/fsync.h"
#include "common/crc32.h"
#include "common/log.h"

namespace scalia::durability {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSegmentPrefix = "wal-";
constexpr const char* kSegmentSuffix = ".seg";

std::string SegmentName(Lsn first_lsn) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%020" PRIu64 "%s", kSegmentPrefix,
                first_lsn, kSegmentSuffix);
  return buf;
}

/// Segment files in `dir`, sorted by first LSN (encoded in the name).
common::Result<std::vector<std::pair<Lsn, fs::path>>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<Lsn, fs::path>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) != 0 ||
        name.size() <= std::strlen(kSegmentPrefix) +
                           std::strlen(kSegmentSuffix) ||
        name.substr(name.size() - std::strlen(kSegmentSuffix)) !=
            kSegmentSuffix) {
      continue;
    }
    const std::string digits =
        name.substr(std::strlen(kSegmentPrefix),
                    name.size() - std::strlen(kSegmentPrefix) -
                        std::strlen(kSegmentSuffix));
    Lsn first = 0;
    if (std::sscanf(digits.c_str(), "%" SCNu64, &first) != 1) continue;
    segments.emplace_back(first, entry.path());
  }
  if (ec) {
    return common::Status::Internal("cannot list WAL dir " + dir + ": " +
                                    ec.message());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

std::string EncodeFrameHeader(Lsn lsn, std::string_view payload) {
  // CRC covers lsn + payload_len + payload so a frame cannot be spliced.
  std::string crc_head;
  common::BinaryWriter crc_writer(&crc_head);
  crc_writer.PutU64(lsn);
  crc_writer.PutU32(static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = common::Crc32(crc_head);
  crc = common::Crc32(payload, crc);

  std::string header;
  common::BinaryWriter writer(&header);
  writer.PutU32(Wal::kFrameMagic);
  writer.PutU64(lsn);
  writer.PutU32(static_cast<std::uint32_t>(payload.size()));
  writer.PutU32(crc);
  return header;
}

}  // namespace

namespace {
/// Innermost cohort open on this thread (nesting restores the outer one).
thread_local AckCohort* g_current_cohort = nullptr;
}  // namespace

AckCohort::AckCohort() : outer_(g_current_cohort) { g_current_cohort = this; }

AckCohort::~AckCohort() {
  // Safety net for callers that unwind without committing; error-aware
  // callers invoke Commit() themselves and see the status.
  auto status = Commit();
  (void)status;
  g_current_cohort = outer_;
}

AckCohort* AckCohort::Current() noexcept { return g_current_cohort; }

void AckCohort::Enroll(Wal* wal) {
  ++deferred_;
  if (std::find(touched_.begin(), touched_.end(), wal) == touched_.end()) {
    touched_.push_back(wal);
  }
}

common::Status AckCohort::Commit() {
  common::Status status = common::Status::Ok();
  for (Wal* wal : touched_) {
    auto s = wal->SyncCohort();
    if (status.ok() && !s.ok()) status = s;
  }
  touched_.clear();
  deferred_ = 0;
  return status;
}

struct Wal::PendingAppend {
  std::string payload;
  std::promise<common::Result<Lsn>> done;
};

Wal::Wal(WalConfig config) : config_(std::move(config)) {}

common::Result<std::unique_ptr<Wal>> Wal::Open(WalConfig config,
                                               common::ThreadPool* pool) {
  if (config.dir.empty()) {
    return common::Status::InvalidArgument("WalConfig.dir is empty");
  }
  std::error_code ec;
  fs::create_directories(config.dir, ec);
  if (ec) {
    return common::Status::Internal("cannot create WAL dir " + config.dir +
                                    ": " + ec.message());
  }

  // Scan what is already there: the next LSN continues after the last good
  // record.  A torn tail must then be *removed*: replay stops at the first
  // bad frame, so garbage left mid-log would shadow every record this
  // incarnation appends after it.  (Recovery replays the directory once
  // more after this scan; both passes are bounded by checkpoint truncation,
  // which keeps the live log to roughly one cadence worth of records.)
  auto scan = Replay(config.dir, nullptr);
  if (!scan.ok()) return scan.status();
  if (!scan->torn_segment.empty()) {
    std::error_code trunc_ec;
    if (scan->torn_offset == 0) {
      fs::remove(scan->torn_segment, trunc_ec);
    } else {
      fs::resize_file(scan->torn_segment, scan->torn_offset, trunc_ec);
    }
    if (trunc_ec) {
      return common::Status::Internal("cannot truncate torn WAL tail " +
                                      scan->torn_segment + ": " +
                                      trunc_ec.message());
    }
    for (const auto& path : scan->untrusted_segments) {
      fs::remove(path, trunc_ec);
      if (trunc_ec) {
        return common::Status::Internal("cannot remove untrusted WAL segment " +
                                        path + ": " + trunc_ec.message());
      }
    }
  }

  std::unique_ptr<Wal> wal(new Wal(std::move(config)));
  wal->open_report_ = *scan;
  // Continue after the last good record — but never regress below the LSN
  // encoded in any surviving segment name.  A checkpoint rolls to a fresh
  // (still empty) segment and truncates everything before it; after a
  // restart the scan then sees zero records, and deriving next_lsn_ from
  // the scan alone would restart numbering below the checkpoint's LSN,
  // making the next recovery skip every new record as "already folded in".
  Lsn next = scan->last_lsn + 1;
  auto survivors = ListSegments(wal->config_.dir);
  if (!survivors.ok()) return survivors.status();
  for (const auto& [first_lsn, path] : *survivors) {
    next = std::max(next, first_lsn);
  }
  wal->commit_pool_ = pool;
  {
    common::MutexLock lock(wal->io_mu_);
    wal->next_lsn_ = next;
    if (auto s = wal->OpenSegmentLocked(wal->next_lsn_); !s.ok()) return s;
  }
  if (pool != nullptr) {
    wal->queue_ =
        std::make_unique<common::BoundedQueue<std::shared_ptr<PendingAppend>>>(
            wal->config_.queue_capacity);
    Wal* raw = wal.get();
    wal->committer_done_ = pool->Submit([raw] { raw->CommitterLoop(); });
  }
  return wal;
}

Wal::~Wal() { Close(); }

common::Status Wal::OpenSegmentLocked(Lsn first_lsn) {
  if (active_ != nullptr) {
    std::fclose(active_);
    active_ = nullptr;
  }
  active_path_ =
      (fs::path(config_.dir) / SegmentName(first_lsn)).string();
  // "wb": a fresh segment is always truncated.  No live data can be lost —
  // a file of this name could only hold records with LSN >= first_lsn, and
  // those do not exist yet (Open() already truncated any torn tail).
  active_ = std::fopen(active_path_.c_str(), "wb");
  if (active_ == nullptr) {
    return common::Status::Internal("cannot open WAL segment " + active_path_);
  }
  active_bytes_ = 0;
  // Persist the new directory entry, or a power loss after acked appends
  // could make the whole segment vanish without even a torn tail.
  if (config_.sync_on_commit) return FsyncDir(config_.dir);
  return common::Status::Ok();
}

common::Status Wal::WriteFrameLocked(Lsn lsn, std::string_view payload) {
  const std::string header = EncodeFrameHeader(lsn, payload);
  if (std::fwrite(header.data(), 1, header.size(), active_) != header.size() ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), active_) !=
           payload.size())) {
    return common::Status::Internal("short write to " + active_path_);
  }
  active_bytes_ += header.size() + payload.size();
  return common::Status::Ok();
}

common::Status Wal::SyncLocked() {
  if (std::fflush(active_) != 0) {
    return common::Status::Internal("fflush failed on " + active_path_);
  }
  if (config_.sync_on_commit) {
    // Through the single fsync seam (durability/fsync.h) on the held
    // descriptor — the segment stays open across commits.
    if (auto s = FsyncFd(fileno(active_), active_path_); !s.ok()) return s;
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  return common::Status::Ok();
}

common::Result<Lsn> Wal::AppendSync(std::string payload) {
  common::MutexLock lock(io_mu_);
  if (closed_ || failed_ || active_ == nullptr) {
    return common::Status::FailedPrecondition("WAL is closed or failed");
  }
  if (active_bytes_ >= config_.segment_bytes) {
    if (auto s = OpenSegmentLocked(next_lsn_); !s.ok()) return s;
  }
  const Lsn lsn = next_lsn_++;
  auto s = WriteFrameLocked(lsn, payload);
  if (s.ok()) s = SyncLocked();
  if (!s.ok()) {
    // A failed write may have left a torn frame mid-segment.  Replay stops
    // at the first bad frame, so anything appended after it would be
    // acknowledged yet silently discarded at recovery — latch the log shut
    // instead; reopening truncates the tear and continues safely.
    failed_ = true;
    return s;
  }
  return lsn;
}

void Wal::CommitterLoop() {
  for (;;) {
    auto first = queue_->Pop();
    if (!first) return;  // closed and drained

    std::vector<std::shared_ptr<PendingAppend>> batch;
    batch.push_back(std::move(*first));
    while (batch.size() < config_.group_commit_max) {
      auto next = queue_->TryPop();
      if (!next) break;
      batch.push_back(std::move(*next));
    }

    common::MutexLock lock(io_mu_);
    common::Status batch_status = common::Status::Ok();
    std::vector<Lsn> lsns(batch.size(), 0);
    if (failed_ || active_ == nullptr) {
      batch_status = common::Status::FailedPrecondition("WAL is closed or failed");
    } else {
      if (active_bytes_ >= config_.segment_bytes) {
        batch_status = OpenSegmentLocked(next_lsn_);
      }
      for (std::size_t i = 0; batch_status.ok() && i < batch.size(); ++i) {
        lsns[i] = next_lsn_++;
        batch_status = WriteFrameLocked(lsns[i], batch[i]->payload);
      }
      if (batch_status.ok()) batch_status = SyncLocked();
      // See AppendSync: a torn frame mid-segment would shadow every later
      // append at replay, so the log latches shut on the first IO error.
      if (!batch_status.ok()) failed_ = true;
    }
    // One fsync covers the whole batch; only now do the appenders unblock.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch_status.ok()) {
        batch[i]->done.set_value(lsns[i]);
      } else {
        batch[i]->done.set_value(batch_status);
      }
    }
  }
}

common::Result<Lsn> Wal::AppendDeferred(std::string payload,
                                        AckCohort* cohort) {
  common::MutexLock lock(io_mu_);
  if (closed_ || failed_ || active_ == nullptr) {
    return common::Status::FailedPrecondition("WAL is closed or failed");
  }
  if (active_bytes_ >= config_.segment_bytes) {
    // Deferred frames may still sit unsynced in the old segment; they must
    // reach disk before its FILE* closes, so sync first, then roll.
    auto s = SyncLocked();
    if (s.ok()) s = OpenSegmentLocked(next_lsn_);
    if (!s.ok()) {
      failed_ = true;
      return s;
    }
  }
  const Lsn lsn = next_lsn_++;
  if (auto s = WriteFrameLocked(lsn, payload); !s.ok()) {
    // Same latch as AppendSync: a torn frame mid-segment would shadow every
    // later append at replay.
    failed_ = true;
    return s;
  }
  cohort->Enroll(this);
  return lsn;
}

common::Status Wal::SyncCohort() {
  common::MutexLock lock(io_mu_);
  if (closed_ || failed_ || active_ == nullptr) {
    return common::Status::FailedPrecondition("WAL is closed or failed");
  }
  auto s = SyncLocked();
  if (!s.ok()) failed_ = true;
  return s;
}

common::Result<Lsn> Wal::Append(std::string payload) {
  if (AckCohort* cohort = AckCohort::Current()) {
    return AppendDeferred(std::move(payload), cohort);
  }
  if (queue_ == nullptr) return AppendSync(std::move(payload));
  auto pending = std::make_shared<PendingAppend>();
  pending->payload = std::move(payload);
  auto fut = pending->done.get_future();
  if (!queue_->Push(pending)) {
    return common::Status::FailedPrecondition("WAL is closed");
  }
  return fut.get();
}

Lsn Wal::last_lsn() const {
  common::MutexLock lock(io_mu_);
  return next_lsn_ - 1;
}

common::Status Wal::RollSegment() {
  common::MutexLock lock(io_mu_);
  if (closed_ || failed_ || active_ == nullptr) {
    return common::Status::FailedPrecondition("WAL is closed or failed");
  }
  if (active_bytes_ == 0) return common::Status::Ok();  // already fresh
  return OpenSegmentLocked(next_lsn_);
}

common::Status Wal::EnsureNextLsnAtLeast(Lsn next_min) {
  common::MutexLock lock(io_mu_);
  if (closed_ || failed_ || active_ == nullptr) {
    return common::Status::FailedPrecondition("WAL is closed or failed");
  }
  if (next_min <= next_lsn_) return common::Status::Ok();
  const std::string old_path = active_path_;
  const bool old_empty = active_bytes_ == 0;
  next_lsn_ = next_min;
  if (auto s = OpenSegmentLocked(next_lsn_); !s.ok()) return s;
  if (old_empty && old_path != active_path_) {
    std::error_code ec;
    fs::remove(old_path, ec);  // drop the misnamed empty segment
  }
  return common::Status::Ok();
}

common::Status Wal::TruncateThrough(Lsn through) {
  common::MutexLock lock(io_mu_);
  auto segments = ListSegments(config_.dir);
  if (!segments.ok()) return segments.status();
  // A segment is deletable when its successor starts at or before
  // `through` + 1 (every record it holds is then <= `through`).  The last
  // (active) segment always stays.
  for (std::size_t i = 0; i + 1 < segments->size(); ++i) {
    if ((*segments)[i + 1].first <= through + 1 &&
        (*segments)[i].second.string() != active_path_) {
      std::error_code ec;
      fs::remove((*segments)[i].second, ec);
      if (ec) {
        return common::Status::Internal(
            "cannot remove WAL segment " + (*segments)[i].second.string() +
            ": " + ec.message());
      }
    }
  }
  return common::Status::Ok();
}

void Wal::Close() {
  if (queue_ != nullptr) {
    // The queue object must outlive Close(): a concurrent Append() may be
    // inside Push() right now, and resetting the unique_ptr would destroy
    // the mutex under it.  Closing the queue fails those pushes cleanly;
    // the queue itself is freed with the Wal.
    queue_->Close();
    if (committer_done_.valid()) committer_done_.wait();
  }
  common::MutexLock lock(io_mu_);
  if (active_ != nullptr) {
    std::fflush(active_);
    std::fclose(active_);
    active_ = nullptr;
  }
  closed_ = true;
}

common::Result<WalReplayReport> Wal::Replay(
    const std::string& dir,
    const std::function<void(Lsn, std::string_view)>& fn) {
  WalReplayReport report;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return report;  // nothing yet: empty log

  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();

  bool stop = false;
  for (std::size_t seg = 0; seg < segments->size(); ++seg) {
    const fs::path& path = (*segments)[seg].second;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return common::Status::Internal("cannot read WAL segment " +
                                      path.string());
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (stop) {
      // Everything after the first bad frame is untrusted.
      report.discarded_bytes += bytes.size();
      report.untrusted_segments.push_back(path.string());
      continue;
    }
    ++report.segments;

    std::size_t offset = 0;
    while (offset < bytes.size()) {
      if (bytes.size() - offset < kFrameHeaderBytes) break;  // torn header
      common::BinaryReader header(
          std::string_view(bytes).substr(offset, kFrameHeaderBytes));
      const std::uint32_t magic = header.U32();
      const Lsn lsn = header.U64();
      const std::uint32_t len = header.U32();
      const std::uint32_t crc = header.U32();
      if (magic != kFrameMagic) break;                        // corrupt
      if (bytes.size() - offset - kFrameHeaderBytes < len) break;  // torn
      const std::string_view payload =
          std::string_view(bytes).substr(offset + kFrameHeaderBytes, len);
      std::string crc_head;
      common::BinaryWriter crc_writer(&crc_head);
      crc_writer.PutU64(lsn);
      crc_writer.PutU32(len);
      std::uint32_t want = common::Crc32(crc_head);
      want = common::Crc32(payload, want);
      if (want != crc) break;                                 // torn/corrupt
      if (lsn <= report.last_lsn) break;  // regression: untrusted from here
      if (fn) fn(lsn, payload);
      report.last_lsn = lsn;
      ++report.records;
      offset += kFrameHeaderBytes + len;
    }
    if (offset < bytes.size()) {
      report.discarded_bytes += bytes.size() - offset;
      report.torn_segment = path.string();
      report.torn_offset = offset;
      stop = true;  // drop the rest of the log; it is after the torn point
    }
  }
  if (report.discarded_bytes > 0) {
    SCALIA_LOG(common::LogLevel::kWarning, "wal")
        << "torn tail: discarded " << report.discarded_bytes
        << " byte(s) after lsn " << report.last_lsn;
  }
  return report;
}

}  // namespace scalia::durability
