// Logical WAL records: the engine mutations that must survive a crash.
//
// Each record captures one *committed* engine-state mutation — a metadata
// upsert from a put, a tombstone from a delete, a migration or repair
// re-placement, or one sampling period's statistics append.  The payload is
// the already-serialized row (ObjectMetadata::Serialize() text, or a
// PeriodStats CSV), kept opaque here so this layer depends on no core/stats
// types.  Records travel inside CRC32-framed WAL frames (wal.h); this codec
// only needs to be self-describing enough for forward-compatible replay
// (unknown kinds are skipped, not fatal).
#pragma once

#include <string>
#include <string_view>

#include "common/sim_time.h"
#include "common/status.h"

namespace scalia::durability {

enum class WalRecordKind : std::uint8_t {
  kUpsert = 1,       // put: metadata row created or replaced
  kDelete = 2,       // delete: metadata tombstone + class lifetime sample
  kMigrate = 3,      // re-optimization moved the object's chunks
  kRepair = 4,       // active repair re-wrote part or all of the stripes
  kPeriodStats = 5,  // one sampling period appended to the access history
};

[[nodiscard]] constexpr std::string_view WalRecordKindName(WalRecordKind k) {
  switch (k) {
    case WalRecordKind::kUpsert: return "upsert";
    case WalRecordKind::kDelete: return "delete";
    case WalRecordKind::kMigrate: return "migrate";
    case WalRecordKind::kRepair: return "repair";
    case WalRecordKind::kPeriodStats: return "period-stats";
  }
  return "unknown";
}

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kUpsert;
  common::SimTime at = 0;    // mutation time (drives lifetimes and LWW)
  std::string row_key;       // MD5 metadata row key
  std::uint64_t aux = 0;     // kPeriodStats: the sampling period index
  std::string payload;       // serialized metadata row / PeriodStats CSV

  [[nodiscard]] std::string Encode() const;
  [[nodiscard]] static common::Result<WalRecord> Decode(std::string_view bytes);
};

}  // namespace scalia::durability
