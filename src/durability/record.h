// Logical WAL records: the engine mutations that must survive a crash.
//
// Each record captures one *committed* engine-state mutation — a metadata
// upsert from a put, a tombstone from a delete, a migration or repair
// re-placement, or one sampling period's statistics append.  The payload is
// the already-serialized row (ObjectMetadata::Serialize() text, or a
// PeriodStats CSV), kept opaque here so this layer depends on no core/stats
// types.  Records travel inside CRC32-framed WAL frames (wal.h); this codec
// only needs to be self-describing enough for forward-compatible replay
// (unknown kinds are skipped, not fatal).
#pragma once

#include <string>
#include <string_view>

#include "common/sim_time.h"
#include "common/status.h"
#include "store/vector_clock.h"

namespace scalia::durability {

enum class WalRecordKind : std::uint8_t {
  kUpsert = 1,       // put: metadata row created or replaced
  kDelete = 2,       // delete: metadata tombstone + class lifetime sample
  kMigrate = 3,      // re-optimization moved the object's chunks
  kRepair = 4,       // active repair re-wrote part or all of the stripes
  kPeriodStats = 5,  // one sampling period appended to the access history
  kMigrateAbort = 6,  // a migration/repair lost its CAS commit; the payload
                      // is the *staged* (never-committed) placement whose
                      // chunks were garbage-collected — replay must never
                      // apply it to the metadata table
  kFilterChunk = 7,  // the filter pipeline admitted a new dedup chunk:
                     // row_key is the 64-char SHA-256 hex, payload the raw
                     // chunk bytes.  Journaled BEFORE the referencing
                     // metadata upsert, so a torn tail can lose a reference
                     // to a chunk but never a chunk under a reference;
                     // refcounts are rebuilt from the metadata table after
                     // replay (durability/recovery.cc)
};

[[nodiscard]] constexpr std::string_view WalRecordKindName(WalRecordKind k) {
  switch (k) {
    case WalRecordKind::kUpsert: return "upsert";
    case WalRecordKind::kDelete: return "delete";
    case WalRecordKind::kMigrate: return "migrate";
    case WalRecordKind::kRepair: return "repair";
    case WalRecordKind::kPeriodStats: return "period-stats";
    case WalRecordKind::kMigrateAbort: return "migrate-abort";
    case WalRecordKind::kFilterChunk: return "filter-chunk";
  }
  return "unknown";
}

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kUpsert;
  common::SimTime at = 0;    // mutation time (drives lifetimes and LWW)
  std::string row_key;       // MD5 metadata row key
  std::uint64_t aux = 0;     // kPeriodStats: the sampling period index
  std::string payload;       // serialized metadata row / PeriodStats CSV
  /// Engine shard that journaled the record (format v3).  Each shard of a
  /// ShardedEngine streams into its own WAL segment directory, so replay of
  /// one stream normally sees one shard id throughout; the header field
  /// makes a record self-describing if streams are ever merged or a segment
  /// file is moved, and lets recovery reject a record routed to the wrong
  /// shard's journal.  v1/v2 records decode with shard 0.
  std::uint32_t shard = 0;
  /// The committed row version's vector clock (empty for kPeriodStats /
  /// kMigrateAbort and for legacy v1 records).  Replay applies metadata
  /// records *causally* with this clock instead of as blind writes, so the
  /// WAL's append order need not match the metadata table's commit order:
  /// journal appends race each other outside the table's shard lock, and a
  /// dominated record replayed last must still lose to the write that
  /// superseded it in the live table.
  store::VectorClock clock;

  [[nodiscard]] std::string Encode() const;
  [[nodiscard]] static common::Result<WalRecord> Decode(std::string_view bytes);
};

}  // namespace scalia::durability
