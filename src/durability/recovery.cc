#include "durability/recovery.h"

#include <filesystem>

#include "common/log.h"
#include "core/metadata.h"
#include "durability/record.h"
#include "filter/dedup_index.h"
#include "stats/period_stats.h"

namespace scalia::durability {

namespace {

/// Re-applies a metadata record.  v2 records carry the committed version's
/// vector clock and replay *causally*: journal appends race each other
/// outside the table's shard lock, so the WAL's append order may invert the
/// table's commit order — a dominated record replayed last must still lose
/// to the record of the write that superseded it.  Legacy v1 records (no
/// clock) fall back to the old blind register write.
common::Status ReplayMetadataWrite(const WalRecord& rec,
                                   const EngineStateRefs& state,
                                   bool tombstone) {
  if (rec.clock.empty()) {
    auto s = tombstone ? state.db->Delete(state.dc, "metadata", rec.row_key,
                                          rec.at)
                       : state.db->Put(state.dc, "metadata", rec.row_key,
                                       rec.payload, rec.at);
    return s.ok() ? common::Status::Ok() : s.status();
  }
  store::Version v;
  v.value = rec.payload;
  v.timestamp = rec.at;
  v.origin = state.dc;
  v.clock = rec.clock;
  v.tombstone = tombstone;
  return state.db->ApplyVersion(state.dc, "metadata", rec.row_key,
                                std::move(v));
}

/// Applies one decoded WAL record to the engine state.  Returns false when
/// the record kind is unknown (skipped, forward compatibility).
common::Result<bool> ApplyRecord(const WalRecord& rec,
                                 const EngineStateRefs& state) {
  switch (rec.kind) {
    case WalRecordKind::kUpsert:
    case WalRecordKind::kMigrate:
    case WalRecordKind::kRepair: {
      if (auto s = ReplayMetadataWrite(rec, state, /*tombstone=*/false);
          !s.ok()) {
        return s;
      }
      // A first-time upsert also (re)creates the statistics record, exactly
      // as Engine::Put did when the mutation originally committed.
      if (rec.kind == WalRecordKind::kUpsert &&
          !state.stats->GetObject(rec.row_key)) {
        auto meta = core::ObjectMetadata::Parse(rec.payload);
        if (meta.ok()) {
          state.stats->RecordObjectCreated(rec.row_key, meta->class_id,
                                           meta->LogicalSize(),
                                           meta->created_at);
        }
      }
      state.stats->TouchObject(rec.row_key, rec.at);
      return true;
    }
    case WalRecordKind::kDelete: {
      if (auto s = ReplayMetadataWrite(rec, state, /*tombstone=*/true);
          !s.ok()) {
        return s;
      }
      state.stats->RecordObjectDeleted(rec.row_key, rec.at);
      return true;
    }
    case WalRecordKind::kPeriodStats: {
      state.stats->AppendPeriodStats(rec.row_key, rec.aux,
                                     stats::PeriodStats::FromCsv(rec.payload),
                                     rec.at);
      return true;
    }
    case WalRecordKind::kMigrateAbort: {
      // The payload is a placement that *lost* its CAS commit: it never
      // reached the metadata table, so nothing is applied — resurrecting it
      // would revert the write that won the race.  Its *staged* chunks may
      // have survived a crash between the abort and the engine's sweep;
      // finish that sweep here when the providers are reachable.
      if (auto* sweep = state.SweepRegistry(); sweep != nullptr) {
        if (auto staged = core::ObjectMetadata::Parse(rec.payload);
            staged.ok()) {
          for (const auto& stripe : staged->stripes) {
            if (auto* store = sweep->Find(stripe.provider)) {
              // Best-effort: NotFound just means the engine got there first.
              (void)store->Delete(rec.at, staged->ChunkKey(stripe.chunk_index));
            }
          }
        }
      }
      return true;
    }
    case WalRecordKind::kFilterChunk: {
      // A dedup chunk admitted after the checkpoint.  Inserted with
      // refcount zero: the record precedes every row that references it,
      // and the post-replay rebuild assigns the true count (or sweeps the
      // chunk if its would-be referencing upsert was lost in the torn
      // tail).  Without an index the deployment runs unfiltered; skip.
      if (state.filter_index != nullptr) {
        state.filter_index->RestoreChunk(rec.row_key, rec.payload);
        return true;
      }
      return false;
    }
  }
  return false;  // unknown kind: journal written by a newer version
}

/// Post-replay refcount rebuild: refcounts are never journaled (only chunk
/// payloads are), so after checkpoint + replay they are re-derived from the
/// single source of truth — the live metadata rows' dedup_refs lists.  A
/// row referencing a chunk the index does not hold is real corruption (the
/// WAL ordering guarantees chunk-before-reference); a chunk no row
/// references is the benign torn-tail signature and is swept.
common::Result<std::size_t> RebuildDedupRefs(const EngineStateRefs& state) {
  filter::DedupIndex& index = *state.filter_index;
  index.RebuildRefsBegin();
  const store::KvTable* table = state.db->Table(state.dc, "metadata");
  common::Status error = common::Status::Ok();
  if (table != nullptr) {
    for (std::size_t shard = 0; shard < store::KvTable::kShards; ++shard) {
      table->VisitShard(
          shard, [&](const std::string& key, const store::Version& v) {
            if (!error.ok()) return;
            auto meta = core::ObjectMetadata::Parse(v.value);
            if (!meta.ok()) return;  // non-object rows carry no refs
            for (const auto& hash : meta->dedup_refs) {
              if (!index.AddRef(hash)) {
                error = common::Status::Internal(
                    "dedup corruption: object " + key +
                    " references missing chunk " + hash);
                return;
              }
            }
          });
      if (!error.ok()) break;
    }
  }
  if (!error.ok()) return error;
  return index.SweepUnreferenced();
}

}  // namespace

RecoveryManager::RecoveryManager(std::string dir) : dir_(std::move(dir)) {}

std::string RecoveryManager::wal_dir() const {
  return (std::filesystem::path(dir_) / "wal").string();
}

common::Result<RecoveryReport> RecoveryManager::Recover(
    const EngineStateRefs& state, common::SimTime now,
    std::optional<std::uint32_t> expected_shard) const {
  if (state.db == nullptr || state.stats == nullptr) {
    return common::Status::InvalidArgument(
        "recovery requires a replicated store and a stats db");
  }
  RecoveryReport report;

  // Step 1: newest verifiable checkpoint.
  const CheckpointLoader loader(dir_);
  for (const std::string& path : loader.List()) {
    auto info = loader.LoadInto(path, state);
    if (info.ok()) {
      report.checkpoint_loaded = true;
      report.checkpoint_path = info->path;
      report.checkpoint_lsn = info->wal_lsn;
      report.checkpoint_created_at = info->created_at;
      report.checkpoint_age = now - info->created_at;
      break;
    }
    ++report.checkpoints_rejected;
    SCALIA_LOG(common::LogLevel::kWarning, "recovery")
        << "rejected checkpoint " << path << ": "
        << info.status().ToString();
  }

  // Step 2: WAL replay past the checkpoint.  A torn tail stops the replay
  // and is reported, never fatal.
  common::Status apply_error = common::Status::Ok();
  auto replay = Wal::Replay(wal_dir(), [&](Lsn lsn, std::string_view bytes) {
    if (!apply_error.ok()) return;
    if (lsn <= report.checkpoint_lsn) {
      ++report.records_skipped;  // state already folded into the checkpoint
      return;
    }
    auto rec = WalRecord::Decode(bytes);
    if (!rec.ok()) {
      ++report.records_skipped;
      return;
    }
    if (expected_shard && rec->shard != *expected_shard) {
      ++report.records_wrong_shard;
      return;
    }
    auto applied = ApplyRecord(*rec, state);
    if (!applied.ok()) {
      apply_error = applied.status();
      return;
    }
    if (*applied) {
      ++report.records_replayed;
    } else {
      ++report.records_skipped;
    }
  });
  if (!replay.ok()) return replay.status();
  if (!apply_error.ok()) return apply_error;
  report.wal_bytes_discarded = replay->discarded_bytes;
  report.wal_last_lsn = replay->last_lsn;

  // Step 3: dedup-index refcount rebuild (see RebuildDedupRefs).
  if (state.filter_index != nullptr) {
    auto swept = RebuildDedupRefs(state);
    if (!swept.ok()) return swept.status();
    report.dedup_chunks_swept = *swept;
  }

  SCALIA_LOG(common::LogLevel::kInfo, "recovery")
      << (report.checkpoint_loaded
              ? "restored " + report.checkpoint_path
              : std::string("cold start (no checkpoint)"))
      << ", replayed " << report.records_replayed << " record(s), discarded "
      << report.wal_bytes_discarded << " torn byte(s)";
  return report;
}

}  // namespace scalia::durability
