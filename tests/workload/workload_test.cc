#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "workload/backup.h"
#include "workload/diurnal.h"
#include "workload/gallery.h"
#include "workload/slashdot.h"
#include "workload/trace.h"

namespace scalia::workload {
namespace {

TEST(DiurnalTest, DailyVolumeMatchesVisitsPerDay) {
  const DiurnalTrafficModel traffic(2500.0);
  const auto series = traffic.ExpectedSeries(24);
  const double daily = std::accumulate(series.begin(), series.end(), 0.0);
  EXPECT_NEAR(daily, 2500.0, 1.0);
}

TEST(DiurnalTest, PatternIsPeriodicAndPeaked) {
  const DiurnalTrafficModel traffic(2500.0);
  const auto series = traffic.ExpectedSeries(48);
  for (int h = 0; h < 24; ++h) {
    EXPECT_NEAR(series[static_cast<std::size_t>(h)],
                series[static_cast<std::size_t>(h + 24)], 1e-9);
  }
  const auto [min_it, max_it] =
      std::minmax_element(series.begin(), series.begin() + 24);
  // Pronounced day/night contrast (EU-dominated afternoon peak).
  EXPECT_GT(*max_it, 2.0 * *min_it);
  // The peak lands in the EU afternoon (13:00 UTC ~ 14:00 CET).
  const auto peak_hour = std::distance(series.begin(), max_it);
  EXPECT_GE(peak_hour, 10);
  EXPECT_LE(peak_hour, 16);
}

TEST(DiurnalTest, SampledSeriesDeterministicAndNearExpected) {
  const DiurnalTrafficModel traffic(2500.0);
  common::Xoshiro256 rng1(7), rng2(7);
  const auto a = traffic.SampledSeries(24 * 7, rng1);
  const auto b = traffic.SampledSeries(24 * 7, rng2);
  EXPECT_EQ(a, b);
  const double total = std::accumulate(a.begin(), a.end(), 0.0);
  EXPECT_NEAR(total, 2500.0 * 7, 2500.0 * 7 * 0.05);
}

TEST(SlashdotTest, RampAndDecayShape) {
  const auto scenario = SlashdotScenario();
  EXPECT_EQ(scenario.num_periods, 180u);
  ASSERT_EQ(scenario.objects.size(), 1u);
  const auto& obj = scenario.objects[0];
  EXPECT_EQ(obj.size, common::kMB);
  // Quiet for the first 48 hours.
  for (std::size_t h = 0; h < 48; ++h) EXPECT_EQ(obj.ReadsAt(h), 0.0);
  // Ramp reaches 150 requests/hour at hour 50 (within 3 hours).
  EXPECT_NEAR(obj.ReadsAt(48), 50.0, 1e-9);
  EXPECT_NEAR(obj.ReadsAt(50), 150.0, 1e-9);
  // Decay at 2 requests/hour.
  EXPECT_NEAR(obj.ReadsAt(51), 148.0, 1e-9);
  EXPECT_NEAR(obj.ReadsAt(52), 146.0, 1e-9);
  // Eventually silent again.
  EXPECT_EQ(obj.ReadsAt(179), 0.0);
  // The §IV-B constraints.
  EXPECT_DOUBLE_EQ(obj.rule.availability, 0.9999);
  EXPECT_DOUBLE_EQ(obj.rule.durability, 0.99999);
}

TEST(GalleryTest, ShapeAndDeterminism) {
  const auto scenario = GalleryScenario();
  EXPECT_EQ(scenario.objects.size(), 200u);
  for (const auto& obj : scenario.objects) {
    EXPECT_EQ(obj.size, 250 * common::kKB);
    EXPECT_EQ(obj.created_period, 0u);
  }
  // Deterministic under the same seed.
  const auto again = GalleryScenario();
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(scenario.objects[i].reads, again.objects[i].reads);
  }
}

TEST(GalleryTest, PopularityIsHeavyTailed) {
  const auto scenario = GalleryScenario();
  std::vector<double> totals;
  double grand_total = 0.0;
  for (const auto& obj : scenario.objects) {
    const double t =
        std::accumulate(obj.reads.begin(), obj.reads.end(), 0.0);
    totals.push_back(t);
    grand_total += t;
  }
  std::sort(totals.rbegin(), totals.rend());
  // The top 20 pictures draw a disproportionate share of the traffic.
  const double top20 =
      std::accumulate(totals.begin(), totals.begin() + 20, 0.0);
  EXPECT_GT(top20 / grand_total, 0.3);
  // Total volume tracks 2500 visits/day over 7.5 days.
  EXPECT_NEAR(grand_total, 2500.0 * 7.5, 2500.0 * 7.5 * 0.1);
}

TEST(BackupTest, CadenceAndRule) {
  BackupParams params;
  params.total_hours = 50;
  params.interval_hours = 5;
  const auto scenario = BackupScenario(params);
  EXPECT_EQ(scenario.objects.size(), 10u);
  for (std::size_t i = 0; i < scenario.objects.size(); ++i) {
    EXPECT_EQ(scenario.objects[i].created_period, i * 5);
    EXPECT_EQ(scenario.objects[i].size, 40 * common::kMB);
    EXPECT_DOUBLE_EQ(scenario.objects[i].rule.lockin, 0.5);
    EXPECT_EQ(scenario.objects[i].rule.MinProviders(), 2u);
  }
}

TEST(TraceTest, ParsesCsv) {
  std::istringstream in(
      "object,size_bytes,mime,created_period,period,reads\n"
      "img1,250000,image/jpeg,0,0,5\n"
      "img1,250000,image/jpeg,0,1,7\n"
      "doc1,1000000,application/pdf,2,3,1\n");
  const core::StorageRule rule;
  auto scenario = LoadTrace(in, rule);
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->objects.size(), 2u);
  EXPECT_EQ(scenario->num_periods, 4u);
  const auto* img = &scenario->objects[1];  // map order: doc1, img1
  if (scenario->objects[0].name == "img1") img = &scenario->objects[0];
  EXPECT_EQ(img->size, 250000u);
  EXPECT_DOUBLE_EQ(img->ReadsAt(0), 5.0);
  EXPECT_DOUBLE_EQ(img->ReadsAt(1), 7.0);
}

TEST(TraceTest, CommentsAndErrors) {
  std::istringstream with_comments(
      "# a comment\n"
      "obj,100,text/plain,0,0,1\n");
  EXPECT_TRUE(LoadTrace(with_comments, core::StorageRule{}).ok());

  std::istringstream empty("");
  EXPECT_FALSE(LoadTrace(empty, core::StorageRule{}).ok());

  std::istringstream bad("obj,100,text/plain,0,0,1\nbroken-line\n");
  EXPECT_FALSE(LoadTrace(bad, core::StorageRule{}).ok());

  EXPECT_FALSE(
      LoadTraceFile("/no/such/file.csv", core::StorageRule{}).ok());
}

TEST(TraceTest, NumPeriodsOverride) {
  std::istringstream in("obj,100,text/plain,0,0,1\n");
  auto scenario = LoadTrace(in, core::StorageRule{}, 10);
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->num_periods, 10u);
  EXPECT_TRUE(scenario->objects[0].AliveAt(9));
}

}  // namespace
}  // namespace scalia::workload
