#include "billing/invoice.h"

#include <gtest/gtest.h>

#include "provider/spec.h"

namespace scalia::billing {
namespace {

using common::kHour;

provider::ProviderSpec S3h() {
  for (auto& spec : provider::PaperCatalog()) {
    if (spec.id == "S3(h)") return spec;
  }
  return {};
}

provider::PeriodUsage SampleUsage() {
  // 720 GB-hours = exactly one GB-month at the 30-day convention.
  return provider::PeriodUsage{.storage_gb_hours = 720.0,
                               .bw_in_gb = 2.0,
                               .bw_out_gb = 3.0,
                               .ops = 4000.0};
}

TEST(InvoiceTest, LineItemsMatchFig3Pricing) {
  const Invoice invoice = MakeInvoice(S3h(), SampleUsage(), 0, 720 * kHour);
  ASSERT_EQ(invoice.lines.size(), 4u);

  // storage: 1 GB-month @ 0.14.
  EXPECT_EQ(invoice.lines[0].kind, LineKind::kStorage);
  EXPECT_NEAR(invoice.lines[0].quantity, 1.0, 1e-12);
  EXPECT_NEAR(invoice.lines[0].amount.usd(), 0.14, 1e-12);
  // bw in: 2 GB @ 0.1.
  EXPECT_NEAR(invoice.lines[1].amount.usd(), 0.2, 1e-12);
  // bw out: 3 GB @ 0.15.
  EXPECT_NEAR(invoice.lines[2].amount.usd(), 0.45, 1e-12);
  // ops: 4000 requests @ 0.01 / 1000.
  EXPECT_NEAR(invoice.lines[3].amount.usd(), 0.04, 1e-12);

  EXPECT_NEAR(invoice.total.usd(), 0.14 + 0.2 + 0.45 + 0.04, 1e-12);
}

TEST(InvoiceTest, ZeroUsageBillsZero) {
  const Invoice invoice = MakeInvoice(S3h(), {}, 0, kHour);
  EXPECT_NEAR(invoice.total.usd(), 0.0, 1e-15);
}

TEST(InvoiceTest, ToStringMentionsEveryLine) {
  const std::string text =
      MakeInvoice(S3h(), SampleUsage(), 0, 720 * kHour).ToString();
  EXPECT_NE(text.find("S3(h)"), std::string::npos);
  EXPECT_NE(text.find("storage"), std::string::npos);
  EXPECT_NE(text.find("bandwidth-in"), std::string::npos);
  EXPECT_NE(text.find("bandwidth-out"), std::string::npos);
  EXPECT_NE(text.find("operations"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
}

TEST(LedgerTest, AccruesAcrossPeriodsAndCutsStatement) {
  Ledger ledger;
  const auto catalog = provider::PaperCatalog();
  for (int period = 0; period < 3; ++period) {
    ledger.Accrue("S3(h)", provider::PeriodUsage{.storage_gb_hours = 10.0,
                                                 .bw_in_gb = 1.0,
                                                 .bw_out_gb = 0.0,
                                                 .ops = 100.0});
    ledger.Accrue("RS", provider::PeriodUsage{.storage_gb_hours = 5.0,
                                              .bw_in_gb = 0.5,
                                              .bw_out_gb = 0.25,
                                              .ops = 50.0});
  }
  EXPECT_EQ(ledger.ProviderCount(), 2u);

  const Statement statement = ledger.Cut(3 * kHour, catalog);
  ASSERT_EQ(statement.invoices.size(), 2u);
  EXPECT_EQ(statement.window_start, 0);
  EXPECT_EQ(statement.window_end, 3 * kHour);
  // Alphabetical provider order for determinism.
  EXPECT_EQ(statement.invoices[0].provider, "RS");
  EXPECT_EQ(statement.invoices[1].provider, "S3(h)");
  // 3 periods x 1 GB in @ 0.1 for S3(h).
  EXPECT_NEAR(statement.invoices[1].lines[1].amount.usd(), 0.3, 1e-12);
  EXPECT_GT(statement.Total().usd(), 0.0);

  // The cut resets the window.
  const Statement empty = ledger.Cut(4 * kHour, catalog);
  EXPECT_TRUE(empty.invoices.empty());
  EXPECT_EQ(empty.window_start, 3 * kHour);
}

TEST(LedgerTest, UnknownProvidersSkipped) {
  Ledger ledger;
  ledger.Accrue("NoSuchCloud", provider::PeriodUsage{.storage_gb_hours = 1.0,
                                                     .bw_in_gb = 0.0,
                                                     .bw_out_gb = 0.0,
                                                     .ops = 0.0});
  const Statement statement = ledger.Cut(kHour, provider::PaperCatalog());
  EXPECT_TRUE(statement.invoices.empty());
}

TEST(StatementTest, CsvHasHeaderAndOneRowPerLine) {
  Ledger ledger;
  ledger.Accrue("S3(h)", SampleUsage());
  const Statement statement = ledger.Cut(kHour, provider::PaperCatalog());
  const std::string csv = statement.ToCsv();
  EXPECT_EQ(csv.find("provider,line,quantity,unit,unit_price,amount"), 0u);
  // Header + 4 lines -> 5 newlines.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 5);
  EXPECT_NE(csv.find("S3(h),storage"), std::string::npos);
}

}  // namespace
}  // namespace scalia::billing
