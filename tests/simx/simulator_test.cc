#include "simx/simulator.h"

#include <gtest/gtest.h>

#include "simx/overcost.h"
#include "simx/static_sets.h"
#include "workload/backup.h"
#include "workload/slashdot.h"

namespace scalia::simx {
namespace {

SimPolicyConfig PerPeriodConfig() {
  SimPolicyConfig config;
  config.price.billing = provider::StorageBillingMode::kPerPeriod;
  return config;
}

ScenarioSpec TinyColdScenario(std::size_t periods = 10) {
  ScenarioSpec scenario;
  scenario.name = "tiny";
  scenario.num_periods = periods;
  SimObject obj;
  obj.name = "o";
  obj.size = common::kMB;
  obj.rule = core::StorageRule{.name = "t",
                               .durability = 0.99999,
                               .availability = 0.9999,
                               .allowed_zones = provider::ZoneSet::All(),
                               .lockin = 1.0,
                               .ttl_hint = std::nullopt};
  obj.created_period = 0;
  scenario.objects.push_back(std::move(obj));
  return scenario;
}

TEST(EnvironmentTest, ArrivalAndOutage) {
  SimEnvironment env = workload::AddProviderEnvironment(400);
  EXPECT_EQ(env.SpecsAt(0).size(), 5u);
  EXPECT_EQ(env.SpecsAt(400 * common::kHour).size(), 6u);

  SimEnvironment failure = workload::TransientFailureEnvironment(60, 120);
  EXPECT_TRUE(failure.IsReachable("S3(l)", 59 * common::kHour));
  EXPECT_FALSE(failure.IsReachable("S3(l)", 60 * common::kHour));
  EXPECT_FALSE(failure.IsReachable("S3(l)", 119 * common::kHour));
  EXPECT_TRUE(failure.IsReachable("S3(l)", 120 * common::kHour));
  EXPECT_EQ(failure.ReachableAt(80 * common::kHour).size(), 4u);
  EXPECT_FALSE(failure.IsReachable("NoSuch", 0));
  EXPECT_FALSE(failure.FindSpec("NoSuch", 0).has_value());
}

TEST(ScenarioTest, ObjectStatsAtPeriods) {
  SimObject obj;
  obj.size = common::kMB;
  obj.created_period = 5;
  obj.deleted_period = 8;
  obj.reads = {0.0, 10.0, 20.0};
  EXPECT_FALSE(obj.AliveAt(4));
  EXPECT_TRUE(obj.AliveAt(5));
  EXPECT_TRUE(obj.AliveAt(7));
  EXPECT_FALSE(obj.AliveAt(8));

  const auto creation = obj.StatsAt(5);
  EXPECT_DOUBLE_EQ(creation.writes, 1.0);
  EXPECT_NEAR(creation.bw_in_gb, 0.001, 1e-12);
  EXPECT_DOUBLE_EQ(creation.reads, 0.0);

  const auto busy = obj.StatsAt(6);
  EXPECT_DOUBLE_EQ(busy.writes, 0.0);
  EXPECT_DOUBLE_EQ(busy.reads, 10.0);
  EXPECT_NEAR(busy.bw_out_gb, 0.01, 1e-12);

  EXPECT_TRUE(obj.StatsAt(9).IsZero());
}

TEST(StaticSetsTest, Fig13EnumerationOrder) {
  const auto ordered = Fig13Order(provider::PaperCatalog());
  ASSERT_EQ(ordered.size(), 5u);
  EXPECT_EQ(ordered[0].id, "S3(h)");
  EXPECT_EQ(ordered[2].id, "Azu");
  EXPECT_EQ(ordered[4].id, "RS");

  const auto sets = StaticSets(ordered);
  ASSERT_EQ(sets.size(), 26u);  // all >= 2 subsets of 5 providers
  // Spot-check the paper's numbering (Fig. 13).
  EXPECT_EQ(SetLabel(sets[0]), "S3(h)-S3(l)");                  // #1
  EXPECT_EQ(SetLabel(sets[3]), "S3(h)-S3(l)-Azu-Ggl-RS");       // #4
  EXPECT_EQ(SetLabel(sets[8]), "S3(h)-Azu");                    // #9
  EXPECT_EQ(SetLabel(sets[15]), "S3(l)-Azu");                   // #16
  EXPECT_EQ(SetLabel(sets[25]), "Ggl-RS");                      // #26
}

TEST(SimulatorTest, ColdObjectCostMatchesHandComputation) {
  const CostSimulator sim(PerPeriodConfig(), SimEnvironment::Paper());
  const auto scenario = TinyColdScenario(10);
  const RunResult run =
      sim.RunStatic(scenario, {"S3(h)", "S3(l)", "Azu", "Ggl", "RS"});
  ASSERT_TRUE(run.feasible);
  // Placement: all five, m = 4 (durability 99.999).  Per period: storage
  // 0.001/4 GB per provider; creation adds ingress + 5 ops.
  const double storage_rate = 0.001 / 4 * (0.14 + 0.093 + 0.15 + 0.17 + 0.15);
  const double write_cost =
      0.001 / 4 * (0.10 * 4 + 0.08) + 4.0 * 0.01 / 1000.0;
  EXPECT_NEAR(run.cost_per_period[0].usd(), storage_rate + write_cost, 1e-12);
  EXPECT_NEAR(run.cost_per_period[5].usd(), storage_rate, 1e-12);
  EXPECT_NEAR(run.total.usd(), 10 * storage_rate + write_cost, 1e-12);
}

TEST(SimulatorTest, ResourcesTrackPhysicalChunks) {
  const CostSimulator sim(PerPeriodConfig(), SimEnvironment::Paper());
  const auto scenario = TinyColdScenario(4);
  const RunResult run =
      sim.RunStatic(scenario, {"S3(h)", "S3(l)", "Azu", "Ggl", "RS"});
  // 1 MB object striped 5-of-4: 1.25 MB of physical chunks.
  EXPECT_NEAR(run.resources[1].storage_gb, 0.00125, 1e-9);
  EXPECT_NEAR(run.resources[0].bw_in_gb, 0.00125, 1e-9);
  EXPECT_DOUBLE_EQ(run.resources[2].bw_out_gb, 0.0);
}

TEST(SimulatorTest, IdealNeverAboveAnyPolicy) {
  // The oracle lower-bounds every feasible policy on every scenario.
  const CostSimulator sim(PerPeriodConfig(), SimEnvironment::Paper());
  const auto scenario = workload::SlashdotScenario();
  const RunResult ideal = sim.RunIdeal(scenario);
  const RunResult scalia = sim.RunScalia(scenario);
  EXPECT_LE(ideal.total.usd(), scalia.total.usd() + 1e-9);
  for (const auto& set : StaticSets(Fig13Order(provider::PaperCatalog()))) {
    const RunResult fixed = sim.RunStatic(scenario, set);
    if (!fixed.feasible) continue;
    EXPECT_LE(ideal.total.usd(), fixed.total.usd() + 1e-9)
        << SetLabel(set);
  }
}

TEST(SimulatorTest, ScaliaBeatsEveryStaticOnSlashdot) {
  // The headline property of Fig. 14.
  const CostSimulator sim(PerPeriodConfig(), SimEnvironment::Paper());
  const auto scenario = workload::SlashdotScenario();
  const auto table = ComputeOverCost(sim, scenario,
                                     Fig13Order(provider::PaperCatalog()));
  EXPECT_LE(table.ScaliaRow().total.usd(),
            table.BestStatic().total.usd() + 1e-9);
  // And the worst static is dramatically worse (paper: 16 %).
  EXPECT_GT(table.WorstStatic().over_pct, 10.0);
  EXPECT_LT(table.ScaliaRow().over_pct, 2.0);
}

TEST(SimulatorTest, InfeasibleStaticSetReported) {
  const CostSimulator sim(PerPeriodConfig(), SimEnvironment::Paper());
  auto scenario = TinyColdScenario(4);
  scenario.objects[0].rule.lockin = 0.3;  // needs >= 4 providers
  const RunResult two = sim.RunStatic(scenario, {"S3(h)", "S3(l)"});
  EXPECT_FALSE(two.feasible);
}

TEST(SimulatorTest, ActiveRepairKeepsScaliaCheaperThanStatic) {
  // §IV-E / Fig. 18, at test scale: 60 hours, outage h20-h40.
  workload::BackupParams params;
  params.total_hours = 60;
  const auto scenario = workload::BackupScenario(params);
  const CostSimulator sim(PerPeriodConfig(),
                          workload::TransientFailureEnvironment(20, 40));
  const RunResult scalia = sim.RunScalia(scenario);
  const RunResult fixed = sim.RunStatic(scenario, {"S3(h)", "S3(l)", "Azu"});
  ASSERT_TRUE(scalia.feasible);
  ASSERT_TRUE(fixed.feasible);
  EXPECT_GT(scalia.repairs, 0u);
  EXPECT_LT(scalia.total.usd(), fixed.total.usd());
  // After recovery Scalia migrates back to an S3(l)-bearing set.
  bool returned = false;
  for (const auto& e : scalia.events) {
    if (e.period >= 40 && e.label.find("S3(l)") != std::string::npos) {
      returned = true;
    }
  }
  EXPECT_TRUE(returned);
}

TEST(SimulatorTest, ProviderArrivalTriggersAdoption) {
  // §IV-D at test scale: CheapStor arrives at hour 30 of 60.
  workload::BackupParams params;
  params.total_hours = 60;
  const auto scenario = workload::BackupScenario(params);
  const CostSimulator sim(PerPeriodConfig(),
                          workload::AddProviderEnvironment(30));
  const RunResult run = sim.RunScalia(scenario);
  ASSERT_TRUE(run.feasible);
  bool adopted = false;
  for (const auto& e : run.events) {
    if (e.label.find("CheapStor") != std::string::npos) adopted = true;
  }
  EXPECT_TRUE(adopted);
  EXPECT_GT(run.migrations, 0u);
}

TEST(SimulatorTest, TrendGateCutsRecomputations) {
  const auto scenario = workload::SlashdotScenario();
  const CostSimulator gated(PerPeriodConfig(), SimEnvironment::Paper());
  SimPolicyConfig always_config = PerPeriodConfig();
  always_config.trend_gate = false;
  const CostSimulator always(always_config, SimEnvironment::Paper());
  const RunResult gated_run = gated.RunScalia(scenario);
  const RunResult always_run = always.RunScalia(scenario);
  EXPECT_LT(gated_run.recomputations, always_run.recomputations / 2);
  // At similar cost.
  EXPECT_NEAR(gated_run.total.usd(), always_run.total.usd(),
              0.05 * always_run.total.usd());
}

TEST(SimulatorTest, MigrationChargesAppearInCosts) {
  SimPolicyConfig config = PerPeriodConfig();
  const CostSimulator sim(config, SimEnvironment::Paper());
  const auto scenario = workload::SlashdotScenario();
  const RunResult run = sim.RunScalia(scenario);
  EXPECT_GT(run.migrations, 0u);
  // Scalia is above the ideal precisely because migrations are billed.
  const RunResult ideal = sim.RunIdeal(scenario);
  EXPECT_GT(run.total.usd(), ideal.total.usd());
}

TEST(OverCostTest, TableShapeAndConsistency) {
  const CostSimulator sim(PerPeriodConfig(), SimEnvironment::Paper());
  const auto scenario = TinyColdScenario(6);
  common::ThreadPool pool(4);
  const auto table = ComputeOverCost(sim, scenario,
                                     Fig13Order(provider::PaperCatalog()),
                                     &pool);
  ASSERT_EQ(table.rows.size(), 27u);
  EXPECT_EQ(table.rows.back().label, "Scalia");
  for (const auto& row : table.rows) {
    if (!row.feasible) continue;
    EXPECT_GE(row.total.usd() + 1e-12, table.ideal_total.usd()) << row.label;
    EXPECT_GE(row.over_pct, -1e-9) << row.label;
  }
  const std::string rendered = FormatOverCostTable(table);
  EXPECT_NE(rendered.find("Scalia"), std::string::npos);
  EXPECT_NE(rendered.find("S3(h)-S3(l)"), std::string::npos);
}

}  // namespace
}  // namespace scalia::simx
