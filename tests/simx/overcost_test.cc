// Over-cost table mechanics: Fig. 13 ordering, compliance flagging, and
// headline selection.
#include <gtest/gtest.h>

#include "simx/overcost.h"
#include "workload/backup.h"

namespace scalia::simx {
namespace {

using common::kHour;

TEST(Fig13OrderTest, CanonicalOrderThenExtras) {
  auto catalog = provider::PaperCatalog();
  catalog.push_back(provider::CheapStorSpec());
  const auto ordered = Fig13Order(catalog);
  ASSERT_EQ(ordered.size(), 6u);
  EXPECT_EQ(ordered[0].id, "S3(h)");
  EXPECT_EQ(ordered[1].id, "S3(l)");
  EXPECT_EQ(ordered[2].id, "Azu");
  EXPECT_EQ(ordered[3].id, "Ggl");
  EXPECT_EQ(ordered[4].id, "RS");
  EXPECT_EQ(ordered[5].id, "CheapStor");
}

TEST(OverCostComplianceTest, BankruptcyFlagsDegradedStatics) {
  workload::BackupParams params;
  params.total_hours = 120;
  const ScenarioSpec scenario = workload::BackupScenario(params);
  SimEnvironment env = SimEnvironment::Paper();
  env.Bankrupt("RS", 60 * kHour);

  SimPolicyConfig config;
  const CostSimulator simulator(config, env);
  const auto table = ComputeOverCost(
      simulator, scenario, Fig13Order(provider::PaperCatalog()), nullptr);

  // Every feasible static set containing RS must be flagged; RS-free sets
  // must not be.  Scalia repairs its way back to compliance, so its flag
  // count stays at zero (repair happens within the failure period).
  bool saw_flagged_rs_set = false;
  for (const auto& row : table.rows) {
    if (!row.feasible) continue;
    const bool has_rs = row.label.find("RS") != std::string::npos;
    if (row.label == "Scalia") {
      EXPECT_EQ(row.noncompliant_periods, 0u) << "Scalia repaired at h60";
      continue;
    }
    if (has_rs) {
      EXPECT_GT(row.noncompliant_periods, 0u) << row.label;
      saw_flagged_rs_set = true;
    } else {
      EXPECT_EQ(row.noncompliant_periods, 0u) << row.label;
    }
  }
  EXPECT_TRUE(saw_flagged_rs_set);

  // The headline "best static" skips flagged rows.
  EXPECT_EQ(table.BestStatic().noncompliant_periods, 0u);

  // The rendered table carries the flag markers and the footnote.
  const std::string rendered = FormatOverCostTable(table);
  EXPECT_NE(rendered.find(" !"), std::string::npos);
  EXPECT_NE(rendered.find("rule-noncompliant"), std::string::npos);
}

TEST(OverCostComplianceTest, HealthyMarketHasNoFlags) {
  workload::BackupParams params;
  params.total_hours = 60;
  const ScenarioSpec scenario = workload::BackupScenario(params);
  const CostSimulator simulator(SimPolicyConfig{},
                                SimEnvironment::Paper());
  const auto table = ComputeOverCost(
      simulator, scenario, Fig13Order(provider::PaperCatalog()), nullptr);
  for (const auto& row : table.rows) {
    EXPECT_EQ(row.noncompliant_periods, 0u) << row.label;
  }
  EXPECT_EQ(FormatOverCostTable(table).find(" !"), std::string::npos);
}

}  // namespace
}  // namespace scalia::simx
