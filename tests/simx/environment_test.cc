// Market dynamics: repricing and permanent provider exit (§I motivations),
// plus end-to-end checks that the Scalia policy reacts to both.
#include <gtest/gtest.h>

#include "simx/environment.h"
#include "simx/simulator.h"
#include "workload/backup.h"

namespace scalia::simx {
namespace {

using common::kHour;

TEST(EnvironmentPricingTest, RepriceTakesEffectAtScheduledTime) {
  SimEnvironment env = SimEnvironment::Paper();
  auto pricier = env.FindSpec("S3(l)", 0)->pricing;
  pricier.storage_gb_month *= 3.0;
  env.Reprice("S3(l)", 100 * kHour, pricier);

  EXPECT_DOUBLE_EQ(env.FindSpec("S3(l)", 99 * kHour)->pricing.storage_gb_month,
                   0.093);
  EXPECT_DOUBLE_EQ(
      env.FindSpec("S3(l)", 100 * kHour)->pricing.storage_gb_month,
      0.093 * 3.0);
  // Other providers are untouched.
  EXPECT_DOUBLE_EQ(
      env.FindSpec("S3(h)", 200 * kHour)->pricing.storage_gb_month, 0.14);
}

TEST(EnvironmentPricingTest, MultipleChangesApplyInOrder) {
  SimEnvironment env = SimEnvironment::Paper();
  auto p1 = env.FindSpec("RS", 0)->pricing;
  auto p2 = p1;
  p1.bw_out_gb = 0.5;
  p2.bw_out_gb = 0.05;
  // Registered out of order; the environment sorts by time.
  env.Reprice("RS", 200 * kHour, p2);
  env.Reprice("RS", 50 * kHour, p1);

  EXPECT_DOUBLE_EQ(env.FindSpec("RS", 0)->pricing.bw_out_gb, 0.18);
  EXPECT_DOUBLE_EQ(env.FindSpec("RS", 60 * kHour)->pricing.bw_out_gb, 0.5);
  EXPECT_DOUBLE_EQ(env.FindSpec("RS", 300 * kHour)->pricing.bw_out_gb, 0.05);
}

TEST(EnvironmentPricingTest, SpecsAtAndReachableAtCarryCurrentPricing) {
  SimEnvironment env = SimEnvironment::Paper();
  auto pricing = env.FindSpec("Ggl", 0)->pricing;
  pricing.storage_gb_month = 0.01;
  env.Reprice("Ggl", 10 * kHour, pricing);
  for (const auto& spec : env.SpecsAt(20 * kHour)) {
    if (spec.id == "Ggl") {
      EXPECT_DOUBLE_EQ(spec.pricing.storage_gb_month, 0.01);
    }
  }
  for (const auto& spec : env.ReachableAt(20 * kHour)) {
    if (spec.id == "Ggl") {
      EXPECT_DOUBLE_EQ(spec.pricing.storage_gb_month, 0.01);
    }
  }
}

TEST(EnvironmentBankruptcyTest, ExitedProviderLeavesTheMarketForGood) {
  SimEnvironment env = SimEnvironment::Paper();
  env.Bankrupt("RS", 300 * kHour);

  EXPECT_TRUE(env.IsReachable("RS", 299 * kHour));
  EXPECT_FALSE(env.IsReachable("RS", 300 * kHour));
  EXPECT_FALSE(env.IsReachable("RS", 10000 * kHour)) << "never recovers";
  EXPECT_TRUE(env.FindSpec("RS", 299 * kHour).has_value());
  EXPECT_FALSE(env.FindSpec("RS", 300 * kHour).has_value());
  EXPECT_EQ(env.SpecsAt(299 * kHour).size(), 5u);
  EXPECT_EQ(env.SpecsAt(300 * kHour).size(), 4u);
}

TEST(EnvironmentBankruptcyTest, DistinctFromTransientOutage) {
  SimEnvironment env = workload::TransientFailureEnvironment(60, 120);
  // Transient: the provider stays in the market (placement may still plan
  // around its return) but is unreachable during the window.
  EXPECT_TRUE(env.FindSpec("S3(l)", 80 * kHour).has_value());
  EXPECT_FALSE(env.IsReachable("S3(l)", 80 * kHour));
  EXPECT_TRUE(env.IsReachable("S3(l)", 120 * kHour));
}

SimPolicyConfig FastConfig() {
  SimPolicyConfig config;
  config.price.billing = provider::StorageBillingMode::kPerPeriod;
  return config;
}

TEST(PriceChangeScenarioTest, ScaliaMigratesOffRepricedProvider) {
  // Backup workload; at hour 100, S3(l) multiplies its storage price by 10.
  workload::BackupParams params;
  params.total_hours = 200;
  const ScenarioSpec scenario = workload::BackupScenario(params);

  SimEnvironment env = SimEnvironment::Paper();
  auto gouged = env.FindSpec("S3(l)", 0)->pricing;
  gouged.storage_gb_month *= 10.0;
  env.Reprice("S3(l)", 100 * kHour, gouged);

  const CostSimulator simulator(FastConfig(), env);
  const RunResult scalia = simulator.RunScalia(scenario);
  ASSERT_TRUE(scalia.feasible);

  // A provider-change event fires at hour 100 and the stored objects leave
  // S3(l): from some post-change period on, no placement event mentions it
  // and migrations were performed.
  EXPECT_GT(scalia.migrations, 0u);
  bool post_change_uses_s3l = false;
  for (const auto& e : scalia.events) {
    if (e.period >= 101 && e.reason == "provider-change" &&
        e.label.find("S3(l)") != std::string::npos) {
      post_change_uses_s3l = true;
    }
  }
  EXPECT_FALSE(post_change_uses_s3l)
      << "re-placements after the gouging must avoid S3(l)";

  // Against a static set that contains S3(l), Scalia is strictly cheaper.
  const RunResult stuck =
      simulator.RunStatic(scenario, {"S3(h)", "S3(l)", "Azu"});
  ASSERT_TRUE(stuck.feasible);
  EXPECT_LT(scalia.total.usd(), stuck.total.usd());
}

TEST(BankruptcyScenarioTest, ScaliaRepairsAndAbandonsBankruptProvider) {
  workload::BackupParams params;
  params.total_hours = 200;
  const ScenarioSpec scenario = workload::BackupScenario(params);

  SimEnvironment env = SimEnvironment::Paper();
  env.Bankrupt("RS", 100 * kHour);

  const CostSimulator simulator(FastConfig(), env);
  const RunResult scalia = simulator.RunScalia(scenario);
  ASSERT_TRUE(scalia.feasible);
  // Stripes that touched RS must be repaired (or re-placed) at hour 100.
  EXPECT_GT(scalia.repairs + scalia.migrations, 0u);
  for (const auto& e : scalia.events) {
    if (e.period >= 101) {
      EXPECT_EQ(e.label.find("RS"), std::string::npos)
          << "placement after the exit still names RS: " << e.label
          << " (period " << e.period << ", " << e.reason << ")";
    }
  }
}

}  // namespace
}  // namespace scalia::simx
